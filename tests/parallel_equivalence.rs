//! Differential guarantee for the sharded multi-threaded timing loop: for
//! the full workload zoo, every machine model, and both loop kinds, running
//! with `threads ∈ {2, 8}` must produce bit-identical `Stats` and global
//! memory to the single-threaded reference — and, when profiled, bit-identical
//! stall attribution satisfying the conservation invariant.
//!
//! This is the test that licenses the epoch protocol in
//! `r2d2_sim::timing::shard` — see DESIGN.md "Sharded execution & epoch
//! protocol".

use r2d2::baselines::{DacFilter, DarsieFilter, DarsieScalarFilter};
use r2d2::prelude::*;
use r2d2::sim::{LoopKind, Profiler, SimSession, Stats};
use r2d2::workloads::{self, Size};

/// 8 SMs so `threads = 8` genuinely runs eight single-SM shards.
const NUM_SMS: u32 = 8;
const MODELS: [&str; 5] = ["baseline", "dac", "darsie", "darsie+s", "r2d2"];

fn make_filter(model: &str) -> Box<dyn IssueFilter> {
    match model {
        "baseline" | "r2d2" => Box::new(BaselineFilter),
        "dac" => Box::new(DacFilter::new()),
        "darsie" => Box::new(DarsieFilter::new()),
        "darsie+s" => Box::new(DarsieScalarFilter::new()),
        _ => unreachable!("unknown model {model}"),
    }
}

fn cfg_for(kind: LoopKind) -> GpuConfig {
    GpuConfig::default()
        .with_num_sms(NUM_SMS)
        .with_loop_kind(kind)
}

/// Run every launch of `w` under `model`, optionally profiled, and return
/// the merged stats, final memory image, and profiler (if any).
fn run_zoo(
    w: &workloads::Workload,
    kind: LoopKind,
    model: &str,
    threads: u32,
    profiled: bool,
) -> (Stats, Vec<u8>, Option<Profiler>) {
    let cfg = cfg_for(kind);
    let mut filter = make_filter(model);
    let mut g = w.gmem.clone();
    let mut stats = Stats::default();
    let mut prof = profiled.then(|| Profiler::new(64));
    for l in &w.launches {
        let owned;
        let launch = if model == "r2d2" {
            let (launch, _) = r2d2::core::transform::make_launch(
                &cfg,
                &l.kernel,
                l.grid,
                l.block,
                l.params.clone(),
            );
            owned = launch;
            &owned
        } else {
            l
        };
        let session = SimSession::new(&cfg)
            .filter(filter.as_mut())
            .threads(threads);
        let s = match prof.as_mut() {
            Some(p) => session.sink(p).run(launch, &mut g),
            None => session.run(launch, &mut g),
        };
        stats.merge_sequential(&s.unwrap());
    }
    (stats, g.bytes().to_vec(), prof)
}

#[test]
fn sharded_runs_are_bit_identical_across_zoo_models_and_loops() {
    for (name, _) in workloads::NAMES {
        let w = workloads::build(name, Size::Small).unwrap();
        for kind in [LoopKind::Lockstep, LoopKind::EventDriven] {
            for model in MODELS {
                let (s_ref, m_ref, p_ref) = run_zoo(&w, kind, model, 1, true);
                let p_ref = p_ref.unwrap();
                for threads in [2, 8] {
                    let (s_par, m_par, p_par) = run_zoo(&w, kind, model, threads, true);
                    let p_par = p_par.unwrap();
                    assert_eq!(
                        s_ref, s_par,
                        "{name}/{model}/{kind:?}: Stats diverged at threads={threads}"
                    );
                    assert_eq!(
                        m_ref, m_par,
                        "{name}/{model}/{kind:?}: memory diverged at threads={threads}"
                    );
                    p_par.check_invariant().unwrap_or_else(|e| {
                        panic!("{name}/{model}/{kind:?} threads={threads}: {e}")
                    });
                    assert_eq!(
                        p_par.total_cycles(),
                        s_par.cycles,
                        "{name}/{model}/{kind:?}: profiler cycles drifted from Stats"
                    );
                    assert_eq!(
                        p_ref.issued_sm_cycles(),
                        p_par.issued_sm_cycles(),
                        "{name}/{model}/{kind:?}: issued SM-cycles diverged at threads={threads}"
                    );
                    assert_eq!(
                        p_ref.per_sm(),
                        p_par.per_sm(),
                        "{name}/{model}/{kind:?}: per-SM attribution diverged at threads={threads}"
                    );
                    assert_eq!(
                        p_ref.per_warp(),
                        p_par.per_warp(),
                        "{name}/{model}/{kind:?}: per-warp attribution diverged at threads={threads}"
                    );
                }
            }
        }
    }
}

/// Repeated 8-thread runs must be byte-for-byte repeatable: the epoch drain
/// is deterministic, so thread scheduling noise must never show through.
#[test]
fn sharded_runs_are_deterministic_across_repeats() {
    for name in ["GEM", "HIS", "SSSP", "BFS"] {
        let w = workloads::build(name, Size::Small).unwrap();
        for kind in [LoopKind::Lockstep, LoopKind::EventDriven] {
            let (s0, m0, p0) = run_zoo(&w, kind, "baseline", 8, true);
            for _ in 0..2 {
                let (s, m, p) = run_zoo(&w, kind, "baseline", 8, true);
                assert_eq!(s0, s, "{name}/{kind:?}: Stats not repeatable");
                assert_eq!(m0, m, "{name}/{kind:?}: memory not repeatable");
                assert_eq!(
                    p0.as_ref().unwrap().per_warp(),
                    p.as_ref().unwrap().per_warp(),
                    "{name}/{kind:?}: attribution not repeatable"
                );
            }
        }
    }
}
