//! Validate selected workloads against native Rust reference implementations:
//! the zoo must not just run, it must compute the right thing.

use r2d2::sim::functional;
use r2d2::workloads::{build, Size};

fn run_functional(w: &r2d2::workloads::Workload) -> r2d2::sim::GlobalMem {
    let mut g = w.gmem.clone();
    for l in &w.launches {
        functional::run(l, &mut g, 100_000_000, None).unwrap();
    }
    g
}

#[test]
fn backprop_matches_fig2_formula() {
    // w[index] += ETA*delta[tx+1]*ly[HEIGHT*by+ty+1] + MOMENTUM*oldw[index]
    // with index = (hid+1)*(HEIGHT*by+ty+1) + tx+1, hid = 16, HEIGHT = 16.
    let w = build("BP", Size::Small).unwrap();
    // Snapshot inputs before running.
    let g0 = w.gmem.clone();
    let l = &w.launches[1]; // bp_adjust_weights
    let (delta, ly, wptr, oldw, hid) = (
        l.params[0],
        l.params[1],
        l.params[2],
        l.params[3],
        l.params[4] as i64,
    );
    let grid_y = l.grid.y as i64;

    let g = run_functional(&w);

    let eta = 0.3f32;
    let momentum = 0.3f32;
    let mut checked = 0;
    for by in 0..grid_y {
        for ty in 0..16i64 {
            for tx in 0..16i64 {
                let row = 16 * by + ty + 1;
                let index = ((hid + 1) * row + tx + 1) as u64;
                let d = g0.read_f32(delta, (tx + 1) as u64);
                let lyv = g0.read_f32(ly, row as u64);
                let ow = g0.read_f32(oldw, index);
                let upd = eta * (d * lyv) + momentum * ow;
                let want_w = g0.read_f32(wptr, index) + upd;
                let got_w = g.read_f32(wptr, index);
                assert!(
                    (got_w - want_w).abs() < 1e-4,
                    "w[{index}] (by={by},ty={ty},tx={tx}): {got_w} != {want_w}"
                );
                let got_old = g.read_f32(oldw, index);
                assert!((got_old - upd).abs() < 1e-4, "oldw[{index}]");
                checked += 1;
            }
        }
    }
    assert!(checked >= 4096, "checked {checked} weights");
}

#[test]
fn gemm_matches_reference_matmul() {
    let w = build("GEM", Size::Small).unwrap();
    let l = &w.launches[0];
    let (a, b, c, n, kd) = (
        l.params[0],
        l.params[1],
        l.params[2],
        l.params[3],
        l.params[4],
    );
    let g0 = w.gmem.clone();
    let g = run_functional(&w);
    // Spot-check a grid of output elements.
    for row in (0..n).step_by(7) {
        for col in (0..n).step_by(5) {
            let mut want = 0.0f32;
            for k in 0..kd {
                want += g0.read_f32(a, row * kd + k) * g0.read_f32(b, k * n + col);
            }
            let got = g.read_f32(c, row * n + col);
            assert!(
                (got - want).abs() < 1e-2 * want.abs().max(1.0),
                "C[{row}][{col}] {got} != {want}"
            );
        }
    }
}

#[test]
fn histogram_bins_match_reference() {
    let w = build("HIS", Size::Small).unwrap();
    let l = &w.launches[0];
    let (data, hist, mask) = (l.params[0], l.params[1], l.params[2] as i32);
    let n = l.num_blocks() * l.threads_per_block() as u64;
    let g0 = w.gmem.clone();
    let g = run_functional(&w);
    let mut want = vec![0i32; (mask + 1) as usize];
    for i in 0..n {
        let v = g0.read_i32(data, i);
        want[(v & mask) as usize] += 1;
    }
    for (bin, wv) in want.iter().enumerate() {
        assert_eq!(g.read_i32(hist, bin as u64), *wv, "bin {bin}");
    }
}

#[test]
fn bfs_levels_match_reference_bfs() {
    let w = build("BFS", Size::Small).unwrap();
    let l = &w.launches[0];
    let (rp, ci, level, nverts) = (l.params[0], l.params[1], l.params[2], l.params[4]);
    let iters = w.launches.len() as i32;
    let g0 = w.gmem.clone();
    let g = run_functional(&w);
    // Reference: BFS limited to `iters` level expansions from vertex 0.
    let mut want = vec![-1i32; nverts as usize];
    want[0] = 0;
    for cur in 0..iters {
        let snapshot = want.clone();
        for (v, &lvl) in snapshot.iter().enumerate() {
            if lvl == cur {
                let s = g0.read_i32(rp, v as u64) as u64;
                let e = g0.read_i32(rp, v as u64 + 1) as u64;
                for ei in s..e {
                    let nb = g0.read_i32(ci, ei) as usize;
                    if want[nb] < 0 {
                        want[nb] = cur + 1;
                    }
                }
            }
        }
    }
    for v in 0..nverts {
        assert_eq!(g.read_i32(level, v), want[v as usize], "level[{v}]");
    }
}

#[test]
fn nn_distances_match_haversine_reference() {
    let w = build("NN", Size::Small).unwrap();
    let l = &w.launches[0];
    let (lat, lng, dist) = (l.params[0], l.params[1], l.params[2]);
    let g0 = w.gmem.clone();
    let g = run_functional(&w);
    let n = l.num_blocks() * l.threads_per_block() as u64;
    let rad = 0.0174533f32;
    for i in (0..n).step_by(97) {
        let la = g0.read_f32(lat, i);
        let lo = g0.read_f32(lng, i);
        let hlat = ((la - 30.0) * 0.5 * rad).sin();
        let hlng = ((lo - -90.0) * 0.5 * rad).sin();
        let h = hlat * hlat + (la * rad).cos() * (30.0f32 * rad).cos() * hlng * hlng;
        let want = h.sqrt();
        let got = g.read_f32(dist, i);
        assert!((got - want).abs() < 1e-4, "dist[{i}] {got} != {want}");
    }
}

#[test]
fn pathfinder_rows_match_dp_reference() {
    let w = build("PTH", Size::Small).unwrap();
    let g0 = w.gmem.clone();
    let g = run_functional(&w);
    // Reconstruct the DP from the launch parameters.
    let width = w.launches[0].params[3] as usize;
    let mut prev: Vec<f32> = (0..width)
        .map(|x| g0.read_f32(w.launches[0].params[0], x as u64))
        .collect();
    let mut final_out = 0;
    for l in &w.launches {
        let wall = l.params[1];
        let mut next = vec![0.0f32; width];
        for x in 0..width {
            let lft = prev[x.saturating_sub(1)];
            let ctr = prev[x];
            let rgt = prev[(x + 1).min(width - 1)];
            next[x] = lft.min(ctr).min(rgt) + g0.read_f32(wall, x as u64);
        }
        prev = next;
        final_out = l.params[2];
    }
    for x in (0..width).step_by(53) {
        let got = g.read_f32(final_out, x as u64);
        assert!(
            (got - prev[x]).abs() < 1e-3,
            "row[{x}] {got} != {}",
            prev[x]
        );
    }
}
