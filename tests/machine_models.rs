//! Cross-crate invariants for the machine models: value preservation across
//! the whole zoo, statistics sanity, and the relative ordering the paper
//! establishes.

use r2d2::baselines::{DacFilter, DarsieFilter, DarsieScalarFilter};
use r2d2::prelude::*;
use r2d2::sim::{SimSession, Stats};
use r2d2::workloads::{self, Size};

fn run_all(
    w: &workloads::Workload,
    cfg: &GpuConfig,
    mut filter: Box<dyn IssueFilter>,
) -> (Stats, Vec<u8>) {
    let mut g = w.gmem.clone();
    let mut stats = Stats::default();
    for l in &w.launches {
        stats.merge_sequential(
            &SimSession::new(cfg)
                .filter(filter.as_mut())
                .run(l, &mut g)
                .unwrap(),
        );
    }
    (stats, g.bytes().to_vec())
}

#[test]
fn all_models_preserve_results_across_the_zoo() {
    let cfg = GpuConfig::default().with_num_sms(4);
    for (name, _) in workloads::NAMES {
        let w = workloads::build(name, Size::Small).unwrap();
        let (base, bytes) = run_all(&w, &cfg, Box::new(BaselineFilter));
        for (mname, f) in [
            ("dac", Box::new(DacFilter::new()) as Box<dyn IssueFilter>),
            ("darsie", Box::new(DarsieFilter::new())),
            ("darsie+s", Box::new(DarsieScalarFilter::new())),
        ] {
            let (s, b) = run_all(&w, &cfg, f);
            assert_eq!(bytes, b, "{name}/{mname} changed results");
            assert!(
                s.warp_instrs_with_skipped() == base.warp_instrs_with_skipped(),
                "{name}/{mname}: executed+skipped must equal baseline executed \
                 ({} + {} vs {})",
                s.warp_instrs,
                s.skipped_warp_instrs,
                base.warp_instrs
            );
            assert!(
                s.warp_instrs <= base.warp_instrs,
                "{name}/{mname} added instructions"
            );
        }
    }
}

#[test]
fn stats_invariants_hold() {
    let cfg = GpuConfig::default().with_num_sms(4);
    for name in ["BP", "SRAD2", "BFS", "GEM", "FFT", "LUD", "HIS"] {
        let w = workloads::build(name, Size::Small).unwrap();
        let (s, _) = run_all(&w, &cfg, Box::new(BaselineFilter));
        assert!(s.cycles > 0, "{name}");
        assert!(s.thread_instrs >= s.warp_instrs, "{name}: lanes >= warps");
        assert!(
            s.thread_instrs <= s.warp_instrs * 32,
            "{name}: lanes <= 32x warps"
        );
        assert_eq!(s.l1_hits + s.l1_misses, s.events.l1_accesses, "{name}");
        assert_eq!(s.l2_hits + s.l2_misses, s.events.l2_accesses, "{name}");
        assert!(
            s.dram_txns <= s.events.l2_accesses,
            "{name}: DRAM beyond L2 misses"
        );
        assert_eq!(s.events.fetch_decode, s.warp_instrs, "{name}");
    }
}

#[test]
fn r2d2_prologue_is_bounded() {
    // Fig. 15's qualitative claim: the linear prologue is a small part of
    // execution (we allow a loose bound at test sizes — the bench harness
    // measures the real share at evaluation sizes).
    let cfg = GpuConfig::default().with_num_sms(4);
    for name in ["BP", "SRAD2", "NN", "2DC"] {
        let w = workloads::build(name, Size::Small).unwrap();
        let mut g = w.gmem.clone();
        let mut stats = Stats::default();
        for l in &w.launches {
            let (launch, _) = r2d2::core::transform::make_launch(
                &cfg,
                &l.kernel,
                l.grid,
                l.block,
                l.params.clone(),
            );
            stats.merge_sequential(&SimSession::new(&cfg).run(&launch, &mut g).unwrap());
        }
        assert!(
            stats.prologue_cycles <= stats.cycles,
            "{name}: prologue {} beyond total {}",
            stats.prologue_cycles,
            stats.cycles
        );
        assert!(
            stats.linear_warp_share() < 0.30,
            "{name}: linear share {:.2} too large even at test size",
            stats.linear_warp_share()
        );
    }
}

#[test]
fn ideal_ln_beats_wp_and_tb_on_average() {
    // The Fig. 4 headline ordering, at test size over a representative set.
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    let names = [
        "BP", "2DC", "SRAD2", "NN", "CFD", "HSP", "FDT", "KM", "SAD", "DWT",
    ];
    for name in names {
        let w = workloads::build(name, Size::Small).unwrap();
        let mut g = w.gmem.clone();
        let mut total = r2d2::baselines::IdealCounts::default();
        for l in &w.launches {
            let c = r2d2::baselines::measure_ideals(l, &mut g).unwrap();
            total.baseline += c.baseline;
            total.wp += c.wp;
            total.tb += c.tb;
            total.ln += c.ln;
        }
        let (wp, tb, ln) = total.reductions();
        sums.0 += wp;
        sums.1 += tb;
        sums.2 += ln;
    }
    let n = names.len() as f64;
    let (wp, tb, ln) = (sums.0 / n, sums.1 / n, sums.2 / n);
    assert!(ln > wp, "LN ({ln:.1}%) must beat WP ({wp:.1}%) on average");
    assert!(ln > tb, "LN ({ln:.1}%) must beat TB ({tb:.1}%) on average");
}
