//! The repo's strongest correctness statement: for EVERY workload in the
//! Table 2 zoo, the R2D2-transformed kernel leaves device memory
//! byte-identical to the original, under both functional and timed execution.

use r2d2::core::transform::transform;
use r2d2::sim::{functional, GlobalMem, Launch, Stats};
use r2d2::workloads::{self, Size};

const WATCHDOG: u64 = 100_000_000;

fn run_all_functional(launches: &[Launch], gmem: &mut GlobalMem) -> u64 {
    let mut total = 0;
    for l in launches {
        let s = functional::run(l, gmem, WATCHDOG, None).unwrap();
        total += s.thread_instrs;
    }
    total
}

fn run_all_r2d2_functional(launches: &[Launch], gmem: &mut GlobalMem) -> u64 {
    let mut total = 0;
    for l in launches {
        let r = transform(&l.kernel);
        if r.meta.has_linear() {
            let mut l2 = Launch::new(r.kernel, l.grid, l.block, l.params.clone());
            l2.meta = Some(r.meta);
            let s = functional::run_r2d2(&l2, gmem, WATCHDOG, None).unwrap();
            total += s.thread_instrs;
        } else {
            let s = functional::run(l, gmem, WATCHDOG, None).unwrap();
            total += s.thread_instrs;
        }
    }
    total
}

#[test]
fn every_workload_is_r2d2_equivalent() {
    let mut reductions: Vec<(&str, f64)> = Vec::new();
    for (name, _) in workloads::NAMES {
        let w = workloads::build(name, Size::Small).unwrap();
        let mut g1 = w.gmem.clone();
        let base = run_all_functional(&w.launches, &mut g1);
        let mut g2 = w.gmem.clone();
        let r2 = run_all_r2d2_functional(&w.launches, &mut g2);
        assert_eq!(
            g1.bytes(),
            g2.bytes(),
            "{name}: transformed execution diverged from the original"
        );
        let red = 100.0 * (base as f64 - r2 as f64) / base as f64;
        reductions.push((name, red));
    }
    // Sanity on the aggregate: the functional (single-prologue) reduction
    // should be clearly positive on average across the zoo.
    let avg = reductions.iter().map(|(_, r)| r).sum::<f64>() / reductions.len() as f64;
    assert!(
        avg > 10.0,
        "average functional thread-instruction reduction too small: {avg:.1}%\n{reductions:?}"
    );
    // And no workload should get dramatically WORSE (linear overhead bound).
    for (name, red) in &reductions {
        assert!(*red > -10.0, "{name}: R2D2 added {:.1}% instructions", -red);
    }
}

#[test]
fn timed_baseline_matches_functional_results() {
    use r2d2::sim::{GpuConfig, SimSession};
    let cfg = GpuConfig::default().with_num_sms(8);
    // A representative subset across suites (full-zoo timing runs live in the
    // bench harness).
    for name in ["BP", "GEM", "BFS", "SPM", "2DC", "FFT", "VGG", "LUD"] {
        let w = workloads::build(name, Size::Small).unwrap();
        let mut g1 = w.gmem.clone();
        run_all_functional(&w.launches, &mut g1);
        let mut g2 = w.gmem.clone();
        let mut stats = Stats::default();
        for l in &w.launches {
            stats.merge_sequential(&SimSession::new(&cfg).run(l, &mut g2).unwrap());
        }
        assert_eq!(
            g1.bytes(),
            g2.bytes(),
            "{name}: timing diverged from functional"
        );
        assert!(stats.cycles > 0, "{name}");
    }
}

#[test]
fn timed_r2d2_matches_baseline_results() {
    use r2d2::core::transform::make_launch;
    use r2d2::sim::{GpuConfig, SimSession};
    let cfg = GpuConfig::default().with_num_sms(8);
    for name in ["BP", "GEM", "SRAD2", "KM", "CFD", "NN", "FFT_PT"] {
        let w = workloads::build(name, Size::Small).unwrap();
        let mut g1 = w.gmem.clone();
        let mut base = Stats::default();
        for l in &w.launches {
            base.merge_sequential(&SimSession::new(&cfg).run(l, &mut g1).unwrap());
        }
        let mut g2 = w.gmem.clone();
        let mut r2 = Stats::default();
        for l in &w.launches {
            let (launch, _) = make_launch(&cfg, &l.kernel, l.grid, l.block, l.params.clone());
            r2.merge_sequential(&SimSession::new(&cfg).run(&launch, &mut g2).unwrap());
        }
        assert_eq!(g1.bytes(), g2.bytes(), "{name}: timed R2D2 diverged");
        assert!(
            r2.warp_instrs <= base.warp_instrs * 11 / 10,
            "{name}: R2D2 ran more warp instructions ({} vs {})",
            r2.warp_instrs,
            base.warp_instrs
        );
    }
}
