//! Back-to-back determinism: repeating a `SimSession` run on the same
//! launch must return identical `Stats` and identical `GlobalMem` bytes —
//! the property the harness result cache (and every figure script) relies
//! on. Covers the baseline, DAC, DARSIE, and R2D2 machine models under the
//! default (event-driven) loop.

use r2d2::baselines::{DacFilter, DarsieFilter};
use r2d2::prelude::*;
use r2d2::sim::{SimSession, Stats};
use r2d2::workloads::{self, Size};

fn make_filter(model: &str) -> Box<dyn IssueFilter> {
    match model {
        "baseline" | "r2d2" => Box::new(BaselineFilter),
        "dac" => Box::new(DacFilter::new()),
        "darsie" => Box::new(DarsieFilter::new()),
        _ => unreachable!("unknown model {model}"),
    }
}

fn run_once(w: &workloads::Workload, model: &str) -> (Stats, Vec<u8>) {
    let cfg = GpuConfig::default().with_num_sms(4);
    let mut filter = make_filter(model);
    let mut g = w.gmem.clone();
    let mut stats = Stats::default();
    for l in &w.launches {
        if model == "r2d2" {
            let (launch, _) = r2d2::core::transform::make_launch(
                &cfg,
                &l.kernel,
                l.grid,
                l.block,
                l.params.clone(),
            );
            stats.merge_sequential(
                &SimSession::new(&cfg)
                    .filter(filter.as_mut())
                    .run(&launch, &mut g)
                    .unwrap(),
            );
        } else {
            stats.merge_sequential(
                &SimSession::new(&cfg)
                    .filter(filter.as_mut())
                    .run(l, &mut g)
                    .unwrap(),
            );
        }
    }
    (stats, g.bytes().to_vec())
}

#[test]
fn back_to_back_runs_are_identical() {
    for name in ["BP", "GEM", "HIS", "SRAD2"] {
        let w = workloads::build(name, Size::Small).unwrap();
        for model in ["baseline", "dac", "darsie", "r2d2"] {
            let (s1, m1) = run_once(&w, model);
            let (s2, m2) = run_once(&w, model);
            assert_eq!(s1, s2, "{name}/{model}: Stats not deterministic");
            assert_eq!(m1, m2, "{name}/{model}: memory not deterministic");
        }
    }
}
