//! `scripts/summarize_results.py` must keep understanding the unified CSV
//! schema (`r2d2_harness::export::CSV_HEADER`). `results/run_records.csv`
//! itself is generated output (gitignored), so the contract is pinned by the
//! small checked-in fixture under `tests/fixtures/results/` — regenerate it
//! with `R2D2_RESULTS=tests/fixtures/results r2d2 sweep run sec57 --size
//! small` whenever the schema gains columns (append-only).

use std::path::Path;
use std::process::Command;

fn python3() -> Option<Command> {
    let mut c = Command::new("python3");
    c.arg("--version");
    match c.output() {
        Ok(out) if out.status.success() => Some(Command::new("python3")),
        _ => None,
    }
}

#[test]
fn summarize_results_digests_the_checked_in_fixture() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixture = root.join("tests/fixtures/results");
    assert!(
        fixture.join("run_records.csv").is_file(),
        "fixture missing: {}",
        fixture.join("run_records.csv").display()
    );
    let Some(mut py) = python3() else {
        eprintln!("skipping: python3 not available");
        return;
    };
    let out = py
        .arg(root.join("scripts/summarize_results.py"))
        .env("R2D2_RESULTS", &fixture)
        .output()
        .expect("spawn python3");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "summarize_results.py failed:\n{}\n{}",
        stdout,
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("unified run_records.csv: 4 cached jobs"),
        "unexpected summary:\n{stdout}"
    );
    assert!(
        stdout.contains("r2d2"),
        "expected an r2d2 model line:\n{stdout}"
    );
}
