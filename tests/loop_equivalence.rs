//! Differential guarantee for the event-driven timing loop: across the full
//! workload zoo and every machine model, `LoopKind::EventDriven` must produce
//! bit-identical `Stats` (cycles, every counter, every energy event) and
//! bit-identical global memory to the `LoopKind::Lockstep` reference.
//!
//! This is the test that licenses the cycle-skipping and persistent-ordering
//! optimizations in `r2d2_sim::timing` — see DESIGN.md "Timing-loop
//! internals".

use r2d2::baselines::{DacFilter, DarsieFilter, DarsieScalarFilter};
use r2d2::prelude::*;
use r2d2::sim::{LoopKind, SimSession, Stats};
use r2d2::workloads::{self, Size};

const MODELS: [&str; 5] = ["baseline", "dac", "darsie", "darsie+s", "r2d2"];

fn make_filter(model: &str) -> Box<dyn IssueFilter> {
    match model {
        "baseline" | "r2d2" => Box::new(BaselineFilter),
        "dac" => Box::new(DacFilter::new()),
        "darsie" => Box::new(DarsieFilter::new()),
        "darsie+s" => Box::new(DarsieScalarFilter::new()),
        _ => unreachable!("unknown model {model}"),
    }
}

fn run_model(w: &workloads::Workload, kind: LoopKind, model: &str) -> (Stats, Vec<u8>) {
    let cfg = GpuConfig::default().with_num_sms(4).with_loop_kind(kind);
    let mut filter = make_filter(model);
    let mut g = w.gmem.clone();
    let mut stats = Stats::default();
    for l in &w.launches {
        if model == "r2d2" {
            let (launch, _) = r2d2::core::transform::make_launch(
                &cfg,
                &l.kernel,
                l.grid,
                l.block,
                l.params.clone(),
            );
            stats.merge_sequential(
                &SimSession::new(&cfg)
                    .filter(filter.as_mut())
                    .run(&launch, &mut g)
                    .unwrap(),
            );
        } else {
            stats.merge_sequential(
                &SimSession::new(&cfg)
                    .filter(filter.as_mut())
                    .run(l, &mut g)
                    .unwrap(),
            );
        }
    }
    (stats, g.bytes().to_vec())
}

#[test]
fn event_driven_loop_is_bit_identical_across_zoo_and_models() {
    for (name, _) in workloads::NAMES {
        let w = workloads::build(name, Size::Small).unwrap();
        for model in MODELS {
            let (s_ref, m_ref) = run_model(&w, LoopKind::Lockstep, model);
            let (s_ev, m_ev) = run_model(&w, LoopKind::EventDriven, model);
            assert_eq!(s_ref, s_ev, "{name}/{model}: Stats diverged across loops");
            assert_eq!(m_ref, m_ev, "{name}/{model}: memory diverged across loops");
        }
    }
}
