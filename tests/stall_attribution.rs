//! Machine-checked guarantees for the stall-attribution profiler
//! (`r2d2-trace` wired into `r2d2_sim::timing`):
//!
//! 1. **Conservation** — for every workload in the zoo under every machine
//!    model, `issued_sm_cycles + sum(stall_sm_cycles) == cycles * num_sms`:
//!    each SM-cycle is charged to exactly one category, none double-counted,
//!    none dropped.
//! 2. **Loop independence** — the event-driven loop's attribution (totals,
//!    per-SM, per-warp) is identical to the lockstep reference's, i.e. the
//!    idle-skip replay in `Profiler::idle_skip` reconstructs exactly the
//!    cycles the lockstep loop walks one by one.
//! 3. **Observer neutrality** — attaching the profiler does not change the
//!    simulation: `Stats` (minus the profile fields it fills in) and memory
//!    match an unobserved run.

use r2d2::baselines::{DacFilter, DarsieFilter, DarsieScalarFilter};
use r2d2::prelude::*;
use r2d2::sim::{LoopKind, Profiler, SimSession, Stats};
use r2d2::workloads::{self, Size};

const MODELS: [&str; 5] = ["baseline", "dac", "darsie", "darsie+s", "r2d2"];

fn make_filter(model: &str) -> Box<dyn IssueFilter> {
    match model {
        "baseline" | "r2d2" => Box::new(BaselineFilter),
        "dac" => Box::new(DacFilter::new()),
        "darsie" => Box::new(DarsieFilter::new()),
        "darsie+s" => Box::new(DarsieScalarFilter::new()),
        _ => unreachable!("unknown model {model}"),
    }
}

fn run_profiled(w: &workloads::Workload, kind: LoopKind, model: &str) -> (Stats, Profiler) {
    let cfg = GpuConfig::default().with_num_sms(4).with_loop_kind(kind);
    let mut filter = make_filter(model);
    let mut g = w.gmem.clone();
    let mut stats = Stats::default();
    let mut prof = Profiler::new(64);
    for l in &w.launches {
        if model == "r2d2" {
            let (launch, _) = r2d2::core::transform::make_launch(
                &cfg,
                &l.kernel,
                l.grid,
                l.block,
                l.params.clone(),
            );
            stats.merge_sequential(
                &SimSession::new(&cfg)
                    .filter(filter.as_mut())
                    .sink(&mut prof)
                    .run(&launch, &mut g)
                    .unwrap(),
            );
        } else {
            stats.merge_sequential(
                &SimSession::new(&cfg)
                    .filter(filter.as_mut())
                    .sink(&mut prof)
                    .run(l, &mut g)
                    .unwrap(),
            );
        }
    }
    (stats, prof)
}

#[test]
fn attribution_invariant_holds_across_zoo_models_and_loops() {
    for (name, _) in workloads::NAMES {
        let w = workloads::build(name, Size::Small).unwrap();
        for model in MODELS {
            let (s_ref, p_ref) = run_profiled(&w, LoopKind::Lockstep, model);
            let (s_ev, p_ev) = run_profiled(&w, LoopKind::EventDriven, model);

            for (loop_name, s, p) in [("lockstep", &s_ref, &p_ref), ("event", &s_ev, &p_ev)] {
                p.check_invariant()
                    .unwrap_or_else(|e| panic!("{name}/{model}/{loop_name}: {e}"));
                assert_eq!(
                    p.total_cycles(),
                    s.cycles,
                    "{name}/{model}/{loop_name}: profiler cycle count drifted from Stats"
                );
                assert_eq!(p.num_sms(), 4, "{name}/{model}/{loop_name}");
            }

            assert_eq!(
                p_ref.issued_sm_cycles(),
                p_ev.issued_sm_cycles(),
                "{name}/{model}: issued SM-cycles diverged across loops"
            );
            assert_eq!(
                p_ref.per_sm(),
                p_ev.per_sm(),
                "{name}/{model}: per-SM stall attribution diverged across loops"
            );
            assert_eq!(
                p_ref.per_warp(),
                p_ev.per_warp(),
                "{name}/{model}: per-warp stall attribution diverged across loops"
            );
        }
    }
}

#[test]
fn profiler_is_a_pure_observer() {
    for name in ["BP", "GEM", "BFS", "FFT"] {
        let w = workloads::build(name, Size::Small).unwrap();
        let cfg = GpuConfig::default().with_num_sms(4);

        let mut g_plain = w.gmem.clone();
        let mut plain = Stats::default();
        for l in &w.launches {
            plain.merge_sequential(&SimSession::new(&cfg).run(l, &mut g_plain).unwrap());
        }

        let (mut observed, prof) = run_profiled(&w, LoopKind::default(), "baseline");
        let (s_g, _) = {
            // Re-run for the memory image (run_profiled drops it).
            let mut g = w.gmem.clone();
            let mut f = make_filter("baseline");
            let mut p = Profiler::new(64);
            for l in &w.launches {
                SimSession::new(&cfg)
                    .filter(f.as_mut())
                    .sink(&mut p)
                    .run(l, &mut g)
                    .unwrap();
            }
            (g, p)
        };
        assert_eq!(
            g_plain.bytes(),
            s_g.bytes(),
            "{name}: profiling changed the memory image"
        );

        // The profiled Stats must equal the plain Stats once the fields only
        // the profiler fills are cleared.
        observed.absorb_profile(&prof);
        assert!(observed.attributed_sm_cycles() > 0, "{name}: empty profile");
        observed.issued_sm_cycles = 0;
        observed.stall_sm_cycles = Default::default();
        assert_eq!(plain, observed, "{name}: profiling perturbed Stats");
    }
}
