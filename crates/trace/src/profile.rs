//! The [`Profiler`] sink: per-SM/per-warp stall attribution plus
//! cycle-bucketed time series.
//!
//! Attribution charges every SM-cycle to exactly one category. Per cycle and
//! per SM, the rule is:
//!
//! 1. the SM issued or otherwise made forward progress → `issued`;
//! 2. else the **first blocked candidate** in scheduler order names the
//!    cause (and the warp charged in the per-warp table);
//! 3. else if any resident warp is parked at a barrier → `barrier`;
//! 4. else → `idle_skip` (drained or empty SM).
//!
//! When the event-driven loop fast-forwards `n` idle cycles it reports
//! [`EventSink::idle_skip`]; the profiler replays each SM's attribution from
//! the preceding (no-progress) cycle `n` more times. No SM state changes
//! while nothing issues, so this reproduces exactly what the lockstep loop
//! would have recorded cycle by cycle.
//!
//! Time series use fixed-width cycle buckets that **coalesce**: whenever the
//! run outgrows `2 * target_buckets`, the bucket width doubles and adjacent
//! pairs merge, so any run length ends with between `target` and
//! `2 * target` buckets without knowing the cycle count up front.

use crate::progress::Progress;
use crate::sink::{EventSink, MemLevel, StallCause};

/// Default bucket-count target for time series (`r2d2 profile --buckets N`).
pub const DEFAULT_TARGET_BUCKETS: usize = 256;

const INITIAL_BUCKET_WIDTH: u64 = 64;

/// Sentinel warp id for attributions with no specific warp (barrier / idle).
const NO_WARP: u32 = u32::MAX;

/// Aggregated counters for one span of `width` consecutive cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Cycles of this bucket's span actually covered by the run.
    pub cycles: u64,
    /// Warp instructions issued (all SMs).
    pub issued: u64,
    /// SM-cycles charged to each stall cause.
    pub stalls: [u64; StallCause::COUNT],
    /// Sum over covered cycles of resident warps (all SMs); divide by
    /// `cycles` for the average active-warp count.
    pub warp_cycles: u64,
    pub l1_hits: u64,
    pub l1_accesses: u64,
    pub l2_hits: u64,
    pub l2_accesses: u64,
    pub dram_txns: u64,
    pub shared_accesses: u64,
}

impl Bucket {
    fn absorb(&mut self, o: &Bucket) {
        self.cycles += o.cycles;
        self.issued += o.issued;
        for i in 0..StallCause::COUNT {
            self.stalls[i] += o.stalls[i];
        }
        self.warp_cycles += o.warp_cycles;
        self.l1_hits += o.l1_hits;
        self.l1_accesses += o.l1_accesses;
        self.l2_hits += o.l2_hits;
        self.l2_accesses += o.l2_accesses;
        self.dram_txns += o.dram_txns;
        self.shared_accesses += o.shared_accesses;
    }
}

/// An [`EventSink`] that accumulates stall attribution and time series.
///
/// One `Profiler` may span several kernel launches (a multi-launch workload):
/// [`EventSink::launch_done`] shifts the cycle base so buckets keep growing
/// monotonically and the invariant holds against the *summed* cycle count.
#[derive(Debug)]
pub struct Profiler {
    width: u64,
    target: usize,
    buckets: Vec<Bucket>,
    /// Cycle offset of the current launch (sum of previous launches' cycles).
    base: u64,
    /// Absolute cycle currently being attributed.
    cur: u64,
    /// Total elapsed cycles over all finished launches plus the current one.
    total_cycles: u64,
    // Per-SM scratch, grown on demand.
    first_stall: Vec<Option<(u32, StallCause)>>,
    last_attr: Vec<(u32, StallCause)>,
    resident: Vec<i64>,
    total_resident: i64,
    // Aggregates.
    issued_sm_cycles: u64,
    stall_sm: Vec<[u64; StallCause::COUNT]>,
    stall_warp: Vec<Vec<[u64; StallCause::COUNT]>>,
    /// Live time-series mirror for external observers (see
    /// [`Profiler::share_progress`]); republished at bucket boundaries.
    progress: Option<Progress>,
    /// Absolute cycle at which the next progress publish is due (the next
    /// bucket edge as of the last publish).
    next_publish: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new(DEFAULT_TARGET_BUCKETS)
    }
}

impl Profiler {
    /// A profiler whose time series ends with between `target_buckets` and
    /// `2 * target_buckets` buckets (minimum 1).
    pub fn new(target_buckets: usize) -> Self {
        Profiler {
            width: INITIAL_BUCKET_WIDTH,
            target: target_buckets.max(1),
            buckets: Vec::new(),
            base: 0,
            cur: 0,
            total_cycles: 0,
            first_stall: Vec::new(),
            last_attr: Vec::new(),
            resident: Vec::new(),
            total_resident: 0,
            issued_sm_cycles: 0,
            stall_sm: Vec::new(),
            stall_warp: Vec::new(),
            progress: None,
            next_publish: 0,
        }
    }

    /// Mirror the time series into `progress` so other threads can watch the
    /// run live. The mirror is republished whenever the run crosses a bucket
    /// edge (every `bucket_width` cycles, so a few thousand times per run at
    /// most) and once more on [`EventSink::launch_done`]; each publish
    /// replaces the whole series, because coalescing can rewrite history.
    /// Sharing does not perturb attribution or the bucket contents.
    pub fn share_progress(&mut self, progress: Progress) {
        self.progress = Some(progress);
        self.next_publish = 0;
    }

    /// Publish the current series to the shared mirror if `abs` reached the
    /// bucket edge recorded at the previous publish.
    fn maybe_publish(&mut self, abs: u64) {
        let Some(progress) = &self.progress else {
            return;
        };
        if abs < self.next_publish {
            return;
        }
        progress.publish(self.width, self.total_cycles, &self.buckets);
        self.next_publish = (abs / self.width + 1) * self.width;
    }

    fn grow_sm(&mut self, sm: usize) {
        if sm >= self.first_stall.len() {
            self.first_stall.resize(sm + 1, None);
            self.last_attr
                .resize(sm + 1, (NO_WARP, StallCause::IdleSkip));
            self.resident.resize(sm + 1, 0);
            self.stall_sm.resize(sm + 1, [0; StallCause::COUNT]);
            self.stall_warp.resize(sm + 1, Vec::new());
        }
    }

    /// Ensure the bucket containing absolute cycle `abs` exists, coalescing
    /// as needed; returns its index under the (possibly new) width.
    fn ensure_bucket(&mut self, abs: u64) -> usize {
        loop {
            let idx = (abs / self.width) as usize;
            if idx < 2 * self.target {
                if idx >= self.buckets.len() {
                    self.buckets.resize(idx + 1, Bucket::default());
                }
                return idx;
            }
            // Double the width and merge adjacent pairs.
            self.width *= 2;
            let merged: Vec<Bucket> = self
                .buckets
                .chunks(2)
                .map(|pair| {
                    let mut b = pair[0];
                    if let Some(second) = pair.get(1) {
                        b.absorb(second);
                    }
                    b
                })
                .collect();
            self.buckets = merged;
        }
    }

    /// Distribute `count` identical cycles starting at absolute cycle `from`
    /// across buckets: per cycle, one SM-cycle per cause per `counts[cause]`
    /// SMs, plus the resident-warp sample.
    fn add_span(&mut self, from: u64, count: u64, counts: &[u64; StallCause::COUNT]) {
        let warps = self.total_resident.max(0) as u64;
        let mut c = from;
        let end = from + count;
        while c < end {
            let idx = self.ensure_bucket(c);
            let next_edge = (c / self.width + 1) * self.width;
            let n = next_edge.min(end) - c;
            let b = &mut self.buckets[idx];
            b.cycles += n;
            b.warp_cycles += warps * n;
            for (k, &cnt) in counts.iter().enumerate() {
                b.stalls[k] += cnt * n;
            }
            c += n;
        }
    }

    /// Width (in cycles) of each time-series bucket.
    pub fn bucket_width(&self) -> u64 {
        self.width
    }

    /// The time-series buckets, in cycle order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// SM-cycles in which an SM issued (or made forward progress).
    pub fn issued_sm_cycles(&self) -> u64 {
        self.issued_sm_cycles
    }

    /// Stall SM-cycles per cause, summed over all SMs.
    pub fn stall_totals(&self) -> [u64; StallCause::COUNT] {
        let mut t = [0u64; StallCause::COUNT];
        for sm in &self.stall_sm {
            for i in 0..StallCause::COUNT {
                t[i] += sm[i];
            }
        }
        t
    }

    /// Per-SM stall SM-cycles per cause.
    pub fn per_sm(&self) -> &[[u64; StallCause::COUNT]] {
        &self.stall_sm
    }

    /// Per-SM, per-warp-slot stall SM-cycles per cause. Barrier/idle cycles
    /// have no responsible warp and appear only in [`Self::per_sm`].
    pub fn per_warp(&self) -> &[Vec<[u64; StallCause::COUNT]>] {
        &self.stall_warp
    }

    /// Number of SMs observed.
    pub fn num_sms(&self) -> usize {
        self.stall_sm.len()
    }

    /// Total elapsed cycles over all launches seen so far.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Checks `issued + sum(stalls) == cycles * num_sms`; returns
    /// `Err(message)` on violation. Call after the run completes.
    pub fn check_invariant(&self) -> Result<(), String> {
        let attributed: u64 = self.issued_sm_cycles + self.stall_totals().iter().sum::<u64>();
        let expected = self.total_cycles * self.num_sms() as u64;
        if attributed == expected {
            Ok(())
        } else {
            Err(format!(
                "stall attribution invariant violated: issued {} + stalls {} = {} != cycles {} * sms {} = {}",
                self.issued_sm_cycles,
                self.stall_totals().iter().sum::<u64>(),
                attributed,
                self.total_cycles,
                self.num_sms(),
                expected
            ))
        }
    }
}

impl EventSink for Profiler {
    const ENABLED: bool = true;

    fn cycle_start(&mut self, now: u64) {
        let abs = self.base + now;
        self.cur = abs;
        self.total_cycles = abs;
        let warps = self.total_resident.max(0) as u64;
        let idx = self.ensure_bucket(abs);
        let b = &mut self.buckets[idx];
        b.cycles += 1;
        b.warp_cycles += warps;
        self.maybe_publish(abs);
    }

    fn issue(&mut self, sm: u32, _warp: u32) {
        self.grow_sm(sm as usize);
        let idx = self.ensure_bucket(self.cur);
        self.buckets[idx].issued += 1;
    }

    fn stall(&mut self, sm: u32, warp: u32, cause: StallCause) {
        let sm = sm as usize;
        self.grow_sm(sm);
        if self.first_stall[sm].is_none() {
            self.first_stall[sm] = Some((warp, cause));
        }
    }

    fn mem_access(&mut self, level: MemLevel, hit: bool) {
        let idx = self.ensure_bucket(self.cur);
        let b = &mut self.buckets[idx];
        match level {
            MemLevel::L1 => {
                b.l1_accesses += 1;
                if hit {
                    b.l1_hits += 1;
                }
            }
            MemLevel::L2 => {
                b.l2_accesses += 1;
                if hit {
                    b.l2_hits += 1;
                }
            }
            MemLevel::Dram => b.dram_txns += 1,
            MemLevel::Shared => b.shared_accesses += 1,
        }
    }

    fn warp_delta(&mut self, sm: u32, delta: i32) {
        self.grow_sm(sm as usize);
        self.resident[sm as usize] += i64::from(delta);
        self.total_resident += i64::from(delta);
    }

    fn sm_cycle_end(&mut self, sm: u32, progressed: bool, any_barrier: bool) {
        let smi = sm as usize;
        self.grow_sm(smi);
        let first = self.first_stall[smi].take();
        if progressed {
            self.issued_sm_cycles += 1;
            return;
        }
        let (warp, cause) = first.unwrap_or((
            NO_WARP,
            if any_barrier {
                StallCause::Barrier
            } else {
                StallCause::IdleSkip
            },
        ));
        self.last_attr[smi] = (warp, cause);
        self.stall_sm[smi][cause.idx()] += 1;
        let idx = self.ensure_bucket(self.cur);
        self.buckets[idx].stalls[cause.idx()] += 1;
        if warp != NO_WARP {
            let table = &mut self.stall_warp[smi];
            let w = warp as usize;
            if w >= table.len() {
                table.resize(w + 1, [0; StallCause::COUNT]);
            }
            table[w][cause.idx()] += 1;
        }
    }

    fn idle_skip(&mut self, skipped: u64) {
        if skipped == 0 {
            return;
        }
        // Replay each SM's attribution from the just-ended (no-progress)
        // cycle for every skipped cycle.
        let mut counts = [0u64; StallCause::COUNT];
        for smi in 0..self.stall_sm.len() {
            let (warp, cause) = self.last_attr[smi];
            counts[cause.idx()] += 1;
            self.stall_sm[smi][cause.idx()] += skipped;
            if warp != NO_WARP {
                let table = &mut self.stall_warp[smi];
                let w = warp as usize;
                if w >= table.len() {
                    table.resize(w + 1, [0; StallCause::COUNT]);
                }
                table[w][cause.idx()] += skipped;
            }
        }
        self.add_span(self.cur + 1, skipped, &counts);
        self.cur += skipped;
        self.total_cycles = self.cur;
        self.maybe_publish(self.cur);
    }

    fn launch_done(&mut self, cycles: u64) {
        self.base += cycles;
        self.total_cycles = self.base;
        self.cur = self.base;
        if let Some(progress) = &self.progress {
            progress.publish(self.width, self.total_cycles, &self.buckets);
            self.next_publish = (self.cur / self.width + 1) * self.width;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a synthetic 2-SM trace: SM0 issues every cycle, SM1 stalls on
    /// DRAM via warp 3.
    fn drive(p: &mut Profiler, cycles: u64) {
        p.warp_delta(0, 8);
        p.warp_delta(1, 4);
        for now in 1..=cycles {
            p.cycle_start(now);
            p.issue(0, 0);
            p.sm_cycle_end(0, true, false);
            p.stall(1, 3, StallCause::Dram);
            p.stall(1, 2, StallCause::Scoreboard); // ignored: not first
            p.sm_cycle_end(1, false, false);
        }
        p.launch_done(cycles);
    }

    #[test]
    fn attribution_and_invariant() {
        let mut p = Profiler::new(8);
        drive(&mut p, 100);
        assert_eq!(p.issued_sm_cycles(), 100);
        assert_eq!(p.stall_totals()[StallCause::Dram.idx()], 100);
        assert_eq!(p.total_cycles(), 100);
        assert_eq!(p.num_sms(), 2);
        p.check_invariant().unwrap();
        // First stall wins: warp 3, not warp 2.
        assert_eq!(p.per_warp()[1][3][StallCause::Dram.idx()], 100);
        assert_eq!(
            p.per_warp()[1]
                .get(2)
                .map_or(0, |w| w[StallCause::Scoreboard.idx()]),
            0
        );
    }

    #[test]
    fn idle_skip_replays_last_attribution() {
        let mut p = Profiler::new(8);
        p.cycle_start(1);
        p.stall(0, 1, StallCause::LsuMshr);
        p.sm_cycle_end(0, false, false);
        p.stall(1, 0, StallCause::Dram);
        p.sm_cycle_end(1, false, false);
        p.idle_skip(9);
        p.launch_done(10);
        assert_eq!(p.total_cycles(), 10);
        assert_eq!(p.stall_totals()[StallCause::LsuMshr.idx()], 10);
        assert_eq!(p.stall_totals()[StallCause::Dram.idx()], 10);
        p.check_invariant().unwrap();
        assert_eq!(p.per_warp()[0][1][StallCause::LsuMshr.idx()], 10);
    }

    #[test]
    fn barrier_and_idle_fallbacks() {
        let mut p = Profiler::new(8);
        p.cycle_start(1);
        p.sm_cycle_end(0, false, true); // barrier, no stalled candidate
        p.sm_cycle_end(1, false, false); // fully idle
        p.launch_done(1);
        assert_eq!(p.stall_totals()[StallCause::Barrier.idx()], 1);
        assert_eq!(p.stall_totals()[StallCause::IdleSkip.idx()], 1);
        p.check_invariant().unwrap();
    }

    #[test]
    fn buckets_coalesce_toward_target() {
        let mut p = Profiler::new(4);
        drive(&mut p, 10_000);
        let n = p.buckets().len();
        assert!((4..=8).contains(&n), "got {n} buckets");
        let covered: u64 = p.buckets().iter().map(|b| b.cycles).sum();
        assert_eq!(covered, 10_000);
        let issued: u64 = p.buckets().iter().map(|b| b.issued).sum();
        assert_eq!(issued, 10_000);
        // Resident warps: 12 across both SMs, sampled every cycle.
        let wc: u64 = p.buckets().iter().map(|b| b.warp_cycles).sum();
        assert_eq!(wc, 12 * 10_000);
    }

    #[test]
    fn shared_progress_mirrors_final_series() {
        let mut plain = Profiler::new(8);
        drive(&mut plain, 10_000);

        let mut p = Profiler::new(8);
        let progress = crate::Progress::new();
        p.share_progress(progress.clone());
        drive(&mut p, 10_000);
        let snap = progress.snapshot();
        assert!(snap.seq > 1, "expected intermediate publishes");
        assert_eq!(snap.bucket_width, p.bucket_width());
        assert_eq!(snap.total_cycles, p.total_cycles());
        assert_eq!(snap.buckets, p.buckets());
        assert!(!snap.finished, "finish() is the owner's call, not ours");
        // Sharing must not perturb the series itself.
        assert_eq!(p.buckets(), plain.buckets());
        assert_eq!(p.bucket_width(), plain.bucket_width());
        p.check_invariant().unwrap();
    }

    #[test]
    fn multi_launch_accumulates() {
        let mut p = Profiler::new(8);
        drive(&mut p, 50);
        drive(&mut p, 70);
        assert_eq!(p.total_cycles(), 120);
        assert_eq!(p.issued_sm_cycles(), 120);
        p.check_invariant().unwrap();
    }
}
