//! The event-sink trait the timing loops are generic over, the stall
//! taxonomy, and the no-op sink.

/// Why an SM failed to issue any instruction on a given cycle.
///
/// Exactly one cause is charged per SM per non-issuing cycle; the precedence
/// is: first blocked candidate in scheduler order (its cause), else `Barrier`
/// if any resident warp is parked at a barrier, else `IdleSkip`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum StallCause {
    /// Waiting on an ALU-produced register or predicate (classic RAW hazard).
    Scoreboard = 0,
    /// Waiting on an R2D2 operand class (CR/TR/BR/LR) or a phase gate —
    /// contention in the operand-collector/address-generation front end.
    OperandCollector = 1,
    /// Waiting on an in-flight load served by L1, L2, or shared memory.
    LsuMshr = 2,
    /// Waiting on an in-flight load that missed to DRAM.
    Dram = 3,
    /// No issuable warp and at least one warp parked at `bar.sync`.
    Barrier = 4,
    /// SM drained or empty; the event-driven loop fast-forwards these.
    IdleSkip = 5,
}

impl StallCause {
    /// Number of categories (array dimension for per-cause counters).
    pub const COUNT: usize = 6;

    /// All causes in index order.
    pub const ALL: [StallCause; Self::COUNT] = [
        StallCause::Scoreboard,
        StallCause::OperandCollector,
        StallCause::LsuMshr,
        StallCause::Dram,
        StallCause::Barrier,
        StallCause::IdleSkip,
    ];

    /// Stable snake_case name used in CSV headers and trace JSON.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::Scoreboard => "scoreboard",
            StallCause::OperandCollector => "operand_collector",
            StallCause::LsuMshr => "lsu_mshr",
            StallCause::Dram => "dram",
            StallCause::Barrier => "barrier",
            StallCause::IdleSkip => "idle_skip",
        }
    }

    /// Index into `[u64; Self::COUNT]` counter arrays.
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// Which level of the memory hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    L1,
    L2,
    Dram,
    Shared,
}

/// Sink for timing-loop events.
///
/// The timing loops call these hooks at issue/stall/commit decision points,
/// always guarded by `if S::ENABLED`. Implementations must be cheap: hooks
/// run inside the innermost scheduler loop. All default bodies are empty so
/// a sink only overrides what it consumes.
///
/// Cycle protocol (identical for both loop kinds):
/// 1. `cycle_start(now)` once per simulated cycle.
/// 2. During the per-SM passes: any number of `issue` / `stall` /
///    `mem_access` / `warp_delta` events.
/// 3. `sm_cycle_end(sm, progressed, any_barrier)` once per SM per cycle,
///    in ascending SM order.
/// 4. After a cycle where no SM progressed, the event-driven loop may call
///    `idle_skip(n)`: the next `n` cycles are not simulated and each SM's
///    attribution from the just-ended cycle repeats verbatim (no SM state
///    can change while nothing issues, so the replay is exact — this is
///    what keeps event-driven and lockstep attribution bit-identical).
/// 5. `launch_done(cycles)` once per kernel launch.
///
/// Under the sharded loop (`threads > 1`) the per-cycle ordering between
/// *different* SMs in step 2 is relaxed: each shard's events are buffered and
/// replayed at the epoch boundary in shard order, so events of two SMs owned
/// by different shards may interleave differently than in a single-threaded
/// run. Per-SM event order, the per-cycle envelope (`cycle_start` …
/// `sm_cycle_end` per SM), and the first-stall-per-SM rule are all preserved,
/// which is what every shipped sink depends on — attribution and traces stay
/// bit-identical.
pub trait EventSink {
    /// `false` compiles all instrumentation out of the timing loops.
    const ENABLED: bool;

    /// A new simulated cycle `now` begins (1-based, per launch).
    fn cycle_start(&mut self, _now: u64) {}
    /// SM `sm` issued one warp instruction from warp slot `warp`.
    fn issue(&mut self, _sm: u32, _warp: u32) {}
    /// Warp slot `warp` on SM `sm` was a candidate but could not issue.
    /// Only the first stall per SM per cycle matters for attribution.
    fn stall(&mut self, _sm: u32, _warp: u32, _cause: StallCause) {}
    /// One access was served at `level`; `hit` is false for misses
    /// (always true for `Dram`/`Shared`, which are endpoints).
    fn mem_access(&mut self, _level: MemLevel, _hit: bool) {}
    /// Resident-warp count on SM `sm` changed by `delta` (block dispatch
    /// or completion).
    fn warp_delta(&mut self, _sm: u32, _delta: i32) {}
    /// SM `sm` finished its pass for the current cycle.
    fn sm_cycle_end(&mut self, _sm: u32, _progressed: bool, _any_barrier: bool) {}
    /// The event-driven loop skips `skipped` fully idle cycles.
    fn idle_skip(&mut self, _skipped: u64) {}
    /// The launch finished after `cycles` elapsed cycles.
    fn launch_done(&mut self, _cycles: u64) {}
    /// Index the next [`EventSink::stall`] event will occupy in a buffering
    /// sink. The sharded timing loop records it so a provisionally-attributed
    /// stall can be patched once deferred memory latencies resolve at the
    /// epoch drain; non-buffering sinks just return 0.
    fn stall_index(&self) -> usize {
        0
    }
}

/// The do-nothing sink used by an unobserved `SimSession` run.
///
/// With `ENABLED = false` every `if S::ENABLED { sink.hook(..) }` guard is a
/// constant-false branch, so the optimizer removes both the branch and the
/// hook body: tracing costs nothing unless you opt in.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    const ENABLED: bool = false;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_match_all_order() {
        for (i, c) in StallCause::ALL.iter().enumerate() {
            assert_eq!(c.idx(), i);
        }
        assert_eq!(StallCause::ALL.len(), StallCause::COUNT);
    }

    #[test]
    fn names_are_unique_snake_case() {
        let names: Vec<_> = StallCause::ALL.iter().map(|c| c.name()).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(n.chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'));
            assert!(!names[..i].contains(n), "duplicate name {n}");
        }
    }

    #[test]
    fn null_sink_accepts_all_events() {
        let mut s = NullSink;
        s.cycle_start(1);
        s.issue(0, 0);
        s.stall(0, 0, StallCause::Dram);
        s.mem_access(MemLevel::L1, true);
        s.warp_delta(0, 4);
        s.sm_cycle_end(0, true, false);
        s.idle_skip(100);
        s.launch_done(42);
        const { assert!(!NullSink::ENABLED) }
    }
}
