//! Shared live view of a [`Profiler`]'s time series.
//!
//! A [`Progress`] handle is a cheap clone (an `Arc<Mutex<_>>`) attached to a
//! profiler via [`Profiler::share_progress`]. The profiler republishes its
//! bucket series at bucket-close granularity — at least
//! [`crate::profile::DEFAULT_TARGET_BUCKETS`]-width cycles apart, so the lock
//! is touched a few thousand times per run, never per event — and any other
//! thread can [`Progress::snapshot`] the latest state without stopping the
//! simulation. `r2d2-serve` streams these snapshots to `GET
//! /jobs/<id>/progress` clients as NDJSON chunks.
//!
//! Publishing is a *replacement*, not an append: the profiler's buckets
//! coalesce (the width doubles and adjacent pairs merge) whenever a run
//! outgrows its target bucket count, so consumers must treat every snapshot
//! as the whole series. The `seq` counter increments on every publish, which
//! lets a poller skip unchanged states.
//!
//! [`Profiler`]: crate::Profiler
//! [`Profiler::share_progress`]: crate::Profiler::share_progress

use std::sync::{Arc, Mutex};

use crate::json::{self, Value};
use crate::profile::Bucket;
use crate::sink::StallCause;

/// One published state of a profiler's time series.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Publish counter; strictly increases with every change.
    pub seq: u64,
    /// Width (in cycles) of each bucket at publish time.
    pub bucket_width: u64,
    /// Total elapsed cycles at publish time.
    pub total_cycles: u64,
    /// Whether the run owning the profiler has finished (either way).
    pub finished: bool,
    /// The complete bucket series, in cycle order.
    pub buckets: Vec<Bucket>,
}

impl ProgressSnapshot {
    /// Encode as a JSON object (the NDJSON chunk body of the progress
    /// stream).
    pub fn to_json(&self) -> Value {
        let buckets = self.buckets.iter().map(bucket_to_json).collect();
        json::obj(vec![
            ("seq", json::int(self.seq)),
            ("bucket_width", json::int(self.bucket_width)),
            ("total_cycles", json::int(self.total_cycles)),
            ("finished", Value::Bool(self.finished)),
            ("buckets", Value::Arr(buckets)),
        ])
    }

    /// Decode a snapshot produced by [`ProgressSnapshot::to_json`].
    pub fn from_json(v: &Value) -> Option<ProgressSnapshot> {
        let buckets = v
            .get("buckets")?
            .as_arr()?
            .iter()
            .map(bucket_from_json)
            .collect::<Option<Vec<Bucket>>>()?;
        Some(ProgressSnapshot {
            seq: v.get("seq")?.as_u64()?,
            bucket_width: v.get("bucket_width")?.as_u64()?,
            total_cycles: v.get("total_cycles")?.as_u64()?,
            finished: v.get("finished")?.as_bool()?,
            buckets,
        })
    }
}

fn bucket_to_json(b: &Bucket) -> Value {
    let stalls = b.stalls.iter().map(|&s| json::int(s)).collect();
    json::obj(vec![
        ("cycles", json::int(b.cycles)),
        ("issued", json::int(b.issued)),
        ("stalls", Value::Arr(stalls)),
        ("warp_cycles", json::int(b.warp_cycles)),
        ("l1_hits", json::int(b.l1_hits)),
        ("l1_accesses", json::int(b.l1_accesses)),
        ("l2_hits", json::int(b.l2_hits)),
        ("l2_accesses", json::int(b.l2_accesses)),
        ("dram_txns", json::int(b.dram_txns)),
        ("shared_accesses", json::int(b.shared_accesses)),
    ])
}

fn bucket_from_json(v: &Value) -> Option<Bucket> {
    let raw = v.get("stalls")?.as_arr()?;
    if raw.len() != StallCause::COUNT {
        return None;
    }
    let mut stalls = [0u64; StallCause::COUNT];
    for (slot, s) in stalls.iter_mut().zip(raw) {
        *slot = s.as_u64()?;
    }
    Some(Bucket {
        cycles: v.get("cycles")?.as_u64()?,
        issued: v.get("issued")?.as_u64()?,
        stalls,
        warp_cycles: v.get("warp_cycles")?.as_u64()?,
        l1_hits: v.get("l1_hits")?.as_u64()?,
        l1_accesses: v.get("l1_accesses")?.as_u64()?,
        l2_hits: v.get("l2_hits")?.as_u64()?,
        l2_accesses: v.get("l2_accesses")?.as_u64()?,
        dram_txns: v.get("dram_txns")?.as_u64()?,
        shared_accesses: v.get("shared_accesses")?.as_u64()?,
    })
}

/// Cloneable handle onto a live (or finished) profiler time series.
///
/// See the [module docs](self) for the publish cadence and the replacement
/// (not append) semantics.
#[derive(Debug, Clone, Default)]
pub struct Progress {
    inner: Arc<Mutex<ProgressSnapshot>>,
}

impl Progress {
    /// An empty, unfinished progress state.
    pub fn new() -> Progress {
        Progress::default()
    }

    /// Clone the latest published state.
    pub fn snapshot(&self) -> ProgressSnapshot {
        self.inner.lock().unwrap().clone()
    }

    /// Mark the owning run as finished (success, failure, or cancellation).
    /// Idempotent; bumps `seq` on the first call so pollers wake up.
    pub fn finish(&self) {
        let mut s = self.inner.lock().unwrap();
        if !s.finished {
            s.finished = true;
            s.seq += 1;
        }
    }

    /// Replace the published series. Called by the profiler at bucket
    /// boundaries; `finished` is preserved (a post-finish publish — the
    /// profiler's final flush racing a cancellation — must not resurrect the
    /// stream).
    pub(crate) fn publish(&self, bucket_width: u64, total_cycles: u64, buckets: &[Bucket]) {
        let mut s = self.inner.lock().unwrap();
        s.bucket_width = bucket_width;
        s.total_cycles = total_cycles;
        s.buckets.clear();
        s.buckets.extend_from_slice(buckets);
        s.seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_roundtrip() {
        let mut b = Bucket {
            cycles: 64,
            issued: 41,
            warp_cycles: 512,
            l1_hits: 3,
            l1_accesses: 9,
            l2_hits: 2,
            l2_accesses: 6,
            dram_txns: 4,
            shared_accesses: 1,
            ..Bucket::default()
        };
        b.stalls[StallCause::Dram.idx()] = 23;
        let snap = ProgressSnapshot {
            seq: 7,
            bucket_width: 64,
            total_cycles: 100,
            finished: true,
            buckets: vec![b, Bucket::default()],
        };
        let text = snap.to_json().to_json();
        let back = ProgressSnapshot::from_json(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn finish_is_idempotent_and_bumps_seq_once() {
        let p = Progress::new();
        assert!(!p.snapshot().finished);
        p.finish();
        p.finish();
        let s = p.snapshot();
        assert!(s.finished);
        assert_eq!(s.seq, 1);
    }

    #[test]
    fn publish_replaces_and_preserves_finished() {
        let p = Progress::new();
        p.publish(64, 10, &[Bucket::default()]);
        p.finish();
        p.publish(128, 20, &[Bucket::default(), Bucket::default()]);
        let s = p.snapshot();
        assert_eq!(s.bucket_width, 128);
        assert_eq!(s.buckets.len(), 2);
        assert!(s.finished, "publish must not clear finished");
        assert_eq!(s.seq, 3);
    }
}
