//! Observability layer for the R2D2 simulator.
//!
//! The timing model in `r2d2-sim` is generic over an [`EventSink`]; this crate
//! defines the sink trait, the no-op [`NullSink`] used on every ordinary run,
//! and the [`Profiler`] sink that turns the event stream into
//! per-SM/per-warp stall attribution and cycle-bucketed time series, plus
//! exporters to Chrome `trace_event` JSON and compact CSV.
//!
//! # Stall taxonomy
//!
//! Every SM-cycle (one SM observed for one elapsed cycle) is attributed to
//! exactly one of `issued` or the six [`StallCause`] categories:
//!
//! | cause               | meaning                                                        |
//! |---------------------|----------------------------------------------------------------|
//! | `scoreboard`        | oldest blocked warp waits on an ALU-produced register/predicate |
//! | `operand_collector` | blocked on an R2D2 operand class (CR/TR/BR/LR) or a phase gate  |
//! | `lsu_mshr`          | blocked on an in-flight load served by L1/L2/shared memory      |
//! | `dram`              | blocked on an in-flight load that went to DRAM                  |
//! | `barrier`           | no issuable warp, at least one warp parked at `bar.sync`        |
//! | `idle_skip`         | SM drained/empty (the event loop fast-forwards these cycles)    |
//!
//! This yields the machine-checked invariant
//! `issued_sm_cycles + sum(stall_sm_cycles) == cycles * num_sms`,
//! verified across the whole workload zoo by `tests/stall_invariants.rs`.
//!
//! # Zero cost when disabled
//!
//! [`EventSink`] carries an associated `const ENABLED: bool`; every
//! instrumentation site in the timing loops is wrapped in
//! `if S::ENABLED { ... }`. For [`NullSink`] (`ENABLED = false`) the branch is
//! a compile-time constant, so monomorphization deletes the instrumentation —
//! an unobserved `SimSession` run compiles to the same hot loop as before
//! this crate existed. The smoke micro bench plus the CI bench-regression
//! gate (`scripts/check_bench_baseline.py`) keep that claim honest.

pub mod chrome;
pub mod json;
pub mod profile;
pub mod progress;
pub mod shard;
pub mod sink;

pub use profile::{Bucket, Profiler, DEFAULT_TARGET_BUCKETS};
pub use progress::{Progress, ProgressSnapshot};
pub use shard::{BufferedEvent, ShardBuffer, ShardSink};
pub use sink::{EventSink, MemLevel, NullSink, StallCause};
