//! Per-shard event buffering for the sharded timing loop.
//!
//! With `threads > 1` each shard simulates its SMs privately for one epoch
//! and cannot talk to the user's [`EventSink`] directly (the sink is neither
//! shared nor thread-safe by contract). Instead every shard records its
//! events into a [`ShardBuffer`]; at the epoch boundary the coordinator
//! replays the buffers into the real sink in shard order, preserving per-SM
//! event order and the per-cycle envelope documented on [`EventSink`].

use crate::sink::{EventSink, MemLevel, NullSink, StallCause};

/// One buffered [`EventSink`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferedEvent {
    /// [`EventSink::issue`].
    Issue(u32, u32),
    /// [`EventSink::stall`].
    Stall(u32, u32, StallCause),
    /// [`EventSink::mem_access`].
    MemAccess(MemLevel, bool),
    /// [`EventSink::warp_delta`].
    WarpDelta(u32, i32),
    /// [`EventSink::sm_cycle_end`].
    SmCycleEnd(u32, bool, bool),
}

/// An [`EventSink`] that records events for deferred replay.
///
/// Only the intra-cycle events are buffered; the cycle envelope
/// (`cycle_start`, `idle_skip`, `launch_done`) is emitted by the sharded
/// loop's coordinator directly on the downstream sink.
#[derive(Debug, Default)]
pub struct ShardBuffer {
    events: Vec<BufferedEvent>,
}

impl ShardBuffer {
    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventSink for ShardBuffer {
    const ENABLED: bool = true;

    fn issue(&mut self, sm: u32, warp: u32) {
        self.events.push(BufferedEvent::Issue(sm, warp));
    }
    fn stall(&mut self, sm: u32, warp: u32, cause: StallCause) {
        self.events.push(BufferedEvent::Stall(sm, warp, cause));
    }
    fn mem_access(&mut self, level: MemLevel, hit: bool) {
        self.events.push(BufferedEvent::MemAccess(level, hit));
    }
    fn warp_delta(&mut self, sm: u32, delta: i32) {
        self.events.push(BufferedEvent::WarpDelta(sm, delta));
    }
    fn sm_cycle_end(&mut self, sm: u32, progressed: bool, any_barrier: bool) {
        self.events
            .push(BufferedEvent::SmCycleEnd(sm, progressed, any_barrier));
    }
    fn stall_index(&self) -> usize {
        self.events.len()
    }
}

/// The buffering interface the sharded loop needs from its per-shard sinks:
/// replay into the downstream sink and patch provisional stall causes.
///
/// Implemented by [`ShardBuffer`] (real buffering, sink-enabled runs) and by
/// [`NullSink`] (no-ops, plain runs) so the sharded loop can stay generic.
pub trait ShardSink: EventSink + Default + Send {
    /// Replay all buffered events into `sink`, in recording order.
    fn replay_into<S: EventSink>(&self, sink: &mut S);
    /// Drop all buffered events.
    fn clear(&mut self);
    /// Replace the cause of the buffered stall event at `idx` (as returned
    /// by [`EventSink::stall_index`] when it was recorded).
    fn patch_stall(&mut self, idx: usize, cause: StallCause);
}

impl ShardSink for ShardBuffer {
    fn replay_into<S: EventSink>(&self, sink: &mut S) {
        for ev in &self.events {
            match *ev {
                BufferedEvent::Issue(sm, w) => sink.issue(sm, w),
                BufferedEvent::Stall(sm, w, c) => sink.stall(sm, w, c),
                BufferedEvent::MemAccess(l, h) => sink.mem_access(l, h),
                BufferedEvent::WarpDelta(sm, d) => sink.warp_delta(sm, d),
                BufferedEvent::SmCycleEnd(sm, p, b) => sink.sm_cycle_end(sm, p, b),
            }
        }
    }

    fn clear(&mut self) {
        self.events.clear();
    }

    fn patch_stall(&mut self, idx: usize, cause: StallCause) {
        match self.events.get_mut(idx) {
            Some(BufferedEvent::Stall(_, _, c)) => *c = cause,
            other => debug_assert!(false, "patch_stall target is {other:?}, not a stall"),
        }
    }
}

impl ShardSink for NullSink {
    fn replay_into<S: EventSink>(&self, _sink: &mut S) {}
    fn clear(&mut self) {}
    fn patch_stall(&mut self, _idx: usize, _cause: StallCause) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal recording sink to observe replay order.
    #[derive(Default)]
    struct Rec(Vec<BufferedEvent>);

    impl EventSink for Rec {
        const ENABLED: bool = true;
        fn issue(&mut self, sm: u32, warp: u32) {
            self.0.push(BufferedEvent::Issue(sm, warp));
        }
        fn stall(&mut self, sm: u32, warp: u32, cause: StallCause) {
            self.0.push(BufferedEvent::Stall(sm, warp, cause));
        }
        fn mem_access(&mut self, level: MemLevel, hit: bool) {
            self.0.push(BufferedEvent::MemAccess(level, hit));
        }
        fn warp_delta(&mut self, sm: u32, delta: i32) {
            self.0.push(BufferedEvent::WarpDelta(sm, delta));
        }
        fn sm_cycle_end(&mut self, sm: u32, progressed: bool, any_barrier: bool) {
            self.0
                .push(BufferedEvent::SmCycleEnd(sm, progressed, any_barrier));
        }
    }

    #[test]
    fn replay_preserves_order_and_patch_rewrites_cause() {
        let mut buf = ShardBuffer::default();
        buf.issue(0, 3);
        let idx = buf.stall_index();
        buf.stall(1, 2, StallCause::Scoreboard);
        buf.mem_access(MemLevel::L1, false);
        buf.sm_cycle_end(0, true, false);
        buf.patch_stall(idx, StallCause::Dram);

        let mut rec = Rec::default();
        buf.replay_into(&mut rec);
        assert_eq!(
            rec.0,
            vec![
                BufferedEvent::Issue(0, 3),
                BufferedEvent::Stall(1, 2, StallCause::Dram),
                BufferedEvent::MemAccess(MemLevel::L1, false),
                BufferedEvent::SmCycleEnd(0, true, false),
            ]
        );

        buf.clear();
        assert!(buf.is_empty());
    }
}
