//! Exporters: Chrome `trace_event` JSON (open in `chrome://tracing` or
//! Perfetto) and compact CSV, both built on the in-repo [`crate::json`]
//! layer — no external dependencies.
//!
//! Trace layout: pid 0 carries the cycle-bucketed counter tracks (IPC,
//! active warps, cache hit rates, stall breakdown), one counter sample per
//! bucket with `ts` = the bucket's first cycle (1 simulated cycle = 1 µs of
//! trace time). pid 1 carries one complete (`ph:"X"`) slice per SM whose
//! args hold that SM's whole-run stall totals, so sorting by duration in the
//! viewer ranks SMs by stall burden.

use crate::json::Value;
use crate::profile::Profiler;
use crate::sink::StallCause;
use std::fmt::Write as _;

fn ev(name: &str, ph: &str, pid: i64, tid: i64, ts: u64) -> Vec<(String, Value)> {
    vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str(ph.into())),
        ("pid".into(), Value::Int(i128::from(pid))),
        ("tid".into(), Value::Int(i128::from(tid))),
        ("ts".into(), Value::Int(i128::from(ts))),
    ]
}

fn with_args(mut e: Vec<(String, Value)>, args: Vec<(String, Value)>) -> Value {
    e.push(("args".into(), Value::Obj(args)));
    Value::Obj(e)
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Render the profiler's contents as a Chrome `trace_event` JSON document.
pub fn chrome_trace(p: &Profiler) -> Value {
    let mut events: Vec<Value> = Vec::new();

    // Metadata: name the two synthetic processes.
    for (pid, pname) in [(0i64, "time series"), (1i64, "per-SM stalls")] {
        let meta = ev("process_name", "M", pid, 0, 0);
        events.push(with_args(
            meta,
            vec![("name".into(), Value::Str(pname.into()))],
        ));
    }

    // Counter tracks, one sample per bucket.
    let mut start = 0u64;
    for b in p.buckets() {
        if b.cycles > 0 {
            events.push(with_args(
                ev("ipc", "C", 0, 0, start),
                vec![("ipc".into(), Value::Float(ratio(b.issued, b.cycles)))],
            ));
            events.push(with_args(
                ev("active_warps", "C", 0, 0, start),
                vec![("warps".into(), Value::Float(ratio(b.warp_cycles, b.cycles)))],
            ));
            events.push(with_args(
                ev("cache_hit_rate", "C", 0, 0, start),
                vec![
                    ("l1".into(), Value::Float(ratio(b.l1_hits, b.l1_accesses))),
                    ("l2".into(), Value::Float(ratio(b.l2_hits, b.l2_accesses))),
                ],
            ));
            let mut args: Vec<(String, Value)> = StallCause::ALL
                .iter()
                .map(|c| {
                    (
                        c.name().to_string(),
                        Value::Int(i128::from(b.stalls[c.idx()])),
                    )
                })
                .collect();
            args.push(("issued".into(), Value::Int(i128::from(b.issued))));
            events.push(with_args(ev("stall_cycles", "C", 0, 0, start), args));
        }
        start += p.bucket_width();
    }

    // One slice per SM with whole-run totals.
    let total = p.total_cycles();
    for (sm, stalls) in p.per_sm().iter().enumerate() {
        let stall_sum: u64 = stalls.iter().sum();
        let mut args: Vec<(String, Value)> = StallCause::ALL
            .iter()
            .map(|c| {
                (
                    c.name().to_string(),
                    Value::Int(i128::from(stalls[c.idx()])),
                )
            })
            .collect();
        args.push((
            "issued".into(),
            Value::Int(i128::from(total.saturating_sub(stall_sum))),
        ));
        let mut e = ev(&format!("SM{sm} stalls"), "X", 1, sm as i64, 0);
        e.push(("dur".into(), Value::Int(i128::from(total))));
        events.push(with_args(e, args));
    }

    Value::Obj(vec![
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        (
            "otherData".into(),
            Value::Obj(vec![
                ("tool".into(), Value::Str("r2d2 profile".into())),
                (
                    "bucket_width_cycles".into(),
                    Value::Int(i128::from(p.bucket_width())),
                ),
                (
                    "total_cycles".into(),
                    Value::Int(i128::from(p.total_cycles())),
                ),
                ("num_sms".into(), Value::Int(p.num_sms() as i128)),
            ]),
        ),
        ("traceEvents".into(), Value::Arr(events)),
    ])
}

/// Header of [`buckets_csv`].
pub fn buckets_csv_header() -> String {
    let mut h = String::from(
        "start_cycle,cycles,issued,ipc,avg_active_warps,\
         l1_hits,l1_accesses,l2_hits,l2_accesses,dram_txns,shared_accesses",
    );
    for c in StallCause::ALL {
        let _ = write!(h, ",stall_{}", c.name());
    }
    h
}

/// The time series as CSV, one row per bucket.
pub fn buckets_csv(p: &Profiler) -> String {
    let mut out = buckets_csv_header();
    out.push('\n');
    let mut start = 0u64;
    for b in p.buckets() {
        if b.cycles > 0 {
            let _ = write!(
                out,
                "{},{},{},{:.4},{:.2},{},{},{},{},{},{}",
                start,
                b.cycles,
                b.issued,
                ratio(b.issued, b.cycles),
                ratio(b.warp_cycles, b.cycles),
                b.l1_hits,
                b.l1_accesses,
                b.l2_hits,
                b.l2_accesses,
                b.dram_txns,
                b.shared_accesses,
            );
            for c in StallCause::ALL {
                let _ = write!(out, ",{}", b.stalls[c.idx()]);
            }
            out.push('\n');
        }
        start += p.bucket_width();
    }
    out
}

/// Per-SM stall totals as CSV, one row per SM.
pub fn stalls_csv(p: &Profiler) -> String {
    let mut out = String::from("sm,issued");
    for c in StallCause::ALL {
        let _ = write!(out, ",stall_{}", c.name());
    }
    out.push('\n');
    let total = p.total_cycles();
    for (sm, stalls) in p.per_sm().iter().enumerate() {
        let stall_sum: u64 = stalls.iter().sum();
        let _ = write!(out, "{},{}", sm, total.saturating_sub(stall_sum));
        for c in StallCause::ALL {
            let _ = write!(out, ",{}", stalls[c.idx()]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::sink::EventSink;

    fn sample() -> Profiler {
        let mut p = Profiler::new(4);
        p.warp_delta(0, 8);
        for now in 1..=500u64 {
            p.cycle_start(now);
            if now % 2 == 0 {
                p.issue(0, 0);
                p.sm_cycle_end(0, true, false);
            } else {
                p.stall(0, 1, StallCause::Dram);
                p.sm_cycle_end(0, false, false);
            }
        }
        p.launch_done(500);
        p
    }

    #[test]
    fn chrome_trace_round_trips_through_json() {
        let p = sample();
        let text = chrome_trace(&p).to_json();
        let v = json::parse(&text).unwrap();
        let evs = v.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert!(!evs.is_empty());
        // Every event has the required keys.
        for e in evs {
            for key in ["name", "ph", "pid", "tid", "ts"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
        }
        // Deterministic under re-render.
        assert_eq!(text, chrome_trace(&p).to_json());
    }

    #[test]
    fn csv_exports_are_consistent() {
        let p = sample();
        let csv = buckets_csv(&p);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 11 + StallCause::COUNT);
        let mut cycles = 0u64;
        let mut issued = 0u64;
        for row in lines {
            let f: Vec<&str> = row.split(',').collect();
            assert_eq!(f.len(), 11 + StallCause::COUNT);
            cycles += f[1].parse::<u64>().unwrap();
            issued += f[2].parse::<u64>().unwrap();
        }
        assert_eq!(cycles, 500);
        assert_eq!(issued, 250);

        let sm = stalls_csv(&p);
        assert_eq!(sm.lines().count(), 2); // header + 1 SM
    }
}
