//! A minimal hand-rolled JSON reader/writer.
//!
//! The workspace builds offline with zero external dependencies, so the
//! cache files under `results/cache/` are produced and parsed by this module
//! instead of serde. Only the subset of JSON the harness emits is supported
//! on the read side, plus standard escapes, so foreign files parse too.
//!
//! Integers are kept exact ([`Value::Int`] is `i128`): simulator counters are
//! `u64` and must survive a round trip bit-exactly, which `f64` cannot
//! guarantee above 2^53.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A numeric literal without `.`/`e` — kept exact.
    Int(i128),
    /// A numeric literal with a fractional part or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` (integer literals only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (accepts integer literals too).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a.as_slice()),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => write_f64(*f, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Rust's `Display` for `f64` emits the shortest string that round-trips, but
/// drops the distinction from integers (`1` not `1.0`); re-add it so the
/// parser classifies the literal as a float again.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns a descriptive error on malformed input —
/// the cache treats any error as "entry absent", never a panic.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad float {text:?}: {e}"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| format!("bad int {text:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Convenience constructors used by the record/spec serializers.
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A `u64` counter as an exact JSON integer.
pub fn int(v: u64) -> Value {
    Value::Int(v as i128)
}

/// A float field.
pub fn num(v: f64) -> Value {
    Value::Float(v)
}

/// A string field.
pub fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = obj(vec![
            ("a", int(u64::MAX)),
            (
                "b",
                Value::Arr(vec![int(1), num(2.5), Value::Bool(true), Value::Null]),
            ),
            ("s", s("quote \" backslash \\ newline \n unicode \u{1f600}")),
            ("o", obj(vec![("x", num(1.0))])),
        ]);
        let text = v.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn u64_counters_are_exact() {
        for x in [0u64, 1, 2u64.pow(53) + 1, u64::MAX] {
            let text = int(x).to_json();
            assert_eq!(parse(&text).unwrap().as_u64(), Some(x));
        }
    }

    #[test]
    fn float_distinguishes_from_int() {
        let text = num(3.0).to_json();
        assert_eq!(text, "3.0");
        assert!(matches!(parse(&text).unwrap(), Value::Float(_)));
    }

    #[test]
    fn malformed_is_err_not_panic() {
        for bad in ["", "{", "[1,", "{\"a\"}", "nul", "1e", "\"abc", "{}x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Value::Null));
    }
}
