//! Property-based tests: the coefficient-vector algebra must be an exact
//! homomorphism onto wrapping 64-bit evaluation — that is the entire
//! soundness argument for the R2D2 analyzer.

use proptest::prelude::*;
use r2d2_sym::{CoefVec, IndexVar, LaunchEnv, Poly, Sym};

fn sym_strategy() -> impl Strategy<Value = Sym> {
    prop_oneof![
        (0u8..6).prop_map(Sym::Param),
        (0u8..3).prop_map(Sym::Ntid),
        (0u8..3).prop_map(Sym::Nctaid),
    ]
}

fn poly_strategy() -> impl Strategy<Value = Poly> {
    let leaf = prop_oneof![
        (-100i64..100).prop_map(Poly::constant),
        sym_strategy().prop_map(Poly::sym),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner, -50i64..50).prop_map(|(a, k)| a.scale(k)),
        ]
    })
}

fn env_strategy() -> impl Strategy<Value = LaunchEnv> {
    (
        proptest::collection::vec(-1000i64..1000, 6),
        [1i64..32, 1i64..8, 1i64..4],
        [1i64..64, 1i64..8, 1i64..4],
    )
        .prop_map(|(params, ntid, nctaid)| LaunchEnv::new(params, ntid, nctaid))
}

proptest! {
    #[test]
    fn add_is_eval_homomorphism(a in poly_strategy(), b in poly_strategy(), env in env_strategy()) {
        let sum = &a + &b;
        prop_assert_eq!(sum.eval(&env), a.eval(&env).wrapping_add(b.eval(&env)));
    }

    #[test]
    fn sub_is_eval_homomorphism(a in poly_strategy(), b in poly_strategy(), env in env_strategy()) {
        let d = &a - &b;
        prop_assert_eq!(d.eval(&env), a.eval(&env).wrapping_sub(b.eval(&env)));
    }

    #[test]
    fn mul_is_eval_homomorphism(a in poly_strategy(), b in poly_strategy(), env in env_strategy()) {
        let p = &a * &b;
        prop_assert_eq!(p.eval(&env), a.eval(&env).wrapping_mul(b.eval(&env)));
    }

    #[test]
    fn scale_matches_shl(a in poly_strategy(), k in 0u32..8, env in env_strategy()) {
        prop_assert_eq!(a.shl(k).eval(&env), a.eval(&env).wrapping_shl(k));
    }

    #[test]
    fn add_commutes_and_associates(a in poly_strategy(), b in poly_strategy(), c in poly_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_distributes(a in poly_strategy(), b in poly_strategy(), c in poly_strategy()) {
        let lhs = &a * &(&b + &c);
        let rhs = &(&a * &b) + &(&a * &c);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn canonical_zero(a in poly_strategy()) {
        let z = &a - &a;
        prop_assert!(z.is_zero());
        prop_assert_eq!(z, Poly::zero());
    }

    #[test]
    fn coefvec_eval_decomposes(
        parts in proptest::collection::vec(poly_strategy(), 7),
        env in env_strategy(),
        tid in [0i64..32, 0i64..8, 0i64..4],
        ctaid in [0i64..64, 0i64..8, 0i64..4],
    ) {
        // lr = tr + br: the Sec. 4.3 microarchitectural invariant.
        let v = CoefVec::from_polys(parts.try_into().unwrap());
        let whole = v.eval(&env, tid, ctaid);
        let split = v
            .eval_thread_part(&env, tid)
            .wrapping_add(v.eval_block_part(&env, ctaid));
        prop_assert_eq!(whole, split);
    }

    #[test]
    fn coefvec_transfer_functions_are_sound(
        a in proptest::collection::vec(poly_strategy(), 7),
        b in proptest::collection::vec(poly_strategy(), 7),
        k in poly_strategy(),
        env in env_strategy(),
        tid in [0i64..16, 0i64..4, 0i64..2],
        ctaid in [0i64..16, 0i64..4, 0i64..2],
    ) {
        // Fig. 6 rows evaluated pointwise.
        let va = CoefVec::from_polys(a.try_into().unwrap());
        let vb = CoefVec::from_polys(b.try_into().unwrap());
        let ea = va.eval(&env, tid, ctaid);
        let eb = vb.eval(&env, tid, ctaid);
        prop_assert_eq!(va.add(&vb).eval(&env, tid, ctaid), ea.wrapping_add(eb));
        prop_assert_eq!(va.sub(&vb).eval(&env, tid, ctaid), ea.wrapping_sub(eb));
        let ek = k.eval(&env);
        prop_assert_eq!(va.mul_scalar(&k).eval(&env, tid, ctaid), ea.wrapping_mul(ek));
        prop_assert_eq!(
            va.mad(&k, &vb).eval(&env, tid, ctaid),
            ea.wrapping_mul(ek).wrapping_add(eb)
        );
    }

    #[test]
    fn same_shape_iff_all_index_coefs_match(
        a in proptest::collection::vec(poly_strategy(), 7),
        delta in poly_strategy(),
    ) {
        let va = CoefVec::from_polys(a.try_into().unwrap());
        let mut parts = va.elems().clone();
        parts[0] = &parts[0] + &delta;
        let vb = CoefVec::from_polys(parts);
        prop_assert!(va.same_shape(&vb));
        for iv in IndexVar::ALL {
            prop_assert_eq!(va.coef(iv), vb.coef(iv));
        }
    }
}
