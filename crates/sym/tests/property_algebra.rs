//! Randomized property tests: the coefficient-vector algebra must be an exact
//! homomorphism onto wrapping 64-bit evaluation — that is the entire
//! soundness argument for the R2D2 analyzer.
//!
//! Cases are generated with the in-repo seeded PRNG ([`r2d2_sym::Rng`]), so
//! every run exercises the same case set deterministically and the suite has
//! no external dependencies.

use r2d2_sym::{CoefVec, IndexVar, LaunchEnv, Poly, Rng, Sym};

const CASES: usize = 256;

fn gen_sym(r: &mut Rng) -> Sym {
    match r.below(3) {
        0 => Sym::Param(r.gen_range(0u8..6)),
        1 => Sym::Ntid(r.gen_range(0u8..3)),
        _ => Sym::Nctaid(r.gen_range(0u8..3)),
    }
}

fn gen_poly(r: &mut Rng, depth: u32) -> Poly {
    if depth == 0 || r.below(3) == 0 {
        return if r.gen_bool() {
            Poly::constant(r.gen_range(-100i64..100))
        } else {
            Poly::sym(gen_sym(r))
        };
    }
    match r.below(4) {
        0 => gen_poly(r, depth - 1) + gen_poly(r, depth - 1),
        1 => gen_poly(r, depth - 1) - gen_poly(r, depth - 1),
        2 => gen_poly(r, depth - 1) * gen_poly(r, depth - 1),
        _ => gen_poly(r, depth - 1).scale(r.gen_range(-50i64..50)),
    }
}

fn gen_env(r: &mut Rng) -> LaunchEnv {
    let params: Vec<i64> = (0..6).map(|_| r.gen_range(-1000i64..1000)).collect();
    let ntid = [
        r.gen_range(1i64..32),
        r.gen_range(1i64..8),
        r.gen_range(1i64..4),
    ];
    let nctaid = [
        r.gen_range(1i64..64),
        r.gen_range(1i64..8),
        r.gen_range(1i64..4),
    ];
    LaunchEnv::new(params, ntid, nctaid)
}

fn gen_tid(r: &mut Rng) -> [i64; 3] {
    [
        r.gen_range(0i64..32),
        r.gen_range(0i64..8),
        r.gen_range(0i64..4),
    ]
}

fn gen_ctaid(r: &mut Rng) -> [i64; 3] {
    [
        r.gen_range(0i64..64),
        r.gen_range(0i64..8),
        r.gen_range(0i64..4),
    ]
}

fn gen_vec(r: &mut Rng) -> CoefVec {
    let parts: Vec<Poly> = (0..7).map(|_| gen_poly(r, 2)).collect();
    CoefVec::from_polys(parts.try_into().unwrap())
}

#[test]
fn add_sub_mul_are_eval_homomorphisms() {
    let mut r = Rng::new(0xa15eb8a);
    for _ in 0..CASES {
        let (a, b, env) = (gen_poly(&mut r, 3), gen_poly(&mut r, 3), gen_env(&mut r));
        let (ea, eb) = (a.eval(&env), b.eval(&env));
        assert_eq!((&a + &b).eval(&env), ea.wrapping_add(eb), "{a} + {b}");
        assert_eq!((&a - &b).eval(&env), ea.wrapping_sub(eb), "{a} - {b}");
        assert_eq!((&a * &b).eval(&env), ea.wrapping_mul(eb), "{a} * {b}");
    }
}

#[test]
fn scale_matches_shl() {
    let mut r = Rng::new(0x5ca1e);
    for _ in 0..CASES {
        let a = gen_poly(&mut r, 3);
        let k = r.gen_range(0u32..8);
        let env = gen_env(&mut r);
        assert_eq!(
            a.shl(k).eval(&env),
            a.eval(&env).wrapping_shl(k),
            "{a} << {k}"
        );
    }
}

#[test]
fn add_commutes_and_associates() {
    let mut r = Rng::new(0xc0111);
    for _ in 0..CASES {
        let (a, b, c) = (
            gen_poly(&mut r, 3),
            gen_poly(&mut r, 3),
            gen_poly(&mut r, 3),
        );
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }
}

#[test]
fn mul_distributes() {
    let mut r = Rng::new(0xd157);
    for _ in 0..CASES {
        let (a, b, c) = (
            gen_poly(&mut r, 3),
            gen_poly(&mut r, 3),
            gen_poly(&mut r, 3),
        );
        let lhs = &a * &(&b + &c);
        let rhs = &(&a * &b) + &(&a * &c);
        assert_eq!(lhs, rhs, "{a} * ({b} + {c})");
    }
}

#[test]
fn canonical_zero() {
    let mut r = Rng::new(0x2e60);
    for _ in 0..CASES {
        let a = gen_poly(&mut r, 3);
        let z = &a - &a;
        assert!(z.is_zero(), "{a} - {a} = {z}");
        assert_eq!(z, Poly::zero());
    }
}

#[test]
fn coefvec_eval_decomposes() {
    // lr = tr + br: the Sec. 4.3 microarchitectural invariant.
    let mut r = Rng::new(0xdec0);
    for _ in 0..CASES {
        let v = gen_vec(&mut r);
        let env = gen_env(&mut r);
        let (tid, ctaid) = (gen_tid(&mut r), gen_ctaid(&mut r));
        let whole = v.eval(&env, tid, ctaid);
        let split = v
            .eval_thread_part(&env, tid)
            .wrapping_add(v.eval_block_part(&env, ctaid));
        assert_eq!(whole, split, "{v:?} @ tid={tid:?} ctaid={ctaid:?}");
    }
}

#[test]
fn coefvec_transfer_functions_are_sound() {
    // Fig. 6 rows evaluated pointwise.
    let mut r = Rng::new(0xf16);
    for _ in 0..CASES {
        let va = gen_vec(&mut r);
        let vb = gen_vec(&mut r);
        let k = gen_poly(&mut r, 2);
        let env = gen_env(&mut r);
        let tid = [
            r.gen_range(0i64..16),
            r.gen_range(0i64..4),
            r.gen_range(0i64..2),
        ];
        let ctaid = [
            r.gen_range(0i64..16),
            r.gen_range(0i64..4),
            r.gen_range(0i64..2),
        ];
        let ea = va.eval(&env, tid, ctaid);
        let eb = vb.eval(&env, tid, ctaid);
        assert_eq!(va.add(&vb).eval(&env, tid, ctaid), ea.wrapping_add(eb));
        assert_eq!(va.sub(&vb).eval(&env, tid, ctaid), ea.wrapping_sub(eb));
        let ek = k.eval(&env);
        assert_eq!(
            va.mul_scalar(&k).eval(&env, tid, ctaid),
            ea.wrapping_mul(ek)
        );
        assert_eq!(
            va.mad(&k, &vb).eval(&env, tid, ctaid),
            ea.wrapping_mul(ek).wrapping_add(eb)
        );
    }
}

#[test]
fn same_shape_iff_all_index_coefs_match() {
    let mut r = Rng::new(0x5a5e);
    for _ in 0..CASES {
        let va = gen_vec(&mut r);
        let delta = gen_poly(&mut r, 3);
        let mut parts = va.elems().clone();
        parts[0] = &parts[0] + &delta;
        let vb = CoefVec::from_polys(parts);
        assert!(va.same_shape(&vb), "constant offset must not change shape");
        for iv in IndexVar::ALL {
            assert_eq!(va.coef(iv), vb.coef(iv));
        }
    }
}
