#![warn(missing_docs)]
//! Symbolic launch-time scalars and coefficient vectors for R2D2.
//!
//! R2D2's code analyzer (paper Sec. 3.1) tracks, for every register, whether the
//! register's value is a *linear combination* of the six built-in indices
//! (`tid.x/y/z`, `ctaid.x/y/z`) with scalar coefficients. The coefficients are
//! not generally compile-time constants: they are built from kernel parameters
//! (`P0`, `P1`, ...) and kernel dimensions (`ntid.*`, `nctaid.*`), which are only
//! known at launch. The paper therefore writes coefficients as symbolic
//! expressions such as `16*(P1+1)` (Fig. 7).
//!
//! This crate provides:
//!
//! * [`Sym`] — the launch-time scalar symbols.
//! * [`Poly`] — a multivariate integer polynomial over those symbols, with exact
//!   (canonical) equality, so the analyzer can compare and group coefficients.
//! * [`CoefVec`] — the 7-element coefficient vector `{c, x, y, z, X, Y, Z}` of
//!   Fig. 6, with the transfer functions for each tracked opcode.
//! * [`LaunchEnv`] — concrete launch values to evaluate polynomials at launch.
//!
//! # Example
//!
//! Reproducing the Fig. 7 trace for `shl %r5, %r1, 4` where `%r1 = ctaid.y`:
//!
//! ```
//! use r2d2_sym::{CoefVec, Poly};
//!
//! let r1 = CoefVec::ctaid_y();             // {0,0,0,0,0,1,0}
//! let r5 = r1.shl(&Poly::constant(4));     // {0,0,0,0,0,16,0}
//! assert_eq!(r5, Some(CoefVec::from_parts([0, 0, 0, 0, 0, 16, 0])));
//! ```

mod poly;
pub mod rng;
mod vec;

pub use poly::{LaunchEnv, Monomial, Poly, Sym};
pub use rng::Rng;
pub use vec::{CoefVec, IndexVar, COEF_VEC_LEN};
