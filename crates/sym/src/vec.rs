//! The 7-element coefficient vector of paper Fig. 6.

use crate::poly::{LaunchEnv, Poly};
use std::fmt;

/// Number of elements in a coefficient vector: one constant plus six built-in
/// index coefficients (paper Sec. 3.1: "coefficient vectors").
pub const COEF_VEC_LEN: usize = 7;

/// One of the six built-in index variables a coefficient can multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IndexVar {
    /// `threadIdx.x`
    TidX,
    /// `threadIdx.y`
    TidY,
    /// `threadIdx.z`
    TidZ,
    /// `blockIdx.x`
    CtaidX,
    /// `blockIdx.y`
    CtaidY,
    /// `blockIdx.z`
    CtaidZ,
}

impl IndexVar {
    /// All six index variables, in coefficient-vector order.
    pub const ALL: [IndexVar; 6] = [
        IndexVar::TidX,
        IndexVar::TidY,
        IndexVar::TidZ,
        IndexVar::CtaidX,
        IndexVar::CtaidY,
        IndexVar::CtaidZ,
    ];

    /// Index of this variable inside a [`CoefVec`] (1..=6; slot 0 is the constant).
    pub fn slot(self) -> usize {
        match self {
            IndexVar::TidX => 1,
            IndexVar::TidY => 2,
            IndexVar::TidZ => 3,
            IndexVar::CtaidX => 4,
            IndexVar::CtaidY => 5,
            IndexVar::CtaidZ => 6,
        }
    }

    /// `true` for the three thread-index variables.
    pub fn is_thread(self) -> bool {
        matches!(self, IndexVar::TidX | IndexVar::TidY | IndexVar::TidZ)
    }
}

impl fmt::Display for IndexVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IndexVar::TidX => "tid.x",
            IndexVar::TidY => "tid.y",
            IndexVar::TidZ => "tid.z",
            IndexVar::CtaidX => "ctaid.x",
            IndexVar::CtaidY => "ctaid.y",
            IndexVar::CtaidZ => "ctaid.z",
        };
        f.write_str(s)
    }
}

/// A coefficient vector `{c, x, y, z, X, Y, Z}` (paper Fig. 6 / Sec. 3.1).
///
/// Represents the linear combination
/// `c + x·tid.x + y·tid.y + z·tid.z + X·ctaid.x + Y·ctaid.y + Z·ctaid.z`,
/// where each element is a launch-time scalar [`Poly`].
///
/// The *thread-index part* is `(x, y, z)`; the *block-index part* is
/// `(c, X, Y, Z)` — the constant rides with the block part, mirroring the
/// paper's decoupling where the block-index register is initialized from the
/// constant coefficient (`mov.br %br, %cr1` in Fig. 9).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct CoefVec {
    elems: [Poly; COEF_VEC_LEN],
}

impl CoefVec {
    /// The zero vector (constant 0).
    pub fn zero() -> Self {
        CoefVec::default()
    }

    /// A pure scalar (constant-part-only) vector.
    pub fn scalar(p: Poly) -> Self {
        let mut v = CoefVec::default();
        v.elems[0] = p;
        v
    }

    /// A compile-time immediate constant.
    pub fn imm(c: i64) -> Self {
        CoefVec::scalar(Poly::constant(c))
    }

    /// The vector for a single built-in index variable with coefficient 1.
    pub fn index(var: IndexVar) -> Self {
        let mut v = CoefVec::default();
        v.elems[var.slot()] = Poly::constant(1);
        v
    }

    /// `{0,1,0,0,0,0,0}` — `tid.x`.
    pub fn tid_x() -> Self {
        CoefVec::index(IndexVar::TidX)
    }
    /// `{0,0,1,0,0,0,0}` — `tid.y`.
    pub fn tid_y() -> Self {
        CoefVec::index(IndexVar::TidY)
    }
    /// `{0,0,0,1,0,0,0}` — `tid.z`.
    pub fn tid_z() -> Self {
        CoefVec::index(IndexVar::TidZ)
    }
    /// `{0,0,0,0,1,0,0}` — `ctaid.x`.
    pub fn ctaid_x() -> Self {
        CoefVec::index(IndexVar::CtaidX)
    }
    /// `{0,0,0,0,0,1,0}` — `ctaid.y`.
    pub fn ctaid_y() -> Self {
        CoefVec::index(IndexVar::CtaidY)
    }
    /// `{0,0,0,0,0,0,1}` — `ctaid.z`.
    pub fn ctaid_z() -> Self {
        CoefVec::index(IndexVar::CtaidZ)
    }

    /// Build from seven constant parts `[c, x, y, z, X, Y, Z]`.
    pub fn from_parts(parts: [i64; COEF_VEC_LEN]) -> Self {
        let mut v = CoefVec::default();
        for (i, p) in parts.into_iter().enumerate() {
            v.elems[i] = Poly::constant(p);
        }
        v
    }

    /// Build from seven polynomial parts `[c, x, y, z, X, Y, Z]`.
    pub fn from_polys(parts: [Poly; COEF_VEC_LEN]) -> Self {
        CoefVec { elems: parts }
    }

    /// The constant part `c`.
    pub fn constant(&self) -> &Poly {
        &self.elems[0]
    }

    /// Coefficient of a built-in index variable.
    pub fn coef(&self, var: IndexVar) -> &Poly {
        &self.elems[var.slot()]
    }

    /// All seven elements `[c, x, y, z, X, Y, Z]`.
    pub fn elems(&self) -> &[Poly; COEF_VEC_LEN] {
        &self.elems
    }

    /// `true` when all six index coefficients are zero: the combination is a
    /// pure launch-time scalar, i.e. identical across every thread (the paper's
    /// "scalar computations").
    pub fn is_scalar(&self) -> bool {
        IndexVar::ALL.iter().all(|v| self.coef(*v).is_zero())
    }

    /// `true` when the vector is a compile-time immediate (scalar and constant).
    pub fn is_immediate(&self) -> bool {
        self.is_scalar() && self.constant().is_constant()
    }

    /// `true` when at least one thread-index coefficient is nonzero.
    pub fn has_thread_part(&self) -> bool {
        IndexVar::ALL
            .iter()
            .filter(|v| v.is_thread())
            .any(|v| !self.coef(*v).is_zero())
    }

    /// `true` when at least one block-index coefficient is nonzero.
    pub fn has_block_part(&self) -> bool {
        IndexVar::ALL
            .iter()
            .filter(|v| !v.is_thread())
            .any(|v| !self.coef(*v).is_zero())
    }

    /// The thread-index part `(x, y, z)` — shared once per kernel (Sec. 2.1).
    pub fn thread_part(&self) -> [&Poly; 3] {
        [&self.elems[1], &self.elems[2], &self.elems[3]]
    }

    /// The block-index part `(c, X, Y, Z)` — computed once per thread block.
    pub fn block_part(&self) -> [&Poly; 4] {
        [
            &self.elems[0],
            &self.elems[4],
            &self.elems[5],
            &self.elems[6],
        ]
    }

    /// Elementwise sum (transfer function for `add`, Fig. 6).
    pub fn add(&self, rhs: &CoefVec) -> CoefVec {
        let mut out = CoefVec::default();
        for i in 0..COEF_VEC_LEN {
            out.elems[i] = &self.elems[i] + &rhs.elems[i];
        }
        out
    }

    /// Elementwise difference (transfer function for `sub`, Fig. 6).
    pub fn sub(&self, rhs: &CoefVec) -> CoefVec {
        let mut out = CoefVec::default();
        for i in 0..COEF_VEC_LEN {
            out.elems[i] = &self.elems[i] - &rhs.elems[i];
        }
        out
    }

    /// Multiply by a scalar polynomial (transfer function for `mul` where the
    /// second source is scalar, Fig. 6 `mul dst, src1, src2*`).
    pub fn mul_scalar(&self, k: &Poly) -> CoefVec {
        let mut out = CoefVec::default();
        for i in 0..COEF_VEC_LEN {
            out.elems[i] = &self.elems[i] * k;
        }
        out
    }

    /// Shift left by a scalar amount, which must be a compile-time constant
    /// (Fig. 6 `shl dst, src1, src2*`). Returns `None` for symbolic shifts:
    /// the analyzer treats those as non-linear.
    pub fn shl(&self, amount: &Poly) -> Option<CoefVec> {
        let bits = amount.as_constant()?;
        if !(0..64).contains(&bits) {
            return None;
        }
        Some(self.mul_scalar(&Poly::constant(1i64.wrapping_shl(bits as u32))))
    }

    /// Multiply-and-add (Fig. 6 `mad dst, src1, src2*, src3`):
    /// `self * k + addend`, where `k` must be scalar.
    pub fn mad(&self, k: &Poly, addend: &CoefVec) -> CoefVec {
        self.mul_scalar(k).add(addend)
    }

    /// Evaluate this linear combination for a concrete thread.
    ///
    /// `tid` and `ctaid` are the three thread / block index components. Values
    /// wrap as 64-bit integers, matching machine arithmetic.
    pub fn eval(&self, env: &LaunchEnv, tid: [i64; 3], ctaid: [i64; 3]) -> i64 {
        let mut acc = self.elems[0].eval(env);
        for (i, t) in tid.iter().enumerate() {
            acc = acc.wrapping_add(self.elems[1 + i].eval(env).wrapping_mul(*t));
        }
        for (i, b) in ctaid.iter().enumerate() {
            acc = acc.wrapping_add(self.elems[4 + i].eval(env).wrapping_mul(*b));
        }
        acc
    }

    /// Evaluate only the thread-index part for a thread: `x·tid.x + y·tid.y + z·tid.z`.
    pub fn eval_thread_part(&self, env: &LaunchEnv, tid: [i64; 3]) -> i64 {
        let mut acc = 0i64;
        for (i, t) in tid.iter().enumerate() {
            acc = acc.wrapping_add(self.elems[1 + i].eval(env).wrapping_mul(*t));
        }
        acc
    }

    /// Evaluate only the block-index part for a block:
    /// `c + X·ctaid.x + Y·ctaid.y + Z·ctaid.z`.
    pub fn eval_block_part(&self, env: &LaunchEnv, ctaid: [i64; 3]) -> i64 {
        let mut acc = self.elems[0].eval(env);
        for (i, b) in ctaid.iter().enumerate() {
            acc = acc.wrapping_add(self.elems[4 + i].eval(env).wrapping_mul(*b));
        }
        acc
    }

    /// `true` when the two vectors have identical thread-index *and*
    /// block-index coefficients (but possibly different constants) — the
    /// grouping condition of Sec. 3.1.4 (e.g. `w[index]` vs `oldw[index]`).
    pub fn same_shape(&self, other: &CoefVec) -> bool {
        IndexVar::ALL
            .iter()
            .all(|v| self.coef(*v) == other.coef(*v))
    }
}

impl fmt::Display for CoefVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{LaunchEnv, Poly};

    fn env() -> LaunchEnv {
        // Backprop-like: P1 = hid = 16, HEIGHT folded into constants.
        LaunchEnv::new(
            vec![1000, 16, 2000, 3000, 4000, 5000],
            [16, 4, 1],
            [1, 8, 1],
        )
    }

    #[test]
    fn fig7_trace_backprop() {
        // Reproduce the Fig. 7 analysis:
        //   mov %r1, %ctaid.y        -> {0,0,0,0,0,1,0}
        //   shl %r5, %r1, 4          -> {0,0,0,0,0,16,0}
        //   mov %r2, %tid.y          -> {0,0,1,0,0,0,0}
        //   add %r6, %r5, %r2        -> {0,0,1,0,0,16,0}
        //   add %r7, %r4, 1   (%r4 = P1) -> {P1+1,0,...}
        let r1 = CoefVec::ctaid_y();
        let r5 = r1.shl(&Poly::constant(4)).unwrap();
        assert_eq!(r5, CoefVec::from_parts([0, 0, 0, 0, 0, 16, 0]));
        let r2 = CoefVec::tid_y();
        let r6 = r5.add(&r2);
        assert_eq!(r6, CoefVec::from_parts([0, 0, 1, 0, 0, 16, 0]));
        let r4 = CoefVec::scalar(Poly::param(1));
        let r7 = r4.add(&CoefVec::imm(1));
        assert!(r7.is_scalar());
        assert_eq!(r7.constant().eval(&env()), 17);
    }

    #[test]
    fn fig7_rd13_full_linear_combination() {
        // %r9 = mad(%r6, %r7, %r8) where %r8 = tx + (P1+1) (index computation),
        // then mul %rd13, %r9, 4 yields the paper's
        // {4*P1+4, 4, 4*(P1+1), 0, 0, 64*(P1+1), 0} modulo constant offset.
        let p1p1 = Poly::param(1) + Poly::constant(1);
        let r6 = CoefVec::from_parts([0, 0, 1, 0, 0, 16, 0]);
        let r8 = CoefVec::tid_x().add(&CoefVec::scalar(p1p1.clone()));
        let r9 = r6.mad(&p1p1, &r8);
        let rd13 = r9.mul_scalar(&Poly::constant(4));
        let e = env();
        // Check against direct evaluation of 4*((hid+1)*(16*by+ty) + tx + hid+1)
        let hid = 16i64;
        for by in 0..8 {
            for ty in 0..4 {
                for tx in 0..16 {
                    let want = 4 * ((hid + 1) * (16 * by + ty) + tx + hid + 1);
                    let got = rd13.eval(&e, [tx, ty, 0], [0, by, 0]);
                    assert_eq!(got, want, "tx={tx} ty={ty} by={by}");
                }
            }
        }
        assert!(rd13.has_thread_part());
        assert!(rd13.has_block_part());
    }

    #[test]
    fn scalar_and_immediate_classification() {
        assert!(CoefVec::imm(5).is_immediate());
        assert!(CoefVec::scalar(Poly::param(0)).is_scalar());
        assert!(!CoefVec::scalar(Poly::param(0)).is_immediate());
        assert!(!CoefVec::tid_x().is_scalar());
    }

    #[test]
    fn same_shape_groups_constant_offsets() {
        // w[index] and oldw[index] from Fig. 2: same shape, different base.
        let idx = CoefVec::tid_x().mul_scalar(&Poly::constant(4));
        let w = idx.add(&CoefVec::scalar(Poly::param(2)));
        let oldw = idx.add(&CoefVec::scalar(Poly::param(3)));
        assert!(w.same_shape(&oldw));
        assert_ne!(w, oldw);
    }

    #[test]
    fn symbolic_shl_rejected() {
        let v = CoefVec::tid_x();
        assert!(v.shl(&Poly::param(0)).is_none());
        assert!(v.shl(&Poly::constant(70)).is_none());
    }

    #[test]
    fn eval_decomposes_into_parts() {
        // lr = tr + br must hold for every thread: the microarchitectural
        // invariant behind Sec. 4.3's LSU-side addition.
        let e = env();
        let v = CoefVec::from_polys([
            Poly::param(0),
            Poly::constant(4),
            Poly::param(1),
            Poly::zero(),
            Poly::constant(64),
            Poly::param(1).scale(16),
            Poly::zero(),
        ]);
        for tx in 0..4 {
            for by in 0..3 {
                let tid = [tx, 2, 0];
                let ctaid = [1, by, 0];
                let whole = v.eval(&e, tid, ctaid);
                let parts = v
                    .eval_thread_part(&e, tid)
                    .wrapping_add(v.eval_block_part(&e, ctaid));
                assert_eq!(whole, parts);
            }
        }
    }

    #[test]
    fn display_matches_paper_style() {
        let v = CoefVec::from_parts([0, 4, 0, 0, 0, 16, 0]);
        assert_eq!(v.to_string(), "{0,4,0,0,0,16,0}");
    }
}
