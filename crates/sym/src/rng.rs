//! A small, seeded, deterministic PRNG (SplitMix64).
//!
//! The repo builds with **zero external dependencies** so it compiles offline
//! (registries are not always reachable). This module replaces the `rand`
//! crate everywhere it was used: workload input generation
//! (`r2d2-workloads::data`) and the randomized property tests. SplitMix64 is
//! the standard seeding generator from Steele et al., "Fast Splittable
//! Pseudorandom Number Generators" (OOPSLA 2014): a 64-bit state advanced by a
//! Weyl constant and scrambled by two xor-shift-multiply rounds. It passes
//! BigCrush and is more than random enough for input data and test-case
//! generation (we make no cryptographic claims).
//!
//! # Example
//!
//! ```
//! use r2d2_sym::Rng;
//!
//! let mut a = Rng::new(7);
//! let mut b = Rng::new(7);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! let x = a.gen_range(-5i32..5);
//! assert!((-5..5).contains(&x));
//! ```

/// Seeded deterministic generator. Same seed ⇒ same stream, forever — results
/// under the experiment harness are content-addressed by workload inputs, so
/// this stability is load-bearing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value (the SplitMix64 output function).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses the widening-multiply range reduction; the modulo bias is at most
    /// `n / 2^64`, far below anything our tests or inputs can observe.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Rng::below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` (24 mantissa bits).
    pub fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `bool`.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform value from a range, mirroring `rand::Rng::gen_range`.
    ///
    /// Supported ranges: half-open and inclusive integer ranges and half-open
    /// float ranges (see [`SampleRange`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "Rng::choose on empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Out;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Out;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Out = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full 2^64 range of u64; take raw bits.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize, u8, u16, i8, i16);

impl SampleRange for core::ops::Range<f32> {
    type Out = f32;
    fn sample(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.f32() * (self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Out = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vector() {
        // Reference outputs from the canonical C code (Vigna's splitmix64.c).
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 0x599e_d017_fb08_fc85);
        assert_eq!(r.next_u64(), 0x2c73_f084_5854_0fa5);
        assert_eq!(r.next_u64(), 0x883e_bce5_a3f2_7c77);
        let mut z = Rng::new(0);
        assert_eq!(z.next_u64(), 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(-17i32..23);
            assert!((-17..23).contains(&v));
            let w = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn below_covers_small_domains() {
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn floats_are_half_open_unit() {
        let mut r = Rng::new(11);
        for _ in 0..1000 {
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.f32();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
