//! Multivariate integer polynomials over launch-time scalar symbols.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A launch-time scalar symbol.
///
/// These are the values the paper's analyzer cannot resolve at compile time
/// (Sec. 2.1): kernel parameters and kernel dimensions. They become known at
/// kernel launch, at which point a [`Poly`] can be evaluated with a
/// [`LaunchEnv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sym {
    /// Kernel input parameter `Pn` (n-th scalar parameter slot).
    Param(u8),
    /// Thread-block dimension `ntid.x/y/z` (0 = x, 1 = y, 2 = z).
    Ntid(u8),
    /// Grid dimension `nctaid.x/y/z` (0 = x, 1 = y, 2 = z).
    Nctaid(u8),
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const DIM: [&str; 3] = ["x", "y", "z"];
        match self {
            Sym::Param(n) => write!(f, "P{n}"),
            Sym::Ntid(d) => write!(f, "ntid.{}", DIM[*d as usize % 3]),
            Sym::Nctaid(d) => write!(f, "nctaid.{}", DIM[*d as usize % 3]),
        }
    }
}

/// A product of symbols with multiplicity, e.g. `P1 * P1 * ntid.x`.
///
/// Stored as a sorted list so that two equal monomials compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Monomial(Vec<Sym>);

impl Monomial {
    /// The empty (constant) monomial.
    pub fn one() -> Self {
        Monomial(Vec::new())
    }

    /// A monomial consisting of a single symbol.
    pub fn sym(s: Sym) -> Self {
        Monomial(vec![s])
    }

    /// Multiply two monomials (concatenates and re-sorts factors).
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        v.sort_unstable();
        Monomial(v)
    }

    /// Total degree (number of symbol factors, with multiplicity).
    pub fn degree(&self) -> usize {
        self.0.len()
    }

    /// The symbol factors, sorted.
    pub fn factors(&self) -> &[Sym] {
        &self.0
    }

    fn eval(&self, env: &LaunchEnv) -> i64 {
        self.0
            .iter()
            .fold(1i64, |acc, s| acc.wrapping_mul(env.value(*s)))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "1");
        }
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "*")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

/// A multivariate polynomial with `i64` coefficients over [`Sym`] symbols.
///
/// The representation is canonical (zero terms are never stored), so `==` is
/// semantic equality — exactly what the analyzer needs to group linear
/// registers that share thread-index or block-index parts (Sec. 3.1.4).
///
/// All arithmetic wraps modulo 2^64 on evaluation, matching the simulator's
/// integer semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly {
    /// monomial -> coefficient; invariant: no zero coefficients stored.
    terms: BTreeMap<Monomial, i64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i64) -> Self {
        let mut p = Poly::default();
        if c != 0 {
            p.terms.insert(Monomial::one(), c);
        }
        p
    }

    /// The polynomial consisting of a single symbol.
    pub fn sym(s: Sym) -> Self {
        let mut p = Poly::default();
        p.terms.insert(Monomial::sym(s), 1);
        p
    }

    /// Kernel parameter `Pn` as a polynomial.
    pub fn param(n: u8) -> Self {
        Poly::sym(Sym::Param(n))
    }

    /// `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// `true` if this polynomial is a compile-time constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.keys().all(|m| m.degree() == 0)
    }

    /// Returns the constant value if [`Poly::is_constant`].
    pub fn as_constant(&self) -> Option<i64> {
        if self.is_constant() {
            Some(self.terms.get(&Monomial::one()).copied().unwrap_or(0))
        } else {
            None
        }
    }

    /// Total degree of the polynomial (0 for constants, 0 for zero).
    pub fn degree(&self) -> usize {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// Number of (nonzero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over `(monomial, coefficient)` terms in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, i64)> {
        self.terms.iter().map(|(m, c)| (m, *c))
    }

    /// Multiply by a power of two (left shift), used for `shl` (Fig. 6).
    pub fn shl(&self, bits: u32) -> Poly {
        self.scale(1i64.wrapping_shl(bits))
    }

    /// Multiply every coefficient by a constant.
    pub fn scale(&self, k: i64) -> Poly {
        if k == 0 {
            return Poly::zero();
        }
        let mut out = Poly::default();
        for (m, c) in &self.terms {
            let v = c.wrapping_mul(k);
            if v != 0 {
                out.terms.insert(m.clone(), v);
            }
        }
        out
    }

    /// Evaluate the polynomial under concrete launch values.
    ///
    /// Arithmetic wraps, mirroring 64-bit machine arithmetic.
    pub fn eval(&self, env: &LaunchEnv) -> i64 {
        self.terms.iter().fold(0i64, |acc, (m, c)| {
            acc.wrapping_add(c.wrapping_mul(m.eval(env)))
        })
    }

    fn add_term(&mut self, m: Monomial, c: i64) {
        if c == 0 {
            return;
        }
        let entry = self.terms.entry(m).or_insert(0);
        *entry = entry.wrapping_add(c);
        if *entry == 0 {
            // Re-fetch key to remove: use retain to keep it simple and correct.
            self.terms.retain(|_, v| *v != 0);
        }
    }
}

impl From<i64> for Poly {
    fn from(c: i64) -> Self {
        Poly::constant(c)
    }
}

impl From<Sym> for Poly {
    fn from(s: Sym) -> Self {
        Poly::sym(s)
    }
}

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), *c);
        }
        out
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        &self + &rhs
    }
}

impl AddAssign<&Poly> for Poly {
    fn add_assign(&mut self, rhs: &Poly) {
        for (m, c) in &rhs.terms {
            self.add_term(m.clone(), *c);
        }
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let mut out = self.clone();
        for (m, c) in &rhs.terms {
            out.add_term(m.clone(), c.wrapping_neg());
        }
        out
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        &self - &rhs
    }
}

impl SubAssign<&Poly> for Poly {
    fn sub_assign(&mut self, rhs: &Poly) {
        for (m, c) in &rhs.terms {
            self.add_term(m.clone(), c.wrapping_neg());
        }
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(-1)
    }
}

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scale(-1)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        let mut out = Poly::default();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                out.add_term(ma.mul(mb), ca.wrapping_mul(*cb));
            }
        }
        out
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        &self * &rhs
    }
}

impl MulAssign<&Poly> for Poly {
    fn mul_assign(&mut self, rhs: &Poly) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (m, c) in &self.terms {
            if first {
                first = false;
                if m.degree() == 0 {
                    write!(f, "{c}")?;
                } else if *c == 1 {
                    write!(f, "{m}")?;
                } else if *c == -1 {
                    write!(f, "-{m}")?;
                } else {
                    write!(f, "{c}*{m}")?;
                }
            } else {
                let (sign, mag) = if *c < 0 {
                    ("-", c.wrapping_neg())
                } else {
                    ("+", *c)
                };
                if m.degree() == 0 {
                    write!(f, "{sign}{mag}")?;
                } else if mag == 1 {
                    write!(f, "{sign}{m}")?;
                } else {
                    write!(f, "{sign}{mag}*{m}")?;
                }
            }
        }
        Ok(())
    }
}

/// Concrete launch-time values used to evaluate a [`Poly`].
///
/// Constructed once per kernel launch; mirrors the information the thread-block
/// scheduler has when it launches a kernel (parameters, block dim, grid dim).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LaunchEnv {
    /// Scalar parameter slots (`P0`, `P1`, ...). Addresses and sizes alike.
    pub params: Vec<i64>,
    /// Thread-block dimensions `(ntid.x, ntid.y, ntid.z)`.
    pub ntid: [i64; 3],
    /// Grid dimensions `(nctaid.x, nctaid.y, nctaid.z)`.
    pub nctaid: [i64; 3],
}

impl LaunchEnv {
    /// Create an environment from parameters, block dim and grid dim.
    pub fn new(params: Vec<i64>, ntid: [i64; 3], nctaid: [i64; 3]) -> Self {
        LaunchEnv {
            params,
            ntid,
            nctaid,
        }
    }

    /// The concrete value of a symbol.
    ///
    /// Out-of-range parameter slots evaluate to 0 (the analyzer never emits
    /// them; this keeps evaluation total).
    pub fn value(&self, s: Sym) -> i64 {
        match s {
            Sym::Param(n) => self.params.get(n as usize).copied().unwrap_or(0),
            Sym::Ntid(d) => self.ntid[d as usize % 3],
            Sym::Nctaid(d) => self.nctaid[d as usize % 3],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> LaunchEnv {
        LaunchEnv::new(vec![100, 15, 7], [16, 4, 1], [32, 8, 1])
    }

    #[test]
    fn constant_roundtrip() {
        let p = Poly::constant(42);
        assert!(p.is_constant());
        assert_eq!(p.as_constant(), Some(42));
        assert_eq!(p.eval(&env()), 42);
    }

    #[test]
    fn zero_is_canonical() {
        let p = Poly::constant(5) - Poly::constant(5);
        assert!(p.is_zero());
        assert_eq!(p, Poly::zero());
        assert_eq!(p.num_terms(), 0);
    }

    #[test]
    fn fig7_coefficient_16_p1_plus_1() {
        // 16*(P1+1) with P1 = 15 -> 256
        let p1 = Poly::param(1);
        let coef = (&p1 + &Poly::constant(1)).scale(16);
        assert_eq!(coef.eval(&env()), 256);
        assert_eq!(coef.to_string(), "16+16*P1");
    }

    #[test]
    fn mul_is_distributive_over_terms() {
        // (P0 + 2) * (P1 - 3) = P0*P1 - 3 P0 + 2 P1 - 6
        let a = Poly::param(0) + Poly::constant(2);
        let b = Poly::param(1) - Poly::constant(3);
        let prod = &a * &b;
        let e = env();
        assert_eq!(prod.eval(&e), (100 + 2) * (15 - 3));
        assert_eq!(prod.degree(), 2);
        assert_eq!(prod.num_terms(), 4);
    }

    #[test]
    fn shl_matches_scale() {
        let p = Poly::param(2) + Poly::constant(1);
        assert_eq!(p.shl(4), p.scale(16));
    }

    #[test]
    fn ntid_nctaid_eval() {
        let p = Poly::sym(Sym::Ntid(0)) * Poly::sym(Sym::Nctaid(1));
        assert_eq!(p.eval(&env()), 16 * 8);
    }

    #[test]
    fn add_cancels_terms() {
        let p = Poly::param(0).scale(3);
        let q = Poly::param(0).scale(-3) + Poly::constant(1);
        let sum = p + q;
        assert_eq!(sum, Poly::constant(1));
    }

    #[test]
    fn display_is_readable() {
        let p = Poly::constant(4) + Poly::param(1).scale(4);
        assert_eq!(p.to_string(), "4+4*P1");
        assert_eq!(Poly::zero().to_string(), "0");
        let q = Poly::param(0) - Poly::param(1);
        assert_eq!(q.to_string(), "P0-P1");
    }

    #[test]
    fn monomial_ordering_is_canonical() {
        let a = Monomial::sym(Sym::Param(1)).mul(&Monomial::sym(Sym::Param(0)));
        let b = Monomial::sym(Sym::Param(0)).mul(&Monomial::sym(Sym::Param(1)));
        assert_eq!(a, b);
    }

    #[test]
    fn missing_param_evaluates_to_zero() {
        let p = Poly::param(9);
        assert_eq!(p.eval(&env()), 0);
    }
}
