//! The versioned wire API: error schema and endpoint inventory.
//!
//! Every 4xx/5xx answer from `r2d2 serve` **and** `r2d2 dispatch` carries
//! one machine-readable JSON body:
//!
//! ```json
//! {"error": {"code": "<kebab-slug>", "message": "...", "retry_after_s": 1}}
//! ```
//!
//! `code` is a stable kebab-case slug callers match on (never parse
//! `message`, which is free-form prose for humans); `retry_after_s` is
//! present only when the server also sends a `Retry-After` header (429/503
//! backpressure). The full code inventory is documented in `DESIGN.md`
//! § "Dispatch tier & the /v1 wire API" and spot-checked by the
//! error-schema golden test in `crates/serve/tests/service.rs`.
//!
//! Paths are frozen under the `/v1` prefix. The unprefixed spellings from
//! the pre-v1 service remain as deprecated aliases that answer identically
//! plus a `Deprecation: true` header; `scripts/check_api_surface.py` fails
//! CI if a handler is ever registered outside `/v1` without that alias
//! mechanism.

use r2d2_harness::json::{self, Value};

use crate::http::Response;

/// Every `(method, canonical path)` the service answers, `{id}` standing in
/// for a 16-hex job id. Machine-checked by `scripts/check_api_surface.py`:
/// all paths must live under `/v1`.
pub const ENDPOINTS: &[(&str, &str)] = &[
    ("POST", "/v1/jobs"),
    ("POST", "/v1/jobs/batch"),
    ("GET", "/v1/jobs/{id}"),
    ("DELETE", "/v1/jobs/{id}"),
    ("GET", "/v1/jobs/{id}/progress"),
    ("GET", "/v1/healthz"),
    ("GET", "/v1/metrics"),
    ("POST", "/v1/shutdown"),
];

/// A typed API error — the decoded form of the unified error body. Servers
/// build one and render it with [`error_response`]; clients decode one from
/// any 4xx/5xx body with [`ApiError::from_response`] and match on
/// [`ApiError::code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status the error travelled with.
    pub status: u16,
    /// Stable kebab-case error class (`queue-full`, `unknown-job`, ...).
    pub code: String,
    /// Human-oriented description; never meant for `match`ing.
    pub message: String,
    /// Backoff hint in seconds, when the server sent one (it mirrors the
    /// `Retry-After` header on 429/503).
    pub retry_after_s: Option<u64>,
}

impl ApiError {
    /// Decode the unified error body out of a response. Returns `None` for
    /// non-error statuses or bodies that do not carry the schema.
    pub fn from_response(status: u16, body: &Value) -> Option<ApiError> {
        if status < 400 {
            return None;
        }
        let err = body.get("error")?;
        Some(ApiError {
            status,
            code: err.get("code")?.as_str()?.to_string(),
            message: err
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string(),
            retry_after_s: err.get("retry_after_s").and_then(Value::as_u64),
        })
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP {} [{}] {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

/// The unified error body as a JSON value (no `retry_after_s`).
pub fn error_body(code: &str, message: &str) -> Value {
    error_body_retry(code, message, None)
}

/// The unified error body as a JSON value, with an optional backoff hint.
pub fn error_body_retry(code: &str, message: &str, retry_after_s: Option<u64>) -> Value {
    let mut fields = vec![("code", json::s(code)), ("message", json::s(message))];
    if let Some(s) = retry_after_s {
        fields.push(("retry_after_s", json::int(s)));
    }
    json::obj(vec![("error", json::obj(fields))])
}

/// Build a complete 4xx/5xx [`Response`] carrying the unified error body.
pub fn error_response(status: u16, code: &str, message: &str) -> Response {
    Response::json(status, &error_body(code, message))
}

/// [`error_response`] plus a `Retry-After: <secs>` header and the matching
/// `retry_after_s` body field — the 429/503 backpressure shape.
pub fn error_response_retry(
    status: u16,
    code: &str,
    message: &str,
    retry_after_s: u64,
) -> Response {
    Response::json(
        status,
        &error_body_retry(code, message, Some(retry_after_s)),
    )
    .header("Retry-After", &retry_after_s.to_string())
}

/// Map a request path onto its canonical `/v1` form. Returns the canonical
/// path and whether the caller used a deprecated unprefixed alias (in which
/// case the response must carry `Deprecation: true`).
pub fn canonical_path(path: &str) -> (String, bool) {
    if path == "/v1" || path.starts_with("/v1/") {
        (path.to_string(), false)
    } else {
        (format!("/v1{path}"), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_body_roundtrips_through_the_typed_client() {
        let resp = error_response_retry(429, "queue-full", "queue full; retry later", 1);
        assert_eq!(resp.status, 429);
        assert_eq!(
            resp.headers,
            vec![("Retry-After".to_string(), "1".to_string())]
        );
        let v = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let err = ApiError::from_response(429, &v).expect("schema decodes");
        assert_eq!(err.code, "queue-full");
        assert_eq!(err.retry_after_s, Some(1));

        let plain = error_response(404, "unknown-job", "no such job");
        let v = json::parse(std::str::from_utf8(&plain.body).unwrap()).unwrap();
        let err = ApiError::from_response(404, &v).unwrap();
        assert_eq!(err.code, "unknown-job");
        assert_eq!(err.retry_after_s, None);
        // 2xx bodies never decode as errors.
        assert!(ApiError::from_response(200, &v).is_none());
    }

    #[test]
    fn canonical_path_maps_aliases_and_keeps_v1() {
        assert_eq!(canonical_path("/jobs"), ("/v1/jobs".into(), true));
        assert_eq!(canonical_path("/v1/jobs"), ("/v1/jobs".into(), false));
        assert_eq!(canonical_path("/healthz"), ("/v1/healthz".into(), true));
        assert_eq!(canonical_path("/v1"), ("/v1".into(), false));
    }

    #[test]
    fn every_registered_endpoint_is_versioned() {
        for (_, path) in ENDPOINTS {
            assert!(path.starts_with("/v1/"), "{path} escaped the /v1 prefix");
        }
    }
}
