//! Service counters and the `/metrics` exposition.
//!
//! Everything is either a monotonic atomic counter or derived from one at
//! render time; per-job wall times land in a fixed-size ring so p50/p99 are
//! over the most recent jobs without unbounded growth. The exposition is
//! plain-text Prometheus style: `# HELP`/`# TYPE` comments plus
//! `name value` lines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent job wall times feed the latency percentiles.
const WALL_RING: usize = 1024;

/// Shared service counters. All methods are `&self`; every field is
/// independently thread-safe.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    /// Jobs accepted into the system (enqueued, deduplicated onto an
    /// existing entry, or answered from cache at submit).
    pub submitted: AtomicU64,
    /// Submissions coalesced onto an already queued/running/completed entry.
    pub deduped: AtomicU64,
    /// Submissions rejected with 429 because the queue was full.
    pub shed: AtomicU64,
    /// Jobs answered from the content-addressed result cache.
    pub cache_hits: AtomicU64,
    /// Jobs that ran a simulation to completion.
    pub simulated: AtomicU64,
    /// Jobs that failed (bad workload, simulation error, or timeout).
    pub failed: AtomicU64,
    /// Jobs whose watchdog expired before the simulation finished.
    pub timeouts: AtomicU64,
    /// Jobs cancelled via `DELETE /jobs/<id>` (queued or running).
    pub cancelled: AtomicU64,
    /// `POST /jobs/batch` requests accepted (each may carry many jobs).
    pub batches: AtomicU64,
    /// Jobs currently executing on a worker.
    pub in_flight: AtomicU64,
    wall_ms: Mutex<WallRing>,
}

#[derive(Debug, Default)]
struct WallRing {
    samples: Vec<f64>,
    next: usize,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            start: Instant::now(),
            submitted: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            wall_ms: Mutex::new(WallRing::default()),
        }
    }
}

impl Metrics {
    /// Record one completed job's wall time (cache hits report ~0).
    pub fn observe_wall_ms(&self, ms: f64) {
        let mut ring = self.wall_ms.lock().unwrap();
        if ring.samples.len() < WALL_RING {
            ring.samples.push(ms);
        } else {
            let i = ring.next;
            ring.samples[i] = ms;
        }
        ring.next = (ring.next + 1) % WALL_RING;
    }

    /// `(p50, p99)` over the retained wall-time samples; zeros when empty.
    pub fn wall_percentiles(&self) -> (f64, f64) {
        let ring = self.wall_ms.lock().unwrap();
        if ring.samples.is_empty() {
            return (0.0, 0.0);
        }
        let mut sorted = ring.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let pick = |p: f64| {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        (pick(0.50), pick(0.99))
    }

    /// Fraction of completed jobs answered from the cache; 0 when none
    /// completed yet.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed) as f64;
        let sims = self.simulated.load(Ordering::Relaxed) as f64;
        if hits + sims == 0.0 {
            0.0
        } else {
            hits / (hits + sims)
        }
    }

    /// Completed jobs (hits + simulations) per wall-clock second of uptime.
    pub fn jobs_per_s(&self) -> f64 {
        let done = (self.cache_hits.load(Ordering::Relaxed)
            + self.simulated.load(Ordering::Relaxed)) as f64;
        let up = self.start.elapsed().as_secs_f64();
        if up <= 0.0 {
            0.0
        } else {
            done / up
        }
    }

    /// Render the Prometheus-style text exposition. `queue_depth` is passed
    /// in because the queue owns it.
    pub fn render(&self, queue_depth: usize) -> String {
        use std::fmt::Write as _;
        let (p50, p99) = self.wall_percentiles();
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP r2d2_serve_{name} {help}");
            let _ = writeln!(
                out,
                "# TYPE r2d2_serve_{name} {}",
                if name.ends_with("_total") {
                    "counter"
                } else {
                    "gauge"
                }
            );
            if value.fract() == 0.0 && value.abs() < 1e15 {
                let _ = writeln!(out, "r2d2_serve_{name} {}", value as i64);
            } else {
                let _ = writeln!(out, "r2d2_serve_{name} {value}");
            }
        };
        gauge(
            "queue_depth",
            "Jobs waiting for a worker.",
            queue_depth as f64,
        );
        gauge(
            "in_flight",
            "Jobs currently executing.",
            g(&self.in_flight) as f64,
        );
        gauge(
            "jobs_submitted_total",
            "Accepted submissions (incl. dedups and cache answers).",
            g(&self.submitted) as f64,
        );
        gauge(
            "jobs_deduped_total",
            "Submissions coalesced onto an existing job.",
            g(&self.deduped) as f64,
        );
        gauge(
            "jobs_shed_total",
            "Submissions rejected with 429 (queue full).",
            g(&self.shed) as f64,
        );
        gauge(
            "jobs_simulated_total",
            "Jobs that ran a simulation to completion.",
            g(&self.simulated) as f64,
        );
        gauge(
            "jobs_failed_total",
            "Jobs that failed or timed out.",
            g(&self.failed) as f64,
        );
        gauge(
            "job_timeouts_total",
            "Jobs killed by the per-job watchdog.",
            g(&self.timeouts) as f64,
        );
        gauge(
            "jobs_cancelled_total",
            "Jobs cancelled via DELETE /jobs/<id>.",
            g(&self.cancelled) as f64,
        );
        gauge(
            "batch_submissions_total",
            "POST /jobs/batch requests accepted.",
            g(&self.batches) as f64,
        );
        gauge(
            "cache_hits_total",
            "Jobs answered from the result cache.",
            g(&self.cache_hits) as f64,
        );
        gauge(
            "cache_hit_rate",
            "cache_hits / completed jobs.",
            self.cache_hit_rate(),
        );
        gauge("jobs_per_s", "Completed jobs per second of uptime.", {
            self.jobs_per_s()
        });
        gauge(
            "job_wall_ms_p50",
            "Median wall time of recent completed jobs (ms).",
            p50,
        );
        gauge(
            "job_wall_ms_p99",
            "99th-percentile wall time of recent completed jobs (ms).",
            p99,
        );
        gauge(
            "uptime_s",
            "Seconds since the service started.",
            self.start.elapsed().as_secs_f64(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rates() {
        let m = Metrics::default();
        assert_eq!(m.wall_percentiles(), (0.0, 0.0));
        assert_eq!(m.cache_hit_rate(), 0.0);
        for i in 1..=100 {
            m.observe_wall_ms(f64::from(i));
        }
        let (p50, p99) = m.wall_percentiles();
        assert!((49.0..=52.0).contains(&p50), "p50 = {p50}");
        assert!((98.0..=100.0).contains(&p99), "p99 = {p99}");
        m.cache_hits.store(3, Ordering::Relaxed);
        m.simulated.store(1, Ordering::Relaxed);
        assert_eq!(m.cache_hit_rate(), 0.75);
    }

    #[test]
    fn ring_is_bounded() {
        let m = Metrics::default();
        for i in 0..(WALL_RING * 3) {
            m.observe_wall_ms(i as f64);
        }
        assert_eq!(m.wall_ms.lock().unwrap().samples.len(), WALL_RING);
    }

    #[test]
    fn render_exposes_required_metrics() {
        let m = Metrics::default();
        let text = m.render(7);
        for needle in [
            "r2d2_serve_queue_depth 7",
            "r2d2_serve_in_flight 0",
            "r2d2_serve_jobs_cancelled_total 0",
            "r2d2_serve_batch_submissions_total 0",
            "r2d2_serve_cache_hit_rate",
            "r2d2_serve_jobs_per_s",
            "r2d2_serve_job_wall_ms_p50",
            "r2d2_serve_job_wall_ms_p99",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
