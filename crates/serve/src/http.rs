//! A minimal HTTP/1.1 layer over `std::net`.
//!
//! The workspace builds offline with zero external dependencies, so instead
//! of hyper this module hand-rolls the small slice of HTTP the service
//! needs: one request per connection (`Connection: close` semantics),
//! request-line + headers + `Content-Length` bodies on the way in, status +
//! headers + body on the way out, and a blocking client for `r2d2 submit`
//! and the integration tests. Requests beyond the size limits are rejected
//! rather than buffered, so a misbehaving client cannot balloon memory.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body. JobSpec submissions are a few hundred
/// bytes; anything near this limit is garbage.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/jobs/abc`).
    pub path: String,
    /// Decoded `k=v` query parameters, in order.
    pub query: Vec<(String, String)>,
    /// `(lowercased-name, value)` headers, in order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First query parameter named `key`.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it is any.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be parsed; maps to a 4xx response.
#[derive(Debug)]
pub enum ParseError {
    /// Peer closed before sending a full request — not an error, just done.
    ConnectionClosed,
    /// Malformed request line or headers.
    Malformed(String),
    /// Head or body exceeded the size limits (413).
    TooLarge,
    /// Socket-level failure.
    Io(std::io::Error),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Read one request from the stream. Treats the connection as one-shot
/// (`Connection: close`): the caller answers and drops the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    // Cap everything we are willing to buffer from one connection; a line
    // that never ends cannot balloon memory past the head limit.
    let limit = (MAX_HEAD_BYTES + MAX_BODY_BYTES) as u64;
    let mut reader = BufReader::new(Read::take(stream, limit));
    let mut head_bytes = 0usize;
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(ParseError::ConnectionClosed);
    }
    head_bytes += n;
    let request_line = line.trim_end().to_string();
    let mut headers = Vec::new();
    loop {
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ParseError::Malformed("truncated headers".into()));
        }
        head_bytes += n;
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Err(ParseError::Malformed(format!("bad header {trimmed:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(ParseError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::new()),
        })
        .collect();

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| ParseError::Malformed("bad Content-Length".into()))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query,
        headers,
        body,
    })
}

/// An HTTP response under construction.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, v: &r2d2_harness::json::Value) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: v.to_json().into_bytes(),
        }
    }

    /// A plain-text response (a trailing newline is appended if missing).
    pub fn text(status: u16, body: &str) -> Response {
        let mut body = body.to_string();
        if !body.ends_with('\n') {
            body.push('\n');
        }
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Add a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize and send over the stream.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason,
            self.content_type,
            self.body.len()
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A streaming response body using `Transfer-Encoding: chunked`.
///
/// The progress endpoint sends an unbounded sequence of NDJSON snapshots
/// whose total length is unknown up front, so `Content-Length` framing is
/// impossible. [`ChunkedWriter::start`] writes the response head, each
/// [`ChunkedWriter::chunk`] frames one payload with the hex-size/CRLF
/// encoding, and [`ChunkedWriter::finish`] terminates the body with the
/// zero-length chunk.
#[derive(Debug)]
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Write the response head and return a writer for the body chunks.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<ChunkedWriter<'a>> {
        ChunkedWriter::start_with(stream, status, content_type, &[])
    }

    /// [`ChunkedWriter::start`] with extra response headers (e.g. the
    /// `Deprecation: true` marker on legacy unversioned paths).
    pub fn start_with(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ChunkedWriter<'a>> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n\
             Connection: close\r\n",
            status,
            reason_phrase(status),
            content_type
        );
        for (k, v) in extra_headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Send one chunk. Empty payloads are skipped — a zero-length chunk
    /// would terminate the body.
    pub fn chunk(&mut self, payload: &[u8]) -> std::io::Result<()> {
        if payload.is_empty() {
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", payload.len())?;
        self.stream.write_all(payload)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminate the body with the final zero-length chunk.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// A client-side response: status code, headers, body.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// `(lowercased-name, value)` response headers.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First header named `name` (lowercase).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking one-shot HTTP client: connect, send `method path`, read the full
/// response. `timeout` bounds connect and each read/write.
pub fn client_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    use std::net::ToSocketAddrs;
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let (status, headers) = read_client_head(&mut reader)?;
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        let mut buf = String::new();
        read_chunks(&mut reader, &mut |chunk| {
            buf.push_str(&String::from_utf8_lossy(chunk));
            Ok(())
        })?;
        buf
    } else {
        match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                String::from_utf8_lossy(&buf).into_owned()
            }
            None => {
                let mut buf = String::new();
                reader.read_to_string(&mut buf)?;
                buf
            }
        }
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// Parse the status line and headers of a client-side response.
fn read_client_head(
    reader: &mut BufReader<TcpStream>,
) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad status line {status_line:?}"),
            )
        })?;
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    Ok((status, headers))
}

/// Decode a chunked body, invoking `on_chunk` for every non-empty chunk
/// until the zero-length terminator. Public so the dispatch tier can relay
/// a backend's chunked stream chunk-for-chunk.
pub fn read_chunks(
    reader: &mut BufReader<TcpStream>,
    on_chunk: &mut dyn FnMut(&[u8]) -> std::io::Result<()>,
) -> std::io::Result<()> {
    loop {
        let mut size_line = String::new();
        let n = reader.read_line(&mut size_line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream closed mid-chunk",
            ));
        }
        let size = usize::from_str_radix(size_line.trim(), 16).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad chunk size {size_line:?}"),
            )
        })?;
        if size == 0 {
            // Consume the trailing CRLF after the terminator (ignore EOF —
            // the peer may just close).
            let mut trailer = String::new();
            let _ = reader.read_line(&mut trailer);
            return Ok(());
        }
        let mut buf = vec![0u8; size];
        reader.read_exact(&mut buf)?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        on_chunk(&buf)?;
    }
}

/// Blocking streaming client: like [`client_request`] but the response body
/// must be chunked, and `on_chunk` is invoked with each chunk's bytes as it
/// arrives. Returns the status and headers once the stream terminates.
///
/// If the response is *not* chunked (an error answer, say), the whole body
/// is delivered as one chunk so callers still see the payload.
pub fn client_stream(
    addr: &str,
    method: &str,
    path: &str,
    timeout: Duration,
    on_chunk: &mut dyn FnMut(&[u8]) -> std::io::Result<()>,
) -> std::io::Result<(u16, Vec<(String, String)>)> {
    let open = client_stream_start(addr, method, path, timeout)?;
    let (status, headers) = (open.status, open.headers.clone());
    open.drain(on_chunk)?;
    Ok((status, headers))
}

/// A streaming request whose head has been read but whose body has not: the
/// status and headers are available before a single body byte is consumed.
/// The dispatch tier uses this to pick its own response head (and a
/// fallback backend on 404) *before* relaying the body downstream —
/// [`client_stream`] only surfaces the status after the stream ends.
#[derive(Debug)]
pub struct StreamStart {
    /// Status code from the backend's status line.
    pub status: u16,
    /// `(lowercased-name, value)` response headers.
    pub headers: Vec<(String, String)>,
    reader: BufReader<TcpStream>,
}

impl StreamStart {
    /// Whether the body is `Transfer-Encoding: chunked`.
    pub fn is_chunked(&self) -> bool {
        self.headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"))
    }

    /// Consume the body, invoking `on_chunk` per chunk (chunked bodies) or
    /// once with the whole payload (`Content-Length`/EOF-delimited bodies).
    pub fn drain(
        mut self,
        on_chunk: &mut dyn FnMut(&[u8]) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        if self.is_chunked() {
            return read_chunks(&mut self.reader, on_chunk);
        }
        let content_length = self
            .headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                self.reader.read_exact(&mut buf)?;
                buf
            }
            None => {
                let mut buf = Vec::new();
                self.reader.read_to_end(&mut buf)?;
                buf
            }
        };
        if !body.is_empty() {
            on_chunk(&body)?;
        }
        Ok(())
    }
}

/// Open a streaming request and read the response head only. See
/// [`StreamStart`] for why the head/body split exists.
pub fn client_stream_start(
    addr: &str,
    method: &str,
    path: &str,
    timeout: Duration,
) -> std::io::Result<StreamStart> {
    use std::net::ToSocketAddrs;
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let (status, headers) = read_client_head(&mut reader)?;
    Ok(StreamStart {
        status,
        headers,
        reader,
    })
}
