#![warn(missing_docs)]
//! A long-lived simulation service over the R2D2 harness.
//!
//! `r2d2 sweep` is batch-shaped: decide the jobs up front, run, exit. This
//! crate serves the interactive shape — a design-space exploration notebook,
//! a dashboard, or several users poking at configurations — without adding a
//! single dependency: the HTTP/1.1 layer is hand-rolled over
//! `std::net::TcpListener` and the wire format is the workspace's own JSON.
//!
//! The moving parts:
//!
//! - [`queue::JobQueue`] — bounded and deduplicating. Jobs are keyed by
//!   [`r2d2_harness::JobSpec::content_hash`], the same key the result cache
//!   uses, so identical in-flight submissions coalesce into one simulation
//!   and completed ones answer straight from `results/cache/`.
//! - [`server::Server`] — accept loop plus a worker pool executing jobs
//!   through [`r2d2_harness::Executor`] with a per-job wall-clock watchdog.
//!   When the queue is full, submissions shed with `429 Too Many Requests`
//!   and a `Retry-After` hint.
//! - [`metrics::Metrics`] — `/metrics` exposes queue depth, in-flight
//!   count, cache hit rate, jobs/sec, and p50/p99 job wall time in
//!   plain-text Prometheus format.
//! - Graceful shutdown — SIGTERM, ctrl-c, or `POST /shutdown` stop intake,
//!   fail still-pending jobs, and drain in-flight work before exit.
//! - [`client`] — a blocking client (`r2d2 submit`) on `std::net::TcpStream`.
//!
//! See `DESIGN.md` § "Service architecture" for the protocol details and
//! `README.md` for a quickstart.

pub mod api;
pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use api::{
    canonical_path, error_body, error_body_retry, error_response, error_response_retry, ApiError,
    ENDPOINTS,
};
pub use client::{
    cancel, healthz, job_status, metrics as fetch_metrics, shutdown, submit, submit_batch,
    submit_set, watch, SubmitOutcome,
};
pub use queue::{Cancel, Job, JobQueue, JobStatus, Lookup, Submit};
pub use server::{install_signal_handlers, signal_received, Server, ServerConfig, ServerHandle};
