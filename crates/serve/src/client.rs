//! Blocking client for the service — used by `r2d2 submit` and the tests.
//!
//! Everything rides on [`crate::http::client_request`]: one `TcpStream` per
//! call, `Connection: close`. The server's JSON bodies come back as parsed
//! [`Value`]s so callers can pick fields without re-stringifying.

use std::time::Duration;

use r2d2_harness::json::{self, Value};
use r2d2_harness::JobSpec;

use crate::http::{client_request, ClientResponse};

/// Outcome of a submission as seen by the client.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// HTTP status the server answered with.
    pub status: u16,
    /// Parsed response body (`Value::Null` when unparseable).
    pub body: Value,
}

impl SubmitOutcome {
    /// The job id, when the submission was accepted.
    pub fn job_id(&self) -> Option<&str> {
        match self.body.get("id") {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The job's wire status (`queued`/`running`/`done`/`failed`), if any.
    pub fn job_status(&self) -> Option<&str> {
        match self.body.get("status") {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }
}

fn parse_body(resp: ClientResponse) -> SubmitOutcome {
    let body = json::parse(&resp.body).unwrap_or(Value::Null);
    SubmitOutcome {
        status: resp.status,
        body,
    }
}

/// Submit a job. With `wait`, blocks until the job completes (the server
/// holds the connection open); `timeout` must then cover the simulation.
pub fn submit(
    addr: &str,
    spec: &JobSpec,
    wait: bool,
    timeout: Duration,
) -> std::io::Result<SubmitOutcome> {
    let path = if wait { "/jobs?wait=1" } else { "/jobs" };
    let mut body = spec.to_json();
    if let Value::Obj(fields) = &mut body {
        // `threads` is an execution knob, not part of the spec's identity,
        // so `JobSpec::to_json` omits it — forward it separately.
        if spec.threads > 0 {
            fields.push(("threads".into(), Value::Int(i128::from(spec.threads))));
        }
    }
    let resp = client_request(addr, "POST", path, Some(&body.to_json()), timeout)?;
    Ok(parse_body(resp))
}

/// Fetch a job's state by id (its content hash).
pub fn job_status(addr: &str, id: &str, timeout: Duration) -> std::io::Result<SubmitOutcome> {
    let resp = client_request(addr, "GET", &format!("/jobs/{id}"), None, timeout)?;
    Ok(parse_body(resp))
}

/// `GET /healthz` — returns the body (`ok` / `draining`).
pub fn healthz(addr: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let resp = client_request(addr, "GET", "/healthz", None, timeout)?;
    Ok((resp.status, resp.body.trim().to_string()))
}

/// `GET /metrics` — the Prometheus-style exposition text.
pub fn metrics(addr: &str, timeout: Duration) -> std::io::Result<String> {
    let resp = client_request(addr, "GET", "/metrics", None, timeout)?;
    Ok(resp.body)
}

/// `POST /shutdown` — ask the server to drain and exit.
pub fn shutdown(addr: &str, timeout: Duration) -> std::io::Result<u16> {
    let resp = client_request(addr, "POST", "/shutdown", None, timeout)?;
    Ok(resp.status)
}
