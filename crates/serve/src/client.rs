//! Blocking client for the service — used by `r2d2 submit` and the tests.
//!
//! Everything rides on [`crate::http::client_request`]: one `TcpStream` per
//! call, `Connection: close`. The server's JSON bodies come back as parsed
//! [`Value`]s so callers can pick fields without re-stringifying.

use std::time::Duration;

use r2d2_harness::json::{self, Value};
use r2d2_harness::JobSpec;

use crate::api::ApiError;
use crate::http::{client_request, client_stream, ClientResponse};

/// Outcome of a submission as seen by the client.
#[derive(Debug)]
pub struct SubmitOutcome {
    /// HTTP status the server answered with.
    pub status: u16,
    /// Parsed response body (`Value::Null` when unparseable).
    pub body: Value,
    /// Seconds from a `Retry-After` header, when the server sent one
    /// (it does on 429 so clients can back off instead of hammering).
    pub retry_after: Option<u64>,
}

impl SubmitOutcome {
    /// The job id, when the submission was accepted.
    pub fn job_id(&self) -> Option<&str> {
        match self.body.get("id") {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The job's wire status (`queued`/`running`/`done`/`failed`), if any.
    pub fn job_status(&self) -> Option<&str> {
        match self.body.get("status") {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Decode the unified error schema from a 4xx/5xx answer, so callers
    /// match on [`ApiError::code`] instead of parsing prose. `None` on
    /// success responses.
    pub fn api_error(&self) -> Option<ApiError> {
        ApiError::from_response(self.status, &self.body)
    }
}

fn parse_body(resp: ClientResponse) -> SubmitOutcome {
    let retry_after = resp.header("retry-after").and_then(|v| v.parse().ok());
    let body = json::parse(&resp.body).unwrap_or(Value::Null);
    SubmitOutcome {
        status: resp.status,
        body,
        retry_after,
    }
}

/// Submit a job. With `wait`, blocks until the job completes (the server
/// holds the connection open); `timeout` must then cover the simulation.
pub fn submit(
    addr: &str,
    spec: &JobSpec,
    wait: bool,
    timeout: Duration,
) -> std::io::Result<SubmitOutcome> {
    let path = if wait { "/v1/jobs?wait=1" } else { "/v1/jobs" };
    let mut body = spec.to_json();
    if let Value::Obj(fields) = &mut body {
        // `threads` is an execution knob, not part of the spec's identity,
        // so `JobSpec::to_json` omits it — forward it separately.
        if spec.threads > 0 {
            fields.push(("threads".into(), Value::Int(i128::from(spec.threads))));
        }
    }
    let resp = client_request(addr, "POST", path, Some(&body.to_json()), timeout)?;
    Ok(parse_body(resp))
}

/// Submit a batch of specs in one `POST /v1/jobs/batch` request. The response
/// body carries `count` and a per-job `jobs` array.
pub fn submit_batch(
    addr: &str,
    specs: &[JobSpec],
    timeout: Duration,
) -> std::io::Result<SubmitOutcome> {
    let arr = Value::Arr(specs.iter().map(JobSpec::to_json).collect());
    let resp = client_request(
        addr,
        "POST",
        "/v1/jobs/batch",
        Some(&arr.to_json()),
        timeout,
    )?;
    Ok(parse_body(resp))
}

/// Submit a named figure set (`{"set": "fig12"}`) — the server resolves the
/// name to its job list, so client and server stay in lockstep on set
/// contents.
pub fn submit_set(addr: &str, name: &str, timeout: Duration) -> std::io::Result<SubmitOutcome> {
    let body = json::obj(vec![("set", json::s(name))]);
    let resp = client_request(
        addr,
        "POST",
        "/v1/jobs/batch",
        Some(&body.to_json()),
        timeout,
    )?;
    Ok(parse_body(resp))
}

/// `DELETE /v1/jobs/<id>` — cancel a queued or running job.
pub fn cancel(addr: &str, id: &str, timeout: Duration) -> std::io::Result<SubmitOutcome> {
    let resp = client_request(addr, "DELETE", &format!("/v1/jobs/{id}"), None, timeout)?;
    Ok(parse_body(resp))
}

/// Stream a job's progress: `GET /v1/jobs/<id>/progress` delivers NDJSON
/// snapshots over a chunked body; `on_snapshot` is invoked with each parsed
/// line as it arrives. Returns the HTTP status once the stream terminates.
///
/// `timeout` bounds each read, not the whole stream — the server sends a
/// snapshot whenever the series advances and a terminal line at the end, so
/// a healthy stream never goes quiet for long.
pub fn watch(
    addr: &str,
    id: &str,
    timeout: Duration,
    on_snapshot: &mut dyn FnMut(&Value),
) -> std::io::Result<u16> {
    let mut pending = String::new();
    let (status, _headers) = client_stream(
        addr,
        "GET",
        &format!("/v1/jobs/{id}/progress"),
        timeout,
        &mut |chunk| {
            // Chunk boundaries need not align with line boundaries; split on
            // newlines and keep the remainder for the next chunk.
            pending.push_str(&String::from_utf8_lossy(chunk));
            while let Some(pos) = pending.find('\n') {
                let line: String = pending.drain(..=pos).collect();
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if let Ok(v) = json::parse(line) {
                    on_snapshot(&v);
                }
            }
            Ok(())
        },
    )?;
    if let Ok(v) = json::parse(pending.trim()) {
        on_snapshot(&v);
    }
    Ok(status)
}

/// Fetch a job's state by id (its content hash).
pub fn job_status(addr: &str, id: &str, timeout: Duration) -> std::io::Result<SubmitOutcome> {
    let resp = client_request(addr, "GET", &format!("/v1/jobs/{id}"), None, timeout)?;
    Ok(parse_body(resp))
}

/// `GET /v1/healthz` — returns the body (`ok` / `draining`).
pub fn healthz(addr: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let resp = client_request(addr, "GET", "/v1/healthz", None, timeout)?;
    Ok((resp.status, resp.body.trim().to_string()))
}

/// `GET /v1/metrics` — the Prometheus-style exposition text.
pub fn metrics(addr: &str, timeout: Duration) -> std::io::Result<String> {
    let resp = client_request(addr, "GET", "/v1/metrics", None, timeout)?;
    Ok(resp.body)
}

/// `POST /v1/shutdown` — ask the server to drain and exit.
pub fn shutdown(addr: &str, timeout: Duration) -> std::io::Result<u16> {
    let resp = client_request(addr, "POST", "/v1/shutdown", None, timeout)?;
    Ok(resp.status)
}
