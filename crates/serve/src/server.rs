//! The resident simulation service.
//!
//! One [`Server`] owns a `TcpListener`, a [`JobQueue`], a worker pool, and
//! shared [`Metrics`]. Connections are one request each (`Connection:
//! close`), handled on short-lived threads; simulation work happens only on
//! the worker pool, which executes jobs through the harness
//! [`Executor`] — so the service, the `sweep` CLI, and the bench targets
//! all share one execution path and one content-addressed cache.
//!
//! ## Endpoints
//!
//! | method & path    | behavior |
//! |------------------|----------|
//! | `POST /jobs`     | submit a JobSpec JSON; `202` queued, `200` done (cache/dedup), `400` bad spec, `429` + `Retry-After` when full, `503` draining. `?wait=1` blocks until the job completes. |
//! | `GET /jobs/<id>` | status/result JSON for a job id (the spec's content hash); falls back to the on-disk cache for evicted entries. |
//! | `GET /healthz`   | liveness: `200 ok` (`503 draining` during shutdown). |
//! | `GET /metrics`   | plain-text Prometheus-style counters. |
//! | `POST /shutdown` | begin graceful shutdown (same path as SIGTERM/ctrl-c). |
//!
//! ## Shutdown protocol
//!
//! SIGTERM, SIGINT (ctrl-c), or `POST /shutdown` set one flag. The accept
//! loop stops taking connections, the queue rejects new submissions (503)
//! and fails still-pending jobs, workers finish the job they are running
//! (in-flight work is drained, never killed), and [`Server::run`] returns.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use r2d2_harness::json::{self, obj, Value};
use r2d2_harness::{Cache, Executor, JobSpec};

use crate::http::{read_request, ParseError, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{JobQueue, JobStatus, Submit};

/// Set by the process signal handlers (SIGTERM / SIGINT); checked by every
/// server's accept loop alongside its own flag.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Install process-wide SIGTERM/SIGINT handlers that request graceful
/// shutdown of every running [`Server`] in the process. Uses the libc
/// `signal` symbol directly — the workspace links no signal-handling crate.
/// No-op on non-unix targets.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        unsafe extern "C" fn on_signal(_sig: i32) {
            // Async-signal-safe: a single atomic store.
            SIGNALED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs. `0` means "no workers" — useful only
    /// in tests that exercise pure queue behavior.
    pub workers: usize,
    /// Pending-queue capacity; submissions beyond it get 429.
    pub queue_cap: usize,
    /// Per-job wall-clock watchdog. A job still running after this is
    /// marked failed and its worker freed (the abandoned simulation thread
    /// finishes in the background and its result is discarded).
    pub job_timeout: Duration,
    /// Read cached results (completed jobs are stored back either way).
    pub use_cache: bool,
    /// Explicit results directory; `None` uses the harness default
    /// (`results/`, honoring `R2D2_RESULTS`).
    pub results_dir: Option<std::path::PathBuf>,
    /// Per-request/connection log lines on stderr.
    pub verbose: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_cap: 256,
            job_timeout: Duration::from_secs(600),
            use_cache: true,
            results_dir: None,
            verbose: false,
        }
    }
}

/// Everything the connection handlers and workers share.
struct Shared {
    cfg: ServerConfig,
    queue: JobQueue,
    metrics: Metrics,
    cache: Cache,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALED.load(Ordering::SeqCst)
    }
}

/// Handle for requesting shutdown from another thread (tests, embedders).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Request graceful shutdown, as SIGTERM would.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.begin_shutdown();
    }
}

/// A bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and build the shared state. The service does not
    /// accept connections until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let cache = match &cfg.results_dir {
            Some(dir) => Cache::at(&dir.join("cache")),
            None => Cache::open_default(),
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_cap),
            metrics: Metrics::default(),
            cache,
            shutdown: AtomicBool::new(false),
            cfg,
        });
        Ok(Server { listener, shared })
    }

    /// The actual bound address (resolves `:0` port picks).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, cloneable across threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Run until graceful shutdown completes: accept loop + worker pool,
    /// then drain. Returns once every worker has finished its last job.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;

        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("r2d2-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }

        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("r2d2-serve-conn".into())
                        .spawn(move || handle_connection(stream, peer, &shared))
                        .expect("spawn connection handler");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: stop the queue (fails pending jobs, wakes workers), then
        // wait for in-flight jobs to finish.
        shared.queue.begin_shutdown();
        for w in workers {
            let _ = w.join();
        }
        if shared.cfg.verbose {
            eprintln!("[serve] drained; bye");
        }
        Ok(())
    }
}

/// Worker: pop jobs until shutdown, executing each under the watchdog.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();

        // Run the simulation on a dedicated thread so the watchdog can give
        // up on it. On timeout the thread is abandoned: it finishes in the
        // background (the simulator has its own cycle watchdog) and its
        // result is dropped with the channel.
        let (tx, rx) = mpsc::channel();
        let spec = job.spec.clone();
        let cache = shared.cache.clone();
        let use_cache = shared.cfg.use_cache;
        std::thread::Builder::new()
            .name("r2d2-serve-sim".into())
            .spawn(move || {
                let result = Executor::new(&cache).use_cache(use_cache).run(&spec);
                let _ = tx.send(result);
            })
            .expect("spawn sim thread");

        let outcome = rx.recv_timeout(shared.cfg.job_timeout);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok(Ok(rec)) => {
                if rec.cached {
                    shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.metrics.simulated.fetch_add(1, Ordering::Relaxed);
                }
                shared.metrics.observe_wall_ms(wall_ms);
                if shared.cfg.verbose {
                    eprintln!(
                        "[serve] {} {} {:.0}ms{}",
                        job.id,
                        job.spec.label(),
                        wall_ms,
                        if rec.cached { " (cached)" } else { "" }
                    );
                }
                job.mark_done(rec);
            }
            Ok(Err(e)) => {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                if shared.cfg.verbose {
                    eprintln!("[serve] {} {} FAILED: {e}", job.id, job.spec.label());
                }
                job.mark_failed(e);
            }
            Err(_) => {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                let msg = format!(
                    "timed out after {:.0}s (per-job watchdog)",
                    shared.cfg.job_timeout.as_secs_f64()
                );
                if shared.cfg.verbose {
                    eprintln!("[serve] {} {} {msg}", job.id, job.spec.label());
                }
                job.mark_failed(msg);
            }
        }
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.queue.finished(&job);
    }
}

fn handle_connection(mut stream: TcpStream, peer: std::net::SocketAddr, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let response = match read_request(&mut stream) {
        Ok(req) => {
            let resp = route(&req, shared);
            if shared.cfg.verbose {
                eprintln!(
                    "[serve] {peer} {} {} -> {}",
                    req.method, req.path, resp.status
                );
            }
            resp
        }
        Err(ParseError::ConnectionClosed) => return,
        Err(ParseError::TooLarge) => Response::text(413, "request too large"),
        Err(ParseError::Malformed(e)) => Response::text(400, &format!("malformed request: {e}")),
        Err(ParseError::Io(_)) => return,
    };
    let _ = response.write_to(&mut stream);
}

fn route(req: &Request, shared: &Arc<Shared>) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/jobs") => post_jobs(req, shared),
        ("GET", path) if path.starts_with("/jobs/") => get_job(&path["/jobs/".len()..], shared),
        ("GET", "/healthz") => {
            if shared.shutting_down() {
                Response::text(503, "draining")
            } else {
                Response::text(200, "ok")
            }
        }
        ("GET", "/metrics") => Response::text(200, &shared.metrics.render(shared.queue.depth())),
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.begin_shutdown();
            Response::text(200, "draining")
        }
        ("GET" | "POST", _) => Response::text(404, "not found"),
        _ => Response::text(405, "method not allowed"),
    }
}

/// JSON body for one job's state.
fn job_json(
    id: &str,
    spec: &JobSpec,
    status: JobStatus,
    record: Option<&r2d2_harness::RunRecord>,
    error: Option<&str>,
) -> Value {
    obj(vec![
        ("id", json::s(id)),
        ("status", json::s(status.as_str())),
        ("spec", spec.to_json()),
        (
            "record",
            record.map_or(Value::Null, r2d2_harness::RunRecord::to_json),
        ),
        ("error", error.map_or(Value::Null, json::s)),
    ])
}

fn error_json(msg: &str) -> Value {
    obj(vec![("error", json::s(msg))])
}

fn post_jobs(req: &Request, shared: &Arc<Shared>) -> Response {
    let Some(body) = req.body_str() else {
        return Response::json(400, &error_json("body must be UTF-8 JSON"));
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return Response::json(400, &error_json(&format!("bad JSON: {e}"))),
    };
    let spec = match JobSpec::from_json_request(&parsed) {
        Ok(s) => s,
        Err(e) => return Response::json(400, &error_json(&format!("bad JobSpec: {e}"))),
    };
    if !r2d2_workloads::is_valid_id(&spec.workload) {
        return Response::json(
            400,
            &error_json(&format!("unknown workload id {:?}", spec.workload)),
        );
    }

    shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);

    // Probe the result cache before queueing: completed experiments answer
    // instantly without occupying a queue slot or a worker.
    let submit = if shared.cfg.use_cache {
        match Executor::new(&shared.cache).probe(&spec) {
            Some(rec) => {
                shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                shared.metrics.observe_wall_ms(0.0);
                shared.queue.insert_completed(spec.clone(), rec)
            }
            None => shared.queue.submit(spec.clone()),
        }
    } else {
        shared.queue.submit(spec.clone())
    };

    let (job, deduped, status_code) = match submit {
        Submit::Enqueued(job) => (job, false, 202),
        Submit::Existing(job) => {
            shared.metrics.deduped.fetch_add(1, Ordering::Relaxed);
            (job, true, 200)
        }
        Submit::Full => {
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            return Response::json(429, &error_json("queue full; retry later"))
                .header("Retry-After", "1");
        }
        Submit::ShuttingDown => {
            return Response::json(503, &error_json("server is draining"));
        }
    };

    if req.query_param("wait").is_some_and(|v| v != "0") {
        // Block until completion, bounded by the job watchdog plus slack so
        // a timed-out job still reports `failed` rather than hanging us.
        let slack = shared.cfg.job_timeout + Duration::from_secs(30);
        if !job.wait(slack) {
            return Response::json(408, &error_json("timed out waiting for the job"));
        }
    }

    let (status, record, error) = job.snapshot();
    let mut fields = match job_json(
        &job.id,
        &job.spec,
        status,
        record.as_ref(),
        error.as_deref(),
    ) {
        Value::Obj(f) => f,
        _ => unreachable!("job_json returns an object"),
    };
    fields.push(("deduped".into(), Value::Bool(deduped)));
    let code = if status == JobStatus::Done || status == JobStatus::Failed {
        200
    } else {
        status_code
    };
    Response::json(code, &Value::Obj(fields))
}

fn get_job(id: &str, shared: &Arc<Shared>) -> Response {
    let Ok(hash) = u64::from_str_radix(id, 16) else {
        return Response::json(400, &error_json("job ids are 16 hex digits"));
    };
    if let Some(job) = shared.queue.get(hash) {
        let (status, record, error) = job.snapshot();
        return Response::json(
            200,
            &job_json(
                &job.id,
                &job.spec,
                status,
                record.as_ref(),
                error.as_deref(),
            ),
        );
    }
    // Fall back to the on-disk cache: evicted entries and results produced
    // by earlier processes are still addressable by the same id.
    if let Some((spec, rec)) = load_cached_by_hash(&shared.cache, id) {
        return Response::json(200, &job_json(id, &spec, JobStatus::Done, Some(&rec), None));
    }
    Response::json(404, &error_json("unknown job id"))
}

/// Read `results/cache/<id>.json` directly and verify the embedded spec
/// hashes to `id` (same trust model as `Cache::load`).
fn load_cached_by_hash(cache: &Cache, id: &str) -> Option<(JobSpec, r2d2_harness::RunRecord)> {
    let path = cache.dir().join(format!("{id}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    let v = json::parse(&text).ok()?;
    let spec = JobSpec::from_json(v.get("spec")?)?;
    if spec.hash_hex() != id {
        return None;
    }
    let rec = r2d2_harness::RunRecord::from_json(v.get("record")?)?;
    Some((spec, rec))
}
