//! The resident simulation service.
//!
//! One [`Server`] owns a `TcpListener`, a [`JobQueue`], a worker pool, and
//! shared [`Metrics`]. Connections are one request each (`Connection:
//! close`), handled on short-lived threads; simulation work happens only on
//! the worker pool, which executes jobs through the harness
//! [`Executor`] — so the service, the `sweep` CLI, and the bench targets
//! all share one execution path and one content-addressed cache.
//!
//! ## Endpoints
//!
//! Every endpoint lives under the frozen `/v1` prefix; the unprefixed
//! pre-v1 spellings remain as deprecated aliases that behave identically
//! but answer with a `Deprecation: true` header. All 4xx/5xx responses
//! carry the unified error schema (see [`crate::api`]).
//!
//! | method & path    | behavior |
//! |------------------|----------|
//! | `POST /v1/jobs`  | submit a JobSpec JSON; `202` queued, `200` done (cache/dedup), `400` bad spec, `429` + `Retry-After` when full, `503` draining. `?wait=1` blocks until the job completes. |
//! | `POST /v1/jobs/batch` | submit many jobs at once: a JSON array of JobSpecs, or `{"set": "fig12"}` naming a harness figure set. Returns per-job ids; `200` when at least one job was accepted, `429` when every job shed. |
//! | `GET /v1/jobs/<id>` | status/result JSON for a job id (the spec's content hash); falls back to the on-disk cache for evicted entries. |
//! | `DELETE /v1/jobs/<id>` | cancel: queued jobs move straight to `cancelled` (`200`); running jobs get their token triggered and stop within one simulation epoch (`202`); terminal jobs are a no-op (`200`). |
//! | `GET /v1/jobs/<id>/progress` | chunked NDJSON stream of the job's live time series; the final line carries the terminal status and the complete series. |
//! | `GET /v1/healthz` | liveness: `200 ok` (`503` + `draining` error body during shutdown). |
//! | `GET /v1/metrics` | plain-text Prometheus-style counters. |
//! | `POST /v1/shutdown` | begin graceful shutdown (same path as SIGTERM/ctrl-c). |
//!
//! ## Shutdown protocol
//!
//! SIGTERM, SIGINT (ctrl-c), or `POST /shutdown` set one flag. The accept
//! loop stops taking connections, the queue rejects new submissions (503)
//! and fails still-pending jobs, workers finish the job they are running
//! (in-flight work is drained, never killed), and [`Server::run`] returns.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use r2d2_harness::json::{self, obj, Value};
use r2d2_harness::{Cache, Executor, JobSpec, ProgressSnapshot};

use crate::api::{canonical_path, error_response, error_response_retry};
use crate::http::{read_request, ChunkedWriter, ParseError, Request, Response};
use crate::metrics::Metrics;
use crate::queue::{
    parse_job_id, Cancel, Job, JobQueue, JobStatus, Lookup, Submit, RETAIN_COMPLETED,
};

/// Set by the process signal handlers (SIGTERM / SIGINT); checked by every
/// server's accept loop alongside its own flag.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Install process-wide SIGTERM/SIGINT handlers that request graceful
/// shutdown of every running [`Server`] in the process. Uses the libc
/// `signal` symbol directly — the workspace links no signal-handling crate.
/// No-op on non-unix targets.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        unsafe extern "C" fn on_signal(_sig: i32) {
            // Async-signal-safe: a single atomic store.
            SIGNALED.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

/// Whether a SIGTERM/SIGINT handled by [`install_signal_handlers`] has
/// fired. The dispatch tier polls this from its own accept loop so one
/// handler installation serves every server kind in the process.
pub fn signal_received() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8787` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing jobs. `0` means "no workers" — useful only
    /// in tests that exercise pure queue behavior.
    pub workers: usize,
    /// Pending-queue capacity; submissions beyond it get 429.
    pub queue_cap: usize,
    /// Per-job wall-clock watchdog. A job still running after this is
    /// marked failed and its worker freed (the abandoned simulation thread
    /// finishes in the background and its result is discarded).
    pub job_timeout: Duration,
    /// Read cached results (completed jobs are stored back either way).
    pub use_cache: bool,
    /// Completed entries retained in memory for `GET /jobs/<id>`; evicted
    /// ones remain answerable from the on-disk cache.
    pub retain_completed: usize,
    /// Explicit results directory; `None` uses the harness default
    /// (`results/`, honoring `R2D2_RESULTS`).
    pub results_dir: Option<std::path::PathBuf>,
    /// Per-request/connection log lines on stderr.
    pub verbose: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8787".into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_cap: 256,
            job_timeout: Duration::from_secs(600),
            use_cache: true,
            retain_completed: RETAIN_COMPLETED,
            results_dir: None,
            verbose: false,
        }
    }
}

/// Everything the connection handlers and workers share.
struct Shared {
    cfg: ServerConfig,
    queue: JobQueue,
    metrics: Metrics,
    cache: Cache,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNALED.load(Ordering::SeqCst)
    }
}

/// Handle for requesting shutdown from another thread (tests, embedders).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Request graceful shutdown, as SIGTERM would.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue.begin_shutdown();
    }
}

/// A bound-but-not-yet-running service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and build the shared state. The service does not
    /// accept connections until [`Server::run`].
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let cache = match &cfg.results_dir {
            Some(dir) => Cache::at(&dir.join("cache")),
            None => Cache::open_default(),
        };
        let shared = Arc::new(Shared {
            queue: JobQueue::with_retention(cfg.queue_cap, cfg.retain_completed),
            metrics: Metrics::default(),
            cache,
            shutdown: AtomicBool::new(false),
            cfg,
        });
        Ok(Server { listener, shared })
    }

    /// The actual bound address (resolves `:0` port picks).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, cloneable across threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Run until graceful shutdown completes: accept loop + worker pool,
    /// then drain. Returns once every worker has finished its last job.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;

        let mut workers = Vec::new();
        for i in 0..shared.cfg.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("r2d2-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker"),
            );
        }

        while !shared.shutting_down() {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name("r2d2-serve-conn".into())
                        .spawn(move || handle_connection(stream, peer, &shared))
                        .expect("spawn connection handler");
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: stop the queue (fails pending jobs, wakes workers), then
        // wait for in-flight jobs to finish.
        shared.queue.begin_shutdown();
        for w in workers {
            let _ = w.join();
        }
        if shared.cfg.verbose {
            eprintln!("[serve] drained; bye");
        }
        Ok(())
    }
}

/// Worker: pop jobs until shutdown, executing each under the watchdog.
fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();

        // Run the simulation on a dedicated thread so the watchdog can give
        // up on it. On timeout the thread is abandoned: it finishes in the
        // background (the simulator has its own cycle watchdog) and its
        // result is dropped with the channel.
        let (tx, rx) = mpsc::channel();
        let spec = job.spec.clone();
        let cache = shared.cache.clone();
        let use_cache = shared.cfg.use_cache;
        let cancel = job.cancel.clone();
        let progress = job.progress.clone();
        std::thread::Builder::new()
            .name("r2d2-serve-sim".into())
            .spawn(move || {
                let result = Executor::new(&cache)
                    .use_cache(use_cache)
                    .cancel(cancel)
                    .progress(progress)
                    .run(&spec);
                let _ = tx.send(result);
            })
            .expect("spawn sim thread");

        let outcome = rx.recv_timeout(shared.cfg.job_timeout);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        match outcome {
            Ok(Ok(rec)) => {
                if rec.cached {
                    shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared.metrics.simulated.fetch_add(1, Ordering::Relaxed);
                }
                shared.metrics.observe_wall_ms(wall_ms);
                if shared.cfg.verbose {
                    eprintln!(
                        "[serve] {} {} {:.0}ms{}",
                        job.id,
                        job.spec.label(),
                        wall_ms,
                        if rec.cached { " (cached)" } else { "" }
                    );
                }
                job.mark_done(rec);
            }
            Ok(Err(e)) if job.cancel.is_cancelled() => {
                shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
                if shared.cfg.verbose {
                    eprintln!("[serve] {} {} CANCELLED: {e}", job.id, job.spec.label());
                }
                job.mark_cancelled(e);
            }
            Ok(Err(e)) => {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                if shared.cfg.verbose {
                    eprintln!("[serve] {} {} FAILED: {e}", job.id, job.spec.label());
                }
                job.mark_failed(e);
            }
            Err(_) => {
                // The watchdog gave up on this job; trigger its token so the
                // abandoned simulation thread actually stops at the next
                // epoch instead of burning a core to produce a discarded
                // result.
                job.cancel.cancel();
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                let msg = format!(
                    "timed out after {:.0}s (per-job watchdog)",
                    shared.cfg.job_timeout.as_secs_f64()
                );
                if shared.cfg.verbose {
                    eprintln!("[serve] {} {} {msg}", job.id, job.spec.label());
                }
                job.mark_failed(msg);
            }
        }
        shared.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.queue.finished(&job);
    }
}

fn handle_connection(mut stream: TcpStream, peer: std::net::SocketAddr, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let response = match read_request(&mut stream) {
        Ok(req) => {
            let (path, deprecated) = canonical_path(&req.path);
            // The progress stream writes its own (chunked) response and
            // holds the connection open, so it bypasses `route`.
            if req.method == "GET" {
                if let Some(id) = path
                    .strip_prefix("/v1/jobs/")
                    .and_then(|rest| rest.strip_suffix("/progress"))
                {
                    if shared.cfg.verbose {
                        eprintln!("[serve] {peer} GET {} -> stream", req.path);
                    }
                    stream_progress(id, &mut stream, shared, deprecated);
                    return;
                }
            }
            let resp = route(&req, &path, shared);
            let resp = if deprecated {
                resp.header("Deprecation", "true")
            } else {
                resp
            };
            if shared.cfg.verbose {
                eprintln!(
                    "[serve] {peer} {} {} -> {}",
                    req.method, req.path, resp.status
                );
            }
            resp
        }
        Err(ParseError::ConnectionClosed) => return,
        Err(ParseError::TooLarge) => error_response(
            413,
            "payload-too-large",
            "request head or body exceeds the size limits",
        ),
        Err(ParseError::Malformed(e)) => {
            error_response(400, "malformed-request", &format!("malformed request: {e}"))
        }
        Err(ParseError::Io(_)) => return,
    };
    let _ = response.write_to(&mut stream);
}

/// Dispatch one parsed request. `path` is the canonical `/v1/...` spelling
/// (legacy aliases have already been rewritten by [`canonical_path`]).
fn route(req: &Request, path: &str, shared: &Arc<Shared>) -> Response {
    match (req.method.as_str(), path) {
        ("POST", "/v1/jobs") => post_jobs(req, shared),
        ("POST", "/v1/jobs/batch") => post_batch(req, shared),
        ("GET", p) if p.starts_with("/v1/jobs/") => get_job(&p["/v1/jobs/".len()..], shared),
        ("DELETE", p) if p.starts_with("/v1/jobs/") => delete_job(&p["/v1/jobs/".len()..], shared),
        ("GET", "/v1/healthz") => {
            if shared.shutting_down() {
                error_response(503, "draining", "server is draining")
            } else {
                Response::text(200, "ok")
            }
        }
        ("GET", "/v1/metrics") => Response::text(200, &shared.metrics.render(shared.queue.depth())),
        ("POST", "/v1/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.begin_shutdown();
            Response::text(200, "draining")
        }
        ("GET" | "POST" | "DELETE", _) => {
            error_response(404, "not-found", &format!("no route for {path}"))
        }
        _ => error_response(
            405,
            "method-not-allowed",
            &format!("method {} is not supported", req.method),
        ),
    }
}

/// JSON body for one job's state.
fn job_json(
    id: &str,
    spec: &JobSpec,
    status: JobStatus,
    record: Option<&r2d2_harness::RunRecord>,
    error: Option<&str>,
) -> Value {
    obj(vec![
        ("id", json::s(id)),
        ("status", json::s(status.as_str())),
        ("spec", spec.to_json()),
        (
            "record",
            record.map_or(Value::Null, r2d2_harness::RunRecord::to_json),
        ),
        ("error", error.map_or(Value::Null, json::s)),
    ])
}

/// A 400-class rejection before a spec ever reaches the queue: the stable
/// error `code` plus the human message, rendered through the unified schema.
struct Reject {
    code: &'static str,
    message: String,
}

impl Reject {
    fn response(&self) -> Response {
        error_response(400, self.code, &self.message)
    }
}

/// Parse and validate one JobSpec from a request-body JSON value.
fn spec_from_value(v: &Value) -> Result<JobSpec, Reject> {
    let spec = JobSpec::from_json_request(v).map_err(|e| Reject {
        code: "bad-spec",
        message: format!("bad JobSpec: {e}"),
    })?;
    if !r2d2_workloads::is_valid_id(&spec.workload) {
        return Err(Reject {
            code: "unknown-workload",
            message: format!("unknown workload id {:?}", spec.workload),
        });
    }
    Ok(spec)
}

/// Outcome of one spec's trip through the submission flow — shared by
/// `POST /jobs` and `POST /jobs/batch` so both answer from the cache,
/// coalesce duplicates, and bump the same counters.
enum SubmitFlow {
    Accepted {
        job: Arc<Job>,
        deduped: bool,
        status_code: u16,
    },
    Full,
    ShuttingDown,
}

fn submit_spec(spec: JobSpec, shared: &Arc<Shared>) -> SubmitFlow {
    shared.metrics.submitted.fetch_add(1, Ordering::Relaxed);

    // Probe the result cache before queueing: completed experiments answer
    // instantly without occupying a queue slot or a worker.
    let submit = if shared.cfg.use_cache {
        match Executor::new(&shared.cache).probe(&spec) {
            Some(rec) => {
                shared.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                shared.metrics.observe_wall_ms(0.0);
                shared.queue.insert_completed(spec, rec)
            }
            None => shared.queue.submit(spec),
        }
    } else {
        shared.queue.submit(spec)
    };

    match submit {
        Submit::Enqueued(job) => SubmitFlow::Accepted {
            job,
            deduped: false,
            status_code: 202,
        },
        Submit::Existing(job) => {
            shared.metrics.deduped.fetch_add(1, Ordering::Relaxed);
            SubmitFlow::Accepted {
                job,
                deduped: true,
                status_code: 200,
            }
        }
        Submit::Full => {
            shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            SubmitFlow::Full
        }
        Submit::ShuttingDown => SubmitFlow::ShuttingDown,
    }
}

fn post_jobs(req: &Request, shared: &Arc<Shared>) -> Response {
    let Some(body) = req.body_str() else {
        return error_response(400, "bad-json", "body must be UTF-8 JSON");
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return error_response(400, "bad-json", &format!("bad JSON: {e}")),
    };
    let spec = match spec_from_value(&parsed) {
        Ok(s) => s,
        Err(e) => return e.response(),
    };

    let (job, deduped, status_code) = match submit_spec(spec, shared) {
        SubmitFlow::Accepted {
            job,
            deduped,
            status_code,
        } => (job, deduped, status_code),
        SubmitFlow::Full => {
            return error_response_retry(429, "queue-full", "queue full; retry later", 1);
        }
        SubmitFlow::ShuttingDown => {
            return error_response(503, "draining", "server is draining");
        }
    };

    if req.query_param("wait").is_some_and(|v| v != "0") {
        // Block until completion, bounded by the job watchdog plus slack so
        // a timed-out job still reports `failed` rather than hanging us.
        let slack = shared.cfg.job_timeout + Duration::from_secs(30);
        if !job.wait(slack) {
            return error_response(408, "wait-timeout", "timed out waiting for the job");
        }
    }

    let (status, record, error) = job.snapshot();
    let mut fields = match job_json(
        &job.id,
        &job.spec,
        status,
        record.as_ref(),
        error.as_deref(),
    ) {
        Value::Obj(f) => f,
        _ => unreachable!("job_json returns an object"),
    };
    fields.push(("deduped".into(), Value::Bool(deduped)));
    let code = if status.is_terminal() {
        200
    } else {
        status_code
    };
    Response::json(code, &Value::Obj(fields))
}

fn get_job(id: &str, shared: &Arc<Shared>) -> Response {
    match shared.queue.lookup(id, &shared.cache) {
        Lookup::Live(job) => {
            let (status, record, error) = job.snapshot();
            Response::json(
                200,
                &job_json(
                    &job.id,
                    &job.spec,
                    status,
                    record.as_ref(),
                    error.as_deref(),
                ),
            )
        }
        Lookup::Cached(spec, rec) => {
            Response::json(200, &job_json(id, &spec, JobStatus::Done, Some(&rec), None))
        }
        Lookup::BadId => bad_job_id(),
        Lookup::Missing => unknown_job(id),
    }
}

fn bad_job_id() -> Response {
    error_response(400, "bad-job-id", "job ids are 16 hex digits")
}

fn unknown_job(id: &str) -> Response {
    error_response(404, "unknown-job", &format!("unknown job id {id:?}"))
}

/// Resolve a batch request body into its job specs — a JSON array of specs
/// or `{"set": <name>}` naming a harness figure set. Shared verbatim by the
/// service and the dispatch tier so both resolve sets identically.
pub fn batch_specs(parsed: &Value) -> Result<Vec<JobSpec>, Response> {
    match parsed {
        Value::Arr(items) => {
            if items.is_empty() {
                return Err(error_response(400, "bad-batch", "empty batch"));
            }
            let mut specs = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                match spec_from_value(item) {
                    Ok(s) => specs.push(s),
                    Err(e) => {
                        return Err(error_response(
                            400,
                            e.code,
                            &format!("job {i}: {}", e.message),
                        ))
                    }
                }
            }
            Ok(specs)
        }
        Value::Obj(_) => {
            let Some(Value::Str(name)) = parsed.get("set") else {
                return Err(error_response(
                    400,
                    "bad-batch",
                    "batch body must be a JSON array of JobSpecs or {\"set\": <name>}",
                ));
            };
            let size = match parsed.get("size") {
                Some(Value::Str(s)) if s.eq_ignore_ascii_case("small") => {
                    r2d2_workloads::Size::Small
                }
                Some(Value::Str(s)) if s.eq_ignore_ascii_case("full") => r2d2_workloads::Size::Full,
                None => r2d2_harness::size_from_env(),
                Some(_) => {
                    return Err(error_response(
                        400,
                        "bad-batch",
                        "size must be \"small\" or \"full\"",
                    ));
                }
            };
            match r2d2_harness::sets::set(name, size) {
                Some(specs) => Ok(specs),
                None => Err(error_response(
                    400,
                    "unknown-set",
                    &format!(
                        "unknown set {:?}; known sets: {}",
                        name,
                        r2d2_harness::sets::SET_NAMES.join(", ")
                    ),
                )),
            }
        }
        _ => Err(error_response(
            400,
            "bad-batch",
            "batch body must be a JSON array of JobSpecs or {\"set\": <name>}",
        )),
    }
}

fn post_batch(req: &Request, shared: &Arc<Shared>) -> Response {
    let Some(body) = req.body_str() else {
        return error_response(400, "bad-json", "body must be UTF-8 JSON");
    };
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return error_response(400, "bad-json", &format!("bad JSON: {e}")),
    };
    let specs = match batch_specs(&parsed) {
        Ok(specs) => specs,
        Err(resp) => return resp,
    };

    let mut jobs = Vec::with_capacity(specs.len());
    let mut accepted = 0u64;
    let mut shed = 0u64;
    for spec in specs {
        match submit_spec(spec, shared) {
            SubmitFlow::Accepted { job, deduped, .. } => {
                accepted += 1;
                let (status, _, _) = job.snapshot();
                jobs.push(obj(vec![
                    ("id", json::s(&job.id)),
                    ("status", json::s(status.as_str())),
                    ("deduped", Value::Bool(deduped)),
                ]));
            }
            SubmitFlow::Full => {
                shed += 1;
                jobs.push(crate::api::error_body_retry(
                    "queue-full",
                    "queue full",
                    Some(1),
                ));
            }
            SubmitFlow::ShuttingDown => {
                return error_response(503, "draining", "server is draining");
            }
        }
    }
    if accepted == 0 {
        return error_response_retry(429, "queue-full", "queue full; retry later", 1);
    }
    shared.metrics.batches.fetch_add(1, Ordering::Relaxed);
    Response::json(
        200,
        &obj(vec![
            ("count", json::int(accepted)),
            ("shed", json::int(shed)),
            ("jobs", Value::Arr(jobs)),
        ]),
    )
}

fn delete_job(id: &str, shared: &Arc<Shared>) -> Response {
    let Some(hash) = parse_job_id(id) else {
        return bad_job_id();
    };
    let (job, code) = match shared.queue.cancel(hash) {
        Cancel::Dequeued(job) => {
            shared.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            (job, 200)
        }
        // The worker finishes the transition (and bumps the counter) when
        // the simulator observes the token — or not, if completion raced
        // the request; 202 says "signalled", not "cancelled".
        Cancel::Signalled(job) => (job, 202),
        Cancel::Terminal(job) => (job, 200),
        Cancel::NotFound => return unknown_job(id),
    };
    let (status, record, error) = job.snapshot();
    Response::json(
        code,
        &job_json(
            &job.id,
            &job.spec,
            status,
            record.as_ref(),
            error.as_deref(),
        ),
    )
}

/// `GET /jobs/<id>/progress`: stream the job's live time series as chunked
/// NDJSON. Each line is a [`ProgressSnapshot`]; the final line additionally
/// carries `status` (and `error`, if any) plus the complete series, so a
/// client that only reads the last line still gets everything.
fn stream_progress(id: &str, stream: &mut TcpStream, shared: &Arc<Shared>, deprecated: bool) {
    let extra: &[(&str, &str)] = if deprecated {
        &[("Deprecation", "true")]
    } else {
        &[]
    };
    let decorate = |resp: Response| {
        if deprecated {
            resp.header("Deprecation", "true")
        } else {
            resp
        }
    };
    let job = match shared.queue.lookup(id, &shared.cache) {
        Lookup::Live(job) => job,
        Lookup::Cached(..) => {
            // Evicted or prior-process results: one terminal line from the
            // disk cache (the live series is gone, but the terminal state is
            // not) — same lookup path as `GET /v1/jobs/<id>`.
            let snap = ProgressSnapshot {
                finished: true,
                ..ProgressSnapshot::default()
            };
            let _ = send_final_line(stream, &snap, JobStatus::Done, None, extra);
            return;
        }
        Lookup::BadId => {
            let _ = decorate(bad_job_id()).write_to(stream);
            return;
        }
        Lookup::Missing => {
            let _ = decorate(unknown_job(id)).write_to(stream);
            return;
        }
    };

    let Ok(mut w) = ChunkedWriter::start_with(stream, 200, "application/x-ndjson", extra) else {
        return;
    };
    let mut last_seq = 0u64;
    loop {
        // Status before snapshot: `mark_*` sets the status first and then
        // finishes the progress handle, so `terminal && finished` here means
        // the snapshot is the complete final series.
        let (status, _, error) = job.snapshot();
        let snap = job.progress.snapshot();
        if status.is_terminal() && snap.finished {
            let mut fields = match snap.to_json() {
                Value::Obj(f) => f,
                _ => unreachable!("snapshot JSON is an object"),
            };
            fields.push(("status".into(), json::s(status.as_str())));
            if let Some(e) = &error {
                fields.push(("error".into(), json::s(e)));
            }
            let mut line = Value::Obj(fields).to_json();
            line.push('\n');
            let _ = w.chunk(line.as_bytes());
            let _ = w.finish();
            return;
        }
        if snap.seq != last_seq {
            last_seq = snap.seq;
            let mut line = snap.to_json().to_json();
            line.push('\n');
            if w.chunk(line.as_bytes()).is_err() {
                return; // client went away
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Write a complete single-line chunked stream: head, one final NDJSON line
/// (snapshot + status), terminator.
fn send_final_line(
    stream: &mut TcpStream,
    snap: &ProgressSnapshot,
    status: JobStatus,
    error: Option<&str>,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut w = ChunkedWriter::start_with(stream, 200, "application/x-ndjson", extra_headers)?;
    let mut fields = match snap.to_json() {
        Value::Obj(f) => f,
        _ => unreachable!("snapshot JSON is an object"),
    };
    fields.push(("status".into(), json::s(status.as_str())));
    if let Some(e) = error {
        fields.push(("error".into(), json::s(e)));
    }
    let mut line = Value::Obj(fields).to_json();
    line.push('\n');
    w.chunk(line.as_bytes())?;
    w.finish()
}
