//! The bounded, deduplicating job queue.
//!
//! Jobs are keyed by their [`JobSpec::content_hash`] — the same key the
//! harness cache uses — so two submissions of the same experiment are the
//! same job: while one is queued or running, later submissions coalesce
//! onto it instead of queueing a second simulation, and its id is stable
//! across clients. Completed entries are retained (bounded) for `GET
//! /jobs/<id>`; evicted ones remain answerable from the on-disk cache.
//!
//! Depth is bounded by `cap`: submissions that would grow `pending` beyond
//! it are rejected ([`Submit::Full`] → HTTP 429), so a traffic spike sheds
//! load instead of growing memory without bound.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use r2d2_harness::{json, Cache, CancelToken, JobSpec, Progress, RunRecord};

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished successfully (`record` is set).
    Done,
    /// Failed (`error` is set): bad spec, simulation error, timeout, or the
    /// server shut down before the job ran.
    Failed,
    /// Cancelled by `DELETE /jobs/<id>` before completing (`error` describes
    /// where it was caught). Terminal, like `Done`/`Failed`.
    Cancelled,
}

impl JobStatus {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }

    /// Whether this status is final (waiters stop waiting, retention may
    /// evict).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// Mutable state of one job.
#[derive(Debug)]
pub struct JobState {
    /// Current lifecycle state.
    pub status: JobStatus,
    /// Result, once `Done`.
    pub record: Option<RunRecord>,
    /// Failure description, once `Failed`.
    pub error: Option<String>,
}

/// One deduplicated job: the immutable spec plus guarded state and a
/// condvar waiters block on (`?wait=1`, graceful drain).
#[derive(Debug)]
pub struct Job {
    /// The experiment this job runs.
    pub spec: JobSpec,
    /// 16-hex-digit content hash; doubles as the job id.
    pub id: String,
    /// Cooperative cancel token the worker threads into the simulator;
    /// triggered by [`JobQueue::cancel`] on a running job.
    pub cancel: CancelToken,
    /// Live time-series mirror fed by the worker's progress profiler and
    /// streamed by `GET /jobs/<id>/progress`. Empty (but finished) for jobs
    /// answered from the cache.
    pub progress: Progress,
    state: Mutex<JobState>,
    done: Condvar,
}

impl Job {
    fn new(spec: JobSpec) -> Job {
        let id = spec.hash_hex();
        Job {
            spec,
            id,
            cancel: CancelToken::new(),
            progress: Progress::new(),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                record: None,
                error: None,
            }),
            done: Condvar::new(),
        }
    }

    /// Snapshot `(status, record, error)`.
    pub fn snapshot(&self) -> (JobStatus, Option<RunRecord>, Option<String>) {
        let s = self.state.lock().unwrap();
        (s.status, s.record.clone(), s.error.clone())
    }

    /// Move to `Running` (worker picked it up).
    pub fn mark_running(&self) {
        self.state.lock().unwrap().status = JobStatus::Running;
    }

    /// Complete with a result and wake every waiter.
    pub fn mark_done(&self, record: RunRecord) {
        let mut s = self.state.lock().unwrap();
        s.status = JobStatus::Done;
        s.record = Some(record);
        drop(s);
        self.progress.finish();
        self.done.notify_all();
    }

    /// Fail with an error and wake every waiter.
    pub fn mark_failed(&self, error: String) {
        let mut s = self.state.lock().unwrap();
        s.status = JobStatus::Failed;
        s.error = Some(error);
        drop(s);
        self.progress.finish();
        self.done.notify_all();
    }

    /// Terminally cancel with a description and wake every waiter.
    pub fn mark_cancelled(&self, error: String) {
        let mut s = self.state.lock().unwrap();
        s.status = JobStatus::Cancelled;
        s.error = Some(error);
        drop(s);
        self.progress.finish();
        self.done.notify_all();
    }

    /// Block until the job reaches a terminal state or `timeout` elapses.
    /// Returns `false` on timeout.
    pub fn wait(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.state.lock().unwrap();
        while !s.status.is_terminal() {
            let now = std::time::Instant::now();
            let Some(left) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return false;
            };
            let (guard, res) = self.done.wait_timeout(s, left).unwrap();
            s = guard;
            if res.timed_out() && !s.status.is_terminal() {
                return false;
            }
        }
        true
    }
}

/// Outcome of a submission attempt.
#[derive(Debug)]
pub enum Submit {
    /// A new job was enqueued.
    Enqueued(Arc<Job>),
    /// An identical job already exists (queued, running, or completed);
    /// the submission coalesced onto it.
    Existing(Arc<Job>),
    /// The pending queue is at capacity — shed the request (429).
    Full,
    /// The server is draining — no new work (503).
    ShuttingDown,
}

/// Outcome of a cancellation request ([`JobQueue::cancel`]).
#[derive(Debug)]
pub enum Cancel {
    /// The job was still queued: removed from the pending queue and moved
    /// straight to `Cancelled`.
    Dequeued(Arc<Job>),
    /// The job is running: its [`CancelToken`] has been triggered; the
    /// worker observes it within one simulation epoch and marks the job
    /// `Cancelled` (or `Done`, if completion raced the request).
    Signalled(Arc<Job>),
    /// The job already reached a terminal state; nothing to do.
    Terminal(Arc<Job>),
    /// No such job in memory (possibly evicted after completing).
    NotFound,
}

/// Outcome of resolving a job id ([`JobQueue::lookup`]) — the one path both
/// `GET /jobs/<id>` and the progress-stream replay go through, so the
/// live-entry and evicted-but-disk-cached cases can never drift apart.
#[derive(Debug)]
pub enum Lookup {
    /// The job is live (queued/running) or retained in memory.
    Live(Arc<Job>),
    /// Evicted from memory (or produced by an earlier process), but the
    /// content-addressed cache still holds the completed record (boxed —
    /// a `RunRecord` is large and the other arms are pointer-sized).
    Cached(JobSpec, Box<RunRecord>),
    /// The id is not 16 hex digits.
    BadId,
    /// Nothing in memory and nothing on disk.
    Missing,
}

/// Default in-memory retention of completed entries for `GET /jobs/<id>`.
/// Evicted entries are still answerable from the on-disk cache.
pub const RETAIN_COMPLETED: usize = 512;

#[derive(Debug, Default)]
struct Inner {
    jobs: HashMap<u64, Arc<Job>>,
    pending: VecDeque<u64>,
    /// Completion order, oldest first, for bounded retention.
    completed: VecDeque<u64>,
    shutting_down: bool,
}

/// The shared queue: spec-keyed dedup map + FIFO of pending hashes.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<Inner>,
    /// Signals workers that `pending` gained an entry or shutdown started.
    work: Condvar,
    cap: usize,
    /// Completed entries retained in memory before eviction to disk-only.
    retain: usize,
}

impl JobQueue {
    /// A queue that sheds submissions beyond `cap` pending jobs and retains
    /// [`RETAIN_COMPLETED`] completed entries in memory.
    pub fn new(cap: usize) -> JobQueue {
        JobQueue::with_retention(cap, RETAIN_COMPLETED)
    }

    /// [`JobQueue::new`] with an explicit completed-entry retention bound
    /// (0 evicts immediately; `GET /jobs/<id>` then always falls back to the
    /// on-disk cache).
    pub fn with_retention(cap: usize, retain: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner::default()),
            work: Condvar::new(),
            cap: cap.max(1),
            retain,
        }
    }

    /// Pending (queued, not yet running) job count.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().pending.len()
    }

    /// Submit a spec: coalesce onto an identical live job, else enqueue.
    pub fn submit(&self, spec: JobSpec) -> Submit {
        let hash = spec.content_hash();
        let mut inner = self.inner.lock().unwrap();
        if inner.shutting_down {
            return Submit::ShuttingDown;
        }
        if let Some(job) = inner.jobs.get(&hash) {
            return Submit::Existing(Arc::clone(job));
        }
        if inner.pending.len() >= self.cap {
            return Submit::Full;
        }
        let job = Arc::new(Job::new(spec));
        inner.jobs.insert(hash, Arc::clone(&job));
        inner.pending.push_back(hash);
        drop(inner);
        self.work.notify_one();
        Submit::Enqueued(job)
    }

    /// Insert an already-completed job (cache answered at submit time) so
    /// `GET /jobs/<id>` finds it. Coalesces like `submit`.
    pub fn insert_completed(&self, spec: JobSpec, record: RunRecord) -> Submit {
        let hash = spec.content_hash();
        let mut inner = self.inner.lock().unwrap();
        if inner.shutting_down {
            return Submit::ShuttingDown;
        }
        if let Some(job) = inner.jobs.get(&hash) {
            return Submit::Existing(Arc::clone(job));
        }
        let job = Arc::new(Job::new(spec));
        job.mark_done(record);
        inner.jobs.insert(hash, Arc::clone(&job));
        self.retain_completed(&mut inner, hash);
        Submit::Existing(job)
    }

    /// Worker side: block until a job is available; `None` means shutdown.
    pub fn pop(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(hash) = inner.pending.pop_front() {
                let job = Arc::clone(inner.jobs.get(&hash).expect("pending job exists"));
                job.mark_running();
                return Some(job);
            }
            if inner.shutting_down {
                return None;
            }
            inner = self.work.wait(inner).unwrap();
        }
    }

    /// Bookkeeping after a job completes: bounded retention of finished
    /// entries (live queued/running jobs are never evicted).
    pub fn finished(&self, job: &Job) {
        let mut inner = self.inner.lock().unwrap();
        self.retain_completed(&mut inner, job.spec.content_hash());
    }

    /// Request cancellation of the job with content hash `hash`. Queued jobs
    /// move straight to `Cancelled`; running jobs get their token triggered
    /// and the worker finishes the transition (a completion that races the
    /// request wins — the job stays `Done`).
    pub fn cancel(&self, hash: u64) -> Cancel {
        let mut inner = self.inner.lock().unwrap();
        let Some(job) = inner.jobs.get(&hash).cloned() else {
            return Cancel::NotFound;
        };
        // Status can only move Queued -> Running under `inner` (see `pop`),
        // so holding it here makes the dequeue race-free.
        let status = job.state.lock().unwrap().status;
        match status {
            JobStatus::Queued => {
                inner.pending.retain(|&h| h != hash);
                job.cancel.cancel();
                job.mark_cancelled("cancelled while queued".into());
                self.retain_completed(&mut inner, hash);
                Cancel::Dequeued(job)
            }
            JobStatus::Running => {
                drop(inner);
                job.cancel.cancel();
                Cancel::Signalled(job)
            }
            _ => Cancel::Terminal(job),
        }
    }

    fn retain_completed(&self, inner: &mut Inner, hash: u64) {
        inner.completed.push_back(hash);
        while inner.completed.len() > self.retain {
            let old = inner.completed.pop_front().unwrap();
            // Only evict if it is still completed (a fresh resubmission may
            // have replaced the entry with a live job under the same hash —
            // impossible today since completed entries coalesce, but cheap
            // to guard).
            let evict = inner
                .jobs
                .get(&old)
                .is_some_and(|j| j.state.lock().unwrap().status.is_terminal());
            if evict {
                inner.jobs.remove(&old);
            }
        }
    }

    /// Look up a live or retained job by its content hash.
    pub fn get(&self, hash: u64) -> Option<Arc<Job>> {
        self.inner.lock().unwrap().jobs.get(&hash).cloned()
    }

    /// Resolve a wire job id against the in-memory map first, then the
    /// on-disk cache — the single lookup every read path (`GET /jobs/<id>`,
    /// the progress replay) must route through.
    pub fn lookup(&self, id: &str, cache: &Cache) -> Lookup {
        let Some(hash) = parse_job_id(id) else {
            return Lookup::BadId;
        };
        if let Some(job) = self.get(hash) {
            return Lookup::Live(job);
        }
        match load_cached_by_hash(cache, id) {
            Some((spec, rec)) => Lookup::Cached(spec, Box::new(rec)),
            None => Lookup::Missing,
        }
    }

    /// Start draining: new submissions are rejected, workers finish their
    /// current job and exit, and still-pending jobs fail with a shutdown
    /// error (waking their waiters).
    pub fn begin_shutdown(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutting_down {
            return;
        }
        inner.shutting_down = true;
        let pending: Vec<u64> = inner.pending.drain(..).collect();
        let jobs: Vec<Arc<Job>> = pending
            .iter()
            .filter_map(|h| inner.jobs.get(h).cloned())
            .collect();
        drop(inner);
        for job in jobs {
            job.mark_failed("server shut down before the job ran".into());
            self.finished(&job);
        }
        self.work.notify_all();
    }

    /// Whether `begin_shutdown` has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.lock().unwrap().shutting_down
    }
}

/// Parse a wire job id: exactly 16 hex digits (the content-hash stem).
pub fn parse_job_id(id: &str) -> Option<u64> {
    if id.len() != 16 {
        return None;
    }
    u64::from_str_radix(id, 16).ok()
}

/// Read `results/cache/<id>.json` directly and verify the embedded spec
/// hashes to `id` (same trust model as `Cache::load`).
fn load_cached_by_hash(cache: &Cache, id: &str) -> Option<(JobSpec, RunRecord)> {
    let path = cache.dir().join(format!("{id}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    let v = json::parse(&text).ok()?;
    let spec = JobSpec::from_json(v.get("spec")?)?;
    if spec.hash_hex() != id {
        return None;
    }
    let rec = RunRecord::from_json(v.get("record")?)?;
    Some((spec, rec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_harness::ModelSpec;
    use r2d2_workloads::Size;

    fn spec(n: u32) -> JobSpec {
        let mut s = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
        s.overrides.num_sms = Some(n);
        s
    }

    fn done_record() -> RunRecord {
        RunRecord {
            stats: Default::default(),
            energy: Default::default(),
            used_r2d2: false,
            ideal: None,
            wall_ms: 0.0,
            cached: false,
        }
    }

    #[test]
    fn dedup_coalesces_identical_specs() {
        let q = JobQueue::new(8);
        let a = match q.submit(spec(4)) {
            Submit::Enqueued(j) => j,
            other => panic!("{other:?}"),
        };
        match q.submit(spec(4)) {
            Submit::Existing(j) => assert_eq!(j.id, a.id),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.depth(), 1, "one pending job despite two submissions");
    }

    #[test]
    fn cap_sheds_beyond_pending_limit() {
        let q = JobQueue::new(2);
        assert!(matches!(q.submit(spec(1)), Submit::Enqueued(_)));
        assert!(matches!(q.submit(spec(2)), Submit::Enqueued(_)));
        assert!(matches!(q.submit(spec(3)), Submit::Full));
        // Duplicates of queued jobs coalesce instead of shedding.
        assert!(matches!(q.submit(spec(1)), Submit::Existing(_)));
    }

    #[test]
    fn shutdown_fails_pending_and_unblocks_pop() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let job = match q.submit(spec(9)) {
            Submit::Enqueued(j) => j,
            other => panic!("{other:?}"),
        };
        q.begin_shutdown();
        assert!(matches!(q.submit(spec(10)), Submit::ShuttingDown));
        assert!(q.pop().is_none(), "pop unblocks into None after shutdown");
        let (status, _, err) = job.snapshot();
        assert_eq!(status, JobStatus::Failed);
        assert!(err.unwrap().contains("shut down"));
        assert!(job.wait(Duration::from_millis(10)), "waiters woke");
    }

    #[test]
    fn cancel_queued_job_dequeues_and_terminates() {
        let q = JobQueue::new(8);
        let job = match q.submit(spec(1)) {
            Submit::Enqueued(j) => j,
            other => panic!("{other:?}"),
        };
        assert!(matches!(q.submit(spec(2)), Submit::Enqueued(_)));
        let hash = job.spec.content_hash();
        match q.cancel(hash) {
            Cancel::Dequeued(j) => assert_eq!(j.id, job.id),
            other => panic!("{other:?}"),
        }
        assert_eq!(q.depth(), 1, "cancelled job left the pending queue");
        let (status, _, err) = job.snapshot();
        assert_eq!(status, JobStatus::Cancelled);
        assert!(err.unwrap().contains("queued"));
        assert!(job.cancel.is_cancelled());
        assert!(job.progress.snapshot().finished);
        assert!(job.wait(Duration::from_millis(10)), "waiters woke");
        // A second cancel is a terminal no-op.
        assert!(matches!(q.cancel(hash), Cancel::Terminal(_)));
        // The next pop skips the cancelled job entirely.
        let next = q.pop().unwrap();
        assert_eq!(next.spec.overrides.num_sms, Some(2));
    }

    #[test]
    fn cancel_running_job_signals_without_terminating() {
        let q = JobQueue::new(8);
        assert!(matches!(q.submit(spec(5)), Submit::Enqueued(_)));
        let job = q.pop().unwrap();
        assert!(!job.cancel.is_cancelled());
        match q.cancel(job.spec.content_hash()) {
            Cancel::Signalled(j) => assert_eq!(j.id, job.id),
            other => panic!("{other:?}"),
        }
        assert!(job.cancel.is_cancelled(), "token triggered");
        let (status, _, _) = job.snapshot();
        assert_eq!(
            status,
            JobStatus::Running,
            "the worker, not the queue, finishes the transition"
        );
    }

    #[test]
    fn cancel_unknown_hash_is_not_found() {
        let q = JobQueue::new(4);
        assert!(matches!(q.cancel(0xdead_beef), Cancel::NotFound));
    }

    #[test]
    fn retention_bound_evicts_oldest_completed_entries() {
        let q = JobQueue::with_retention(8, 1);
        let rec = done_record();
        let first = spec(1).content_hash();
        let second = spec(2).content_hash();
        assert!(matches!(
            q.insert_completed(spec(1), rec.clone()),
            Submit::Existing(_)
        ));
        assert!(q.get(first).is_some(), "within the retention bound");
        assert!(matches!(
            q.insert_completed(spec(2), rec),
            Submit::Existing(_)
        ));
        assert!(q.get(first).is_none(), "oldest completed entry evicted");
        assert!(q.get(second).is_some(), "newest survives");
        // Live jobs are never evicted, no matter how many completions pass.
        let live = match q.submit(spec(3)) {
            Submit::Enqueued(j) => j,
            other => panic!("{other:?}"),
        };
        let live_hash = live.spec.content_hash();
        live.mark_done(done_record());
        q.finished(&live);
        assert!(q.get(second).is_none(), "second evicted in turn");
        assert!(q.get(live_hash).is_some());
    }

    #[test]
    fn lookup_resolves_live_cached_bad_and_missing_ids() {
        let dir = std::env::temp_dir().join(format!("r2d2-lookup-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::at(&dir);
        let q = JobQueue::with_retention(8, 0);

        // Ill-formed ids never reach the map or the disk.
        for bad in ["", "xyz", "123", &"f".repeat(15), &"g".repeat(16)] {
            assert!(parse_job_id(bad).is_none(), "{bad:?} accepted");
            assert!(matches!(q.lookup(bad, &cache), Lookup::BadId));
        }

        // A live job resolves from memory.
        let live = match q.submit(spec(1)) {
            Submit::Enqueued(j) => j,
            other => panic!("{other:?}"),
        };
        match q.lookup(&live.spec.hash_hex(), &cache) {
            Lookup::Live(j) => assert_eq!(j.id, live.id),
            other => panic!("{other:?}"),
        }

        // Retention 0 evicts on completion; the disk cache still answers,
        // through the same call.
        cache.store(&spec(2), &done_record()).expect("store");
        let evicted = spec(2).hash_hex();
        match q.lookup(&evicted, &cache) {
            Lookup::Cached(s, _) => assert_eq!(s.hash_hex(), evicted),
            other => panic!("{other:?}"),
        }

        // Well-formed but unknown everywhere.
        assert!(matches!(
            q.lookup(&spec(3).hash_hex(), &cache),
            Lookup::Missing
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pop_runs_in_fifo_order() {
        let q = JobQueue::new(8);
        for n in [1, 2, 3] {
            assert!(matches!(q.submit(spec(n)), Submit::Enqueued(_)));
        }
        for n in [1, 2, 3] {
            let job = q.pop().unwrap();
            assert_eq!(job.spec.overrides.num_sms, Some(n));
            let (status, _, _) = job.snapshot();
            assert_eq!(status, JobStatus::Running);
        }
    }
}
