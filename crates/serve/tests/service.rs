//! In-process integration tests of the simulation service: a real
//! `TcpListener` on a loopback port, real HTTP over `TcpStream`, and real
//! simulations — only the process boundary is elided (the CLI smoke test in
//! `crates/cli/tests/serve.rs` covers that).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use r2d2_harness::{Cache, JobSpec, ModelSpec};
use r2d2_serve::{client, Server, ServerConfig, ServerHandle};
use r2d2_sim::{GpuConfig, SimSession, Stats};
use r2d2_workloads::Size;

const T: Duration = Duration::from_secs(120);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("r2d2-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Start a server on an ephemeral loopback port with its own results dir.
/// Returns `(addr, handle, join, results_dir)`.
fn start(
    tag: &str,
    workers: usize,
    queue_cap: usize,
) -> (
    String,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
    PathBuf,
) {
    start_retaining(tag, workers, queue_cap, r2d2_serve::queue::RETAIN_COMPLETED)
}

/// [`start`] with an explicit completed-entry retention bound.
fn start_retaining(
    tag: &str,
    workers: usize,
    queue_cap: usize,
    retain_completed: usize,
) -> (
    String,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
    PathBuf,
) {
    let results = tmpdir(tag);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        job_timeout: Duration::from_secs(300),
        use_cache: true,
        retain_completed,
        results_dir: Some(results.clone()),
        verbose: false,
    };
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join, results)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean exit");
}

/// The Stats a direct in-process `SimSession` run produces for `spec`,
/// merged across the workload's launches — the ground truth the service
/// must match bit-for-bit.
fn direct_stats(spec: &JobSpec) -> Stats {
    let w = r2d2_workloads::resolve(&spec.workload, spec.size).expect("zoo workload");
    let cfg = GpuConfig::default();
    let mut gmem = w.gmem.clone();
    let mut stats = Stats::default();
    for l in &w.launches {
        let mut filter = r2d2_sim::BaselineFilter;
        let s = SimSession::new(&cfg)
            .filter(&mut filter)
            .run(l, &mut gmem)
            .expect("direct simulation");
        stats.merge_sequential(&s);
    }
    stats
}

#[test]
fn served_stats_match_direct_simsession_run_bit_for_bit() {
    let (addr, handle, join, results) = start("bitident", 2, 16);
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);

    let outcome = client::submit(&addr, &spec, true, T).expect("submit --wait");
    assert_eq!(outcome.status, 200, "{:?}", outcome.body);
    assert_eq!(outcome.job_status(), Some("done"));
    assert_eq!(outcome.job_id(), Some(spec.hash_hex().as_str()));

    // Decode the served record through the same JSON layer the harness
    // uses, then compare against a direct in-process run.
    let rec = r2d2_harness::RunRecord::from_json(outcome.body.get("record").expect("record"))
        .expect("record decodes");
    assert_eq!(
        rec.stats,
        direct_stats(&spec),
        "served Stats must be bit-identical to a direct SimSession run"
    );
    assert!(!rec.cached, "first run simulates");

    // And the result landed in the content-addressed cache on disk.
    let cache = Cache::at(&results.join("cache"));
    assert_eq!(cache.load(&spec).map(|r| r.stats), Some(rec.stats.clone()));

    // A second submission coalesces onto the completed entry — identical
    // stats, flagged as deduplicated, and no second simulation (metrics).
    let again = client::submit(&addr, &spec, true, T).expect("resubmit");
    let rec2 = r2d2_harness::RunRecord::from_json(again.body.get("record").unwrap()).unwrap();
    assert_eq!(rec2.stats, rec.stats);
    assert_eq!(
        again.body.get("deduped"),
        Some(&r2d2_harness::json::Value::Bool(true)),
        "{:?}",
        again.body
    );
    let text = client::metrics(&addr, T).expect("metrics");
    assert!(
        text.contains("r2d2_serve_jobs_simulated_total 1"),
        "resubmission must not simulate again:\n{text}"
    );

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn duplicate_concurrent_submissions_execute_exactly_once() {
    let (addr, handle, join, results) = start("dedup", 2, 16);
    let spec = JobSpec::new("BP", Size::Small, ModelSpec::Baseline);

    // Fire N identical submissions concurrently; every one must come back
    // `done` with the same job id, and the metrics must show exactly one
    // simulation (dedup coalescing, completed-entry reuse, or a disk-cache
    // hit — never a second execution).
    const N: usize = 8;
    let addr = Arc::new(addr);
    let results_list: Vec<_> = (0..N)
        .map(|_| {
            let addr = Arc::clone(&addr);
            let spec = spec.clone();
            std::thread::spawn(move || client::submit(&addr, &spec, true, T).expect("submit"))
        })
        .collect();
    let outcomes: Vec<_> = results_list
        .into_iter()
        .map(|j| j.join().expect("client thread"))
        .collect();
    for o in &outcomes {
        assert_eq!(o.status, 200, "{:?}", o.body);
        assert_eq!(o.job_status(), Some("done"));
        assert_eq!(o.job_id(), Some(spec.hash_hex().as_str()));
    }

    let text = client::metrics(&addr, T).expect("metrics");
    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(&format!("r2d2_serve_{name} ")))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} in:\n{text}"))
    };
    assert_eq!(
        metric("jobs_simulated_total"),
        1,
        "identical submissions must simulate exactly once\n{text}"
    );
    assert_eq!(metric("jobs_submitted_total"), N as u64);
    assert_eq!(metric("jobs_failed_total"), 0);

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    // No workers: submissions stay pending, so the queue fills
    // deterministically to its cap of 2.
    let (addr, handle, join, results) = start("shed", 0, 2);
    let mut specs = Vec::new();
    for n in 1..=3u32 {
        let mut s = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
        s.overrides.num_sms = Some(n);
        specs.push(s);
    }

    for s in &specs[..2] {
        let o = client::submit(&addr, s, false, T).expect("submit");
        assert_eq!(o.status, 202, "{:?}", o.body);
        assert_eq!(o.job_status(), Some("queued"));
    }
    // Third distinct spec: queue is at cap.
    let body = specs[2].to_json().to_json();
    let resp = r2d2_serve::http::client_request(&addr, "POST", "/jobs", Some(&body), T).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));
    // The typed client surfaces the backoff hint.
    let o = client::submit(&addr, &specs[2], false, T).expect("shed submit");
    assert_eq!(o.status, 429);
    assert_eq!(o.retry_after, Some(1), "Retry-After must be parsed");
    // But a duplicate of a queued spec still coalesces instead of shedding.
    let o = client::submit(&addr, &specs[0], false, T).expect("dup submit");
    assert_eq!(o.status, 200);
    assert_eq!(o.job_status(), Some("queued"));

    // GET /jobs/<id> sees the queued entries; unknown ids 404.
    let o = client::job_status(&addr, &specs[1].hash_hex(), T).unwrap();
    assert_eq!((o.status, o.job_status()), (200, Some("queued")));
    let o = client::job_status(&addr, "0000000000000000", T).unwrap();
    assert_eq!(o.status, 404);

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn bad_submissions_are_rejected_with_400() {
    let (addr, handle, join, results) = start("badreq", 1, 4);
    let post = |body: &str| {
        r2d2_serve::http::client_request(&addr, "POST", "/jobs", Some(body), T)
            .unwrap()
            .status
    };
    assert_eq!(post("not json"), 400);
    assert_eq!(post("{\"size\": \"small\"}"), 400, "workload is required");
    assert_eq!(post("{\"workload\": \"NOPE\"}"), 400, "unknown workload id");
    assert_eq!(
        post("{\"workload\": \"NN\", \"model\": \"quantum\"}"),
        400,
        "unknown model"
    );
    assert_eq!(
        post("{\"workload\": \"NN\", \"size\": \"tiny\"}"),
        400,
        "unknown size"
    );
    // Unknown paths and methods.
    let r = r2d2_serve::http::client_request(&addr, "GET", "/nope", None, T).unwrap();
    assert_eq!(r.status, 404);
    let r = r2d2_serve::http::client_request(&addr, "PUT", "/jobs", None, T).unwrap();
    assert_eq!(r.status, 405);
    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

/// Parse one counter out of the `/metrics` exposition.
fn metric(addr: &str, name: &str) -> u64 {
    let text = client::metrics(addr, T).expect("metrics");
    text.lines()
        .find(|l| l.starts_with(&format!("r2d2_serve_{name} ")))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no {name} in:\n{text}"))
}

/// Poll `GET /jobs/<id>` until the predicate holds; panics after `limit`.
fn poll_status(addr: &str, id: &str, limit: Duration, want: impl Fn(&str) -> bool) -> String {
    let deadline = std::time::Instant::now() + limit;
    loop {
        let s = client::job_status(addr, id, T).expect("job status");
        let status = s.job_status().expect("status field").to_string();
        if want(&status) {
            return status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out polling {id}; last status {status:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn delete_cancels_a_queued_job() {
    // No workers: the job deterministically stays queued until cancelled.
    let (addr, handle, join, results) = start("cancelq", 0, 8);
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let id = spec.hash_hex();
    let o = client::submit(&addr, &spec, false, T).unwrap();
    assert_eq!(o.status, 202, "{:?}", o.body);

    let c = client::cancel(&addr, &id, T).unwrap();
    assert_eq!(c.status, 200, "{:?}", c.body);
    assert_eq!(c.job_status(), Some("cancelled"));

    // Terminal: a second DELETE and a GET both see the cancelled state.
    let c2 = client::cancel(&addr, &id, T).unwrap();
    assert_eq!((c2.status, c2.job_status()), (200, Some("cancelled")));
    let g = client::job_status(&addr, &id, T).unwrap();
    assert_eq!((g.status, g.job_status()), (200, Some("cancelled")));

    // Bad ids: malformed hex 400, unknown 404.
    assert_eq!(client::cancel(&addr, "nope", T).unwrap().status, 400);
    assert_eq!(
        client::cancel(&addr, "0000000000000000", T).unwrap().status,
        404
    );
    assert_eq!(metric(&addr, "jobs_cancelled_total"), 1);

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn delete_stops_a_running_job_promptly() {
    let (addr, handle, join, results) = start("cancelrun", 1, 8);
    // A full-size job runs for seconds — long enough that the 1ms poll
    // below reliably observes it `running` before it completes.
    let spec = JobSpec::new("MVT", Size::Full, ModelSpec::Baseline);
    let id = spec.hash_hex();
    let o = client::submit(&addr, &spec, false, T).unwrap();
    assert_eq!(o.status, 202, "{:?}", o.body);
    poll_status(&addr, &id, Duration::from_secs(60), |s| s == "running");

    let c = client::cancel(&addr, &id, T).unwrap();
    assert_eq!(c.status, 202, "signalled, not yet terminal: {:?}", c.body);

    // The simulator observes the token at the next epoch boundary and the
    // worker marks the job cancelled — far sooner than the run would have
    // taken; if cancellation were broken the job would come back `done`.
    let status = poll_status(&addr, &id, Duration::from_secs(120), |s| {
        s == "done" || s == "failed" || s == "cancelled"
    });
    assert_eq!(status, "cancelled");
    assert_eq!(metric(&addr, "jobs_cancelled_total"), 1);

    // A cancelled run must never pollute the result cache.
    let cache = Cache::at(&results.join("cache"));
    assert!(cache.load(&spec).is_none(), "partial result was cached");

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn batch_with_duplicate_specs_simulates_each_distinct_spec_once() {
    let (addr, handle, join, results) = start("batch", 2, 16);
    let a = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let b = JobSpec::new("BP", Size::Small, ModelSpec::Baseline);
    // `a` appears twice: the duplicate must coalesce, not re-simulate.
    let batch = [a.clone(), a.clone(), b.clone()];

    let o = client::submit_batch(&addr, &batch, T).unwrap();
    assert_eq!(o.status, 200, "{:?}", o.body);
    assert_eq!(o.body.get("count").and_then(|v| v.as_u64()), Some(3));
    let jobs = o
        .body
        .get("jobs")
        .and_then(|v| v.as_arr())
        .expect("jobs array");
    assert_eq!(jobs.len(), 3);
    assert_eq!(
        jobs[0].get("id").and_then(|v| v.as_str()),
        Some(a.hash_hex().as_str())
    );
    assert_eq!(jobs[1].get("id"), jobs[0].get("id"));
    assert_eq!(jobs[1].get("deduped").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        jobs[2].get("id").and_then(|v| v.as_str()),
        Some(b.hash_hex().as_str())
    );

    for spec in [&a, &b] {
        let status = poll_status(&addr, &spec.hash_hex(), Duration::from_secs(60), |s| {
            s == "done" || s == "failed"
        });
        assert_eq!(status, "done");
    }
    assert_eq!(
        metric(&addr, "jobs_simulated_total"),
        2,
        "the duplicated spec must simulate exactly once"
    );
    assert_eq!(metric(&addr, "batch_submissions_total"), 1);

    // A named set resolves server-side; sec57 is the smallest (4 jobs).
    let o = client::submit_set(&addr, "sec57", T).unwrap();
    assert_eq!(o.status, 200, "{:?}", o.body);
    assert_eq!(o.body.get("count").and_then(|v| v.as_u64()), Some(4));
    // Unknown sets and garbage bodies are 400s.
    assert_eq!(client::submit_set(&addr, "fig99", T).unwrap().status, 400);
    let r = r2d2_serve::http::client_request(&addr, "POST", "/jobs/batch", Some("[]"), T).unwrap();
    assert_eq!(r.status, 400, "empty batch");

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn progress_stream_replays_the_profilers_series() {
    let (addr, handle, join, results) = start("progress", 2, 16);
    let spec = JobSpec::new("BP", Size::Small, ModelSpec::Baseline);
    let o = client::submit(&addr, &spec, true, T).unwrap();
    assert_eq!(o.status, 200, "{:?}", o.body);
    assert_eq!(o.job_status(), Some("done"));

    // Stream the completed job: the final line carries the terminal status
    // plus the complete series.
    let mut lines = Vec::new();
    let status = client::watch(&addr, &spec.hash_hex(), T, &mut |v| lines.push(v.clone())).unwrap();
    assert_eq!(status, 200);
    let last = lines.last().expect("at least the terminal line");
    assert_eq!(last.get("status").and_then(|v| v.as_str()), Some("done"));
    let snap = r2d2_harness::ProgressSnapshot::from_json(last).expect("snapshot decodes");
    assert!(snap.finished);

    // Ground truth: the bucket series a direct profiled run produces. The
    // profiler is deterministic, so the served stream must replay it
    // bit-for-bit.
    let mut prof = r2d2_trace::Profiler::default();
    r2d2_harness::execute_with_profiler(&spec, &mut prof).expect("direct profiled run");
    assert_eq!(
        snap.buckets.as_slice(),
        prof.buckets(),
        "streamed series differs from the profiler's"
    );
    assert_eq!(snap.total_cycles, prof.total_cycles());

    // Unknown ids 404 even on the streaming path.
    let err_status =
        client::watch(&addr, "0000000000000000", T, &mut |_| {}).expect("stream completes");
    assert_eq!(err_status, 404);

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn evicted_jobs_fall_back_to_the_disk_cache() {
    // Retention 0: completed entries leave memory immediately.
    let (addr, handle, join, results) = start_retaining("evict", 2, 16, 0);
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let id = spec.hash_hex();
    let o = client::submit(&addr, &spec, true, T).unwrap();
    assert_eq!(o.status, 200, "{:?}", o.body);

    // The in-memory entry is gone, but GET answers from results/cache/.
    let g = client::job_status(&addr, &id, T).unwrap();
    assert_eq!((g.status, g.job_status()), (200, Some("done")));
    let rec = r2d2_harness::RunRecord::from_json(g.body.get("record").expect("record"))
        .expect("record decodes");
    assert_eq!(rec.stats, direct_stats(&spec));

    // The progress stream degrades to a single terminal line (the live
    // series died with the in-memory entry).
    let mut lines = Vec::new();
    let status = client::watch(&addr, &id, T, &mut |v| lines.push(v.clone())).unwrap();
    assert_eq!(status, 200);
    assert_eq!(lines.len(), 1);
    assert_eq!(
        lines[0].get("status").and_then(|v| v.as_str()),
        Some("done")
    );

    // Cancelling an evicted job is a 404 — there is nothing left to stop.
    assert_eq!(client::cancel(&addr, &id, T).unwrap().status, 404);

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

/// Assert a response carries the unified error schema with the given code.
fn assert_error_code(resp: &r2d2_serve::http::ClientResponse, status: u16, code: &str) {
    assert_eq!(resp.status, status, "body: {}", resp.body);
    let v = r2d2_harness::json::parse(&resp.body)
        .unwrap_or_else(|e| panic!("error body is not JSON ({e}): {}", resp.body));
    let err = r2d2_serve::ApiError::from_response(resp.status, &v)
        .unwrap_or_else(|| panic!("body does not carry the error schema: {}", resp.body));
    assert_eq!(err.code, code, "body: {}", resp.body);
}

/// Send raw bytes and read back `(status, body)` — for requests the typed
/// client cannot produce (malformed heads, oversized Content-Length).
fn raw_request(addr: &str, payload: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(T)).unwrap();
    s.write_all(payload.as_bytes()).unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let status = buf
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("bad response: {buf:?}"));
    let body = buf
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn every_4xx_5xx_carries_the_unified_error_schema() {
    // No workers + cap 1: the queue fills deterministically for the 429.
    let (addr, handle, join, results) = start("golden", 0, 1);
    let req = |method: &str, path: &str, body: Option<&str>| {
        r2d2_serve::http::client_request(&addr, method, path, body, T).unwrap()
    };

    // Submission-body rejections.
    assert_error_code(&req("POST", "/v1/jobs", Some("not json")), 400, "bad-json");
    assert_error_code(
        &req("POST", "/v1/jobs", Some("{\"size\": \"small\"}")),
        400,
        "bad-spec",
    );
    assert_error_code(
        &req("POST", "/v1/jobs", Some("{\"workload\": \"NOPE\"}")),
        400,
        "unknown-workload",
    );

    // Backpressure: fill the single slot, then shed with the backoff hint
    // in both the header and the body.
    let a = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let mut b = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    b.overrides.num_sms = Some(2);
    assert_eq!(client::submit(&addr, &a, false, T).unwrap().status, 202);
    let shed = req("POST", "/v1/jobs", Some(&b.to_json().to_json()));
    assert_error_code(&shed, 429, "queue-full");
    assert_eq!(shed.header("retry-after"), Some("1"));
    let v = r2d2_harness::json::parse(&shed.body).unwrap();
    let err = r2d2_serve::ApiError::from_response(429, &v).unwrap();
    assert_eq!(err.retry_after_s, Some(1), "body mirrors the header");

    // Job-id handling, batch shapes, routing.
    assert_error_code(&req("GET", "/v1/jobs/nope", None), 400, "bad-job-id");
    assert_error_code(
        &req("GET", "/v1/jobs/0000000000000000", None),
        404,
        "unknown-job",
    );
    assert_error_code(
        &req("DELETE", "/v1/jobs/0000000000000000", None),
        404,
        "unknown-job",
    );
    assert_error_code(&req("POST", "/v1/jobs/batch", Some("[]")), 400, "bad-batch");
    assert_error_code(
        &req("POST", "/v1/jobs/batch", Some("{\"set\": \"fig99\"}")),
        400,
        "unknown-set",
    );
    assert_error_code(
        &req(
            "POST",
            "/v1/jobs/batch",
            Some("{\"set\": \"sec57\", \"size\": \"huge\"}"),
        ),
        400,
        "bad-batch",
    );
    assert_error_code(&req("GET", "/v1/nope", None), 404, "not-found");
    assert_error_code(&req("PUT", "/v1/jobs", None), 405, "method-not-allowed");

    // Parse-layer rejections, which never reach the router.
    let (status, body) = raw_request(&addr, "GARBAGE\r\n\r\n");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("\"malformed-request\""), "{body}");
    let (status, body) = raw_request(
        &addr,
        "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 2000000\r\n\r\n",
    );
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("\"payload-too-large\""), "{body}");

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn legacy_paths_answer_with_a_deprecation_header_v1_does_not() {
    let (addr, handle, join, results) = start("deprecation", 0, 8);
    let req = |method: &str, path: &str, body: Option<&str>| {
        r2d2_serve::http::client_request(&addr, method, path, body, T).unwrap()
    };

    // Aliased paths behave identically but are marked deprecated.
    let legacy = req("GET", "/healthz", None);
    assert_eq!(
        (legacy.status, legacy.header("deprecation")),
        (200, Some("true"))
    );
    let v1 = req("GET", "/v1/healthz", None);
    assert_eq!((v1.status, v1.header("deprecation")), (200, None));

    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let body = spec.to_json().to_json();
    let legacy = req("POST", "/jobs", Some(&body));
    assert_eq!(legacy.status, 202, "{}", legacy.body);
    assert_eq!(legacy.header("deprecation"), Some("true"));
    // Same spec through /v1 coalesces (proving both spellings share one
    // queue) and carries no marker.
    let v1 = req("POST", "/v1/jobs", Some(&body));
    assert_eq!(v1.status, 200, "{}", v1.body);
    assert_eq!(v1.header("deprecation"), None);

    // Error responses are marked too.
    let legacy = req("GET", "/jobs/nope", None);
    assert_eq!(
        (legacy.status, legacy.header("deprecation")),
        (400, Some("true"))
    );

    // And the chunked streaming path carries the marker in its head.
    // Cancel the queued job first so the stream terminates (no workers).
    let id = spec.hash_hex();
    assert_eq!(client::cancel(&addr, &id, T).unwrap().status, 200);
    let (status, headers) = r2d2_serve::http::client_stream(
        &addr,
        "GET",
        &format!("/jobs/{id}/progress"),
        T,
        &mut |_| Ok(()),
    )
    .unwrap();
    assert_eq!(status, 200);
    let deprecated = headers
        .iter()
        .any(|(k, v)| k == "deprecation" && v == "true");
    assert!(deprecated, "stream head missing Deprecation: {headers:?}");

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn healthz_flips_to_draining_and_shutdown_drains_pending() {
    let (addr, handle, join, results) = start("drain", 0, 8);
    let (code, body) = client::healthz(&addr, T).unwrap();
    assert_eq!((code, body.as_str()), (200, "ok"));

    // Park a job (no workers), then shut down: the pending job must fail
    // with a shutdown error and new submissions must see 503.
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let o = client::submit(&addr, &spec, false, T).unwrap();
    assert_eq!(o.status, 202);
    assert_eq!(client::shutdown(&addr, T).unwrap(), 200);

    join.join().expect("server thread").expect("clean exit");
    drop(handle);

    // The server is gone: the port no longer accepts connections.
    assert!(
        client::healthz(&addr, Duration::from_secs(2)).is_err(),
        "listener must be closed after drain"
    );
    let _ = std::fs::remove_dir_all(&results);
}
