//! In-process integration tests of the simulation service: a real
//! `TcpListener` on a loopback port, real HTTP over `TcpStream`, and real
//! simulations — only the process boundary is elided (the CLI smoke test in
//! `crates/cli/tests/serve.rs` covers that).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use r2d2_harness::{Cache, JobSpec, ModelSpec};
use r2d2_serve::{client, Server, ServerConfig, ServerHandle};
use r2d2_sim::{GpuConfig, SimSession, Stats};
use r2d2_workloads::Size;

const T: Duration = Duration::from_secs(120);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("r2d2-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Start a server on an ephemeral loopback port with its own results dir.
/// Returns `(addr, handle, join, results_dir)`.
fn start(
    tag: &str,
    workers: usize,
    queue_cap: usize,
) -> (
    String,
    ServerHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
    PathBuf,
) {
    let results = tmpdir(tag);
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap,
        job_timeout: Duration::from_secs(300),
        use_cache: true,
        results_dir: Some(results.clone()),
        verbose: false,
    };
    let server = Server::bind(cfg).expect("bind loopback");
    let addr = server.local_addr().unwrap().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (addr, handle, join, results)
}

fn stop(handle: &ServerHandle, join: std::thread::JoinHandle<std::io::Result<()>>) {
    handle.shutdown();
    join.join().expect("server thread").expect("clean exit");
}

/// The Stats a direct in-process `SimSession` run produces for `spec`,
/// merged across the workload's launches — the ground truth the service
/// must match bit-for-bit.
fn direct_stats(spec: &JobSpec) -> Stats {
    let w = r2d2_workloads::resolve(&spec.workload, spec.size).expect("zoo workload");
    let cfg = GpuConfig::default();
    let mut gmem = w.gmem.clone();
    let mut stats = Stats::default();
    for l in &w.launches {
        let mut filter = r2d2_sim::BaselineFilter;
        let s = SimSession::new(&cfg)
            .filter(&mut filter)
            .run(l, &mut gmem)
            .expect("direct simulation");
        stats.merge_sequential(&s);
    }
    stats
}

#[test]
fn served_stats_match_direct_simsession_run_bit_for_bit() {
    let (addr, handle, join, results) = start("bitident", 2, 16);
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);

    let outcome = client::submit(&addr, &spec, true, T).expect("submit --wait");
    assert_eq!(outcome.status, 200, "{:?}", outcome.body);
    assert_eq!(outcome.job_status(), Some("done"));
    assert_eq!(outcome.job_id(), Some(spec.hash_hex().as_str()));

    // Decode the served record through the same JSON layer the harness
    // uses, then compare against a direct in-process run.
    let rec = r2d2_harness::RunRecord::from_json(outcome.body.get("record").expect("record"))
        .expect("record decodes");
    assert_eq!(
        rec.stats,
        direct_stats(&spec),
        "served Stats must be bit-identical to a direct SimSession run"
    );
    assert!(!rec.cached, "first run simulates");

    // And the result landed in the content-addressed cache on disk.
    let cache = Cache::at(&results.join("cache"));
    assert_eq!(cache.load(&spec).map(|r| r.stats), Some(rec.stats.clone()));

    // A second submission coalesces onto the completed entry — identical
    // stats, flagged as deduplicated, and no second simulation (metrics).
    let again = client::submit(&addr, &spec, true, T).expect("resubmit");
    let rec2 = r2d2_harness::RunRecord::from_json(again.body.get("record").unwrap()).unwrap();
    assert_eq!(rec2.stats, rec.stats);
    assert_eq!(
        again.body.get("deduped"),
        Some(&r2d2_harness::json::Value::Bool(true)),
        "{:?}",
        again.body
    );
    let text = client::metrics(&addr, T).expect("metrics");
    assert!(
        text.contains("r2d2_serve_jobs_simulated_total 1"),
        "resubmission must not simulate again:\n{text}"
    );

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn duplicate_concurrent_submissions_execute_exactly_once() {
    let (addr, handle, join, results) = start("dedup", 2, 16);
    let spec = JobSpec::new("BP", Size::Small, ModelSpec::Baseline);

    // Fire N identical submissions concurrently; every one must come back
    // `done` with the same job id, and the metrics must show exactly one
    // simulation (dedup coalescing, completed-entry reuse, or a disk-cache
    // hit — never a second execution).
    const N: usize = 8;
    let addr = Arc::new(addr);
    let results_list: Vec<_> = (0..N)
        .map(|_| {
            let addr = Arc::clone(&addr);
            let spec = spec.clone();
            std::thread::spawn(move || client::submit(&addr, &spec, true, T).expect("submit"))
        })
        .collect();
    let outcomes: Vec<_> = results_list
        .into_iter()
        .map(|j| j.join().expect("client thread"))
        .collect();
    for o in &outcomes {
        assert_eq!(o.status, 200, "{:?}", o.body);
        assert_eq!(o.job_status(), Some("done"));
        assert_eq!(o.job_id(), Some(spec.hash_hex().as_str()));
    }

    let text = client::metrics(&addr, T).expect("metrics");
    let metric = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(&format!("r2d2_serve_{name} ")))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {name} in:\n{text}"))
    };
    assert_eq!(
        metric("jobs_simulated_total"),
        1,
        "identical submissions must simulate exactly once\n{text}"
    );
    assert_eq!(metric("jobs_submitted_total"), N as u64);
    assert_eq!(metric("jobs_failed_total"), 0);

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    // No workers: submissions stay pending, so the queue fills
    // deterministically to its cap of 2.
    let (addr, handle, join, results) = start("shed", 0, 2);
    let mut specs = Vec::new();
    for n in 1..=3u32 {
        let mut s = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
        s.overrides.num_sms = Some(n);
        specs.push(s);
    }

    for s in &specs[..2] {
        let o = client::submit(&addr, s, false, T).expect("submit");
        assert_eq!(o.status, 202, "{:?}", o.body);
        assert_eq!(o.job_status(), Some("queued"));
    }
    // Third distinct spec: queue is at cap.
    let body = specs[2].to_json().to_json();
    let resp = r2d2_serve::http::client_request(&addr, "POST", "/jobs", Some(&body), T).unwrap();
    assert_eq!(resp.status, 429, "{}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"));
    // But a duplicate of a queued spec still coalesces instead of shedding.
    let o = client::submit(&addr, &specs[0], false, T).expect("dup submit");
    assert_eq!(o.status, 200);
    assert_eq!(o.job_status(), Some("queued"));

    // GET /jobs/<id> sees the queued entries; unknown ids 404.
    let o = client::job_status(&addr, &specs[1].hash_hex(), T).unwrap();
    assert_eq!((o.status, o.job_status()), (200, Some("queued")));
    let o = client::job_status(&addr, "0000000000000000", T).unwrap();
    assert_eq!(o.status, 404);

    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn bad_submissions_are_rejected_with_400() {
    let (addr, handle, join, results) = start("badreq", 1, 4);
    let post = |body: &str| {
        r2d2_serve::http::client_request(&addr, "POST", "/jobs", Some(body), T)
            .unwrap()
            .status
    };
    assert_eq!(post("not json"), 400);
    assert_eq!(post("{\"size\": \"small\"}"), 400, "workload is required");
    assert_eq!(post("{\"workload\": \"NOPE\"}"), 400, "unknown workload id");
    assert_eq!(
        post("{\"workload\": \"NN\", \"model\": \"quantum\"}"),
        400,
        "unknown model"
    );
    assert_eq!(
        post("{\"workload\": \"NN\", \"size\": \"tiny\"}"),
        400,
        "unknown size"
    );
    // Unknown paths and methods.
    let r = r2d2_serve::http::client_request(&addr, "GET", "/nope", None, T).unwrap();
    assert_eq!(r.status, 404);
    let r = r2d2_serve::http::client_request(&addr, "PUT", "/jobs", None, T).unwrap();
    assert_eq!(r.status, 405);
    stop(&handle, join);
    let _ = std::fs::remove_dir_all(&results);
}

#[test]
fn healthz_flips_to_draining_and_shutdown_drains_pending() {
    let (addr, handle, join, results) = start("drain", 0, 8);
    let (code, body) = client::healthz(&addr, T).unwrap();
    assert_eq!((code, body.as_str()), (200, "ok"));

    // Park a job (no workers), then shut down: the pending job must fail
    // with a shutdown error and new submissions must see 503.
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let o = client::submit(&addr, &spec, false, T).unwrap();
    assert_eq!(o.status, 202);
    assert_eq!(client::shutdown(&addr, T).unwrap(), 200);

    join.join().expect("server thread").expect("clean exit");
    drop(handle);

    // The server is gone: the port no longer accepts connections.
    assert!(
        client::healthz(&addr, Duration::from_secs(2)).is_err(),
        "listener must be closed after drain"
    );
    let _ = std::fs::remove_dir_all(&results);
}
