//! `r2d2` — command-line driver for the R2D2 reproduction.
//!
//! ```text
//! r2d2 list                               list the Table 2 workload zoo
//! r2d2 analyze  <kernel.kasm>             print per-register coefficient vectors
//! r2d2 transform <kernel.kasm>            print the decoupled kernel + metadata
//! r2d2 run <kernel.kasm> [options]        execute a kernel on the timing simulator
//!     --grid X[,Y[,Z]]      grid dimensions           (default 1)
//!     --block X[,Y[,Z]]     block dimensions          (default 32)
//!     --buf BYTES           allocate a buffer, pass its address as the next param
//!     --param N             pass a scalar parameter
//!     --r2d2                run the R2D2-transformed kernel
//!     --sms N               number of SMs             (default 80)
//!     --lockstep            use the cycle-by-cycle reference loop
//!                           (default: event-driven, bit-identical)
//!     --threads N           shard the timing loop across N worker threads
//!                           (default 1; results are bit-identical)
//! r2d2 workload <NAME> [--model M] [--full]
//!     run one zoo workload under a machine model
//!     (M: baseline | dac | darsie | darsie-scalar | r2d2; default baseline)
//! r2d2 profile <workload> <model> [options]
//!     run one workload with the stall-attribution profiler attached and
//!     export a Chrome trace_event JSON + CSV time series
//!     --buckets N           target time-series bucket count (default 256)
//!     --out DIR             artifact directory (default results/profiles/)
//!     --threads N           shard the simulation across N threads
//!     --sms N               number of SMs
//!     --full                evaluation-sized inputs (default: small)
//!     (workload: any zoo name, BP@n<log>, or the micro ids vecadd/saxpy)
//! r2d2 trace <kernel.kasm> [run options] [--limit N]
//!     print the first N dynamic warp instructions (default 64)
//! r2d2 sweep list                         list figure job sets + cache state
//! r2d2 sweep run <set>|all [options]      run a figure's jobs in parallel
//!     --jobs N              worker threads            (default: all cores)
//!     --threads N           shard each simulation across N threads
//!                           (default: $R2D2_THREADS, then 1; bit-identical)
//!     --no-cache            re-simulate even when cached (refreshes entries)
//!     --size small|full     workload scale            (default full)
//!     --profile             attach the stall profiler to every job (writes
//!                           traces to results/profiles/; separate cache keys)
//! r2d2 sweep clean                        delete all cached results
//! r2d2 serve [options]                    run the resident simulation service
//!     --addr HOST:PORT      bind address              (default 127.0.0.1:8787)
//!     --workers N           job worker threads        (default: all cores)
//!     --queue-cap N         pending-queue bound       (default 256)
//!     --timeout SECS        per-job watchdog          (default 600)
//!     --no-cache            re-simulate even when cached
//!     --quiet               suppress per-request log lines
//! r2d2 dispatch --backends A,B,... [options]
//!     run the multi-node dispatch tier over running serve nodes
//!     --backends LIST       comma-separated backend HOST:PORT list (required)
//!     --addr HOST:PORT      bind address              (default 127.0.0.1:8786)
//!     --probe-interval-ms N health-probe sweep interval (default 500)
//!     --quiet               suppress per-request log lines
//! r2d2 submit <workload> <model> [options]
//!     submit one job to a running service or dispatcher
//!     --addr HOST:PORT      service address           (default 127.0.0.1:8787)
//!     --wait                block until the job completes, print the record
//!     --full                evaluation-sized inputs   (default: small)
//!     --sms N               override the SM count
//!     --threads N           shard the simulation across N threads
//!     (model: baseline | dac | darsie | darsie-scalar | r2d2 | ideals)
//! r2d2 submit --set <name> [--addr HOST:PORT]
//!     batch-submit a named figure set (see `r2d2 sweep list`); prints the
//!     per-job ids
//! r2d2 submit --batch <file.json> [--addr HOST:PORT]
//!     batch-submit a JSON array of JobSpecs from a file
//! r2d2 cancel <id> [--addr HOST:PORT]
//!     cancel a queued or running job by id (DELETE /jobs/<id>)
//! r2d2 watch <id> [--addr HOST:PORT]
//!     stream a job's progress snapshots as NDJSON until it completes
//! ```
//!
//! `sweep` shares its job sets — and therefore its content-addressed cache
//! under `results/cache/` — with the `cargo bench` figure targets.

use r2d2_baselines::{DacFilter, DarsieFilter, DarsieScalarFilter};
use r2d2_core::analyzer::analyze;
use r2d2_core::transform::{make_launch, transform};
use r2d2_energy::EnergyModel;
use r2d2_isa::parse_kernel;
use r2d2_sim::{
    BaselineFilter, Dim3, GlobalMem, GpuConfig, IssueFilter, Launch, LoopKind, SimSession, Stats,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("transform") => cmd_transform(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("dispatch") => cmd_dispatch(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("cancel") => cmd_cancel(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        _ => {
            eprintln!(
                "usage: r2d2 <list|analyze|transform|run|trace|workload|profile|sweep|serve|dispatch|submit|cancel|watch> ..."
            );
            eprintln!("see `r2d2-cli` crate docs for options");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn cmd_list() -> CliResult {
    println!("{:<8} suite", "name");
    for (n, s) in r2d2_workloads::NAMES {
        println!("{n:<8} {s}");
    }
    Ok(())
}

fn load_kernel(args: &[String]) -> Result<r2d2_isa::Kernel, Box<dyn std::error::Error>> {
    let path = args.first().ok_or("missing kernel file")?;
    let src = std::fs::read_to_string(path)?;
    let k = parse_kernel(&src)?;
    k.validate()?;
    Ok(k)
}

fn cmd_analyze(args: &[String]) -> CliResult {
    let k = load_kernel(args)?;
    let a = analyze(&k);
    println!("{k}");
    println!(
        "linear registers ({} of {} GP regs):",
        a.linear.len(),
        k.num_regs()
    );
    let mut regs: Vec<_> = a.linear.iter().collect();
    regs.sort_by_key(|(r, _)| r.0);
    for (r, info) in regs {
        println!("  %r{:<3} (pc {:>3}) = {}", r.0, info.def_pc, info.vec);
    }
    if !a.multi_write.is_empty() {
        let list: Vec<String> = a.multi_write.iter().map(|r| format!("%r{}", r.0)).collect();
        println!(
            "multi-write (loop/divergence) registers: {}",
            list.join(", ")
        );
    }
    let demanded = a.demanded(&k);
    let list: Vec<String> = demanded.iter().map(|r| format!("%r{}", r.0)).collect();
    println!("demanded by non-linear instructions: {}", list.join(", "));
    Ok(())
}

fn cmd_transform(args: &[String]) -> CliResult {
    let k = load_kernel(args)?;
    let r2 = transform(&k);
    println!("{}", r2.kernel);
    println!(
        "starting PCs: coef=0 tidx={} bidx={} main={}",
        r2.meta.tidx_start, r2.meta.bidx_start, r2.meta.main_start
    );
    println!(
        "registers: {} lr / {} tr / {} cr; register table: {:?}",
        r2.meta.n_lr,
        r2.meta.n_tr,
        r2.meta.n_cr,
        &r2.meta.lr_tr[..r2.meta.n_lr]
    );
    println!(
        "removed {} of {} static instructions ({} groups beyond the 16-entry table)",
        r2.report.removed_instrs, r2.report.original_static, r2.report.spilled_groups
    );
    Ok(())
}

fn parse_dim(s: &str) -> Result<Dim3, Box<dyn std::error::Error>> {
    let parts: Vec<u32> = s.split(',').map(|p| p.parse()).collect::<Result<_, _>>()?;
    Ok(match parts.as_slice() {
        [x] => Dim3::d1(*x),
        [x, y] => Dim3::d2(*x, *y),
        [x, y, z] => Dim3::d3(*x, *y, *z),
        _ => return Err("dimensions must be X[,Y[,Z]]".into()),
    })
}

fn print_stats(stats: &Stats) {
    let energy = EnergyModel::volta().breakdown(&stats.events);
    println!("cycles:            {}", stats.cycles);
    println!(
        "warp instructions: {} (+{} skipped)",
        stats.warp_instrs, stats.skipped_warp_instrs
    );
    println!("thread instrs:     {}", stats.thread_instrs);
    println!("phases (c/t/b/m):  {:?}", stats.warp_instrs_by_phase);
    println!(
        "memory:            L1 {}/{} hits, L2 {}/{} hits, {} DRAM txns",
        stats.l1_hits,
        stats.l1_hits + stats.l1_misses,
        stats.l2_hits,
        stats.l2_hits + stats.l2_misses,
        stats.dram_txns
    );
    println!("energy:            {:.3} uJ", energy.total_pj() / 1e6);
}

fn cmd_run(args: &[String]) -> CliResult {
    let k = load_kernel(args)?;
    let mut grid = Dim3::d1(1);
    let mut block = Dim3::d1(32);
    let mut gmem = GlobalMem::new();
    let mut params: Vec<u64> = Vec::new();
    let mut use_r2d2 = false;
    let mut sms = 80u32;
    let mut loop_kind = LoopKind::default();
    let mut threads = 1u32;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--grid" => {
                grid = parse_dim(args.get(i + 1).ok_or("--grid needs a value")?)?;
                i += 1;
            }
            "--block" => {
                block = parse_dim(args.get(i + 1).ok_or("--block needs a value")?)?;
                i += 1;
            }
            "--buf" => {
                let bytes: u64 = args.get(i + 1).ok_or("--buf needs a size")?.parse()?;
                params.push(gmem.alloc(bytes));
                i += 1;
            }
            "--param" => {
                params.push(
                    args.get(i + 1)
                        .ok_or("--param needs a value")?
                        .parse::<i64>()? as u64,
                );
                i += 1;
            }
            "--r2d2" => use_r2d2 = true,
            "--sms" => {
                sms = args.get(i + 1).ok_or("--sms needs a value")?.parse()?;
                i += 1;
            }
            "--lockstep" => loop_kind = LoopKind::Lockstep,
            "--threads" => {
                threads = args.get(i + 1).ok_or("--threads needs a value")?.parse()?;
                i += 1;
            }
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }
    let cfg = GpuConfig::default()
        .with_num_sms(sms)
        .with_loop_kind(loop_kind)
        .with_threads(threads);
    let stats = if use_r2d2 {
        let (launch, used) = make_launch(&cfg, &k, grid, block, params);
        println!(
            "launching {} kernel\n",
            if used {
                "the R2D2-transformed"
            } else {
                "the original (register-pressure fallback)"
            }
        );
        SimSession::new(&cfg).run(&launch, &mut gmem)?
    } else {
        let launch = Launch::new(k, grid, block, params);
        SimSession::new(&cfg).run(&launch, &mut gmem)?
    };
    print_stats(&stats);
    Ok(())
}

fn cmd_trace(args: &[String]) -> CliResult {
    use r2d2_sim::{functional, InstrEvent, Observer};
    let k = load_kernel(args)?;
    let mut grid = Dim3::d1(1);
    let mut block = Dim3::d1(32);
    let mut gmem = GlobalMem::new();
    let mut params: Vec<u64> = Vec::new();
    let mut limit = 64usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--grid" => {
                grid = parse_dim(args.get(i + 1).ok_or("--grid needs a value")?)?;
                i += 1;
            }
            "--block" => {
                block = parse_dim(args.get(i + 1).ok_or("--block needs a value")?)?;
                i += 1;
            }
            "--buf" => {
                let bytes: u64 = args.get(i + 1).ok_or("--buf needs a size")?.parse()?;
                params.push(gmem.alloc(bytes));
                i += 1;
            }
            "--param" => {
                params.push(
                    args.get(i + 1)
                        .ok_or("--param needs a value")?
                        .parse::<i64>()? as u64,
                );
                i += 1;
            }
            "--limit" => {
                limit = args.get(i + 1).ok_or("--limit needs a value")?.parse()?;
                i += 1;
            }
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }

    struct Tracer {
        left: usize,
        truncated: bool,
    }
    impl Observer for Tracer {
        fn on_instr(&mut self, ev: &InstrEvent<'_>) {
            if self.left == 0 {
                self.truncated = true;
                return;
            }
            self.left -= 1;
            println!(
                "blk {:>4} warp {:>2} pc {:>4} mask {:08x}  {}",
                ev.block, ev.warp_in_block, ev.pc, ev.active, ev.instr
            );
        }
    }
    let mut t = Tracer {
        left: limit,
        truncated: false,
    };
    let launch = Launch::new(k, grid, block, params);
    functional::run(&launch, &mut gmem, 100_000_000, Some(&mut t))?;
    if t.truncated {
        println!("... (truncated at {limit} instructions; raise with --limit)");
    }
    Ok(())
}

fn cmd_profile(args: &[String]) -> CliResult {
    use r2d2_harness::{execute_with_profiler, write_profile_artifacts_in, JobSpec, ModelSpec};
    use r2d2_sim::{Profiler, StallCause};

    let workload = args.first().ok_or("missing workload id")?.clone();
    let model = match args.get(1).map(String::as_str) {
        Some("baseline") => ModelSpec::Baseline,
        Some("dac") => ModelSpec::Dac,
        Some("darsie") => ModelSpec::Darsie,
        Some("darsie-scalar") | Some("darsie_scalar") => ModelSpec::DarsieScalar,
        Some("r2d2") => ModelSpec::R2d2,
        _ => return Err("model must be baseline|dac|darsie|darsie-scalar|r2d2".into()),
    };
    let mut buckets = r2d2_sim::trace::DEFAULT_TARGET_BUCKETS;
    let mut out: Option<std::path::PathBuf> = None;
    let mut size = r2d2_workloads::Size::Small;
    let mut sms: Option<u32> = None;
    let mut threads = 0u32;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--buckets" => {
                buckets = args.get(i + 1).ok_or("--buckets needs a value")?.parse()?;
                i += 1;
            }
            "--out" => {
                out = Some(args.get(i + 1).ok_or("--out needs a value")?.into());
                i += 1;
            }
            "--sms" => {
                sms = Some(args.get(i + 1).ok_or("--sms needs a value")?.parse()?);
                i += 1;
            }
            "--threads" => {
                threads = args.get(i + 1).ok_or("--threads needs a value")?.parse()?;
                i += 1;
            }
            "--full" => size = r2d2_workloads::Size::Full,
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }

    let mut spec = JobSpec::new(&workload, size, model);
    spec.profile = true;
    spec.overrides.num_sms = sms;
    spec.threads = threads;
    let mut prof = Profiler::new(buckets);
    let rec = execute_with_profiler(&spec, &mut prof)?;
    let out = out.unwrap_or_else(r2d2_harness::default_profiles_dir);
    let trace_path = write_profile_artifacts_in(&out, &spec, &prof)?;

    let s = &rec.stats;
    let sm_cycles = s.cycles * prof.num_sms() as u64;
    let pct = |v: u64| {
        if sm_cycles == 0 {
            0.0
        } else {
            100.0 * v as f64 / sm_cycles as f64
        }
    };
    println!(
        "workload {workload} under {}: {} cycles on {} SMs",
        spec.model.name(),
        s.cycles,
        prof.num_sms()
    );
    println!(
        "attribution over {} SM-cycles (invariant {}):",
        sm_cycles,
        match prof.check_invariant() {
            Ok(()) => "holds".to_string(),
            Err(e) => format!("VIOLATED: {e}"),
        }
    );
    println!(
        "  {:<24} {:>12} {:>7.2}%",
        "issued/progress",
        s.issued_sm_cycles,
        pct(s.issued_sm_cycles)
    );
    for c in StallCause::ALL {
        let v = s.stall_sm_cycles[c.idx()];
        println!(
            "  {:<24} {:>12} {:>7.2}%",
            format!("stall_{}", c.name()),
            v,
            pct(v)
        );
    }
    println!(
        "time series: {} buckets x {} cycles",
        prof.buckets().len(),
        prof.bucket_width()
    );
    println!("wrote {}", trace_path.display());
    println!("      (+ .buckets.csv, .stalls.csv alongside)");
    Ok(())
}

fn cmd_sweep(args: &[String]) -> CliResult {
    use r2d2_harness::{sets, Cache, JobSpec, RunOptions};

    match args.first().map(String::as_str) {
        Some("list") => {
            let cache = Cache::open_default();
            let size = r2d2_harness::size_from_env();
            println!(
                "{:<10} {:>6} {:>8}   shares cache with",
                "set", "jobs", "cached"
            );
            for name in sets::SET_NAMES {
                let specs = sets::set(name, size).expect("named set exists");
                let cached = specs.iter().filter(|s| cache.load(s).is_some()).count();
                let shared = match *name {
                    "fig12" | "fig13" | "fig16" => "fig12/fig13/fig16",
                    "fig14" | "fig15" => "fig14/fig15 (subset of fig12)",
                    "sec57" => "subset of fig12",
                    _ => "-",
                };
                println!("{name:<10} {:>6} {cached:>8}   {shared}", specs.len());
            }
            println!(
                "\ncache: {} entries under {}",
                cache.len(),
                cache.dir().display()
            );
            Ok(())
        }
        Some("run") => {
            let mut names: Vec<String> = Vec::new();
            let mut opts = RunOptions::default();
            let mut size = r2d2_harness::size_from_env();
            let mut profile = false;
            let mut threads = 0u32;
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--jobs" => {
                        opts.jobs = args.get(i + 1).ok_or("--jobs needs a value")?.parse()?;
                        i += 1;
                    }
                    "--no-cache" => opts.use_cache = false,
                    "--profile" => profile = true,
                    "--threads" => {
                        threads = args.get(i + 1).ok_or("--threads needs a value")?.parse()?;
                        i += 1;
                    }
                    "--size" => {
                        size = match args.get(i + 1).ok_or("--size needs a value")?.as_str() {
                            "small" => r2d2_workloads::Size::Small,
                            "full" => r2d2_workloads::Size::Full,
                            other => return Err(format!("bad size {other:?}").into()),
                        };
                        i += 1;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(format!("unknown option {flag}").into())
                    }
                    name => names.push(name.to_string()),
                }
                i += 1;
            }
            if names.is_empty() {
                return Err(format!(
                    "missing set name; one of: {} | all",
                    sets::SET_NAMES.join(" | ")
                )
                .into());
            }
            if names.iter().any(|n| n == "all") {
                names = sets::SET_NAMES.iter().map(|s| s.to_string()).collect();
            }
            // Collect specs across sets, deduplicating by cache key so
            // overlapping figures don't queue the same job twice.
            let mut specs: Vec<JobSpec> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for name in &names {
                let set = sets::set(name, size)
                    .ok_or_else(|| format!("unknown set {name:?} (try `r2d2 sweep list`)"))?;
                for mut s in set {
                    s.profile = profile;
                    s.threads = threads;
                    if seen.insert(s.content_hash()) {
                        specs.push(s);
                    }
                }
            }
            println!(
                "running {} unique jobs from: {}",
                specs.len(),
                names.join(", ")
            );
            r2d2_harness::run_jobs(&specs, &opts);
            let cache = Cache::open_default();
            let path = r2d2_harness::default_csv_path();
            let rows = r2d2_harness::export_csv(&cache, &path)?;
            println!("[written {} ({rows} rows)]", path.display());
            Ok(())
        }
        Some("clean") => {
            let cache = Cache::open_default();
            let n = cache.clean()?;
            println!("removed {n} cached results from {}", cache.dir().display());
            Ok(())
        }
        _ => Err("usage: r2d2 sweep <list|run|clean> ...".into()),
    }
}

fn cmd_serve(args: &[String]) -> CliResult {
    use r2d2_serve::{install_signal_handlers, Server, ServerConfig};

    let mut cfg = ServerConfig {
        verbose: true,
        ..ServerConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                cfg.addr = args.get(i + 1).ok_or("--addr needs a value")?.clone();
                i += 1;
            }
            "--workers" => {
                cfg.workers = args.get(i + 1).ok_or("--workers needs a value")?.parse()?;
                i += 1;
            }
            "--queue-cap" => {
                cfg.queue_cap = args
                    .get(i + 1)
                    .ok_or("--queue-cap needs a value")?
                    .parse()?;
                i += 1;
            }
            "--timeout" => {
                let secs: u64 = args.get(i + 1).ok_or("--timeout needs a value")?.parse()?;
                cfg.job_timeout = std::time::Duration::from_secs(secs);
                i += 1;
            }
            "--no-cache" => cfg.use_cache = false,
            "--quiet" => cfg.verbose = false,
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }
    if cfg.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    install_signal_handlers();
    let server = Server::bind(cfg.clone())?;
    let addr = server.local_addr()?;
    // Parsed by scripts and the CI smoke test to discover a `:0` port pick.
    println!(
        "listening on {addr} ({} workers, queue cap {})",
        cfg.workers, cfg.queue_cap
    );
    println!(
        "endpoints: POST /v1/jobs, POST /v1/jobs/batch, GET /v1/jobs/<id>, \
         DELETE /v1/jobs/<id>, GET /v1/jobs/<id>/progress, GET /v1/healthz, \
         GET /v1/metrics, POST /v1/shutdown (unprefixed aliases deprecated)"
    );
    server.run()?;
    Ok(())
}

fn cmd_dispatch(args: &[String]) -> CliResult {
    use r2d2_dispatch::{DispatchConfig, Dispatcher};
    use r2d2_serve::install_signal_handlers;

    let mut cfg = DispatchConfig {
        verbose: true,
        ..DispatchConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backends" => {
                let list = args.get(i + 1).ok_or("--backends needs a value")?;
                cfg.backends = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
                i += 1;
            }
            "--addr" => {
                cfg.addr = args.get(i + 1).ok_or("--addr needs a value")?.clone();
                i += 1;
            }
            "--probe-interval-ms" => {
                let ms: u64 = args
                    .get(i + 1)
                    .ok_or("--probe-interval-ms needs a value")?
                    .parse()?;
                cfg.probe_interval = std::time::Duration::from_millis(ms);
                i += 1;
            }
            "--quiet" => cfg.verbose = false,
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }
    if cfg.backends.is_empty() {
        return Err("dispatch requires --backends a,b,... (at least one serve node)".into());
    }
    install_signal_handlers();
    let backends = cfg.backends.join(", ");
    let dispatcher = Dispatcher::bind(cfg)?;
    let addr = dispatcher.local_addr()?;
    // Parsed by scripts and the CI smoke test to discover a `:0` port pick.
    println!("listening on {addr} (dispatching to {backends})");
    println!(
        "endpoints: /v1 only — POST /v1/jobs, POST /v1/jobs/batch, GET /v1/jobs/<id>, \
         DELETE /v1/jobs/<id>, GET /v1/jobs/<id>/progress, GET /v1/healthz, \
         GET /v1/metrics, POST /v1/shutdown"
    );
    dispatcher.run()?;
    Ok(())
}

fn cmd_submit(args: &[String]) -> CliResult {
    use r2d2_harness::{JobSpec, ModelSpec};

    // Batch modes delegate to `POST /jobs/batch`.
    match args.first().map(String::as_str) {
        Some("--set") => return cmd_submit_set(&args[1..]),
        Some("--batch") => return cmd_submit_batch(&args[1..]),
        _ => {}
    }

    let workload = args.first().ok_or("missing workload id")?.clone();
    let model: ModelSpec = args
        .get(1)
        .ok_or("missing model (baseline|dac|darsie|darsie-scalar|r2d2|ideals)")?
        .parse()?;
    let mut addr = "127.0.0.1:8787".to_string();
    let mut wait = false;
    let mut size = r2d2_workloads::Size::Small;
    let mut sms: Option<u32> = None;
    let mut threads = 0u32;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).ok_or("--addr needs a value")?.clone();
                i += 1;
            }
            "--wait" => wait = true,
            "--full" => size = r2d2_workloads::Size::Full,
            "--sms" => {
                sms = Some(args.get(i + 1).ok_or("--sms needs a value")?.parse()?);
                i += 1;
            }
            "--threads" => {
                threads = args.get(i + 1).ok_or("--threads needs a value")?.parse()?;
                i += 1;
            }
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }

    let mut spec = JobSpec::new(&workload, size, model);
    spec.overrides.num_sms = sms;
    spec.threads = threads;
    // Generous timeout: with --wait the connection stays open while the
    // simulation runs.
    let timeout = std::time::Duration::from_secs(if wait { 3600 } else { 30 });
    let outcome = r2d2_serve::submit(&addr, &spec, wait, timeout)?;
    println!("{}", outcome.body.to_json());
    if outcome.status >= 400 || outcome.job_status() == Some("failed") {
        return Err(format!("submission ended with HTTP {}", outcome.status).into());
    }
    Ok(())
}

/// Parse `--addr HOST:PORT` out of trailing service-command options.
fn parse_addr(args: &[String]) -> Result<String, Box<dyn std::error::Error>> {
    let mut addr = "127.0.0.1:8787".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args.get(i + 1).ok_or("--addr needs a value")?.clone();
                i += 1;
            }
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }
    Ok(addr)
}

fn cmd_submit_set(args: &[String]) -> CliResult {
    let name = args
        .first()
        .ok_or("--set needs a set name (try `r2d2 sweep list`)")?;
    let addr = parse_addr(&args[1..])?;
    let outcome = r2d2_serve::submit_set(&addr, name, std::time::Duration::from_secs(60))?;
    println!("{}", outcome.body.to_json());
    if outcome.status >= 400 {
        return Err(format!("batch submission ended with HTTP {}", outcome.status).into());
    }
    Ok(())
}

fn cmd_submit_batch(args: &[String]) -> CliResult {
    use r2d2_harness::JobSpec;

    let file = args.first().ok_or("--batch needs a JSON file path")?;
    let addr = parse_addr(&args[1..])?;
    let text = std::fs::read_to_string(file)?;
    let parsed = r2d2_harness::json::parse(&text).map_err(|e| format!("{file}: bad JSON: {e}"))?;
    let items = parsed
        .as_arr()
        .ok_or_else(|| format!("{file}: batch file must hold a JSON array of JobSpecs"))?;
    let specs = items
        .iter()
        .enumerate()
        .map(|(i, v)| JobSpec::from_json_request(v).map_err(|e| format!("{file} job {i}: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    let outcome = r2d2_serve::submit_batch(&addr, &specs, std::time::Duration::from_secs(60))?;
    println!("{}", outcome.body.to_json());
    if outcome.status >= 400 {
        return Err(format!("batch submission ended with HTTP {}", outcome.status).into());
    }
    Ok(())
}

fn cmd_cancel(args: &[String]) -> CliResult {
    let id = args.first().ok_or("missing job id")?;
    let addr = parse_addr(&args[1..])?;
    let outcome = r2d2_serve::cancel(&addr, id, std::time::Duration::from_secs(30))?;
    println!("{}", outcome.body.to_json());
    if outcome.status >= 400 {
        return Err(format!("cancel ended with HTTP {}", outcome.status).into());
    }
    Ok(())
}

fn cmd_watch(args: &[String]) -> CliResult {
    let id = args.first().ok_or("missing job id")?;
    let addr = parse_addr(&args[1..])?;
    // The read timeout bounds each quiet stretch of the stream, not the
    // whole watch; a job parked behind a long queue can be silent a while.
    let status = r2d2_serve::watch(&addr, id, std::time::Duration::from_secs(3600), &mut |v| {
        println!("{}", v.to_json());
    })?;
    if status >= 400 {
        return Err(format!("watch ended with HTTP {status}").into());
    }
    Ok(())
}

fn cmd_workload(args: &[String]) -> CliResult {
    let name = args
        .first()
        .ok_or("missing workload name (try `r2d2 list`)")?;
    let mut model = "baseline".to_string();
    let mut size = r2d2_workloads::Size::Small;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                model = args.get(i + 1).ok_or("--model needs a value")?.clone();
                i += 1;
            }
            "--full" => size = r2d2_workloads::Size::Full,
            other => return Err(format!("unknown option {other}").into()),
        }
        i += 1;
    }
    let w = r2d2_workloads::build(name, size).ok_or("unknown workload (try `r2d2 list`)")?;
    let cfg = GpuConfig::default();
    let mut g = w.gmem.clone();
    let mut stats = Stats::default();
    for l in &w.launches {
        let s = match model.as_str() {
            "r2d2" => {
                let (launch, _) = make_launch(&cfg, &l.kernel, l.grid, l.block, l.params.clone());
                SimSession::new(&cfg).run(&launch, &mut g)?
            }
            m => {
                let mut f: Box<dyn IssueFilter> = match m {
                    "baseline" => Box::new(BaselineFilter),
                    "dac" => Box::new(DacFilter::new()),
                    "darsie" => Box::new(DarsieFilter::new()),
                    "darsie-scalar" => Box::new(DarsieScalarFilter::new()),
                    _ => return Err("model must be baseline|dac|darsie|darsie-scalar|r2d2".into()),
                };
                SimSession::new(&cfg).filter(f.as_mut()).run(l, &mut g)?
            }
        };
        stats.merge_sequential(&s);
    }
    println!(
        "workload {name} under {model} ({} launches):\n",
        w.launches.len()
    );
    print_stats(&stats);
    Ok(())
}
