//! End-to-end tests of the `r2d2` command-line driver.

use std::io::Write;
use std::process::Command;

const KERNEL: &str = r#"
.kernel demo params=2 {
  mov.b32 %r0, %tid.x;
  mov.b32 %r1, %ctaid.x;
  mov.b32 %r2, %ntid.x;
  mad.b32 %r3, %r1, %r2, %r0;
  cvt.b64 %r4, %r3;
  shl.b64 %r5, %r4, 2;
  ld.param.b64 %r6, [P0];
  add.b64 %r7, %r6, %r5;
  ld.global.f32 %r8, [%r7];
  mul.f32 %r9, %r8, %r8;
  ld.param.b64 %r10, [P1];
  add.b64 %r11, %r10, %r5;
  st.global.f32 [%r11], %r9;
  exit;
}
"#;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_r2d2"))
}

fn kernel_file() -> tempfile::TempPath {
    let mut f = tempfile::NamedTempFile::new().unwrap();
    f.write_all(KERNEL.as_bytes()).unwrap();
    f.into_temp_path()
}

// A tiny tempfile shim (no external dependency): write to a unique path.
mod tempfile {
    use std::path::PathBuf;

    pub struct NamedTempFile(std::fs::File, PathBuf);
    pub struct TempPath(PathBuf);

    impl NamedTempFile {
        pub fn new() -> std::io::Result<Self> {
            let p = std::env::temp_dir().join(format!(
                "r2d2-cli-test-{}-{:?}.kasm",
                std::process::id(),
                std::thread::current().id()
            ));
            Ok(NamedTempFile(std::fs::File::create(&p)?, p))
        }

        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.1)
        }
    }

    impl std::io::Write for NamedTempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.0, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.0)
        }
    }

    impl std::ops::Deref for TempPath {
        type Target = std::path::Path;
        fn deref(&self) -> &Self::Target {
            &self.0
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

#[test]
fn list_names_all_workloads() {
    let out = bin().arg("list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for (name, _) in r2d2_workloads::NAMES {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn analyze_prints_coefficient_vectors() {
    let path = kernel_file();
    let out = bin().arg("analyze").arg(&*path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("linear registers"));
    assert!(
        text.contains("{P0,4,0,0"),
        "expected the address vector:\n{text}"
    );
}

#[test]
fn transform_prints_decoupled_kernel() {
    let path = kernel_file();
    let out = bin().arg("transform").arg(&*path).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("%lr0"), "{text}");
    assert!(text.contains("starting PCs"));
}

#[test]
fn run_executes_on_the_simulator() {
    let path = kernel_file();
    let out = bin()
        .args(["run"])
        .arg(&*path)
        .args([
            "--grid", "4", "--block", "128", "--buf", "2048", "--buf", "2048", "--sms", "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("cycles:"));
    assert!(text.contains("warp instructions:"));
}

#[test]
fn run_r2d2_reports_transformed_launch() {
    let path = kernel_file();
    let out = bin()
        .args(["run"])
        .arg(&*path)
        .args([
            "--grid", "4", "--block", "128", "--buf", "2048", "--buf", "2048", "--r2d2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("R2D2-transformed"), "{text}");
}

#[test]
fn workload_subcommand_runs() {
    let out = bin()
        .args(["workload", "NN", "--model", "r2d2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("energy:"));
}

#[test]
fn trace_prints_dynamic_instructions() {
    let path = kernel_file();
    let out = bin()
        .args(["trace"])
        .arg(&*path)
        .args([
            "--grid", "1", "--block", "32", "--buf", "512", "--buf", "512", "--limit", "5",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().filter(|l| l.starts_with("blk")).count(), 5);
    assert!(text.contains("truncated"));
}

#[test]
fn bad_usage_exits_nonzero() {
    // Garbage subcommand: usage on stderr, exit code 2.
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
    assert!(out.stdout.is_empty());
    // No subcommand at all behaves the same.
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Bad arguments to real subcommands: exit code 1 with an error line.
    for args in [
        vec!["workload", "NOPE"],
        vec!["analyze"],
        vec!["analyze", "/nonexistent/k.kasm"],
        vec!["run"],
        vec!["run", "/nonexistent/k.kasm"],
        vec!["sweep"],
        vec!["sweep", "run"],
        vec!["sweep", "run", "nope-not-a-set"],
        vec!["sweep", "run", "fig13", "--size", "tiny"],
    ] {
        let out = bin().args(&args).output().unwrap();
        assert_eq!(out.status.code(), Some(1), "{args:?} should fail cleanly");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("error:"),
            "{args:?} should explain itself"
        );
    }
}

#[test]
fn profile_emits_valid_stable_chrome_trace() {
    let tmp = std::env::temp_dir().join(format!("r2d2-profile-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let run = |sub: &str| {
        let out_dir = tmp.join(sub);
        let out = bin()
            .args([
                "profile",
                "vecadd",
                "r2d2",
                "--buckets",
                "32",
                "--sms",
                "8",
                "--out",
            ])
            .arg(&out_dir)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("invariant holds"), "{text}");
        assert!(text.contains("stall_dram"), "{text}");
        let trace = std::fs::read_dir(&out_dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .find(|p| p.to_string_lossy().ends_with(".trace.json"))
            .expect("a .trace.json artifact");
        for ext in [".buckets.csv", ".stalls.csv"] {
            let sibling = trace.to_string_lossy().replace(".trace.json", ext);
            assert!(std::path::Path::new(&sibling).is_file(), "missing {ext}");
        }
        std::fs::read_to_string(trace).unwrap()
    };

    let a = run("a");
    // Valid Chrome trace_event JSON under the workspace's own parser: an
    // object envelope with a non-empty traceEvents array of X/C/M events.
    let v = r2d2_trace::json::parse(&a).expect("trace parses");
    let events = v
        .get("traceEvents")
        .and_then(r2d2_trace::json::Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(r2d2_trace::json::Value::as_str);
        assert!(
            matches!(ph, Some("X" | "C" | "M")),
            "unexpected event phase {ph:?}"
        );
    }
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(r2d2_trace::json::Value::as_str) == Some("stall_cycles")
                && e.get("args").and_then(|a| a.get("dram")).is_some()
        }),
        "expected a stall_cycles counter track with a dram arg"
    );

    // Golden stability: a re-run produces byte-identical artifacts.
    let b = run("b");
    assert_eq!(a, b, "trace output must be deterministic");
    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn sweep_list_names_every_set() {
    let out = bin().args(["sweep", "list"]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    for set in [
        "fig04", "fig12", "fig13", "fig14", "fig15", "fig16", "table3", "sec54", "sec57", "sec58",
    ] {
        assert!(text.contains(set), "missing {set}:\n{text}");
    }
}

#[test]
fn sweep_run_populates_then_hits_the_cache() {
    let results = std::env::temp_dir().join(format!("r2d2-sweep-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&results);
    let run = |extra: &[&str]| {
        let mut c = bin();
        c.env("R2D2_RESULTS", &results)
            .args(["sweep", "run", "sec57", "--size", "small", "--jobs", "2"])
            .args(extra);
        let out = c.output().unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    let cold = run(&[]);
    assert!(cold.contains("4 jobs: 0 cached, 4 simulated"), "{cold}");
    let warm = run(&[]);
    assert!(warm.contains("4 jobs: 4 cached, 0 simulated"), "{warm}");
    let refresh = run(&["--no-cache"]);
    assert!(
        refresh.contains("4 jobs: 0 cached, 4 simulated"),
        "{refresh}"
    );
    assert!(results.join("run_records.csv").is_file());
    // clean removes exactly the cache entries (*.json under cache/), never
    // sibling artifacts: the exported CSV and non-entry files survive.
    let stray = results.join("cache").join("README.txt");
    std::fs::write(&stray, "not a cache entry").unwrap();
    let out = bin()
        .env("R2D2_RESULTS", &results)
        .args(["sweep", "clean"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("removed 4"));
    assert!(
        results.join("cache").join("README.txt").is_file(),
        "clean must only touch *.json cache entries"
    );
    assert!(
        results.join("run_records.csv").is_file(),
        "clean must not delete exported artifacts"
    );
    assert_eq!(
        std::fs::read_dir(results.join("cache"))
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
            .count(),
        0,
        "every cache entry is gone"
    );
    let _ = std::fs::remove_dir_all(&stray);
    let _ = std::fs::remove_dir_all(&results);
}
