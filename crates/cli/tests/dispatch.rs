//! Process-level smoke test of the dispatch tier: two real `r2d2 serve`
//! daemons plus a real `r2d2 dispatch` in front of them, driven over real
//! sockets with `r2d2 submit/cancel/watch`. This is what the CI "service
//! smoke" step runs for the dispatcher.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use r2d2_harness::json::{self, Value};
use r2d2_harness::{JobSpec, ModelSpec};
use r2d2_workloads::Size;

const T: Duration = Duration::from_secs(120);

/// Distinguishes concurrently-running tests' daemons (same pid).
static SPAWN_SEQ: AtomicUsize = AtomicUsize::new(0);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_r2d2"))
}

/// One spawned daemon (`serve` or `dispatch`) with its stdout drained to a
/// log under `target/tmp/dispatch-smoke-logs/` for the CI failure artifact.
struct Daemon {
    child: Child,
    addr: String,
    results: Option<std::path::PathBuf>,
}

impl Daemon {
    fn spawn(kind: &str, args: &[&str], results: Option<std::path::PathBuf>) -> Daemon {
        let tag = format!(
            "{}-{}",
            std::process::id(),
            SPAWN_SEQ.fetch_add(1, Ordering::SeqCst)
        );
        let logs = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("dispatch-smoke-logs");
        std::fs::create_dir_all(&logs).expect("create smoke log dir");
        let stderr_log =
            std::fs::File::create(logs.join(format!("{kind}-{tag}.stderr.log"))).expect("log file");
        let mut cmd = bin();
        if let Some(results) = &results {
            let _ = std::fs::remove_dir_all(results);
            cmd.env("R2D2_RESULTS", results);
        }
        let mut child = cmd
            .env("R2D2_SIZE", "small")
            .args([kind, "--addr", "127.0.0.1:0"])
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::from(stderr_log))
            .spawn()
            .unwrap_or_else(|e| panic!("spawn r2d2 {kind}: {e}"));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("a listening line")
            .expect("readable stdout");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {first}"))
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        // Drain stdout for the daemon's lifetime (EPIPE otherwise),
        // mirroring into the log file.
        let mut stdout_log =
            std::fs::File::create(logs.join(format!("{kind}-{tag}.stdout.log"))).expect("log file");
        let _ = writeln!(stdout_log, "{first}");
        std::thread::spawn(move || {
            for line in lines.by_ref().map_while(Result::ok) {
                let _ = writeln!(stdout_log, "{line}");
            }
        });
        Daemon {
            child,
            addr,
            results,
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(results) = &self.results {
            let _ = std::fs::remove_dir_all(results);
        }
    }
}

fn spawn_backend(tag: &str) -> Daemon {
    let results = std::env::temp_dir().join(format!(
        "r2d2-dispatch-smoke-{tag}-{}-{}",
        std::process::id(),
        SPAWN_SEQ.load(Ordering::SeqCst)
    ));
    Daemon::spawn(
        "serve",
        &["--workers", "2", "--queue-cap", "8", "--quiet"],
        Some(results),
    )
}

#[test]
fn dispatcher_smoke_submit_watch_cancel_over_real_sockets() {
    let b0 = spawn_backend("b0");
    let b1 = spawn_backend("b1");
    let backends = format!("{},{}", b0.addr, b1.addr);
    let mut dispatcher = Daemon::spawn(
        "dispatch",
        &["--backends", &backends, "--probe-interval-ms", "100"],
        None,
    );
    let addr = dispatcher.addr.clone();

    // Fleet liveness and the aggregated exposition.
    let (code, body) = r2d2_serve::healthz(&addr, T).expect("healthz");
    assert_eq!((code, body.as_str()), (200, "ok"));
    let metrics = r2d2_serve::fetch_metrics(&addr, T).expect("metrics");
    for needle in [
        "dispatch_backends_live 2",
        "dispatch_routed_total",
        "dispatch_retries_total",
        "dispatch_failover_total",
    ] {
        assert!(metrics.contains(needle), "missing {needle}:\n{metrics}");
    }

    // `r2d2 submit --wait` through the dispatcher, twice: the duplicate
    // must coalesce on one backend (routing is by content hash).
    for pass in 0..2 {
        let out = bin()
            .args(["submit", "NN", "baseline", "--addr", &addr, "--wait"])
            .output()
            .expect("run r2d2 submit");
        assert!(
            out.status.success(),
            "pass {pass}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let v = json::parse(String::from_utf8(out.stdout).unwrap().trim()).expect("JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("done"));
    }
    let metrics = r2d2_serve::fetch_metrics(&addr, T).expect("metrics");
    let metric = |text: &str, name: &str| -> u64 {
        text.lines()
            .find(|l| l.starts_with(&format!("{name} ")))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|x| x.parse().ok())
            .unwrap_or_else(|| panic!("no {name} in:\n{text}"))
    };
    assert_eq!(
        metric(&metrics, "r2d2_serve_jobs_simulated_total"),
        1,
        "the duplicate submission must not re-simulate:\n{metrics}"
    );

    // `r2d2 watch` relays the chunked NDJSON stream through the proxy.
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let out = bin()
        .args(["watch", &spec.hash_hex(), "--addr", &addr])
        .output()
        .expect("run r2d2 watch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let last = stdout.lines().last().expect("a terminal line");
    let v = json::parse(last).expect("terminal line is JSON");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("done"));

    // `r2d2 cancel` proxies DELETE; a terminal job answers 200/done.
    let out = bin()
        .args(["cancel", &spec.hash_hex(), "--addr", &addr])
        .output()
        .expect("run r2d2 cancel");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Kill one backend; the dispatcher keeps answering from the survivor.
    drop(b0);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = r2d2_serve::fetch_metrics(&addr, T).expect("metrics");
        if metric(&metrics, "dispatch_backends_live") == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "probe never noticed the dead backend"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let mut spec2 = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    spec2.overrides.num_sms = Some(2);
    let o = r2d2_serve::submit(&addr, &spec2, true, T).expect("submit with one backend down");
    assert_eq!(o.status, 200, "{:?}", o.body);
    assert_eq!(o.job_status(), Some("done"));

    // Drain the dispatcher; the backend is independent and stays up.
    assert_eq!(r2d2_serve::shutdown(&addr, T).expect("shutdown"), 200);
    let status = dispatcher.child.wait().expect("wait for dispatch to exit");
    assert!(status.success(), "dispatch must exit cleanly");
    let (code, _) = r2d2_serve::healthz(&b1.addr, T).expect("backend survives");
    assert_eq!(code, 200);
}
