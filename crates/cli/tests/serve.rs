//! Process-level smoke test of `r2d2 serve` + `r2d2 submit`: start the real
//! binary on an ephemeral port, drive it over real sockets, and exercise
//! graceful shutdown. This is what the CI "service smoke" step runs.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use r2d2_harness::{JobSpec, ModelSpec};
use r2d2_workloads::Size;

const T: Duration = Duration::from_secs(120);

/// Distinguishes concurrently-running tests' services (same pid).
static SPAWN_SEQ: AtomicUsize = AtomicUsize::new(0);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_r2d2"))
}

struct Service {
    child: Child,
    addr: String,
    results: std::path::PathBuf,
}

impl Service {
    /// Spawn `r2d2 serve` on port 0 and parse the bound address from its
    /// "listening on ..." line.
    fn spawn() -> Service {
        Service::spawn_args(&["--workers", "2", "--queue-cap", "8"])
    }

    /// [`Service::spawn`] with explicit serve options (beyond `--addr`).
    ///
    /// The daemon's stdout and stderr are persisted under
    /// `target/tmp/serve-smoke-logs/` so CI can upload them as an artifact
    /// when this smoke test fails.
    fn spawn_args(extra: &[&str]) -> Service {
        let tag = format!(
            "{}-{}",
            std::process::id(),
            SPAWN_SEQ.fetch_add(1, Ordering::SeqCst)
        );
        let results = std::env::temp_dir().join(format!("r2d2-serve-smoke-{tag}"));
        let _ = std::fs::remove_dir_all(&results);
        let logs = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("serve-smoke-logs");
        std::fs::create_dir_all(&logs).expect("create smoke log dir");
        let stderr_log =
            std::fs::File::create(logs.join(format!("serve-{tag}.stderr.log"))).expect("log file");
        let mut child = bin()
            .env("R2D2_RESULTS", &results)
            // Pin the set-resolution size so named-set submissions stay
            // small regardless of the ambient R2D2_SIZE.
            .env("R2D2_SIZE", "small")
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::from(stderr_log))
            .spawn()
            .expect("spawn r2d2 serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("a listening line")
            .expect("readable stdout");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {first}"))
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        // Keep draining stdout for the life of the service: dropping the
        // reader closes the pipe and the daemon's next println would die
        // with EPIPE. The thread exits on EOF when the child does, mirroring
        // everything into the on-disk log for the CI failure artifact.
        let mut stdout_log =
            std::fs::File::create(logs.join(format!("serve-{tag}.stdout.log"))).expect("log file");
        let _ = writeln!(stdout_log, "{first}");
        std::thread::spawn(move || {
            for line in lines.by_ref().map_while(Result::ok) {
                let _ = writeln!(stdout_log, "{line}");
            }
        });
        Service {
            child,
            addr,
            results,
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.results);
    }
}

#[test]
fn serve_and_submit_round_trip_with_graceful_shutdown() {
    let mut svc = Service::spawn();
    let addr = svc.addr.clone();

    // Liveness and metrics answer.
    let (code, body) = r2d2_serve::healthz(&addr, T).expect("healthz");
    assert_eq!((code, body.as_str()), (200, "ok"));
    let metrics = r2d2_serve::fetch_metrics(&addr, T).expect("metrics");
    for needle in [
        "r2d2_serve_queue_depth",
        "r2d2_serve_in_flight",
        "r2d2_serve_cache_hit_rate",
        "r2d2_serve_job_wall_ms_p99",
    ] {
        assert!(metrics.contains(needle), "missing {needle}:\n{metrics}");
    }

    // `r2d2 submit --wait` against the spawned service completes a small
    // zoo job and prints the response JSON.
    let out = bin()
        .args(["submit", "NN", "baseline", "--addr", &addr, "--wait"])
        .output()
        .expect("run r2d2 submit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body: String = String::from_utf8(out.stdout).unwrap();
    let v = r2d2_harness::json::parse(body.trim()).expect("response is JSON");
    assert_eq!(
        v.get("status").and_then(r2d2_harness::json::Value::as_str),
        Some("done"),
        "{body}"
    );
    let rec = r2d2_harness::RunRecord::from_json(v.get("record").expect("record"))
        .expect("record decodes");

    // The served Stats match a direct in-process run of the same spec
    // bit-for-bit (the service and the harness share one execution path).
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let direct = r2d2_harness::execute(&spec).expect("direct run");
    assert_eq!(rec.stats, direct.stats, "served vs direct Stats diverged");
    assert_eq!(rec.energy, direct.energy);

    // Graceful shutdown: the server drains and the process exits 0.
    assert_eq!(r2d2_serve::shutdown(&addr, T).expect("shutdown"), 200);
    let status = svc.child.wait().expect("wait for serve to exit");
    assert!(status.success(), "serve must exit cleanly after draining");
    assert!(
        r2d2_serve::healthz(&addr, Duration::from_secs(2)).is_err(),
        "port must be closed after shutdown"
    );
}

/// Poll a job's status over the wire until `want` matches it.
fn poll_status(addr: &str, id: &str, limit: Duration, want: impl Fn(&str) -> bool) -> String {
    let deadline = std::time::Instant::now() + limit;
    loop {
        let s = r2d2_serve::job_status(addr, id, T).expect("job status");
        let status = s.job_status().expect("status field").to_string();
        if want(&status) {
            return status;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "timed out polling {id}; last status {status:?}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn batch_cancel_and_watch_over_real_sockets() {
    use r2d2_harness::json::{self, Value};

    // One worker, so a slow job deterministically parks later submissions
    // in the queue.
    let mut svc = Service::spawn_args(&["--workers", "1", "--queue-cap", "8"]);
    let addr = svc.addr.clone();

    // Batch-submit a named figure set through the CLI; sec57 is the
    // smallest (4 jobs), resolved server-side at R2D2_SIZE=small.
    let out = bin()
        .args(["submit", "--set", "sec57", "--addr", &addr])
        .output()
        .expect("run r2d2 submit --set");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v = json::parse(String::from_utf8(out.stdout).unwrap().trim()).expect("batch JSON");
    assert_eq!(v.get("count").and_then(Value::as_u64), Some(4), "{v:?}");
    let set = r2d2_harness::sets::set("sec57", Size::Small).expect("sec57 set");
    assert_eq!(
        v.get("jobs").and_then(Value::as_arr).map(<[Value]>::len),
        Some(set.len())
    );

    // Wait for the set to drain, then check the batch simulated each
    // distinct spec exactly once.
    for spec in &set {
        let status = poll_status(&addr, &spec.hash_hex(), Duration::from_secs(300), |s| {
            s == "done" || s == "failed"
        });
        assert_eq!(status, "done", "{} must complete", spec.label());
    }

    // A full-size job occupies the single worker for a long time...
    let slow = JobSpec::new("MVT", Size::Full, ModelSpec::Baseline);
    let slow_id = slow.hash_hex();
    let o = r2d2_serve::submit(&addr, &slow, false, T).expect("submit slow job");
    assert_eq!(o.status, 202, "{:?}", o.body);
    poll_status(&addr, &slow_id, Duration::from_secs(300), |s| {
        s == "running"
    });

    // ...so this distinct job stays queued, and `r2d2 cancel` takes it out
    // of the queue before it ever runs.
    let mut queued = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    queued.overrides.num_sms = Some(37);
    let queued_id = queued.hash_hex();
    let o = r2d2_serve::submit(&addr, &queued, false, T).expect("submit queued job");
    assert_eq!(o.status, 202, "{:?}", o.body);
    let out = bin()
        .args(["cancel", &queued_id, "--addr", &addr])
        .output()
        .expect("run r2d2 cancel");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v = json::parse(String::from_utf8(out.stdout).unwrap().trim()).expect("cancel JSON");
    assert_eq!(
        v.get("status").and_then(Value::as_str),
        Some("cancelled"),
        "{v:?}"
    );

    // Cancel the running job: the CLI reports the signal, and the worker
    // lands the `cancelled` state within an epoch instead of letting the
    // full-size run finish.
    let out = bin()
        .args(["cancel", &slow_id, "--addr", &addr])
        .output()
        .expect("run r2d2 cancel (running)");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let status = poll_status(&addr, &slow_id, Duration::from_secs(300), |s| {
        s == "done" || s == "failed" || s == "cancelled"
    });
    assert_eq!(status, "cancelled");

    // `r2d2 watch` streams a completed job's chunked progress series; the
    // terminal line must replay the exact buckets a direct profiled run of
    // the same spec produces.
    let done_spec = &set[0];
    let out = bin()
        .args(["watch", &done_spec.hash_hex(), "--addr", &addr])
        .output()
        .expect("run r2d2 watch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let last = stdout.lines().last().expect("a terminal line");
    let v = json::parse(last).expect("terminal line is JSON");
    assert_eq!(v.get("status").and_then(Value::as_str), Some("done"));
    let snap = r2d2_harness::ProgressSnapshot::from_json(&v).expect("snapshot decodes");
    assert!(snap.finished);
    let mut prof = r2d2_trace::Profiler::default();
    r2d2_harness::execute_with_profiler(done_spec, &mut prof).expect("direct profiled run");
    assert_eq!(
        snap.buckets.as_slice(),
        prof.buckets(),
        "streamed series must be bit-identical to the profiler's"
    );
    assert_eq!(snap.total_cycles, prof.total_cycles());

    // Metrics reflect the whole session: 4 set jobs simulated (the slow job
    // was cancelled mid-run, the queued one never ran) and 2 cancellations.
    let metrics = r2d2_serve::fetch_metrics(&addr, T).expect("metrics");
    let metric = |name: &str| -> u64 {
        metrics
            .lines()
            .find(|l| l.starts_with(&format!("r2d2_serve_{name} ")))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|x| x.parse().ok())
            .unwrap_or_else(|| panic!("no {name} in:\n{metrics}"))
    };
    assert_eq!(metric("jobs_simulated_total"), set.len() as u64);
    assert_eq!(metric("jobs_cancelled_total"), 2);
    assert_eq!(metric("batch_submissions_total"), 1);

    assert_eq!(r2d2_serve::shutdown(&addr, T).expect("shutdown"), 200);
    let status = svc.child.wait().expect("wait for serve to exit");
    assert!(status.success(), "serve must exit cleanly after draining");
}
