//! Process-level smoke test of `r2d2 serve` + `r2d2 submit`: start the real
//! binary on an ephemeral port, drive it over real sockets, and exercise
//! graceful shutdown. This is what the CI "service smoke" step runs.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use r2d2_harness::{JobSpec, ModelSpec};
use r2d2_workloads::Size;

const T: Duration = Duration::from_secs(120);

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_r2d2"))
}

struct Service {
    child: Child,
    addr: String,
    results: std::path::PathBuf,
}

impl Service {
    /// Spawn `r2d2 serve` on port 0 and parse the bound address from its
    /// "listening on ..." line.
    fn spawn() -> Service {
        let results = std::env::temp_dir().join(format!("r2d2-serve-smoke-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&results);
        let mut child = bin()
            .env("R2D2_RESULTS", &results)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--queue-cap",
                "8",
                "--quiet",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn r2d2 serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("a listening line")
            .expect("readable stdout");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {first}"))
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        // Keep draining stdout for the life of the service: dropping the
        // reader closes the pipe and the daemon's next println would die
        // with EPIPE. The thread exits on EOF when the child does.
        std::thread::spawn(move || for _ in lines.by_ref() {});
        Service {
            child,
            addr,
            results,
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_dir_all(&self.results);
    }
}

#[test]
fn serve_and_submit_round_trip_with_graceful_shutdown() {
    let mut svc = Service::spawn();
    let addr = svc.addr.clone();

    // Liveness and metrics answer.
    let (code, body) = r2d2_serve::healthz(&addr, T).expect("healthz");
    assert_eq!((code, body.as_str()), (200, "ok"));
    let metrics = r2d2_serve::fetch_metrics(&addr, T).expect("metrics");
    for needle in [
        "r2d2_serve_queue_depth",
        "r2d2_serve_in_flight",
        "r2d2_serve_cache_hit_rate",
        "r2d2_serve_job_wall_ms_p99",
    ] {
        assert!(metrics.contains(needle), "missing {needle}:\n{metrics}");
    }

    // `r2d2 submit --wait` against the spawned service completes a small
    // zoo job and prints the response JSON.
    let out = bin()
        .args(["submit", "NN", "baseline", "--addr", &addr, "--wait"])
        .output()
        .expect("run r2d2 submit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body: String = String::from_utf8(out.stdout).unwrap();
    let v = r2d2_harness::json::parse(body.trim()).expect("response is JSON");
    assert_eq!(
        v.get("status").and_then(r2d2_harness::json::Value::as_str),
        Some("done"),
        "{body}"
    );
    let rec = r2d2_harness::RunRecord::from_json(v.get("record").expect("record"))
        .expect("record decodes");

    // The served Stats match a direct in-process run of the same spec
    // bit-for-bit (the service and the harness share one execution path).
    let spec = JobSpec::new("NN", Size::Small, ModelSpec::Baseline);
    let direct = r2d2_harness::execute(&spec).expect("direct run");
    assert_eq!(rec.stats, direct.stats, "served vs direct Stats diverged");
    assert_eq!(rec.energy, direct.energy);

    // Graceful shutdown: the server drains and the process exits 0.
    assert_eq!(r2d2_serve::shutdown(&addr, T).expect("shutdown"), 200);
    let status = svc.child.wait().expect("wait for serve to exit");
    assert!(status.success(), "serve must exit cleanly after draining");
    assert!(
        r2d2_serve::healthz(&addr, Duration::from_secs(2)).is_err(),
        "port must be closed after shutdown"
    );
}
