//! The ideal instruction-count machines of paper Fig. 4 (WP / TB / LN).
//!
//! These machines never affect timing; they re-count the baseline's dynamic
//! thread instructions under three idealized redundancy-elimination policies:
//!
//! * **WP** — a warp instruction whose active lanes all compute the same
//!   operation on the same source values costs 1 thread instruction instead
//!   of 32. (The paper's WP "ideally skips all scalar computations, even if
//!   the computations require runtime information".)
//! * **TB** — a warp instruction whose source value vectors match those of an
//!   earlier warp instruction at the same pc within the same thread block
//!   costs 0 (it is skipped).
//! * **LN** — instructions producing linear combinations cost what R2D2's
//!   decoupling would pay: scalar parts once per kernel, thread-index parts
//!   once per kernel, block-index parts once per thread block.

use r2d2_core::analyzer::Analysis;
use r2d2_isa::Op;
use r2d2_sim::{functional, ExecError, GlobalMem, InstrEvent, Launch, Observer};
use std::collections::{HashMap, HashSet};

/// Dynamic thread-instruction counts under each ideal machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealCounts {
    /// Baseline dynamic thread instructions.
    pub baseline: u64,
    /// WP machine thread instructions.
    pub wp: u64,
    /// TB machine thread instructions.
    pub tb: u64,
    /// LN machine thread instructions.
    pub ln: u64,
    /// Baseline dynamic warp instructions.
    pub baseline_warp: u64,
}

impl IdealCounts {
    /// Percentage reduction of each machine vs. baseline, `(wp, tb, ln)`.
    pub fn reductions(&self) -> (f64, f64, f64) {
        let r = |v: u64| {
            if self.baseline == 0 {
                0.0
            } else {
                100.0 * (self.baseline - v) as f64 / self.baseline as f64
            }
        };
        (r(self.wp), r(self.tb), r(self.ln))
    }
}

/// FNV-1a over a list of words.
fn hash_words(words: impl Iterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Observer implementing all three ideal machines in one functional pass.
#[derive(Debug, Default)]
pub struct IdealObserver {
    analysis: Analysis,
    counts: IdealCounts,
    /// TB: per-pc set of source-vector hashes seen in the current block.
    tb_seen: HashMap<(u64, u32), HashSet<u64>>,
    /// LN: producer pcs already charged once per kernel (scalar/thread parts).
    ln_once: HashSet<u32>,
    /// LN: (pc, block) pairs already charged for block parts.
    ln_block: HashSet<(u32, u64)>,
}

impl IdealObserver {
    /// Build from the analyzer's result for the same kernel.
    pub fn new(analysis: Analysis) -> Self {
        IdealObserver {
            analysis,
            ..Default::default()
        }
    }

    /// Final counts.
    pub fn counts(&self) -> IdealCounts {
        self.counts
    }

    fn src_hash(ev: &InstrEvent<'_>) -> u64 {
        // Hash the per-lane operand values (or addresses for memory ops),
        // restricted to executing lanes, plus the mask itself.
        let mask = ev.exec_mask;
        let mut acc: Vec<u64> = Vec::with_capacity(8);
        acc.push(mask as u64);
        if let Some(m) = ev.mem {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 {
                    acc.push(m.addrs[lane]);
                }
            }
        }
        if let Some(v) = ev.vals {
            for s in 0..v.nsrc {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        acc.push(v.srcs[s][lane]);
                    }
                }
            }
        }
        hash_words(acc.into_iter())
    }

    fn lanes_uniform(ev: &InstrEvent<'_>) -> bool {
        let mask = ev.exec_mask;
        if mask == 0 {
            return true;
        }
        let first = mask.trailing_zeros() as usize;
        if let Some(m) = ev.mem {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 && m.addrs[lane] != m.addrs[first] {
                    return false;
                }
            }
        }
        if let Some(v) = ev.vals {
            for s in 0..v.nsrc {
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 && v.srcs[s][lane] != v.srcs[s][first] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl Observer for IdealObserver {
    fn wants_values(&self) -> bool {
        true
    }

    fn on_instr(&mut self, ev: &InstrEvent<'_>) {
        let lanes = ev.charged_lanes as u64;
        self.counts.baseline += lanes;
        self.counts.baseline_warp += 1;

        let is_control = ev.instr.op.is_control();

        // ---- WP ----
        if !is_control && Self::lanes_uniform(ev) {
            self.counts.wp += 1;
        } else {
            self.counts.wp += lanes;
        }

        // ---- TB ----
        if is_control || matches!(ev.instr.op, Op::St(_) | Op::Atom(_)) {
            // Control flow / side-effecting stores are never skipped.
            self.counts.tb += lanes;
        } else {
            let h = Self::src_hash(ev);
            let set = self.tb_seen.entry((ev.block, ev.pc as u32)).or_default();
            if !set.insert(h) {
                // identical earlier warp instruction in this block: free
            } else {
                self.counts.tb += lanes;
            }
        }

        // ---- LN ----
        let pc32 = ev.pc as u32;
        let producer = *self.analysis.producer.get(ev.pc).unwrap_or(&false);
        if !producer {
            self.counts.ln += lanes;
        } else {
            let dst = ev.instr.dst_reg().expect("producer has a dst");
            let vec = &self.analysis.linear[&dst].vec;
            if vec.is_scalar() {
                // once per kernel, single thread
                if self.ln_once.insert(pc32) {
                    self.counts.ln += 1;
                }
            } else {
                let has_t = vec.has_thread_part();
                let has_b = vec.has_block_part() || !vec.constant().is_zero();
                // Thread-index parts: once per kernel — exactly the block-0
                // instances (every thread slot computed once).
                if has_t && ev.block == 0 {
                    self.counts.ln += lanes; // block 0 computes thread parts
                }
                if has_b && self.ln_block.insert((pc32, ev.block)) {
                    self.counts.ln += 1; // one thread per block for block parts
                }
            }
        }
    }

    fn on_block_done(&mut self, block: u64) {
        self.tb_seen.retain(|(b, _), _| *b != block);
    }
}

/// Run the launch functionally and return the Fig. 4 ideal-machine counts.
///
/// # Errors
///
/// Propagates watchdog errors from functional execution.
pub fn measure_ideals(launch: &Launch, gmem: &mut GlobalMem) -> Result<IdealCounts, ExecError> {
    let analysis = r2d2_core::analyzer::analyze(&launch.kernel);
    let mut obs = IdealObserver::new(analysis);
    functional::run(launch, gmem, 100_000_000, Some(&mut obs))?;
    Ok(obs.counts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::{KernelBuilder, Ty};
    use r2d2_sim::Dim3;

    fn linear_heavy_kernel() -> r2d2_isa::Kernel {
        let mut b = KernelBuilder::new("lin", 2);
        let i = b.global_tid_x();
        let c = b.ld_param32(1);
        let j = b.mad(i, c, Operand::Imm(7));
        let off = b.shl_imm_wide(j, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        let v = b.ld_global(Ty::F32, addr, 0);
        let w = b.mul_ty(Ty::F32, v, v);
        b.st_global(Ty::F32, addr, 0, w);
        b.build()
    }

    use r2d2_isa::Operand;

    #[test]
    fn ln_beats_wp_and_tb_on_linear_kernel() {
        let k = linear_heavy_kernel();
        let mut g = GlobalMem::new();
        let n = 16 * 128 * 4u64; // j can reach 4*i+7
        let buf = g.alloc(n * 8);
        let launch = Launch::new(k, Dim3::d1(16), Dim3::d1(128), vec![buf, 4]);
        let c = measure_ideals(&launch, &mut g).unwrap();
        assert!(c.baseline > 0);
        assert!(c.wp < c.baseline, "WP saves something");
        assert!(c.tb < c.baseline, "TB saves something");
        assert!(c.ln < c.baseline, "LN saves something");
        // The paper's headline ordering on linear-address kernels.
        assert!(c.ln <= c.wp, "LN ({}) should beat WP ({})", c.ln, c.wp);
        assert!(c.ln <= c.tb, "LN ({}) should beat TB ({})", c.ln, c.tb);
        let (_, _, ln_red) = c.reductions();
        assert!(ln_red > 20.0, "LN reduction {ln_red:.1}% too small");
    }

    #[test]
    fn wp_counts_uniform_computation_once() {
        // A kernel where every lane computes the same thing (block-uniform):
        // mov of ctaid + scalar math.
        let mut b = KernelBuilder::new("uni", 1);
        let c = b.ctaid_x();
        let d = b.mul(c, Operand::Imm(3));
        let off = b.shl_imm_wide(d, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        b.st_global(Ty::B32, addr, 0, d);
        let k = b.build();
        let mut g = GlobalMem::new();
        let buf = g.alloc(1 << 16);
        let launch = Launch::new(k, Dim3::d1(4), Dim3::d1(64), vec![buf]);
        let c = measure_ideals(&launch, &mut g).unwrap();
        // Everything except control flow (exit charges full lanes) is
        // lane-uniform, so WP collapses ~7 of 8 instructions to 1 thread.
        assert!(c.wp < c.baseline / 6, "wp={} baseline={}", c.wp, c.baseline);
    }

    #[test]
    fn tb_skips_repeated_warps_within_block() {
        // Block-uniform computation: every warp in a block computes identical
        // values, so TB charges roughly one warp per block per instruction.
        let mut b = KernelBuilder::new("blockuni", 1);
        let c = b.ctaid_x();
        let d = b.shl_imm(c, 3);
        let e = b.add(d, Operand::Imm(1));
        let off = b.shl_imm_wide(e, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        b.st_global(Ty::B32, addr, 0, e);
        let k = b.build();
        let mut g = GlobalMem::new();
        let buf = g.alloc(1 << 16);
        // 8 warps per block: TB should cut the redundant 7/8.
        let launch = Launch::new(k, Dim3::d1(2), Dim3::d1(256), vec![buf]);
        let c = measure_ideals(&launch, &mut g).unwrap();
        // First warp of each block pays full price; stores and exit are
        // never skipped — the rest (7/8 warps x 7 ALU ops) drops.
        assert!(
            c.tb < c.baseline / 3,
            "tb={} baseline={} should drop most warps",
            c.tb,
            c.baseline
        );
    }
}
