//! Timed optimistic machine models: DAC, DARSIE, DARSIE+Scalar (paper Sec. 5).
//!
//! Each is an [`IssueFilter`]: it never changes values, only reclassifies
//! warp instructions at issue time. All three sit on top of the baseline's
//! scalar pipeline for constant-operand operations, exactly like the paper's
//! baseline.

use r2d2_sim::{BaselineFilter, Disposition, IssueCtx, IssueFilter};

fn lanes_uniform(ctx: &IssueCtx<'_>) -> bool {
    let mask = ctx.exec_mask;
    if mask == 0 {
        return true;
    }
    let first = mask.trailing_zeros() as usize;
    if let Some(v) = ctx.vals {
        for s in 0..v.nsrc {
            for lane in 0..32 {
                if mask & (1 << lane) != 0 && v.srcs[s][lane] != v.srcs[s][first] {
                    return false;
                }
            }
        }
        true
    } else {
        false
    }
}

/// Decoupled Affine Computation (Wang & Lin, ISCA 2017), modeled as the paper
/// models it: "computing all warp instructions producing consecutive affine
/// values with a single warp instruction without any overhead". A warp
/// instruction is handled by the affine unit at zero pipeline cost when
///
/// 1. its destination lane values form an affine sequence in the lane index
///    (`v[l] = v0 + l*stride`, including uniform `stride = 0`), **and**
/// 2. it belongs to the compiler-decoupled affine slice: its dataflow never
///    passes through a memory load or atomic result (the decoupled access
///    stream runs ahead of memory, so it can only consume built-in indices,
///    parameters and immediates).
#[derive(Debug, Default, Clone)]
pub struct DacFilter {
    base: BaselineFilter,
    /// Per GP register: `true` when (transitively) derived from memory.
    load_tainted: Vec<bool>,
    pred_tainted: Vec<bool>,
    /// Per pc: in the statically decoupleable slice.
    sliceable: Vec<bool>,
}

impl DacFilter {
    /// New DAC model.
    pub fn new() -> Self {
        Self::default()
    }

    fn analyze_slice(&mut self, kernel: &r2d2_isa::Kernel) {
        use r2d2_isa::{Op, Operand};
        let nregs = kernel.num_regs();
        let npreds = kernel.num_preds().max(1);
        self.load_tainted = vec![false; nregs];
        self.pred_tainted = vec![false; npreds];
        let mut changed = true;
        while changed {
            changed = false;
            for i in &kernel.instrs {
                let mut t = matches!(i.op, Op::Ld(_) | Op::Atom(_));
                for s in &i.srcs {
                    t |= match s {
                        Operand::Reg(r) => self.load_tainted[r.0 as usize],
                        Operand::Pred(p) => self.pred_tainted[p.0 as usize],
                        _ => false,
                    };
                }
                if let Some((p, _)) = i.guard {
                    t |= self.pred_tainted[p.0 as usize];
                }
                match i.dst {
                    Some(r2d2_isa::Dst::Reg(r)) if t && !self.load_tainted[r.0 as usize] => {
                        self.load_tainted[r.0 as usize] = true;
                        changed = true;
                    }
                    Some(r2d2_isa::Dst::Pred(p)) if t && !self.pred_tainted[p.0 as usize] => {
                        self.pred_tainted[p.0 as usize] = true;
                        changed = true;
                    }
                    _ => {}
                }
            }
        }
        self.sliceable = kernel
            .instrs
            .iter()
            .map(|i| {
                if i.op.is_control() || i.op.is_mem() {
                    return false;
                }
                let mut t = false;
                for s in &i.srcs {
                    t |= match s {
                        Operand::Reg(r) => self.load_tainted[r.0 as usize],
                        Operand::Pred(p) => self.pred_tainted[p.0 as usize],
                        _ => false,
                    };
                }
                if let Some((p, _)) = i.guard {
                    t |= self.pred_tainted[p.0 as usize];
                }
                !t
            })
            .collect();
    }

    fn dst_affine(ctx: &IssueCtx<'_>) -> bool {
        let Some(v) = ctx.vals else { return false };
        if !v.has_dst {
            return false;
        }
        let mask = ctx.exec_mask;
        if mask == 0 {
            return true;
        }
        // Affine in the lane index over active lanes.
        let lanes: Vec<usize> = (0..32).filter(|l| mask & (1 << l) != 0).collect();
        if lanes.len() < 2 {
            return true;
        }
        let l0 = lanes[0] as i64;
        let v0 = v.dst[lanes[0]] as i64;
        let l1 = lanes[1] as i64;
        let v1 = v.dst[lanes[1]] as i64;
        // stride must be integral in lane distance
        let dl = l1 - l0;
        let dv = v1.wrapping_sub(v0);
        if dv % dl != 0 {
            return false;
        }
        let stride = dv / dl;
        lanes
            .iter()
            .all(|&l| v.dst[l] as i64 == v0.wrapping_add(stride.wrapping_mul(l as i64 - l0)))
    }
}

impl IssueFilter for DacFilter {
    fn wants_values(&self) -> bool {
        true
    }

    fn on_launch(&mut self, kernel: &r2d2_isa::Kernel, _block: [u32; 3]) {
        self.analyze_slice(kernel);
    }

    fn classify(&mut self, ctx: &IssueCtx<'_>) -> Disposition {
        if self.sliceable.get(ctx.pc).copied().unwrap_or(false) && Self::dst_affine(ctx) {
            return Disposition::Skip;
        }
        self.base.classify(ctx)
    }

    // All state is produced by `on_launch` and immutable afterwards, so a
    // clone is an exact per-shard copy.
    fn fork_shard(&self) -> Option<Box<dyn IssueFilter + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// Dimensionality-Aware Redundant SIMT Instruction Elimination (Yeh et al.,
/// ASPLOS 2020), modeled as the original: a *launch-time static* analysis of
/// the thread hierarchy. An instruction whose value vector provably cannot
/// vary across the warps of a thread block (its dataflow never touches a
/// built-in index component that differs between warps) is executed by the
/// block's first warp only; the other warps skip it with no overhead.
/// Exactly as the paper notes (Sec. 2.2), one-dimensional thread blocks with
/// more than 32 threads leave DARSIE little to skip, because `tid.x` then
/// varies across warps.
#[derive(Debug, Default, Clone)]
pub struct DarsieFilter {
    base: BaselineFilter,
    /// Per static pc: `true` when redundant across warps within a block.
    skippable: Vec<bool>,
}

impl DarsieFilter {
    /// New DARSIE model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Which built-in index components vary across warps of one block.
    ///
    /// A warp covers 32 consecutive thread slots; a component's pattern is
    /// identical in every warp exactly when its period divides the warp size.
    fn varying_dims(block: [u32; 3]) -> [bool; 3] {
        let warps = (block[0] as u64 * block[1] as u64 * block[2] as u64).div_ceil(32);
        if warps <= 1 {
            // With a single warp there is nothing to share: skip nothing.
            return [true; 3];
        }
        let repeats = |period: u64| period <= 32 && 32 % period == 0;
        let x_varies = !repeats(block[0] as u64);
        let y_varies = block[1] > 1 && !repeats(block[0] as u64 * block[1] as u64);
        let z_varies = block[2] > 1;
        [x_varies, y_varies, z_varies]
    }

    /// Launch-time taint analysis: propagate "varies across warps" through
    /// the dataflow to a fixpoint.
    fn analyze(kernel: &r2d2_isa::Kernel, block: [u32; 3]) -> Vec<bool> {
        use r2d2_isa::{Op, Operand, Special};
        let dims = Self::varying_dims(block);
        let nregs = kernel.num_regs();
        let npreds = kernel.num_preds();
        let mut reg_taint = vec![false; nregs];
        let mut pred_taint = vec![false; npreds.max(1)];
        let taint_of_special = |s: &Special| match s {
            Special::Tid(d) => dims[*d as usize % 3],
            Special::LaneId => false, // identical pattern in every warp
            _ => false,               // ctaid/ntid/nctaid/smid: block-uniform
        };
        let mut changed = true;
        while changed {
            changed = false;
            for i in &kernel.instrs {
                let mut t = false;
                for s in &i.srcs {
                    t |= match s {
                        Operand::Reg(r) => reg_taint[r.0 as usize],
                        Operand::Special(sp) => taint_of_special(sp),
                        Operand::Pred(p) => pred_taint[p.0 as usize],
                        _ => false,
                    };
                }
                if let Some(m) = i.mem {
                    t |= match m.base {
                        Operand::Reg(r) => reg_taint[r.0 as usize],
                        Operand::Special(sp) => taint_of_special(&sp),
                        _ => false,
                    };
                }
                if let Some((p, _)) = i.guard {
                    t |= pred_taint[p.0 as usize];
                }
                // Atomics return racy values: always varying.
                if matches!(i.op, Op::Atom(_)) {
                    t = true;
                }
                match i.dst {
                    Some(r2d2_isa::Dst::Reg(r)) if t && !reg_taint[r.0 as usize] => {
                        reg_taint[r.0 as usize] = true;
                        changed = true;
                    }
                    Some(r2d2_isa::Dst::Pred(p)) if t && !pred_taint[p.0 as usize] => {
                        pred_taint[p.0 as usize] = true;
                        changed = true;
                    }
                    _ => {}
                }
            }
        }
        kernel
            .instrs
            .iter()
            .map(|i| {
                if i.op.is_control() {
                    return false;
                }
                // Stores and atomics have per-thread side effects.
                if matches!(i.op, Op::St(_) | Op::Atom(_)) {
                    return false;
                }
                let mut t = false;
                for s in &i.srcs {
                    t |= match s {
                        Operand::Reg(r) => reg_taint[r.0 as usize],
                        Operand::Special(sp) => taint_of_special(sp),
                        Operand::Pred(p) => pred_taint[p.0 as usize],
                        _ => false,
                    };
                }
                if let Some(m) = i.mem {
                    // Shared memory may be written by other (varying) warps.
                    if matches!(i.op, Op::Ld(r2d2_isa::MemSpace::Shared)) {
                        return false;
                    }
                    t |= match m.base {
                        Operand::Reg(r) => reg_taint[r.0 as usize],
                        _ => false,
                    };
                }
                if let Some((p, _)) = i.guard {
                    t |= pred_taint[p.0 as usize];
                }
                !t
            })
            .collect()
    }
}

impl IssueFilter for DarsieFilter {
    fn on_launch(&mut self, kernel: &r2d2_isa::Kernel, block: [u32; 3]) {
        self.skippable = Self::analyze(kernel, block);
    }

    fn classify(&mut self, ctx: &IssueCtx<'_>) -> Disposition {
        if ctx.warp_in_block > 0 && self.skippable.get(ctx.pc).copied().unwrap_or(false) {
            return Disposition::Skip;
        }
        self.base.classify(ctx)
    }

    // `skippable` is produced by `on_launch` and immutable afterwards.
    fn fork_shard(&self) -> Option<Box<dyn IssueFilter + Send>> {
        Some(Box::new(self.clone()))
    }
}

/// DARSIE plus a generalized scalar pipeline: non-redundant warp instructions
/// whose source operands are lane-uniform execute on the scalar pipe (one
/// thread instruction, but still a full pipeline pass — paper Sec. 2.2).
#[derive(Debug, Default, Clone)]
pub struct DarsieScalarFilter {
    inner: DarsieFilter,
}

impl DarsieScalarFilter {
    /// New DARSIE+Scalar model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IssueFilter for DarsieScalarFilter {
    fn wants_values(&self) -> bool {
        true
    }

    fn on_launch(&mut self, kernel: &r2d2_isa::Kernel, block: [u32; 3]) {
        self.inner.on_launch(kernel, block);
    }

    fn classify(&mut self, ctx: &IssueCtx<'_>) -> Disposition {
        let d = self.inner.classify(ctx);
        if d == Disposition::Execute
            && !ctx.instr.op.is_control()
            && !ctx.instr.op.is_mem()
            && lanes_uniform(ctx)
        {
            return Disposition::Scalar;
        }
        d
    }

    fn on_block_done(&mut self, block: u64) {
        self.inner.on_block_done(block);
    }

    fn fork_shard(&self) -> Option<Box<dyn IssueFilter + Send>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::{KernelBuilder, Ty};
    use r2d2_sim::{BaselineFilter, Dim3, GlobalMem, GpuConfig, Launch, SimSession};

    fn kernel() -> r2d2_isa::Kernel {
        let mut b = KernelBuilder::new("k", 1);
        let i = b.global_tid_x();
        let j = b.mul(i, r2d2_isa::Operand::Imm(2));
        let off = b.shl_imm_wide(j, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        let v = b.ld_global(Ty::B32, addr, 0);
        let w = b.add(v, i);
        b.st_global(Ty::B32, addr, 0, w);
        b.build()
    }

    fn run(filter: &mut dyn IssueFilter) -> r2d2_sim::Stats {
        let mut g = GlobalMem::new();
        let buf = g.alloc(1 << 20);
        let launch = Launch::new(kernel(), Dim3::d1(16), Dim3::d1(256), vec![buf]);
        let cfg = GpuConfig::default().with_num_sms(4);
        SimSession::new(&cfg)
            .filter(filter)
            .run(&launch, &mut g)
            .unwrap()
    }

    #[test]
    fn dac_skips_affine_index_math() {
        let base = run(&mut BaselineFilter);
        let dac = run(&mut DacFilter::new());
        assert!(
            dac.warp_instrs < base.warp_instrs,
            "dac {} vs base {}",
            dac.warp_instrs,
            base.warp_instrs
        );
        assert!(dac.skipped_warp_instrs > 0);
        // Functional totals must be identical.
        assert_eq!(
            dac.warp_instrs_with_skipped(),
            base.warp_instrs_with_skipped()
        );
    }

    #[test]
    fn darsie_skips_block_redundant_warps() {
        // Block-uniform kernel: warps within a block compute identical values.
        let mut b = KernelBuilder::new("bu", 1);
        let c = b.ctaid_x();
        let d = b.shl_imm(c, 2);
        let e = b.add(d, r2d2_isa::Operand::Imm(9));
        let off = b.shl_imm_wide(e, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        b.st_global(Ty::B32, addr, 0, e);
        let k = b.build();
        let mut g1 = GlobalMem::new();
        let b1 = g1.alloc(1 << 16);
        let l1 = Launch::new(k.clone(), Dim3::d1(4), Dim3::d1(256), vec![b1]);
        let cfg = GpuConfig::default().with_num_sms(2);
        let base = SimSession::new(&cfg).run(&l1, &mut g1).unwrap();
        let mut g2 = GlobalMem::new();
        let b2 = g2.alloc(1 << 16);
        let l2 = Launch::new(k, Dim3::d1(4), Dim3::d1(256), vec![b2]);
        let darsie = SimSession::new(&cfg)
            .filter(&mut DarsieFilter::new())
            .run(&l2, &mut g2)
            .unwrap();
        assert_eq!(g1.bytes(), g2.bytes());
        assert!(
            darsie.warp_instrs * 2 < base.warp_instrs,
            "darsie {} vs base {}",
            darsie.warp_instrs,
            base.warp_instrs
        );
    }

    #[test]
    fn darsie_scalar_adds_scalar_issues() {
        let d = run(&mut DarsieFilter::new());
        let ds = run(&mut DarsieScalarFilter::new());
        assert!(ds.scalar_warp_instrs >= d.scalar_warp_instrs);
        assert!(ds.thread_instrs <= d.thread_instrs);
    }

    #[test]
    fn models_never_change_results() {
        let mk = || {
            let mut g = GlobalMem::new();
            let buf = g.alloc(1 << 20);
            (g, buf)
        };
        let cfg = GpuConfig::default().with_num_sms(2);
        let mut outs: Vec<Vec<u8>> = Vec::new();
        let mut filters: Vec<Box<dyn IssueFilter>> = vec![
            Box::new(BaselineFilter),
            Box::new(DacFilter::new()),
            Box::new(DarsieFilter::new()),
            Box::new(DarsieScalarFilter::new()),
        ];
        for f in filters.iter_mut() {
            let (mut g, buf) = mk();
            let launch = Launch::new(kernel(), Dim3::d1(8), Dim3::d1(128), vec![buf]);
            SimSession::new(&cfg)
                .filter(f.as_mut())
                .run(&launch, &mut g)
                .unwrap();
            outs.push(g.bytes().to_vec());
        }
        for o in &outs[1..] {
            assert_eq!(&outs[0], o, "machine models must not change results");
        }
    }
}
