#![warn(missing_docs)]
//! Machine models the paper compares R2D2 against (Sec. 2.2 and Sec. 5).
//!
//! Two families:
//!
//! * [`ideal`] — the instruction-count-only *ideal machines* of Fig. 4:
//!   **WP** (eliminates redundant thread instructions within a warp), **TB**
//!   (eliminates redundant warp instructions within a thread block), and
//!   **LN** (eliminates redundancy by exploiting the linearity of SIMT).
//!   These are [`r2d2_sim::Observer`]s over a functional run.
//! * [`filters`] — the *timed* optimistic models of Figs. 12/13/16: **DAC**
//!   (Wang & Lin, ISCA'17 — affine warp instructions execute at zero cost),
//!   **DARSIE** (Yeh et al., ASPLOS'20 — warp instructions redundant within a
//!   thread block are skipped) and **DARSIE+Scalar**. These are
//!   [`r2d2_sim::IssueFilter`]s for the timing simulator, modeled exactly as
//!   the paper models them: "with no overhead".

pub mod filters;
pub mod ideal;

pub use filters::{DacFilter, DarsieFilter, DarsieScalarFilter};
pub use ideal::{measure_ideals, IdealCounts, IdealObserver};
