//! Each workload must exhibit the structural characteristics the paper
//! attributes to its namesake — that is what makes the zoo a valid
//! substitution for the original benchmark binaries (see DESIGN.md).

use r2d2_workloads::{build, Size};

#[test]
fn bp_uses_16x16_blocks_and_2d_grid() {
    // The Fig. 2 kernel: 2D (16,16) blocks, grid spanning blockIdx.y.
    let w = build("BP", Size::Small).unwrap();
    for l in &w.launches {
        assert_eq!((l.block.x, l.block.y), (16, 16), "{}", l.kernel.name);
        assert!(l.grid.y > 1, "{} must span blockIdx.y", l.kernel.name);
    }
}

#[test]
fn srad2_has_8_warps_per_block_and_many_blocks() {
    // Sec. 5.1: "SRAD2 runs 65,536 thread blocks, and each thread block
    // contains eight warps" — we keep the shape at reduced scale.
    let w = build("SRAD2", Size::Full).unwrap();
    let l = &w.launches[0];
    assert_eq!(l.warps_per_block(), 8);
    assert!(l.num_blocks() >= 512, "got {}", l.num_blocks());
}

#[test]
fn lud_launches_many_small_kernels() {
    // Fig. 14's worst case: "launches tens of kernels that consist of one to
    // hundreds of thread blocks".
    let w = build("LUD", Size::Small).unwrap();
    assert!(w.launches.len() >= 3, "got {}", w.launches.len());
    for l in &w.launches {
        assert!(l.num_blocks() <= 256, "LUD launches must stay small");
    }
    // Shrinking grids.
    let blocks: Vec<u64> = w.launches.iter().map(|l| l.num_blocks()).collect();
    assert!(blocks.windows(2).all(|w| w[1] <= w[0]), "{blocks:?}");
}

#[test]
fn fft_has_log2_stages() {
    let w = build("FFT", Size::Small).unwrap();
    // 2048 points -> 11 radix-2 stages.
    assert_eq!(w.launches.len(), 11);
}

#[test]
fn fft_pt_uses_fixed_persistent_grid() {
    // Sec. 5.7: persistent threads launch only as many blocks as the SMs can
    // hold and loop over virtual work.
    let w = build("FFT_PT", Size::Full).unwrap();
    let regular = build("FFT", Size::Full).unwrap();
    let pt_blocks = w.launches[0].num_blocks();
    let reg_blocks = regular.launches[0].num_blocks();
    assert!(
        pt_blocks < reg_blocks,
        "persistent grid ({pt_blocks}) must be smaller than the regular grid ({reg_blocks})"
    );
    // Every stage uses the same fixed grid.
    assert!(w.launches.iter().all(|l| l.num_blocks() == pt_blocks));
}

#[test]
fn fdt_uses_1d_blocks() {
    // Sec. 5.1 calls out FDT's one-dimensional thread blocks.
    let w = build("FDT", Size::Small).unwrap();
    for l in &w.launches {
        assert_eq!(l.block.y, 1, "{}", l.kernel.name);
        assert_eq!(l.block.z, 1);
    }
}

#[test]
fn km_uses_1d_blocks_with_many_blocks() {
    let w = build("KM", Size::Full).unwrap();
    let l = &w.launches[0];
    assert_eq!(l.block.y, 1);
    assert!(l.num_blocks() > 100);
}

#[test]
fn graph_workloads_have_guarded_early_exit() {
    use r2d2_isa::Op;
    for name in ["BFS", "CCMP", "KCR", "SSSP"] {
        let w = build(name, Size::Small).unwrap();
        let k = &w.launches[0].kernel;
        let guarded_exit = k
            .instrs
            .iter()
            .any(|i| matches!(i.op, Op::Exit) && i.guard.is_some());
        assert!(guarded_exit, "{name} must bounds-check with a guarded exit");
    }
}

#[test]
fn graph_workloads_use_data_dependent_loops() {
    use r2d2_isa::Op;
    for name in ["BFS", "SSSP", "SPM"] {
        let w = build(name, Size::Small).unwrap();
        let k = &w.launches[0].kernel;
        let has_backward = k.instrs.iter().enumerate().any(|(pc, i)| match i.op {
            Op::Bra(t) => (t as usize) <= pc,
            _ => false,
        });
        assert!(has_backward, "{name} needs a loop");
    }
}

#[test]
fn cfd_reads_four_same_shape_state_arrays() {
    // The Fig. 8 pattern: multiple addresses sharing one linear shape.
    use r2d2_isa::Op;
    let w = build("CFD", Size::Small).unwrap();
    let k = &w.launches[0].kernel;
    let loads = k.count_instrs(|i| matches!(i.op, Op::Ld(_)));
    assert!(
        loads >= 8,
        "cell + neighbor loads of 4 state arrays, got {loads}"
    );
}

#[test]
fn his_and_mrg_use_atomics() {
    use r2d2_isa::Op;
    for name in ["HIS", "MRG"] {
        let w = build(name, Size::Small).unwrap();
        let k = &w.launches[0].kernel;
        assert!(
            k.count_instrs(|i| matches!(i.op, Op::Atom(_))) > 0,
            "{name}"
        );
    }
}

#[test]
fn sgm_uses_shared_memory_and_barriers() {
    use r2d2_isa::Op;
    let w = build("SGM", Size::Small).unwrap();
    let k = &w.launches[0].kernel;
    assert!(k.shared_bytes > 0);
    assert!(k.count_instrs(|i| matches!(i.op, Op::Bar)) >= 2);
}

#[test]
fn backprop_scaled_grid_tracks_nodes() {
    // Table 3's knob: grid size follows the input-node count.
    let small = r2d2_workloads::backprop_scaled(8);
    let large = r2d2_workloads::backprop_scaled(12);
    let blocks = |w: &r2d2_workloads::Workload| w.launches[0].num_blocks();
    assert_eq!(blocks(&large), blocks(&small) * 16);
}

#[test]
fn zoo_spans_memory_and_compute_intensity() {
    // A coarse mix check: some workloads must be SFU-heavy, some atomic-heavy,
    // some loop-free streaming — the spread the paper's Fig. 13 relies on.
    use r2d2_isa::Op;
    let mut sfu = 0;
    let mut atomic = 0;
    let mut loopfree = 0;
    for (name, _) in r2d2_workloads::NAMES {
        let w = build(name, Size::Small).unwrap();
        let k = &w.launches[0].kernel;
        if k.count_instrs(|i| matches!(i.op, Op::Sfu(_))) > 0 {
            sfu += 1;
        }
        if k.count_instrs(|i| matches!(i.op, Op::Atom(_))) > 0 {
            atomic += 1;
        }
        if !k.instrs.iter().any(|i| matches!(i.op, Op::Bra(_))) {
            loopfree += 1;
        }
    }
    assert!(sfu >= 8, "sfu-heavy workloads: {sfu}");
    assert!(atomic >= 4, "atomic workloads: {atomic}");
    assert!(loopfree >= 10, "streaming workloads: {loopfree}");
}

#[test]
fn full_size_keeps_simulation_tractable_but_occupied() {
    // Every Full workload should keep the 80-SM machine busy (>= 64 blocks
    // somewhere) without exploding simulation time (< ~8M warp instructions,
    // bounded statically by thread count x static instructions).
    // The mat-vec family is inherently one-thread-per-row (like the real
    // PolyBench GPU codes) and stays low-occupancy by construction.
    const LOW_OCCUPANCY_BY_DESIGN: &[&str] = &["ATA", "BIC", "GSM", "MVT", "LUD", "GAS"];
    for (name, _) in r2d2_workloads::NAMES {
        let w = build(name, Size::Full).unwrap();
        let max_blocks = w.launches.iter().map(|l| l.num_blocks()).max().unwrap();
        if !LOW_OCCUPANCY_BY_DESIGN.contains(name) {
            assert!(
                max_blocks >= 64 || w.launches.len() >= 4,
                "{name}: peak {max_blocks} blocks and only {} launches",
                w.launches.len()
            );
        }
        let static_bound: u64 = w
            .launches
            .iter()
            .map(|l| l.num_blocks() * l.warps_per_block() as u64 * l.kernel.instrs.len() as u64)
            .sum();
        // Loops can exceed this; it is a sanity bound on sheer launch size.
        assert!(
            static_bound < 30_000_000,
            "{name}: static bound {static_bound}"
        );
    }
}

#[test]
fn scheduling_hoists_loads_in_every_workload() {
    // The zoo is built with the compiler scheduler applied; at least the
    // multi-load kernels must show a load issued before the first dependent
    // float op.
    use r2d2_isa::Op;
    for name in ["2DC", "HSP", "CFD", "SAD"] {
        let w = build(name, Size::Small).unwrap();
        let k = &w.launches[0].kernel;
        let first_ld = k
            .instrs
            .iter()
            .position(|i| matches!(i.op, Op::Ld(_)))
            .unwrap();
        let loads_before_first_fp = k.instrs[..first_ld + 8]
            .iter()
            .filter(|i| matches!(i.op, Op::Ld(_)))
            .count();
        assert!(
            loads_before_first_fp >= 2,
            "{name}: expected a burst of hoisted loads near pc {first_ld}"
        );
    }
}
