//! Per-suite workload builders (Table 2).

pub mod dnn;
pub mod fft;
pub mod graph;
pub mod ispass;
pub mod micro;
pub mod parboil;
pub mod polybench;
pub mod rodinia;
