//! Micro workloads: tiny single-kernel streams (`vecadd`, `saxpy`).
//!
//! Not part of the Table 2 zoo ([`crate::NAMES`]) — these exist for the
//! profiler (`r2d2 profile vecadd r2d2`), the smoke benchmarks, and quick
//! by-hand experiments, where a kernel whose whole behavior fits in one
//! sentence beats a faithful application reconstruction. They resolve
//! through [`crate::resolve`] like any other id, so every harness path
//! (cache keys, CSV export, profiling) treats them uniformly.

use crate::data;
use crate::patterns;
use crate::{Size, Workload};
use r2d2_isa::{KernelBuilder, Ty};
use r2d2_sim::{Dim3, GlobalMem, Launch};

fn elems(size: Size) -> u64 {
    4096 * size.factor() as u64
}

/// `out[i] = a[i] + b[i]` — the canonical fully-linear streaming kernel.
pub fn vecadd(size: Size) -> Workload {
    let n = elems(size);
    let k = patterns::streaming_map("vecadd", 2, 0);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xadd);
    let a = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let b = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let out = data::alloc_f32_zero(&mut g, n);
    let launch = Launch::new(
        k,
        Dim3::d1((n / 256) as u32),
        Dim3::d1(256),
        vec![a, b, out],
    );
    Workload {
        name: "vecadd",
        suite: "micro",
        gmem: g,
        launches: vec![launch],
    }
}

/// `y[i] = a * x[i] + y[i]` with a compile-time scalar `a`.
pub fn saxpy(size: Size) -> Workload {
    let n = elems(size);
    let mut b = KernelBuilder::new("saxpy", 2);
    let i = b.global_tid_x();
    let xa = patterns::gaddr(&mut b, 0, i, 2);
    let ya = patterns::gaddr(&mut b, 1, i, 2);
    let x = b.ld_global(Ty::F32, xa, 0);
    let y = b.ld_global(Ty::F32, ya, 0);
    let a = b.fimm32(2.5);
    let r = b.mad_ty(Ty::F32, a, x, y);
    b.st_global(Ty::F32, ya, 0, r);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x5a);
    let x = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let y = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let launch = Launch::new(k, Dim3::d1((n / 256) as u32), Dim3::d1(256), vec![x, y]);
    Workload {
        name: "saxpy",
        suite: "micro",
        gmem: g,
        launches: vec![launch],
    }
}
