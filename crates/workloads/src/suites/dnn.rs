//! Nebula-style lightweight neural networks: RES (ResNet-ish) and VGG.

use crate::data;
use crate::patterns;
use crate::{Size, Workload};
use r2d2_isa::{KernelBuilder, Ty};
use r2d2_sim::{Dim3, GlobalMem, Launch};

fn img_dims(size: Size) -> (u64, u64) {
    match size {
        Size::Small => (32, 16),
        Size::Full => (256, 256),
    }
}

fn conv_launch(
    kernel: r2d2_isa::Kernel,
    input: u64,
    weights: u64,
    output: u64,
    w: u64,
    h: u64,
    pitch: u64,
) -> Launch {
    Launch::new(
        kernel,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![input, weights, output, pitch],
    )
}

/// 2x2 max-pool with stride 2 (the VGG downsampling stage).
fn maxpool_kernel() -> r2d2_isa::Kernel {
    // params: [in, out, pitch_in, pitch_out]
    let mut b = KernelBuilder::new("maxpool2", 4);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pin = b.ld_param32(2);
    let x2 = b.shl_imm(x, 1);
    let y2 = b.shl_imm(y, 1);
    let idx = b.mad(y2, pin, x2);
    let off = b.shl_imm_wide(idx, 2);
    let p0 = b.ld_param(0);
    let base = b.add_wide(p0, off);
    let a = b.ld_global(Ty::F32, base, 0);
    let c = b.ld_global(Ty::F32, base, 4);
    let prow = b.mul(pin, r2d2_isa::Operand::Imm(4));
    let proww = b.cvt_wide(prow);
    let base2 = b.add_wide(base, proww);
    let d = b.ld_global(Ty::F32, base2, 0);
    let e = b.ld_global(Ty::F32, base2, 4);
    let m1 = b.max_ty(Ty::F32, a, c);
    let m2 = b.max_ty(Ty::F32, d, e);
    let m = b.max_ty(Ty::F32, m1, m2);
    let pout = b.ld_param32(3);
    let oidx = b.mad(y, pout, x);
    let ooff = b.shl_imm_wide(oidx, 2);
    let p1 = b.ld_param(1);
    let oaddr = b.add_wide(p1, ooff);
    b.st_global(Ty::F32, oaddr, 0, m);
    b.build()
}

/// RES: two 3x3 conv layers with a residual (elementwise) add, then a small
/// fully-connected head — the ResNet block structure.
pub fn resnet(size: Size) -> Workload {
    let (w, h) = img_dims(size);
    let pitch = w + 2;
    let total = pitch * (h + 2);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x2e5);
    let input = data::alloc_f32(&mut g, total, &mut rng, 0.0, 1.0);
    let w1 = data::alloc_f32(&mut g, 9, &mut rng, -0.5, 0.5);
    let w2 = data::alloc_f32(&mut g, 9, &mut rng, -0.5, 0.5);
    let act1 = data::alloc_f32_zero(&mut g, total);
    let act2 = data::alloc_f32_zero(&mut g, total);
    let res = data::alloc_f32_zero(&mut g, total);
    // FC head: 64 outputs over the first 256 activations.
    let nin = 256u64;
    let nout = 64u64;
    let fw = data::alloc_f32(&mut g, nout * nin, &mut rng, -0.1, 0.1);
    let fb = data::alloc_f32(&mut g, nout, &mut rng, -0.1, 0.1);
    let fy = data::alloc_f32_zero(&mut g, nout);
    let launches = vec![
        conv_launch(patterns::conv3x3("res_conv1"), input, w1, act1, w, h, pitch),
        conv_launch(patterns::conv3x3("res_conv2"), act1, w2, act2, w, h, pitch),
        // residual add: res = act2 + input
        Launch::new(
            patterns::streaming_map("res_add", 2, 0),
            Dim3::d1((total / 256) as u32),
            Dim3::d1(256),
            vec![act2, input, res],
        ),
        Launch::new(
            patterns::fc_layer("res_fc", true),
            Dim3::d1((nout / 64) as u32),
            Dim3::d1(64),
            vec![fw, res, fb, fy, nin],
        ),
    ];
    Workload {
        name: "RES",
        suite: "Nebula",
        gmem: g,
        launches,
    }
}

/// VGG: conv -> conv -> maxpool -> two FC layers.
pub fn vgg(size: Size) -> Workload {
    let (w, h) = img_dims(size);
    let pitch = w + 2;
    let total = pitch * (h + 2);
    let hw = w / 2;
    let hh = h / 2;
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x766);
    let input = data::alloc_f32(&mut g, total, &mut rng, 0.0, 1.0);
    let w1 = data::alloc_f32(&mut g, 9, &mut rng, -0.5, 0.5);
    let w2 = data::alloc_f32(&mut g, 9, &mut rng, -0.5, 0.5);
    let act1 = data::alloc_f32_zero(&mut g, total);
    let act2 = data::alloc_f32_zero(&mut g, total);
    let pooled = data::alloc_f32_zero(&mut g, hw * hh + hw);
    let nin = 128u64;
    let nmid = 128u64;
    let nout = 64u64;
    let fw1 = data::alloc_f32(&mut g, nmid * nin, &mut rng, -0.1, 0.1);
    let fb1 = data::alloc_f32(&mut g, nmid, &mut rng, -0.1, 0.1);
    let fy1 = data::alloc_f32_zero(&mut g, nmid);
    let fw2 = data::alloc_f32(&mut g, nout * nmid, &mut rng, -0.1, 0.1);
    let fb2 = data::alloc_f32(&mut g, nout, &mut rng, -0.1, 0.1);
    let fy2 = data::alloc_f32_zero(&mut g, nout);
    let launches = vec![
        conv_launch(patterns::conv3x3("vgg_conv1"), input, w1, act1, w, h, pitch),
        conv_launch(patterns::conv3x3("vgg_conv2"), act1, w2, act2, w, h, pitch),
        Launch::new(
            maxpool_kernel(),
            Dim3::d2((hw / 16) as u32, (hh / 4) as u32),
            Dim3::d2(16, 4),
            vec![act2, pooled, pitch, hw],
        ),
        Launch::new(
            patterns::fc_layer("vgg_fc1", true),
            Dim3::d1((nmid / 64) as u32),
            Dim3::d1(64),
            vec![fw1, pooled, fb1, fy1, nin],
        ),
        Launch::new(
            patterns::fc_layer("vgg_fc2", false),
            Dim3::d1((nout / 64) as u32),
            Dim3::d1(64),
            vec![fw2, fy1, fb2, fy2, nmid],
        ),
    ];
    Workload {
        name: "VGG",
        suite: "Nebula",
        gmem: g,
        launches,
    }
}
