//! Parboil workloads: HIS, MRG, MRQ, SAD, SGM, SPM, STC.

use crate::data;
use crate::patterns;
use crate::{Size, Workload};
use r2d2_isa::{AtomOp, CmpOp, KernelBuilder, Operand, SfuOp, Ty};
use r2d2_sim::{Dim3, GlobalMem, Launch};

/// HIS: histogramming with atomics.
pub fn histo(size: Size) -> Workload {
    let f = size.factor() as u64;
    let n = 16384 * f;
    let bins = 256u64;
    let k = patterns::histogram("histo");
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x415);
    let input = data::alloc_i32(&mut g, n, &mut rng, 0, i32::MAX);
    let hist = data::alloc_i32_zero(&mut g, bins);
    let launch = Launch::new(
        k,
        Dim3::d1((n / 256) as u32),
        Dim3::d1(256),
        vec![input, hist, bins - 1],
    );
    Workload {
        name: "HIS",
        suite: "parboil",
        gmem: g,
        launches: vec![launch],
    }
}

/// MRG: MRI gridding — scattered atomic accumulation of samples into a grid.
pub fn mri_gridding(size: Size) -> Workload {
    let f = size.factor() as u64;
    let nsamples = 8192 * f;
    let gridside = 64u64;

    let mut b = KernelBuilder::new("mri_grid", 5);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let pxs = b.ld_param(0);
    let pys = b.ld_param(1);
    let pval = b.ld_param(2);
    let ax = b.add_wide(pxs, off);
    let ay = b.add_wide(pys, off);
    let av = b.add_wide(pval, off);
    let x = b.ld_global(Ty::B32, ax, 0);
    let y = b.ld_global(Ty::B32, ay, 0);
    let v = b.ld_global(Ty::B32, av, 0);
    let side = b.ld_param32(4);
    let cell = b.mad(y, side, x);
    let coff32 = b.shl_imm(cell, 2);
    let coff = b.cvt_wide(coff32);
    let pg = b.ld_param(3);
    let gaddr = b.add_wide(pg, coff);
    b.atom(AtomOp::Add, Ty::B32, gaddr, 0, v);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x396);
    let xs = data::alloc_i32(&mut g, nsamples, &mut rng, 0, gridside as i32);
    let ys = data::alloc_i32(&mut g, nsamples, &mut rng, 0, gridside as i32);
    let vals = data::alloc_i32(&mut g, nsamples, &mut rng, 0, 100);
    let grid = data::alloc_i32_zero(&mut g, gridside * gridside);
    let launch = Launch::new(
        k,
        Dim3::d1((nsamples / 256) as u32),
        Dim3::d1(256),
        vec![xs, ys, vals, grid, gridside],
    );
    Workload {
        name: "MRG",
        suite: "parboil",
        gmem: g,
        launches: vec![launch],
    }
}

/// MRQ: MRI Q computation — per-voxel loop over k-space with sin/cos.
pub fn mri_q(size: Size) -> Workload {
    let f = size.factor() as u64;
    let nvoxels = 2048 * f;
    let kpoints = 32i64;

    let mut b = KernelBuilder::new("mri_q", 4);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let px = b.ld_param(0);
    let xaddr = b.add_wide(px, off);
    let x = b.ld_global(Ty::F32, xaddr, 0);
    let pk = b.ld_param(1);
    let qr = b.fimm32(0.0);
    let qi = b.fimm32(0.0);
    for kk in 0..kpoints {
        let kv = b.ld_global(Ty::F32, pk, kk * 4); // uniform
        let phase = b.mul_ty(Ty::F32, kv, x);
        let c = b.sfu(SfuOp::Cos, Ty::F32, phase);
        let s = b.sfu(SfuOp::Sin, Ty::F32, phase);
        let nqr = b.add_ty(Ty::F32, qr, c);
        let nqi = b.add_ty(Ty::F32, qi, s);
        b.assign_mov(Ty::F32, qr, nqr);
        b.assign_mov(Ty::F32, qi, nqi);
    }
    let pqr = b.ld_param(2);
    let pqi = b.ld_param(3);
    let ar = b.add_wide(pqr, off);
    let ai = b.add_wide(pqi, off);
    b.st_global(Ty::F32, ar, 0, qr);
    b.st_global(Ty::F32, ai, 0, qi);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x3129);
    let x = data::alloc_f32(&mut g, nvoxels, &mut rng, -1.0, 1.0);
    let kt = data::alloc_f32(&mut g, kpoints as u64, &mut rng, 0.0, std::f32::consts::TAU);
    let outr = data::alloc_f32_zero(&mut g, nvoxels);
    let outi = data::alloc_f32_zero(&mut g, nvoxels);
    let launch = Launch::new(
        k,
        Dim3::d1((nvoxels / 256) as u32),
        Dim3::d1(256),
        vec![x, kt, outr, outi],
    );
    Workload {
        name: "MRQ",
        suite: "parboil",
        gmem: g,
        launches: vec![launch],
    }
}

/// SAD: sum of absolute differences over a 4x4 window — unrolled
/// constant-offset taps from two images (one LR group each).
pub fn sad(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 64u64;
    let h = 64 * f;
    let pitch = w + 4;

    let mut b = KernelBuilder::new("sad_4x4", 4);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pitch_r = b.ld_param32(3);
    let idx = b.mad(y, pitch_r, x);
    let off = b.shl_imm_wide(idx, 2);
    let pa = b.ld_param(0);
    let pb = b.ld_param(1);
    let abase = b.add_wide(pa, off);
    let bbase = b.add_wide(pb, off);
    let mut acc = b.fimm32(0.0);
    for wy in 0..4i64 {
        for wx in 0..4i64 {
            let doff = wy * (pitch as i64) * 4 + wx * 4;
            let av = b.ld_global(Ty::F32, abase, doff);
            let bv = b.ld_global(Ty::F32, bbase, doff);
            let d = b.sub_ty(Ty::F32, av, bv);
            let ad = b.push_abs(d);
            acc = b.add_ty(Ty::F32, acc, ad);
        }
    }
    let pout = b.ld_param(2);
    let oaddr = b.add_wide(pout, off);
    b.st_global(Ty::F32, oaddr, 0, acc);
    let k = b.build();

    let total = pitch * (h + 4);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x5ad);
    let ia = data::alloc_f32(&mut g, total, &mut rng, 0.0, 255.0);
    let ib = data::alloc_f32(&mut g, total, &mut rng, 0.0, 255.0);
    let out = data::alloc_f32_zero(&mut g, total);
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![ia, ib, out, pitch],
    );
    Workload {
        name: "SAD",
        suite: "parboil",
        gmem: g,
        launches: vec![launch],
    }
}

trait AbsHelper {
    fn push_abs(&mut self, r: r2d2_isa::Reg) -> r2d2_isa::Reg;
}

impl AbsHelper for KernelBuilder {
    fn push_abs(&mut self, r: r2d2_isa::Reg) -> r2d2_isa::Reg {
        let d = self.fresh();
        self.push(r2d2_isa::Instr::new(
            r2d2_isa::Op::Abs,
            Ty::F32,
            Some(r2d2_isa::Dst::Reg(d)),
            vec![Operand::Reg(r)],
        ));
        d
    }
}

/// SGM: tiled shared-memory SGEMM — the paper's loop-offset showcase.
pub fn sgemm(size: Size) -> Workload {
    let n = match size {
        Size::Small => 32u64,
        Size::Full => 128,
    };
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x563);
    let a = data::alloc_f32(&mut g, n * n, &mut rng, -1.0, 1.0);
    let b = data::alloc_f32(&mut g, n * n, &mut rng, -1.0, 1.0);
    let c = data::alloc_f32_zero(&mut g, n * n);
    let launch = Launch::new(
        patterns::matmul_tiled("sgemm"),
        Dim3::d2((n / 16) as u32, (n / 16) as u32),
        Dim3::d2(16, 16),
        vec![a, b, c, n],
    );
    Workload {
        name: "SGM",
        suite: "parboil",
        gmem: g,
        launches: vec![launch],
    }
}

/// SPM: CSR sparse mat-vec — register-regular prologue, data-dependent
/// gather in the inner loop (the paper's memory-intensive case).
pub fn spmv(size: Size) -> Workload {
    let rows = match size {
        Size::Small => 4096u64,
        Size::Full => 65536,
    };

    let mut b = KernelBuilder::new("spmv_csr", 6);
    let r = b.global_tid_x();
    let nrows = b.ld_param32(5);
    let poob = b.setp(CmpOp::Ge, Ty::B32, r, nrows);
    b.exit();
    b.guard_last(poob, true);
    let roff = b.shl_imm_wide(r, 2);
    let prp = b.ld_param(0);
    let rp_addr = b.add_wide(prp, roff);
    let start = b.ld_global(Ty::B32, rp_addr, 0);
    let end = b.ld_global(Ty::B32, rp_addr, 4);
    let pci = b.ld_param(1);
    let pval = b.ld_param(2);
    let px = b.ld_param(3);
    let acc = b.fimm32(0.0);
    let e = b.fresh();
    b.assign_mov(Ty::B32, e, start);
    let done = b.label();
    let top = b.here_label();
    let pd = b.setp(CmpOp::Ge, Ty::B32, e, end);
    b.bra_if(pd, true, done);
    let eoff = b.shl_imm_wide(e, 2);
    let ci_addr = b.add_wide(pci, eoff);
    let col = b.ld_global(Ty::B32, ci_addr, 0);
    let v_addr = b.add_wide(pval, eoff);
    let v = b.ld_global(Ty::F32, v_addr, 0);
    let xoff32 = b.shl_imm(col, 2);
    let xoff = b.cvt_wide(xoff32);
    let x_addr = b.add_wide(px, xoff);
    let xv = b.ld_global(Ty::F32, x_addr, 0);
    let na = b.mad_ty(Ty::F32, v, xv, acc);
    b.assign_mov(Ty::F32, acc, na);
    b.assign_add(Ty::B32, e, Operand::Imm(1));
    b.bra(top);
    b.place(done);
    let py = b.ld_param(4);
    let y_addr = b.add_wide(py, roff);
    b.st_global(Ty::F32, y_addr, 0, acc);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x5b37);
    let (rp, ci, nnz) = data::alloc_csr(&mut g, rows, rows, 8, &mut rng);
    let vals = data::alloc_f32(&mut g, nnz, &mut rng, -1.0, 1.0);
    let x = data::alloc_f32(&mut g, rows, &mut rng, -1.0, 1.0);
    let y = data::alloc_f32_zero(&mut g, rows);
    let launch = Launch::new(
        k,
        Dim3::d1((rows / 256) as u32),
        Dim3::d1(256),
        vec![rp, ci, vals, x, y, rows],
    );
    Workload {
        name: "SPM",
        suite: "parboil",
        gmem: g,
        launches: vec![launch],
    }
}

/// STC: the 3D stencil whose `block2D_hybrid_coarsen_x` kernel is the
/// paper's Sec. 5.6 register-pressure example (128 threads/block).
pub fn stencil(size: Size) -> Workload {
    let (w, h, planes) = match size {
        Size::Small => (64u64, 16u64, 8u64),
        Size::Full => (256, 128, 26),
    };
    let pitch = w + 2;
    let total = pitch * pitch * (planes + 2);
    let k = patterns::stencil3d("block2D_hybrid_coarsen_x");
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x57c);
    let input = data::alloc_f32(&mut g, total, &mut rng, 0.0, 1.0);
    let output = data::alloc_f32_zero(&mut g, total);
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![input, output, pitch, planes + 2],
    );
    Workload {
        name: "STC",
        suite: "parboil",
        gmem: g,
        launches: vec![launch],
    }
}
