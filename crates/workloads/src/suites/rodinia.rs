//! Rodinia workloads: BFS, BP, BTR, CFD, DWT, GAS, HSP, HTW, KM, LMD, LUD,
//! MUM, NN, PTH, SRAD1, SRAD2.

use crate::data;
use crate::patterns::{self, GraphOp};
use crate::{Size, Workload};
use r2d2_isa::{CmpOp, Kernel, KernelBuilder, Operand, SfuOp, Ty};
use r2d2_sim::{Dim3, GlobalMem, Launch};

/// BFS: level-synchronous breadth-first search over a random graph
/// (regular address prologue + irregular neighbor expansion, Sec. 5.2).
pub fn bfs(size: Size) -> Workload {
    let f = size.factor().min(16) as u64;
    let nverts = 8192 * f;
    let k = patterns::csr_kernel("bfs_step", GraphOp::BfsLevel);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xbf5);
    let (rp, ci, _nnz) = data::alloc_csr(&mut g, nverts, nverts, 6, &mut rng);
    let level = g.alloc(nverts * 4);
    for i in 0..nverts {
        g.write_i32(level, i, if i == 0 { 0 } else { -1 });
    }
    let grid = Dim3::d1(nverts.div_ceil(256) as u32);
    let launches = (0..4u64)
        .map(|it| {
            Launch::new(
                k.clone(),
                grid,
                Dim3::d1(256),
                vec![rp, ci, level, level, nverts, it],
            )
        })
        .collect();
    Workload {
        name: "BFS",
        suite: "rodinia",
        gmem: g,
        launches,
    }
}

/// The paper's Fig. 2 kernel, verbatim:
/// `index = (hid+1) * (HEIGHT*by + ty + 1) + (tx + 1)`,
/// `w[index] += ETA * delta[tx+1] * ly[HEIGHT*by+ty+1] + MOMENTUM * oldw[index]`,
/// then `oldw[index] = <same>`.
fn bp_adjust_weights() -> Kernel {
    const ETA: f32 = 0.3;
    const MOMENTUM: f32 = 0.3;
    const HEIGHT: i64 = 16;
    // params: [delta, ly, w, oldw, hid]
    let mut b = KernelBuilder::new("bp_adjust_weights", 5);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let by = b.ctaid_y();
    let hid = b.ld_param32(4);
    let hid1 = b.add(hid, Operand::Imm(1));
    let hby = b.mul(by, Operand::Imm(HEIGHT));
    let row = b.add(hby, ty);
    let row1 = b.add(row, Operand::Imm(1)); // index_y = HEIGHT*by + ty + 1
    let tx1 = b.add(tx, Operand::Imm(1)); // index_x = tx + 1
    let idx0 = b.mul(hid1, row1);
    let index = b.add(idx0, tx1);

    let ixoff = b.shl_imm_wide(tx1, 2);
    let iyoff = b.shl_imm_wide(row1, 2);
    let ioff = b.shl_imm_wide(index, 2);
    let pdelta = b.ld_param(0);
    let ply = b.ld_param(1);
    let pw = b.ld_param(2);
    let poldw = b.ld_param(3);
    let a_delta = b.add_wide(pdelta, ixoff);
    let a_ly = b.add_wide(ply, iyoff);
    let a_w = b.add_wide(pw, ioff);
    let a_oldw = b.add_wide(poldw, ioff);
    let d = b.ld_global(Ty::F32, a_delta, 0);
    let l = b.ld_global(Ty::F32, a_ly, 0);
    let ow = b.ld_global(Ty::F32, a_oldw, 0);
    let eta = b.fimm32(ETA);
    let mom = b.fimm32(MOMENTUM);
    let dl = b.mul_ty(Ty::F32, d, l);
    let t1 = b.mul_ty(Ty::F32, eta, dl);
    let upd = b.mad_ty(Ty::F32, mom, ow, t1);
    let wv = b.ld_global(Ty::F32, a_w, 0);
    let nw = b.add_ty(Ty::F32, wv, upd);
    b.st_global(Ty::F32, a_w, 0, nw);
    b.st_global(Ty::F32, a_oldw, 0, upd);
    b.build()
}

/// Backprop layer-forward: partial products into shared memory and a
/// reduction over `ty` (the other Rodinia backprop kernel).
fn bp_layerforward() -> Kernel {
    const HEIGHT: i64 = 16;
    // params: [input, conn, hidden_partial, hid]
    let mut b = KernelBuilder::new("bp_layerforward", 4);
    b.shared_bytes((16 * 16 * 4) as u32);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let by = b.ctaid_y();
    let hid = b.ld_param32(3);
    let hid1 = b.add(hid, Operand::Imm(1));
    let hby = b.mul(by, Operand::Imm(HEIGHT));
    let row = b.add(hby, ty);
    let row1 = b.add(row, Operand::Imm(1));
    let tx1 = b.add(tx, Operand::Imm(1));
    let idx0 = b.mul(hid1, row1);
    let index = b.add(idx0, tx1);
    // load input unit for this row, weight for (row, tx)
    let iyoff = b.shl_imm_wide(row1, 2);
    let pin = b.ld_param(0);
    let a_in = b.add_wide(pin, iyoff);
    let unit = b.ld_global(Ty::F32, a_in, 0);
    let ioff = b.shl_imm_wide(index, 2);
    let pconn = b.ld_param(1);
    let a_conn = b.add_wide(pconn, ioff);
    let wv = b.ld_global(Ty::F32, a_conn, 0);
    let prod = b.mul_ty(Ty::F32, wv, unit);
    // shared[ty][tx] = prod
    let sidx = b.mad(ty, Operand::Imm(16), tx);
    let soff32 = b.shl_imm(sidx, 2);
    let soff = b.cvt_wide(soff32);
    b.st_shared(Ty::F32, soff, 0, prod);
    b.bar();
    // ty == 0 reduces the column and accumulates into hidden_partial[by*16+tx]
    let pz = b.setp(CmpOp::Ne, Ty::B32, ty, Operand::Imm(0));
    let skip = b.label();
    b.bra_if(pz, true, skip);
    let txoff32 = b.shl_imm(tx, 2);
    let txoff = b.cvt_wide(txoff32);
    let acc = b.fimm32(0.0);
    for r in 0..16i64 {
        let v = b.ld_shared(Ty::F32, txoff, r * 16 * 4);
        let na = b.add_ty(Ty::F32, acc, v);
        b.assign_mov(Ty::F32, acc, na);
    }
    // squash through a sigmoid (1 / (1 + 2^(-x*log2 e))) as the real kernel does
    let nl2e = b.fimm32(-std::f32::consts::LOG2_E);
    let ex = b.mul_ty(Ty::F32, acc, nl2e);
    let p2 = b.sfu(SfuOp::Ex2, Ty::F32, ex);
    let one = b.fimm32(1.0);
    let denom = b.add_ty(Ty::F32, p2, one);
    let sig = b.sfu(SfuOp::Rcp, Ty::F32, denom);
    let col = b.mul(by, Operand::Imm(16));
    let colx = b.add(col, tx);
    let poff = b.shl_imm_wide(colx, 2);
    let pout = b.ld_param(2);
    let a_out = b.add_wide(pout, poff);
    b.st_global(Ty::F32, a_out, 0, sig);
    b.place(skip);
    b.build()
}

/// BP with `nodes` input rows (grid.y = nodes/16), Table 3's knob.
pub fn backprop_with_nodes(nodes: u64) -> Workload {
    let hid = 16u64;
    let rows = nodes.max(16);
    let grid_y = (rows / 16) as u32;
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xb9);
    let wsize = (hid + 1) * (rows + 1) + hid + 2;
    let input = data::alloc_f32(&mut g, rows + 2, &mut rng, 0.0, 1.0);
    let conn = data::alloc_f32(&mut g, wsize, &mut rng, -0.5, 0.5);
    let partial = data::alloc_f32_zero(&mut g, rows.max(16) * 2);
    let delta = data::alloc_f32(&mut g, hid + 2, &mut rng, -0.1, 0.1);
    let ly = data::alloc_f32(&mut g, rows + 2, &mut rng, 0.0, 1.0);
    let w = data::alloc_f32(&mut g, wsize, &mut rng, -0.5, 0.5);
    let oldw = data::alloc_f32_zero(&mut g, wsize);
    let launches = vec![
        Launch::new(
            bp_layerforward(),
            Dim3::d2(1, grid_y),
            Dim3::d2(16, 16),
            vec![input, conn, partial, hid],
        ),
        Launch::new(
            bp_adjust_weights(),
            Dim3::d2(1, grid_y),
            Dim3::d2(16, 16),
            vec![delta, ly, w, oldw, hid],
        ),
    ];
    Workload {
        name: "BP",
        suite: "rodinia",
        gmem: g,
        launches,
    }
}

/// BP at default scale.
pub fn backprop(size: Size) -> Workload {
    backprop_with_nodes(match size {
        Size::Small => 256,
        Size::Full => 16384,
    })
}

/// BTR: B+tree lookups — a regular prologue then data-dependent pointer
/// chasing down a fixed-depth tree.
pub fn btree(size: Size) -> Workload {
    let f = size.factor() as u64;
    let nqueries = 4096 * f;
    let fanout = 4u64;
    let depth = 6u32;
    let nnodes = (fanout.pow(depth + 1) - 1) / (fanout - 1);

    let mut b = KernelBuilder::new("btree_lookup", 4);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let pq = b.ld_param(0);
    let qaddr = b.add_wide(pq, off);
    let key = b.ld_global(Ty::B32, qaddr, 0);
    let ptree = b.ld_param(1);
    let node = b.imm32(0);
    for level in 0..depth {
        // branch = (key >> (2*level)) & (fanout-1)
        let sh = b.shr_imm(Ty::B32, key, 2 * level);
        let branch = b.and_ty(Ty::B32, sh, Operand::Imm(fanout as i64 - 1));
        // child = tree[node*fanout + branch]
        let nf = b.mul(node, Operand::Imm(fanout as i64));
        let slot = b.add(nf, branch);
        let soff32 = b.shl_imm(slot, 2);
        let soff = b.cvt_wide(soff32);
        let taddr = b.add_wide(ptree, soff);
        let child = b.ld_global(Ty::B32, taddr, 0);
        b.assign_mov(Ty::B32, node, child);
    }
    let pout = b.ld_param(2);
    let oaddr = b.add_wide(pout, off);
    b.st_global(Ty::B32, oaddr, 0, node);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xb7e);
    let queries = data::alloc_i32(&mut g, nqueries, &mut rng, 0, i32::MAX);
    // children table: node*fanout + j -> child id (kept in range)
    let tree = g.alloc(nnodes * fanout * 4);
    for n in 0..nnodes {
        for j in 0..fanout {
            let child = (n * fanout + j + 1) % nnodes;
            g.write_i32(tree, n * fanout + j, child as i32);
        }
    }
    let out = data::alloc_i32_zero(&mut g, nqueries);
    let launch = Launch::new(
        k,
        Dim3::d1((nqueries / 256) as u32),
        Dim3::d1(256),
        vec![queries, tree, out, nnodes],
    );
    Workload {
        name: "BTR",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// CFD: flux computation — four same-shape state arrays read at the cell and
/// a neighbor (the paper's Fig. 8 shared-coefficient pattern), with
/// div/sqrt-heavy math.
pub fn cfd(size: Size) -> Workload {
    let f = size.factor() as u64;
    let ncells = 4096 * f;

    // params: [density, momx, momy, energy, out, ncells]
    let mut b = KernelBuilder::new("cfd_flux", 6);
    let i = b.global_tid_x();
    // Each state array re-derives its own address chain from the shared
    // index registers (the paper's Fig. 8 CFD excerpt shows exactly this).
    let ad = crate::patterns::gaddr(&mut b, 0, i, 2);
    let amx = crate::patterns::gaddr(&mut b, 1, i, 2);
    let amy = crate::patterns::gaddr(&mut b, 2, i, 2);
    let ae = crate::patterns::gaddr(&mut b, 3, i, 2);
    let d0 = b.ld_global(Ty::F32, ad, 0);
    let mx0 = b.ld_global(Ty::F32, amx, 0);
    let my0 = b.ld_global(Ty::F32, amy, 0);
    let e0 = b.ld_global(Ty::F32, ae, 0);
    // neighbor (i+1) via constant 4-byte offsets on the same bases
    let d1 = b.ld_global(Ty::F32, ad, 4);
    let mx1 = b.ld_global(Ty::F32, amx, 4);
    let my1 = b.ld_global(Ty::F32, amy, 4);
    let e1 = b.ld_global(Ty::F32, ae, 4);
    // Realistic compressible-flow flux: velocity, kinetic energy, pressure
    // (gamma-law), speed of sound, then upwinded differences per component.
    let vx = b.div_ty(Ty::F32, mx0, d0);
    let vy = b.div_ty(Ty::F32, my0, d0);
    let v2a = b.mul_ty(Ty::F32, vx, vx);
    let v2 = b.mad_ty(Ty::F32, vy, vy, v2a);
    let halfv = b.fimm32(0.5);
    let ke = b.mul_ty(Ty::F32, v2, halfv);
    let ked = b.mul_ty(Ty::F32, ke, d0);
    let egas = b.sub_ty(Ty::F32, e0, ked);
    let gm1 = b.fimm32(0.4);
    let pres = b.mul_ty(Ty::F32, egas, gm1);
    let gamma = b.fimm32(1.4);
    let gp = b.mul_ty(Ty::F32, pres, gamma);
    let c2s = b.div_ty(Ty::F32, gp, d0);
    let sound = b.sfu(SfuOp::Sqrt, Ty::F32, c2s);
    let speed0 = b.sfu(SfuOp::Sqrt, Ty::F32, v2);
    let speed = b.add_ty(Ty::F32, speed0, sound);
    let de = b.sub_ty(Ty::F32, e1, e0);
    let dd = b.sub_ty(Ty::F32, d1, d0);
    let dmx = b.sub_ty(Ty::F32, mx1, mx0);
    let dmy = b.sub_ty(Ty::F32, my1, my0);
    let fd = b.mad_ty(Ty::F32, speed, dd, dmx);
    let fmx0 = b.mul_ty(Ty::F32, vx, dmx);
    let fmx = b.mad_ty(Ty::F32, speed, fmx0, pres);
    let fmy0 = b.mul_ty(Ty::F32, vy, dmy);
    let fmy = b.mad_ty(Ty::F32, speed, fmy0, pres);
    let fe0 = b.add_ty(Ty::F32, de, pres);
    let fe = b.mad_ty(Ty::F32, speed, fe0, ke);
    let fab = b.add_ty(Ty::F32, fd, fmx);
    let fcd = b.add_ty(Ty::F32, fmy, fe);
    let flux = b.add_ty(Ty::F32, fab, fcd);
    let ao = crate::patterns::gaddr(&mut b, 4, i, 2);
    b.st_global(Ty::F32, ao, 0, flux);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xcfd);
    let n1 = ncells + 64; // slack for the +1 neighbor
    let dens = data::alloc_f32(&mut g, n1, &mut rng, 0.5, 2.0);
    let momx = data::alloc_f32(&mut g, n1, &mut rng, -1.0, 1.0);
    let momy = data::alloc_f32(&mut g, n1, &mut rng, -1.0, 1.0);
    let ener = data::alloc_f32(&mut g, n1, &mut rng, 1.0, 3.0);
    let out = data::alloc_f32_zero(&mut g, n1);
    let launch = Launch::new(
        k,
        Dim3::d1((ncells / 128) as u32),
        Dim3::d1(128),
        vec![dens, momx, momy, ener, out, ncells],
    );
    Workload {
        name: "CFD",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// DWT: one Haar wavelet level — horizontal pair-averaging pass then a
/// vertical pass (stride-2 addressing).
pub fn dwt2d(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 128u64;
    let h = 32 * f;

    // horizontal: out[y*w/2+x] = (in[y*w+2x] + in[y*w+2x+1]) / 2
    let hpass = {
        let mut b = KernelBuilder::new("dwt_h", 3);
        let tx = b.tid_x();
        let bx = b.ctaid_x();
        let by = b.ctaid_y();
        let ntx = b.ntid_x();
        let x = b.mad(bx, ntx, tx);
        let wreg = b.ld_param32(2);
        let row = b.mul(by, wreg);
        let x2 = b.shl_imm(x, 1);
        let iidx = b.add(row, x2);
        let ioff = b.shl_imm_wide(iidx, 2);
        let pin = b.ld_param(0);
        let ia = b.add_wide(pin, ioff);
        let a = b.ld_global(Ty::F32, ia, 0);
        let bb = b.ld_global(Ty::F32, ia, 4);
        let s = b.add_ty(Ty::F32, a, bb);
        let half = b.fimm32(0.5);
        let avg = b.mul_ty(Ty::F32, s, half);
        let wh = b.shr_imm(Ty::B32, wreg, 1);
        let orow = b.mul(by, wh);
        let oidx = b.add(orow, x);
        let ooff = b.shl_imm_wide(oidx, 2);
        let pout = b.ld_param(1);
        let oa = b.add_wide(pout, ooff);
        b.st_global(Ty::F32, oa, 0, avg);
        b.build()
    };
    // vertical on the half-width image: out[(y)*w/2+x] = (t[2y*w/2+x]+t[(2y+1)*w/2+x])/2
    let vpass = {
        let mut b = KernelBuilder::new("dwt_v", 3);
        let tx = b.tid_x();
        let bx = b.ctaid_x();
        let by = b.ctaid_y();
        let ntx = b.ntid_x();
        let x = b.mad(bx, ntx, tx);
        let wh = b.ld_param32(2);
        let y2 = b.shl_imm(by, 1);
        let r0 = b.mul(y2, wh);
        let i0 = b.add(r0, x);
        let ioff = b.shl_imm_wide(i0, 2);
        let pin = b.ld_param(0);
        let ia = b.add_wide(pin, ioff);
        let a = b.ld_global(Ty::F32, ia, 0);
        let wh4 = b.shl_imm(wh, 2);
        let wh4w = b.cvt_wide(wh4);
        let ia2 = b.add_wide(ia, wh4w);
        let c = b.ld_global(Ty::F32, ia2, 0);
        let s = b.add_ty(Ty::F32, a, c);
        let half = b.fimm32(0.5);
        let avg = b.mul_ty(Ty::F32, s, half);
        let orow = b.mul(by, wh);
        let oidx = b.add(orow, x);
        let ooff = b.shl_imm_wide(oidx, 2);
        let pout = b.ld_param(1);
        let oa = b.add_wide(pout, ooff);
        b.st_global(Ty::F32, oa, 0, avg);
        b.build()
    };

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xd27);
    let img = data::alloc_f32(&mut g, w * h, &mut rng, 0.0, 255.0);
    let tmp = data::alloc_f32_zero(&mut g, (w / 2) * h);
    let out = data::alloc_f32_zero(&mut g, (w / 2) * (h / 2));
    let launches = vec![
        Launch::new(
            hpass,
            Dim3::d2((w / 2 / 64) as u32, h as u32),
            Dim3::d2(64, 1),
            vec![img, tmp, w],
        ),
        Launch::new(
            vpass,
            Dim3::d2((w / 2 / 64) as u32, (h / 2) as u32),
            Dim3::d2(64, 1),
            vec![tmp, out, w / 2],
        ),
    ];
    Workload {
        name: "DWT",
        suite: "rodinia",
        gmem: g,
        launches,
    }
}

/// GAS: Gaussian elimination — per-iteration Fan1 (multipliers) and Fan2
/// (row updates) kernels whose addresses are linear in the iteration
/// parameter.
pub fn gaussian(size: Size) -> Workload {
    let n = match size {
        Size::Small => 64u64,
        Size::Full => 512,
    };
    let iters = 4u64;

    // fan1: m[i] = a[i*n+k] / a[k*n+k] for i in k+1..n (one thread per row)
    let fan1 = {
        let mut b = KernelBuilder::new("gas_fan1", 4);
        let t = b.global_tid_x();
        let kparam = b.ld_param32(3);
        let i = b.add(t, kparam);
        let i1 = b.add(i, Operand::Imm(1));
        let nreg = b.ld_param32(2);
        let poob = b.setp(CmpOp::Ge, Ty::B32, i1, nreg);
        b.exit();
        b.guard_last(poob, true);
        let row = b.mul(i1, nreg);
        let idx = b.add(row, kparam);
        let off = b.shl_imm_wide(idx, 2);
        let pa = b.ld_param(0);
        let aaddr = b.add_wide(pa, off);
        let av = b.ld_global(Ty::F32, aaddr, 0);
        let kk = b.mul(kparam, nreg);
        let kidx = b.add(kk, kparam);
        let koff = b.shl_imm_wide(kidx, 2);
        let kaddr = b.add_wide(pa, koff);
        let pivot = b.ld_global(Ty::F32, kaddr, 0);
        let m = b.div_ty(Ty::F32, av, pivot);
        let moff = b.shl_imm_wide(i1, 2);
        let pm = b.ld_param(1);
        let maddr = b.add_wide(pm, moff);
        b.st_global(Ty::F32, maddr, 0, m);
        b.build()
    };
    // fan2: a[i][j] -= m[i] * a[k][j]
    let fan2 = {
        let mut b = KernelBuilder::new("gas_fan2", 4);
        let tx = b.tid_x();
        let ty = b.tid_y();
        let bx = b.ctaid_x();
        let by = b.ctaid_y();
        let ntx = b.ntid_x();
        let nty = b.ntid_y();
        let j = b.mad(bx, ntx, tx);
        let t = b.mad(by, nty, ty);
        let kparam = b.ld_param32(3);
        let i = b.add(t, kparam);
        let i1 = b.add(i, Operand::Imm(1));
        let nreg = b.ld_param32(2);
        let pi = b.setp(CmpOp::Ge, Ty::B32, i1, nreg);
        b.exit();
        b.guard_last(pi, true);
        let pj = b.setp(CmpOp::Ge, Ty::B32, j, nreg);
        b.exit();
        b.guard_last(pj, true);
        let pa = b.ld_param(0);
        let rowi = b.mul(i1, nreg);
        let idxi = b.add(rowi, j);
        let offi = b.shl_imm_wide(idxi, 2);
        let ai = b.add_wide(pa, offi);
        let rowk = b.mul(kparam, nreg);
        let idxk = b.add(rowk, j);
        let offk = b.shl_imm_wide(idxk, 2);
        let ak = b.add_wide(pa, offk);
        let moff = b.shl_imm_wide(i1, 2);
        let pm = b.ld_param(1);
        let am = b.add_wide(pm, moff);
        let akv = b.ld_global(Ty::F32, ak, 0);
        let mv = b.ld_global(Ty::F32, am, 0);
        let aiv = b.ld_global(Ty::F32, ai, 0);
        let prod = b.mul_ty(Ty::F32, mv, akv);
        let nv = b.sub_ty(Ty::F32, aiv, prod);
        b.st_global(Ty::F32, ai, 0, nv);
        b.build()
    };

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x6a5);
    let a = data::alloc_f32(&mut g, n * n, &mut rng, 1.0, 2.0);
    let m = data::alloc_f32_zero(&mut g, n);
    let mut launches = Vec::new();
    for k in 0..iters {
        launches.push(Launch::new(
            fan1.clone(),
            Dim3::d1((n / 64) as u32),
            Dim3::d1(64),
            vec![a, m, n, k],
        ));
        launches.push(Launch::new(
            fan2.clone(),
            Dim3::d2((n / 16) as u32, (n / 16) as u32),
            Dim3::d2(16, 16),
            vec![a, m, n, k],
        ));
    }
    Workload {
        name: "GAS",
        suite: "rodinia",
        gmem: g,
        launches,
    }
}

/// HSP: hotspot — a 5-point stencil over two same-index input grids
/// (temperature + power) with border handling via padding.
pub fn hotspot(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 64u64;
    let h = 32 * f;
    let pitch = w + 2;

    // params: [temp, power, out, pitch]
    let mut b = KernelBuilder::new("hotspot", 4);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pitch_r = b.ld_param32(3);
    let x1 = b.add(x, Operand::Imm(1));
    let y1 = b.add(y, Operand::Imm(1));
    let idx = b.mad(y1, pitch_r, x1);
    let off = b.shl_imm_wide(idx, 2);
    let pt = b.ld_param(0);
    let pp = b.ld_param(1);
    let tbase = b.add_wide(pt, off);
    let pbase = b.add_wide(pp, off);
    let c = b.ld_global(Ty::F32, tbase, 0);
    let e = b.ld_global(Ty::F32, tbase, 4);
    let wv = b.ld_global(Ty::F32, tbase, -4);
    let prow = b.mul(pitch_r, Operand::Imm(4));
    let proww = b.cvt_wide(prow);
    let na = b.add_wide(tbase, proww);
    let nn = b.ld_global(Ty::F32, na, 0);
    let sa = b.sub_ty(Ty::B64, tbase, proww);
    let ss = b.ld_global(Ty::F32, sa, 0);
    let pw = b.ld_global(Ty::F32, pbase, 0);
    // Full hotspot update: separate x/y conductances, ambient term, power.
    let rx = b.fimm32(0.2);
    let ry = b.fimm32(0.15);
    let rz = b.fimm32(0.0625);
    let amb = b.fimm32(80.0);
    let ex0 = b.add_ty(Ty::F32, e, wv);
    let cm2 = b.fimm32(-2.0);
    let gx = b.mad_ty(Ty::F32, c, cm2, ex0);
    let gxr = b.mul_ty(Ty::F32, gx, rx);
    let ny0 = b.add_ty(Ty::F32, nn, ss);
    let gy = b.mad_ty(Ty::F32, c, cm2, ny0);
    let gyr = b.mul_ty(Ty::F32, gy, ry);
    let az = b.sub_ty(Ty::F32, amb, c);
    let gzr = b.mul_ty(Ty::F32, az, rz);
    let s01 = b.add_ty(Ty::F32, gxr, gyr);
    let s02 = b.add_ty(Ty::F32, gzr, pw);
    let dtv = b.add_ty(Ty::F32, s01, s02);
    let step = b.fimm32(0.5);
    let out = b.mad_ty(Ty::F32, dtv, step, c);
    let po = b.ld_param(2);
    let obase = b.add_wide(po, off);
    b.st_global(Ty::F32, obase, 0, out);
    let k = b.build();

    let total = pitch * (h + 2);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x457);
    let temp = data::alloc_f32(&mut g, total, &mut rng, 320.0, 340.0);
    let power = data::alloc_f32(&mut g, total, &mut rng, 0.0, 0.2);
    let out = data::alloc_f32_zero(&mut g, total);
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![temp, power, out, pitch],
    );
    Workload {
        name: "HSP",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// HTW: heartwall — windowed template correlation (unrolled 2D taps + sqrt
/// normalization).
pub fn heartwall(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 64u64;
    let h = 16 * f;
    let pitch = w + 4;

    // params: [frame, template, out, pitch]
    let mut b = KernelBuilder::new("htw_corr", 4);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pitch_r = b.ld_param32(3);
    let idx = b.mad(y, pitch_r, x);
    let off = b.shl_imm_wide(idx, 2);
    let pf = b.ld_param(0);
    let ptm = b.ld_param(1);
    let fbase = b.add_wide(pf, off);
    let mut dot = b.fimm32(0.0);
    let mut norm = b.fimm32(1e-6);
    for wy in 0..4i64 {
        for wx in 0..4i64 {
            let doff = wy * pitch as i64 * 4 + wx * 4;
            let fv = b.ld_global(Ty::F32, fbase, doff);
            let tv = b.ld_global(Ty::F32, ptm, (wy * 4 + wx) * 4);
            dot = b.mad_ty(Ty::F32, fv, tv, dot);
            norm = b.mad_ty(Ty::F32, fv, fv, norm);
        }
    }
    let rs = b.sfu(SfuOp::Rsqrt, Ty::F32, norm);
    let corr = b.mul_ty(Ty::F32, dot, rs);
    let po = b.ld_param(2);
    let oaddr = b.add_wide(po, off);
    b.st_global(Ty::F32, oaddr, 0, corr);
    let k = b.build();

    let total = pitch * (h + 4);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x47b);
    let frame = data::alloc_f32(&mut g, total, &mut rng, 0.0, 1.0);
    let tmpl = data::alloc_f32(&mut g, 16, &mut rng, 0.0, 1.0);
    let out = data::alloc_f32_zero(&mut g, total);
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![frame, tmpl, out, pitch],
    );
    Workload {
        name: "HTW",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// KM: k-means membership — 1-D blocks, per-point loop over clusters and
/// features (the paper notes KM's 1-D blocks still win via cross-block
/// sharing).
pub fn kmeans(size: Size) -> Workload {
    let f = size.factor() as u64;
    let npoints = 4096 * f;
    let nclusters = 5i64;
    let nfeat = 4i64;

    // params: [points, centroids, membership, npoints]
    let mut b = KernelBuilder::new("kmeans_assign", 4);
    let i = b.global_tid_x();
    let nf = b.imm32(nfeat as i32);
    let row = b.mul(i, nf);
    let roff = b.shl_imm_wide(row, 2);
    let pp = b.ld_param(0);
    let pbase = b.add_wide(pp, roff);
    let pc = b.ld_param(1);
    let best = b.fimm32(1.0e30);
    let bestk = b.imm32(0);
    for c in 0..nclusters {
        let mut dist = b.fimm32(0.0);
        for ft in 0..nfeat {
            let pv = b.ld_global(Ty::F32, pbase, ft * 4);
            let cv = b.ld_global(Ty::F32, pc, (c * nfeat + ft) * 4);
            let d = b.sub_ty(Ty::F32, pv, cv);
            dist = b.mad_ty(Ty::F32, d, d, dist);
        }
        let p = b.setp(CmpOp::Lt, Ty::F32, dist, best);
        let nb = b.selp(Ty::F32, dist, best, p);
        let ck = b.imm32(c as i32);
        let nk = b.selp(Ty::B32, ck, bestk, p);
        b.assign_mov(Ty::F32, best, nb);
        b.assign_mov(Ty::B32, bestk, nk);
    }
    let moff = b.shl_imm_wide(i, 2);
    let pm = b.ld_param(2);
    let maddr = b.add_wide(pm, moff);
    b.st_global(Ty::B32, maddr, 0, bestk);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x6b3);
    let pts = data::alloc_f32(&mut g, npoints * nfeat as u64, &mut rng, 0.0, 10.0);
    let cents = data::alloc_f32(&mut g, (nclusters * nfeat) as u64, &mut rng, 0.0, 10.0);
    let memb = data::alloc_i32_zero(&mut g, npoints);
    let launch = Launch::new(
        k,
        Dim3::d1((npoints / 128) as u32),
        Dim3::d1(128),
        vec![pts, cents, memb, npoints],
    );
    Workload {
        name: "KM",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// LMD: lavaMD — per-particle loop over a neighbor list with rsqrt force
/// kernels.
pub fn lavamd(size: Size) -> Workload {
    let f = size.factor() as u64;
    let nparticles = 2048 * f;
    let nneigh = 16i64;

    // params: [pos, out, nparticles]
    let mut b = KernelBuilder::new("lavamd_force", 3);
    let i = b.global_tid_x();
    let i3 = b.mul(i, Operand::Imm(3));
    let poff = b.shl_imm_wide(i3, 2);
    let pp = b.ld_param(0);
    let pbase = b.add_wide(pp, poff);
    let x = b.ld_global(Ty::F32, pbase, 0);
    let y = b.ld_global(Ty::F32, pbase, 4);
    let z = b.ld_global(Ty::F32, pbase, 8);
    let mut force = b.fimm32(0.0);
    for nb in 1..=nneigh {
        let nx = b.ld_global(Ty::F32, pbase, nb * 12);
        let ny = b.ld_global(Ty::F32, pbase, nb * 12 + 4);
        let nz = b.ld_global(Ty::F32, pbase, nb * 12 + 8);
        let dx = b.sub_ty(Ty::F32, x, nx);
        let dy = b.sub_ty(Ty::F32, y, ny);
        let dz = b.sub_ty(Ty::F32, z, nz);
        let r2a = b.mul_ty(Ty::F32, dx, dx);
        let r2b = b.mad_ty(Ty::F32, dy, dy, r2a);
        let eps = b.fimm32(0.01);
        let r2c = b.mad_ty(Ty::F32, dz, dz, r2b);
        let r2 = b.add_ty(Ty::F32, r2c, eps);
        let inv = b.sfu(SfuOp::Rsqrt, Ty::F32, r2);
        force = b.add_ty(Ty::F32, force, inv);
    }
    let ooff = b.shl_imm_wide(i, 2);
    let po = b.ld_param(1);
    let oaddr = b.add_wide(po, ooff);
    b.st_global(Ty::F32, oaddr, 0, force);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x1a6);
    let pos = data::alloc_f32(
        &mut g,
        (nparticles + nneigh as u64 + 1) * 3,
        &mut rng,
        0.0,
        8.0,
    );
    let out = data::alloc_f32_zero(&mut g, nparticles);
    let launch = Launch::new(
        k,
        Dim3::d1((nparticles / 128) as u32),
        Dim3::d1(128),
        vec![pos, out, nparticles],
    );
    Workload {
        name: "LMD",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// LUD: blocked LU decomposition — *many tiny kernel launches* over a
/// shrinking submatrix, the paper's Fig. 14 worst case for linear-instruction
/// overhead.
pub fn lud(size: Size) -> Workload {
    let n = match size {
        Size::Small => 64u64,
        Size::Full => 128,
    };
    let tile = 16u64;

    // internal update: a[i][j] -= l[i][k] * u[k][j] over the trailing block,
    // with the iteration origin passed as a parameter.
    let internal = {
        let mut b = KernelBuilder::new("lud_internal", 3);
        let tx = b.tid_x();
        let ty = b.tid_y();
        let bx = b.ctaid_x();
        let by = b.ctaid_y();
        let ntx = b.ntid_x();
        let nty = b.ntid_y();
        let xo = b.mad(bx, ntx, tx);
        let yo = b.mad(by, nty, ty);
        let org = b.ld_param32(2);
        let org1 = b.add(org, Operand::Imm(16));
        let j = b.add(xo, org1);
        let i = b.add(yo, org1);
        let nreg = b.ld_param32(1);
        let rowi = b.mul(i, nreg);
        let aij = b.add(rowi, j);
        let aoff = b.shl_imm_wide(aij, 2);
        let pa = b.ld_param(0);
        let aaddr = b.add_wide(pa, aoff);
        let lik = b.add(rowi, org);
        let loff = b.shl_imm_wide(lik, 2);
        let laddr = b.add_wide(pa, loff);
        let rowk = b.mul(org, nreg);
        let ukj = b.add(rowk, j);
        let uoff = b.shl_imm_wide(ukj, 2);
        let uaddr = b.add_wide(pa, uoff);
        let lv = b.ld_global(Ty::F32, laddr, 0);
        let uv = b.ld_global(Ty::F32, uaddr, 0);
        let av = b.ld_global(Ty::F32, aaddr, 0);
        let prod = b.mul_ty(Ty::F32, lv, uv);
        let nv = b.sub_ty(Ty::F32, av, prod);
        b.st_global(Ty::F32, aaddr, 0, nv);
        b.build()
    };

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x15d);
    let a = data::alloc_f32(&mut g, n * n, &mut rng, 1.0, 2.0);
    let mut launches = Vec::new();
    let mut span = n - tile;
    let mut org = 0u64;
    while span >= tile {
        launches.push(Launch::new(
            internal.clone(),
            Dim3::d2((span / tile) as u32, (span / tile) as u32),
            Dim3::d2(16, 16),
            vec![a, n, org],
        ));
        org += tile;
        span -= tile;
    }
    Workload {
        name: "LUD",
        suite: "rodinia",
        gmem: g,
        launches,
    }
}

/// MUM: MUMmer suffix-tree matching — character-driven pointer chasing.
pub fn mummer(size: Size) -> Workload {
    let f = size.factor().min(32) as u64;
    let nqueries = 2048 * f;
    let qlen = 8u32;
    let nnodes = 1024u64;

    // params: [queries, tree, out, qlen]
    let mut b = KernelBuilder::new("mum_match", 4);
    let i = b.global_tid_x();
    let ql = b.ld_param32(3);
    let qstart = b.mul(i, ql);
    let pq = b.ld_param(0);
    let ptree = b.ld_param(1);
    let node = b.imm32(0);
    let pos = b.imm32(0);
    let exit_l = b.label();
    let top = b.here_label();
    let pd = b.setp(CmpOp::Ge, Ty::B32, pos, ql);
    b.bra_if(pd, true, exit_l);
    let qi = b.add(qstart, pos);
    let qoff = b.shl_imm_wide(qi, 2);
    let qaddr = b.add_wide(pq, qoff);
    let ch = b.ld_global(Ty::B32, qaddr, 0);
    let c4 = b.and_ty(Ty::B32, ch, Operand::Imm(3));
    let n4 = b.shl_imm(node, 2);
    let slot = b.add(n4, c4);
    let soff32 = b.shl_imm(slot, 2);
    let soff = b.cvt_wide(soff32);
    let taddr = b.add_wide(ptree, soff);
    let child = b.ld_global(Ty::B32, taddr, 0);
    b.assign_mov(Ty::B32, node, child);
    b.assign_add(Ty::B32, pos, Operand::Imm(1));
    b.bra(top);
    b.place(exit_l);
    let ooff = b.shl_imm_wide(i, 2);
    let po = b.ld_param(2);
    let oaddr = b.add_wide(po, ooff);
    b.st_global(Ty::B32, oaddr, 0, node);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x313);
    let queries = data::alloc_i32(&mut g, nqueries * qlen as u64, &mut rng, 0, 4);
    let tree = g.alloc(nnodes * 4 * 4);
    for nidx in 0..nnodes {
        for c in 0..4u64 {
            g.write_i32(
                tree,
                nidx * 4 + c,
                ((nidx * 7 + c * 13 + 1) % nnodes) as i32,
            );
        }
    }
    let out = data::alloc_i32_zero(&mut g, nqueries);
    let launch = Launch::new(
        k,
        Dim3::d1((nqueries / 256) as u32),
        Dim3::d1(256),
        vec![queries, tree, out, qlen as u64],
    );
    Workload {
        name: "MUM",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// NN: nearest-neighbor distance — pure streaming with sqrt.
pub fn nn(size: Size) -> Workload {
    let f = size.factor() as u64;
    let n = 16384 * f;

    // params: [lat, lng, dist] with target folded into constants
    let mut b = KernelBuilder::new("nn_dist", 3);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let plat = b.ld_param(0);
    let plng = b.ld_param(1);
    let alat = b.add_wide(plat, off);
    let alng = b.add_wide(plng, off);
    let lat = b.ld_global(Ty::F32, alat, 0);
    let lng = b.ld_global(Ty::F32, alng, 0);
    // haversine-style distance, as the original hurricane-record NN does
    let tlat = b.fimm32(30.0);
    let tlng = b.fimm32(-90.0);
    let dlat = b.sub_ty(Ty::F32, lat, tlat);
    let dlng = b.sub_ty(Ty::F32, lng, tlng);
    let halfc = b.fimm32(0.5 * 0.0174533);
    let hlat = b.mul_ty(Ty::F32, dlat, halfc);
    let hlng = b.mul_ty(Ty::F32, dlng, halfc);
    let slat = b.sfu(SfuOp::Sin, Ty::F32, hlat);
    let slng = b.sfu(SfuOp::Sin, Ty::F32, hlng);
    let rad = b.fimm32(0.0174533);
    let rl1 = b.mul_ty(Ty::F32, lat, rad);
    let rl2 = b.mul_ty(Ty::F32, tlat, rad);
    let cl1 = b.sfu(SfuOp::Cos, Ty::F32, rl1);
    let cl2 = b.sfu(SfuOp::Cos, Ty::F32, rl2);
    let s2a = b.mul_ty(Ty::F32, slat, slat);
    let cc = b.mul_ty(Ty::F32, cl1, cl2);
    let s2b = b.mul_ty(Ty::F32, slng, slng);
    let ccs = b.mul_ty(Ty::F32, cc, s2b);
    let h = b.add_ty(Ty::F32, s2a, ccs);
    let d = b.sfu(SfuOp::Sqrt, Ty::F32, h);
    let po = b.ld_param(2);
    let ao = b.add_wide(po, off);
    b.st_global(Ty::F32, ao, 0, d);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x22);
    let lat = data::alloc_f32(&mut g, n, &mut rng, 25.0, 35.0);
    let lng = data::alloc_f32(&mut g, n, &mut rng, -95.0, -85.0);
    let dist = data::alloc_f32_zero(&mut g, n);
    let launch = Launch::new(
        k,
        Dim3::d1((n / 256) as u32),
        Dim3::d1(256),
        vec![lat, lng, dist],
    );
    Workload {
        name: "NN",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// PTH: pathfinder — dynamic-programming rows with clamped neighbor reads
/// (min/max index clamping breaks linearity at the borders, like the
/// original's halo handling).
pub fn pathfinder(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 8192 * f;
    let rows = 4u64;

    // params: [prev, wall, out, width]
    let mut b = KernelBuilder::new("pathfinder_row", 4);
    let x = b.global_tid_x();
    let wreg = b.ld_param32(3);
    let wm1 = b.sub(wreg, Operand::Imm(1));
    let zero = b.imm32(0);
    let xm1 = b.sub(x, Operand::Imm(1));
    let left_i = b.max_ty(Ty::B32, xm1, zero);
    let xp1 = b.add(x, Operand::Imm(1));
    let right_i = b.min_ty(Ty::B32, xp1, wm1);
    let pprev = b.ld_param(0);
    let coff = b.shl_imm_wide(x, 2);
    let ca = b.add_wide(pprev, coff);
    let center = b.ld_global(Ty::F32, ca, 0);
    let loff = b.shl_imm_wide(left_i, 2);
    let la = b.add_wide(pprev, loff);
    let left = b.ld_global(Ty::F32, la, 0);
    let roff = b.shl_imm_wide(right_i, 2);
    let ra = b.add_wide(pprev, roff);
    let right = b.ld_global(Ty::F32, ra, 0);
    let m1 = b.min_ty(Ty::F32, left, center);
    let m = b.min_ty(Ty::F32, m1, right);
    let pwall = b.ld_param(1);
    let wa = b.add_wide(pwall, coff);
    let wv = b.ld_global(Ty::F32, wa, 0);
    let res = b.add_ty(Ty::F32, m, wv);
    let po = b.ld_param(2);
    let oa = b.add_wide(po, coff);
    b.st_global(Ty::F32, oa, 0, res);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x974);
    let mut prev = data::alloc_f32(&mut g, w, &mut rng, 0.0, 10.0);
    let walls: Vec<u64> = (0..rows)
        .map(|_| data::alloc_f32(&mut g, w, &mut rng, 0.0, 10.0))
        .collect();
    let mut bufs = [
        data::alloc_f32_zero(&mut g, w),
        data::alloc_f32_zero(&mut g, w),
    ];
    let mut launches = Vec::new();
    for r in 0..rows as usize {
        let out = bufs[r % 2];
        launches.push(Launch::new(
            k.clone(),
            Dim3::d1((w / 256) as u32),
            Dim3::d1(256),
            vec![prev, walls[r], out, w],
        ));
        prev = out;
        bufs[r % 2] = prev;
    }
    Workload {
        name: "PTH",
        suite: "rodinia",
        gmem: g,
        launches,
    }
}

fn srad_kernel(name: &str) -> Kernel {
    // params: [in, out, pitch] — 4-neighbor diffusion with a division.
    let mut b = KernelBuilder::new(name, 3);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pitch = b.ld_param32(2);
    let x1 = b.add(x, Operand::Imm(1));
    let y1 = b.add(y, Operand::Imm(1));
    let idx = b.mad(y1, pitch, x1);
    let off = b.shl_imm_wide(idx, 2);
    let pin = b.ld_param(0);
    let base = b.add_wide(pin, off);
    let c = b.ld_global(Ty::F32, base, 0);
    let e = b.ld_global(Ty::F32, base, 4);
    let w = b.ld_global(Ty::F32, base, -4);
    let prow = b.mul(pitch, Operand::Imm(4));
    let proww = b.cvt_wide(prow);
    let na = b.add_wide(base, proww);
    let n = b.ld_global(Ty::F32, na, 0);
    let sa = b.sub_ty(Ty::B64, base, proww);
    let s = b.ld_global(Ty::F32, sa, 0);
    // Full SRAD update: normalized gradients, laplacian, instantaneous
    // coefficient of variation, exp-shaped diffusion coefficient.
    let s1 = b.add_ty(Ty::F32, n, s);
    let s2 = b.add_ty(Ty::F32, e, w);
    let s3 = b.add_ty(Ty::F32, s1, s2);
    let cm4 = b.fimm32(-4.0);
    let lap = b.mad_ty(Ty::F32, c, cm4, s3);
    let eps = b.fimm32(1e-3);
    let cs = b.add_ty(Ty::F32, c, eps);
    let dn = b.sub_ty(Ty::F32, n, c);
    let ds = b.sub_ty(Ty::F32, s, c);
    let de = b.sub_ty(Ty::F32, e, c);
    let dw = b.sub_ty(Ty::F32, w, c);
    let g2a = b.mul_ty(Ty::F32, dn, dn);
    let g2b = b.mad_ty(Ty::F32, ds, ds, g2a);
    let g2c = b.mad_ty(Ty::F32, de, de, g2b);
    let g2 = b.mad_ty(Ty::F32, dw, dw, g2c);
    let c2 = b.mul_ty(Ty::F32, cs, cs);
    let g2n = b.div_ty(Ty::F32, g2, c2);
    let lapn = b.div_ty(Ty::F32, lap, cs);
    let half = b.fimm32(0.5);
    let l2 = b.mul_ty(Ty::F32, lapn, lapn);
    let sixteenth = b.fimm32(1.0 / 16.0);
    let l2s = b.mul_ty(Ty::F32, l2, sixteenth);
    let num0 = b.mad_ty(Ty::F32, g2n, half, l2s);
    let quarter = b.fimm32(0.25);
    let onec = b.fimm32(1.0);
    let lq = b.mad_ty(Ty::F32, lapn, quarter, onec);
    let den = b.mul_ty(Ty::F32, lq, lq);
    let qsqr = b.div_ty(Ty::F32, num0, den);
    let q0 = b.fimm32(0.05);
    let qd = b.sub_ty(Ty::F32, qsqr, q0);
    let qn = b.mad_ty(Ty::F32, q0, q0, q0);
    let arg = b.div_ty(Ty::F32, qd, qn);
    let nlog2e = b.fimm32(-std::f32::consts::LOG2_E);
    let earg = b.mul_ty(Ty::F32, arg, nlog2e);
    let cdiff0 = b.sfu(SfuOp::Ex2, Ty::F32, earg);
    let one = b.fimm32(1.0);
    let cd1 = b.min_ty(Ty::F32, cdiff0, one);
    let zero = b.fimm32(0.0);
    let cdiff = b.max_ty(Ty::F32, cd1, zero);
    let d0 = b.mul_ty(Ty::F32, cdiff, lap);
    let lam = b.fimm32(0.125);
    let upd = b.mad_ty(Ty::F32, d0, lam, c);
    let po = b.ld_param(1);
    let obase = b.add_wide(po, off);
    b.st_global(Ty::F32, obase, 0, upd);
    b.build()
}

/// SRAD1: speckle-reducing anisotropic diffusion, 16x16 blocks.
pub fn srad1(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 64u64;
    let h = 32 * f;
    let pitch = w + 2;
    let total = pitch * (h + 2);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x52a);
    let input = data::alloc_f32(&mut g, total, &mut rng, 0.1, 1.0);
    let output = data::alloc_f32_zero(&mut g, total);
    let launch = Launch::new(
        srad_kernel("srad1"),
        Dim3::d2((w / 16) as u32, (h / 16) as u32),
        Dim3::d2(16, 16),
        vec![input, output, pitch],
    );
    Workload {
        name: "SRAD1",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}

/// SRAD2: the paper's across-block showcase — 8 warps per block, thousands
/// of blocks sharing thread-index parts.
pub fn srad2(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 256u64;
    let h = 32 * f;
    let pitch = w + 2;
    let total = pitch * (h + 2);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x52b);
    let input = data::alloc_f32(&mut g, total, &mut rng, 0.1, 1.0);
    let output = data::alloc_f32_zero(&mut g, total);
    // 32x8 = 256 threads = 8 warps per block, like the paper's SRAD2.
    let launch = Launch::new(
        srad_kernel("srad2"),
        Dim3::d2((w / 32) as u32, (h / 8) as u32),
        Dim3::d2(32, 8),
        vec![input, output, pitch],
    );
    Workload {
        name: "SRAD2",
        suite: "rodinia",
        gmem: g,
        launches: vec![launch],
    }
}
