//! ispass-2009 workloads: LIB, LPS, RAY.

use crate::data;
use crate::patterns;
use crate::{Size, Workload};
use r2d2_isa::{CmpOp, KernelBuilder, SfuOp, Ty};
use r2d2_sim::{Dim3, GlobalMem, Launch};

/// LIB: Monte-Carlo LIBOR path simulation — per-thread loop over maturities
/// with uniform rate loads and SFU math; addresses fully linear in the path
/// index.
pub fn lib(size: Size) -> Workload {
    let f = size.factor();
    let npaths = 4096u64 * f as u64;
    let steps = 16i64;

    let mut b = KernelBuilder::new("lib_paths", 3);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let pz = b.ld_param(0);
    let zaddr = b.add_wide(pz, off);
    let z = b.ld_global(Ty::F32, zaddr, 0);
    let prates = b.ld_param(1);
    let acc = b.fimm32(1.0);
    for s in 0..steps {
        // uniform rate load (same address for all threads)
        let r = b.ld_global(Ty::F32, prates, s * 4);
        let drift = b.mad_ty(Ty::F32, r, z, acc);
        let g = b.sfu(SfuOp::Ex2, Ty::F32, r);
        let nx = b.mad_ty(Ty::F32, drift, g, acc);
        b.assign_mov(Ty::F32, acc, nx);
    }
    let pout = b.ld_param(2);
    let oaddr = b.add_wide(pout, off);
    b.st_global(Ty::F32, oaddr, 0, acc);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x11b);
    let z = data::alloc_f32(&mut g, npaths, &mut rng, -0.1, 0.1);
    let rates = data::alloc_f32(&mut g, steps as u64, &mut rng, 0.0, 0.05);
    let out = data::alloc_f32_zero(&mut g, npaths);
    let launch = Launch::new(
        k,
        Dim3::d1((npaths / 256) as u32),
        Dim3::d1(256),
        vec![z, rates, out],
    );
    Workload {
        name: "LIB",
        suite: "ispass",
        gmem: g,
        launches: vec![launch],
    }
}

/// LPS: 3D Laplace solver — the z-loop stencil shape.
pub fn lps(size: Size) -> Workload {
    let (w, h, planes) = match size {
        Size::Small => (64u64, 16u64, 8u64),
        Size::Full => (256, 128, 26),
    };
    let pitch = w + 2;
    let total = pitch * pitch * (planes + 2);

    let k = patterns::stencil3d("lps_laplace");
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x195);
    let input = data::alloc_f32(&mut g, total, &mut rng, 0.0, 1.0);
    let output = data::alloc_f32_zero(&mut g, total);
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![input, output, pitch, planes + 2],
    );
    Workload {
        name: "LPS",
        suite: "ispass",
        gmem: g,
        launches: vec![launch],
    }
}

/// RAY: per-pixel ray/sphere intersection — 2D pixel indexing, a loop over
/// spheres, heavy SFU use and data-dependent selection (divergence).
pub fn ray(size: Size) -> Workload {
    let (w, h) = match size {
        Size::Small => (64u64, 16u64),
        Size::Full => (256, 512),
    };
    let nspheres = 8i64;

    let mut b = KernelBuilder::new("ray_trace", 3);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let wreg = b.ld_param32(2);
    let pix = b.mad(y, wreg, x);
    // ray direction from pixel coords
    let xf = b.cvt(Ty::F32, x);
    let yf = b.cvt(Ty::F32, y);
    let scale = b.fimm32(1.0 / 64.0);
    let dx = b.mul_ty(Ty::F32, xf, scale);
    let dy = b.mul_ty(Ty::F32, yf, scale);
    let psph = b.ld_param(0);
    let best = b.fimm32(1.0e30);
    for s in 0..nspheres {
        // sphere s: (cx, cy, r) packed as 3 floats
        let cx = b.ld_global(Ty::F32, psph, s * 12);
        let cy = b.ld_global(Ty::F32, psph, s * 12 + 4);
        let rr = b.ld_global(Ty::F32, psph, s * 12 + 8);
        let ox = b.sub_ty(Ty::F32, dx, cx);
        let oy = b.sub_ty(Ty::F32, dy, cy);
        let oxx = b.mul_ty(Ty::F32, ox, ox);
        let d2 = b.mad_ty(Ty::F32, oy, oy, oxx);
        let r2 = b.mul_ty(Ty::F32, rr, rr);
        let p = b.setp(CmpOp::Lt, Ty::F32, d2, r2);
        let dist = b.sfu(SfuOp::Sqrt, Ty::F32, d2);
        let cand = b.min_ty(Ty::F32, dist, best);
        let sel = b.selp(Ty::F32, cand, best, p);
        b.assign_mov(Ty::F32, best, sel);
    }
    let off = b.shl_imm_wide(pix, 2);
    let pout = b.ld_param(1);
    let oaddr = b.add_wide(pout, off);
    b.st_global(Ty::F32, oaddr, 0, best);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x4a7);
    let spheres = data::alloc_f32(&mut g, nspheres as u64 * 3, &mut rng, 0.0, 1.0);
    let out = data::alloc_f32_zero(&mut g, w * h);
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![spheres, out, w],
    );
    Workload {
        name: "RAY",
        suite: "ispass",
        gmem: g,
        launches: vec![launch],
    }
}
