//! cuFFT workloads: FFT and the persistent-thread FFT_PT (paper Sec. 5.7).

use crate::data;
use crate::patterns;
use crate::{Size, Workload};
use r2d2_isa::{CmpOp, KernelBuilder, Operand, SfuOp, Ty};
use r2d2_sim::{Dim3, GlobalMem, Launch};

fn fft_points(size: Size) -> u64 {
    match size {
        Size::Small => 2048,
        Size::Full => 65536,
    }
}

/// FFT: one radix-2 stage per launch (`log2(n)` launches).
pub fn fft(size: Size) -> Workload {
    let n = fft_points(size);
    let half = n / 2;
    let k = patterns::fft_stage("fft_stage");
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xff7);
    let re = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let im = data::alloc_f32_zero(&mut g, n);
    let mut launches = Vec::new();
    let mut span = 1u64;
    while span < n {
        launches.push(Launch::new(
            k.clone(),
            Dim3::d1((half / 256) as u32),
            Dim3::d1(256),
            vec![re, im, span, half],
        ));
        span *= 2;
    }
    Workload {
        name: "FFT",
        suite: "cuFFT",
        gmem: g,
        launches,
    }
}

/// FFT_PT: persistent-thread butterfly stage — a fixed number of thread
/// blocks loop over virtual work chunks with a regular (linear) chunk-stride
/// communication pattern, the case the paper's Sec. 5.7 highlights.
pub fn fft_pt(size: Size) -> Workload {
    let n = fft_points(size);
    let half = n / 2;
    // Fixed launch: 16 blocks x 128 threads = 2048 persistent threads.
    let nthreads = 2048u64.min(half);

    // params: [re, im, span, half]
    let mut b = KernelBuilder::new("fft_pt_stage", 4);
    let tid = b.global_tid_x();
    let halfr = b.ld_param32(3);
    let span = b.ld_param32(2);
    let sm1 = b.sub(span, Operand::Imm(1));
    let pre = b.ld_param(0);
    let pim = b.ld_param(1);
    let total = b.imm32(nthreads as i32);
    // virtual-thread loop: v = tid; while v < half { butterfly(v); v += total }
    let v = b.fresh();
    b.assign_mov(Ty::B32, v, tid);
    let done = b.label();
    let top = b.here_label();
    let pd = b.setp(CmpOp::Ge, Ty::B32, v, halfr);
    b.bra_if(pd, true, done);
    let lowbits = b.and_ty(Ty::B32, v, sm1);
    let notm = {
        let d = b.fresh();
        b.push(r2d2_isa::Instr::new(
            r2d2_isa::Op::Not,
            Ty::B32,
            Some(r2d2_isa::Dst::Reg(d)),
            vec![Operand::Reg(sm1)],
        ));
        d
    };
    let hibits = b.and_ty(Ty::B32, v, notm);
    let hi2 = b.shl_imm(hibits, 1);
    let j = b.add(hi2, lowbits);
    let jp = b.add(j, span);
    let joff = b.shl_imm_wide(j, 2);
    let jpoff = b.shl_imm_wide(jp, 2);
    let are = b.add_wide(pre, joff);
    let aim = b.add_wide(pim, joff);
    let bre = b.add_wide(pre, jpoff);
    let bim = b.add_wide(pim, jpoff);
    let xr = b.ld_global(Ty::F32, are, 0);
    let xi = b.ld_global(Ty::F32, aim, 0);
    let yr = b.ld_global(Ty::F32, bre, 0);
    let yi = b.ld_global(Ty::F32, bim, 0);
    let lf = b.cvt(Ty::F32, lowbits);
    let sf = b.cvt(Ty::F32, span);
    let ratio = b.div_ty(Ty::F32, lf, sf);
    let mpi = b.fimm32(-std::f32::consts::PI);
    let ang = b.mul_ty(Ty::F32, ratio, mpi);
    let c = b.sfu(SfuOp::Cos, Ty::F32, ang);
    let s = b.sfu(SfuOp::Sin, Ty::F32, ang);
    let cyr = b.mul_ty(Ty::F32, c, yr);
    let syi = b.mul_ty(Ty::F32, s, yi);
    let tr = b.sub_ty(Ty::F32, cyr, syi);
    let cyi = b.mul_ty(Ty::F32, c, yi);
    let syr = b.mul_ty(Ty::F32, s, yr);
    let ti = b.add_ty(Ty::F32, cyi, syr);
    let or0 = b.add_ty(Ty::F32, xr, tr);
    let oi0 = b.add_ty(Ty::F32, xi, ti);
    let or1 = b.sub_ty(Ty::F32, xr, tr);
    let oi1 = b.sub_ty(Ty::F32, xi, ti);
    b.st_global(Ty::F32, are, 0, or0);
    b.st_global(Ty::F32, aim, 0, oi0);
    b.st_global(Ty::F32, bre, 0, or1);
    b.st_global(Ty::F32, bim, 0, oi1);
    b.assign_add(Ty::B32, v, total);
    b.bra(top);
    b.place(done);
    let k = b.build();

    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xff8);
    let re = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let im = data::alloc_f32_zero(&mut g, n);
    let mut launches = Vec::new();
    let mut span = 1u64;
    while span < n {
        launches.push(Launch::new(
            k.clone(),
            Dim3::d1((nthreads / 128) as u32),
            Dim3::d1(128),
            vec![re, im, span, half],
        ));
        span *= 2;
    }
    Workload {
        name: "FFT_PT",
        suite: "cuFFT",
        gmem: g,
        launches,
    }
}
