//! PolyBench workloads: 2DC, 2MM, 3DC, 3MM, ATA, BIC, FDT, GEM, GSM, MVT.

use crate::data;
use crate::patterns;
use crate::{Size, Workload};
use r2d2_sim::{Dim3, GlobalMem, Launch};

fn mm_dim(size: Size) -> u64 {
    match size {
        Size::Small => 32,
        Size::Full => 256,
    }
}

fn mm_k(size: Size) -> u64 {
    match size {
        Size::Small => 32,
        Size::Full => 64,
    }
}

fn mv_dim(size: Size) -> u64 {
    match size {
        Size::Small => 128,
        Size::Full => 2048,
    }
}

fn alloc_matrix(g: &mut GlobalMem, rng: &mut r2d2_sym::Rng, n: u64) -> u64 {
    data::alloc_f32(g, n * n, rng, -1.0, 1.0)
}

fn mm_launch(kernel: r2d2_isa::Kernel, a: u64, b: u64, c: u64, n: u64, k: u64) -> Launch {
    Launch::new(
        kernel,
        Dim3::d2((n / 16) as u32, (n / 16) as u32),
        Dim3::d2(16, 16),
        vec![a, b, c, n, k],
    )
}

/// 2DC: 3x3 2D convolution over a padded image.
pub fn conv2d(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 128u64;
    let h = 32 * f;
    let pitch = w + 2;
    let taps: &[(i64, i64, f32)] = &[
        (-1, -1, 0.05),
        (-1, 0, 0.1),
        (-1, 1, 0.05),
        (0, -1, 0.1),
        (0, 0, 0.4),
        (0, 1, 0.1),
        (1, -1, 0.05),
        (1, 0, 0.1),
        (1, 1, 0.05),
    ];
    let k = patterns::stencil2d("conv2d", taps);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x2dc);
    let input = data::alloc_f32(&mut g, pitch * (h + 2), &mut rng, -1.0, 1.0);
    let output = data::alloc_f32_zero(&mut g, pitch * (h + 2));
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![input, output, pitch],
    );
    Workload {
        name: "2DC",
        suite: "polybench",
        gmem: g,
        launches: vec![launch],
    }
}

/// 2MM: `E = (A x B) x D` as two dependent mat-muls.
pub fn mm2(size: Size) -> Workload {
    let n = mm_dim(size);
    let kd = mm_k(size);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x2313);
    let a = data::alloc_f32(&mut g, n * kd, &mut rng, -1.0, 1.0);
    let b = data::alloc_f32(&mut g, kd * n, &mut rng, -1.0, 1.0);
    let c = data::alloc_f32_zero(&mut g, n * n);
    let d = alloc_matrix(&mut g, &mut rng, n);
    let e = data::alloc_f32_zero(&mut g, n * n);
    let launches = vec![
        mm_launch(patterns::matmul("mm2_1"), a, b, c, n, kd),
        mm_launch(patterns::matmul("mm2_2"), c, d, e, n, n.min(2 * kd)),
    ];
    Workload {
        name: "2MM",
        suite: "polybench",
        gmem: g,
        launches,
    }
}

/// 3DC: 3D convolution (z-loop stencil).
pub fn conv3d(size: Size) -> Workload {
    let (w, h, planes) = match size {
        Size::Small => (64u64, 16u64, 6u64),
        Size::Full => (256, 64, 18),
    };
    let pitch = w + 2;
    let total = pitch * pitch * (planes + 2);
    let k = patterns::stencil3d("conv3d");
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x3dc);
    let input = data::alloc_f32(&mut g, total, &mut rng, -1.0, 1.0);
    let output = data::alloc_f32_zero(&mut g, total);
    let launch = Launch::new(
        k,
        Dim3::d2((w / 32) as u32, (h / 4) as u32),
        Dim3::d2(32, 4),
        vec![input, output, pitch, planes + 2],
    );
    Workload {
        name: "3DC",
        suite: "polybench",
        gmem: g,
        launches: vec![launch],
    }
}

/// 3MM: `G = (A x B) x (C x D)` as three mat-muls.
pub fn mm3(size: Size) -> Workload {
    let n = mm_dim(size);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x3313);
    let a = alloc_matrix(&mut g, &mut rng, n);
    let b = alloc_matrix(&mut g, &mut rng, n);
    let e = data::alloc_f32_zero(&mut g, n * n);
    let c = alloc_matrix(&mut g, &mut rng, n);
    let d = alloc_matrix(&mut g, &mut rng, n);
    let ff = data::alloc_f32_zero(&mut g, n * n);
    let out = data::alloc_f32_zero(&mut g, n * n);
    let kd = mm_k(size);
    let launches = vec![
        mm_launch(patterns::matmul("mm3_1"), a, b, e, n, kd),
        mm_launch(patterns::matmul("mm3_2"), c, d, ff, n, kd),
        mm_launch(patterns::matmul("mm3_3"), e, ff, out, n, kd),
    ];
    Workload {
        name: "3MM",
        suite: "polybench",
        gmem: g,
        launches,
    }
}

fn mv_launch(kernel: r2d2_isa::Kernel, a: u64, x: u64, y: u64, n: u64) -> Launch {
    Launch::new(
        kernel,
        Dim3::d1((n / 128) as u32),
        Dim3::d1(128),
        vec![a, x, y, n],
    )
}

/// ATA: `y = A^T (A x)` — row-walk then column-walk mat-vec.
pub fn atax(size: Size) -> Workload {
    let n = mv_dim(size);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xa7a);
    let a = alloc_matrix(&mut g, &mut rng, n);
    let x = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let tmp = data::alloc_f32_zero(&mut g, n);
    let y = data::alloc_f32_zero(&mut g, n);
    let launches = vec![
        mv_launch(patterns::matvec("atax_1", false), a, x, tmp, n),
        mv_launch(patterns::matvec("atax_2", true), a, tmp, y, n),
    ];
    Workload {
        name: "ATA",
        suite: "polybench",
        gmem: g,
        launches,
    }
}

/// BIC: BiCG — `q = A p` and `s = A^T r`.
pub fn bicg(size: Size) -> Workload {
    let n = mv_dim(size);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xb1c);
    let a = alloc_matrix(&mut g, &mut rng, n);
    let p = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let r = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let q = data::alloc_f32_zero(&mut g, n);
    let s = data::alloc_f32_zero(&mut g, n);
    let launches = vec![
        mv_launch(patterns::matvec("bicg_q", false), a, p, q, n),
        mv_launch(patterns::matvec("bicg_s", true), a, r, s, n),
    ];
    Workload {
        name: "BIC",
        suite: "polybench",
        gmem: g,
        launches,
    }
}

/// FDT: FDTD-2D — three field-update sweeps with 1-D thread blocks (the
/// paper calls out FDT's one-dimensional blocks as an R2D2 win across
/// blocks).
pub fn fdtd2d(size: Size) -> Workload {
    let f = size.factor() as u64;
    let w = 64u64;
    let h = 32 * f;
    let pitch = w + 2;
    let n = pitch * (h + 2);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xfd7);
    let ex = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let ey = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let hz = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let grid = Dim3::d2((w / 64) as u32, h as u32);
    let block = Dim3::d2(64, 1);
    let mut launches = Vec::new();
    for _step in 0..2 {
        launches.push(Launch::new(
            patterns::stencil2d("fdtd_ey", &[(0, 0, 1.0), (-1, 0, -0.5)]),
            grid,
            block,
            vec![hz, ey, pitch],
        ));
        launches.push(Launch::new(
            patterns::stencil2d("fdtd_ex", &[(0, 0, 1.0), (0, -1, -0.5)]),
            grid,
            block,
            vec![hz, ex, pitch],
        ));
        launches.push(Launch::new(
            patterns::stencil2d("fdtd_hz", &[(0, 0, 0.6), (0, 1, -0.2), (1, 0, -0.2)]),
            grid,
            block,
            vec![ey, hz, pitch],
        ));
    }
    Workload {
        name: "FDT",
        suite: "polybench",
        gmem: g,
        launches,
    }
}

/// GEM: a single GEMM.
pub fn gemm(size: Size) -> Workload {
    let n = mm_dim(size);
    let kd = mm_k(size) * 2;
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x6e3);
    let a = data::alloc_f32(&mut g, n * kd, &mut rng, -1.0, 1.0);
    let b = data::alloc_f32(&mut g, kd * n, &mut rng, -1.0, 1.0);
    let c = data::alloc_f32_zero(&mut g, n * n);
    let launches = vec![mm_launch(patterns::matmul("gemm"), a, b, c, n, kd)];
    Workload {
        name: "GEM",
        suite: "polybench",
        gmem: g,
        launches,
    }
}

/// GSM: GESUMMV — `y = alpha*A*x + beta*B*x` via two mat-vec passes and a
/// streaming combine.
pub fn gesummv(size: Size) -> Workload {
    let n = mv_dim(size);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x65b);
    let a = alloc_matrix(&mut g, &mut rng, n);
    let b = alloc_matrix(&mut g, &mut rng, n);
    let x = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let t1 = data::alloc_f32_zero(&mut g, n);
    let t2 = data::alloc_f32_zero(&mut g, n);
    let y = data::alloc_f32_zero(&mut g, n);
    let launches = vec![
        mv_launch(patterns::matvec("gesummv_a", false), a, x, t1, n),
        mv_launch(patterns::matvec("gesummv_b", false), b, x, t2, n),
        Launch::new(
            patterns::streaming_map("gesummv_sum", 2, 1),
            Dim3::d1((n / 128) as u32),
            Dim3::d1(128),
            vec![t1, t2, y],
        ),
    ];
    Workload {
        name: "GSM",
        suite: "polybench",
        gmem: g,
        launches,
    }
}

/// MVT: `x1 += A y1; x2 += A^T y2` as two mat-vec passes.
pub fn mvt(size: Size) -> Workload {
    let n = mv_dim(size);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x347);
    let a = alloc_matrix(&mut g, &mut rng, n);
    let y1 = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let y2 = data::alloc_f32(&mut g, n, &mut rng, -1.0, 1.0);
    let x1 = data::alloc_f32_zero(&mut g, n);
    let x2 = data::alloc_f32_zero(&mut g, n);
    let launches = vec![
        mv_launch(patterns::matvec("mvt_1", false), a, y1, x1, n),
        mv_launch(patterns::matvec("mvt_2", true), a, y2, x2, n),
    ];
    Workload {
        name: "MVT",
        suite: "polybench",
        gmem: g,
        launches,
    }
}
