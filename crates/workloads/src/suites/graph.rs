//! graphBig workloads: CCMP, KCR, SSSP.

use crate::data;
use crate::patterns::{self, GraphOp};
use crate::{Size, Workload};
use r2d2_sim::{Dim3, GlobalMem, Launch};

fn graph_size(size: Size) -> u64 {
    // Graphs are the slowest workloads to simulate per instruction
    // (divergent neighbor loops); cap their growth.
    8192 * size.factor().min(16) as u64
}

/// CCMP: connected components by iterative label minimization,
/// double-buffered so atomic-min results are execution-order independent.
pub fn ccmp(size: Size) -> Workload {
    let nverts = graph_size(size);
    let k = patterns::csr_kernel("ccmp_step", GraphOp::LabelMin);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0xcc);
    let (rp, ci, _) = data::alloc_csr(&mut g, nverts, nverts, 5, &mut rng);
    let la = g.alloc(nverts * 4);
    let lb = g.alloc(nverts * 4);
    for i in 0..nverts {
        g.write_i32(la, i, i as i32);
        g.write_i32(lb, i, i as i32);
    }
    let grid = Dim3::d1(nverts.div_ceil(256) as u32);
    let launches = (0..3)
        .map(|it| {
            let (src, dst) = if it % 2 == 0 { (la, lb) } else { (lb, la) };
            Launch::new(
                k.clone(),
                grid,
                Dim3::d1(256),
                vec![rp, ci, src, dst, nverts, 0],
            )
        })
        .collect();
    Workload {
        name: "CCMP",
        suite: "graphBig",
        gmem: g,
        launches,
    }
}

/// KCR: k-core decomposition — count neighbors above the degree threshold.
pub fn kcore(size: Size) -> Workload {
    let nverts = graph_size(size);
    let k = patterns::csr_kernel("kcore_count", GraphOp::CountActive);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x6c);
    let (rp, ci, _) = data::alloc_csr(&mut g, nverts, nverts, 6, &mut rng);
    let deg = data::alloc_i32(&mut g, nverts, &mut rng, 0, 8);
    let counts = data::alloc_i32_zero(&mut g, nverts);
    let grid = Dim3::d1(nverts.div_ceil(256) as u32);
    let launches = (2..5u64)
        .map(|kk| {
            Launch::new(
                k.clone(),
                grid,
                Dim3::d1(256),
                vec![rp, ci, counts, deg, nverts, kk],
            )
        })
        .collect();
    Workload {
        name: "KCR",
        suite: "graphBig",
        gmem: g,
        launches,
    }
}

/// SSSP: Bellman-Ford-style relaxation with atomic min — the paper's most
/// irregular case (R2D2 finds little linearity; overhead must stay small).
pub fn sssp(size: Size) -> Workload {
    let nverts = graph_size(size);
    let k = patterns::csr_kernel("sssp_relax", GraphOp::SsspRelax);
    let mut g = GlobalMem::new();
    let mut rng = data::rng(0x555);
    let (rp, ci, _) = data::alloc_csr(&mut g, nverts, nverts, 5, &mut rng);
    let da = g.alloc(nverts * 4);
    let db = g.alloc(nverts * 4);
    for i in 0..nverts {
        let v = if i == 0 { 0 } else { 1 << 20 };
        g.write_i32(da, i, v);
        g.write_i32(db, i, v);
    }
    let grid = Dim3::d1(nverts.div_ceil(256) as u32);
    let launches = (0..3)
        .map(|it| {
            let (src, dst) = if it % 2 == 0 { (da, db) } else { (db, da) };
            Launch::new(
                k.clone(),
                grid,
                Dim3::d1(256),
                vec![rp, ci, src, dst, nverts, 0],
            )
        })
        .collect();
    Workload {
        name: "SSSP",
        suite: "graphBig",
        gmem: g,
        launches,
    }
}
