//! Shared kernel-structure emitters.
//!
//! Each Table 2 application reduces to a handful of address-generation
//! archetypes (streaming maps, mat-mul/mat-vec loops, stencils, CSR graph
//! traversals, butterflies, ...). The suite modules compose these emitters
//! with app-specific dimensions, array counts and parameters.

use r2d2_isa::{AtomOp, CmpOp, Kernel, KernelBuilder, Operand, Reg, SfuOp, Ty};

/// Emit the full per-array address chain real PTX produces for `arr[idx]`:
/// `ld.param` + `cvt` + `shl` + `add` every time (paper Fig. 3 — compilers
/// re-derive each array's address from the shared index registers rather
/// than CSE-ing one byte offset across arrays).
pub(crate) fn gaddr(b: &mut KernelBuilder, param: usize, idx: Reg, scale_log2: u32) -> Reg {
    let p = b.ld_param(param);
    let off = b.shl_imm_wide(idx, scale_log2);
    b.add_wide(p, off)
}

/// `out[i] = fold(in_0[i], ..., in_{k-1}[i])` with `extra_flops` extra mads.
///
/// Params: `[in_0, .., in_{k-1}, out]`. One thread per element.
pub fn streaming_map(name: &str, inputs: usize, extra_flops: usize) -> Kernel {
    let mut b = KernelBuilder::new(name, inputs + 1);
    let i = b.global_tid_x();
    let mut acc: Option<Reg> = None;
    for k in 0..inputs {
        let a = gaddr(&mut b, k, i, 2);
        let v = b.ld_global(Ty::F32, a, 0);
        acc = Some(match acc {
            None => v,
            Some(prev) => b.add_ty(Ty::F32, prev, v),
        });
    }
    let mut acc = acc.expect("at least one input");
    for f in 0..extra_flops {
        let c = b.fimm32(1.0 + f as f32 * 0.25);
        acc = b.mad_ty(Ty::F32, acc, c, acc);
    }
    let ao = gaddr(&mut b, inputs, i, 2);
    b.st_global(Ty::F32, ao, 0, acc);
    b.build()
}

/// Dense mat-mul `C = A x B` with `A: N x K`, `B: K x N`, `C: N x N`; one
/// thread per output element, inner loop over `k` with pointer increments
/// (the paper's SGM loop-offset case).
///
/// Params: `[A, B, C, N, K]`. Launch with 2D blocks covering N x N.
pub fn matmul(name: &str) -> Kernel {
    let mut b = KernelBuilder::new(name, 5);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let col = b.mad(bx, ntx, tx);
    let row = b.mad(by, nty, ty);
    let n = b.ld_param32(3);
    let kdim = b.ld_param32(4);
    // aptr = A + row*K*4 ; bptr = B + col*4
    let rown = b.mul(row, kdim);
    let aoff = b.shl_imm_wide(rown, 2);
    let pa = b.ld_param(0);
    let aptr = b.add_wide(pa, aoff);
    let boff = b.shl_imm_wide(col, 2);
    let pb = b.ld_param(1);
    let bptr = b.add_wide(pb, boff);
    let nstride = b.shl_imm(n, 2); // 4*N byte stride, widened below
    let nstride_w = b.cvt_wide(nstride);
    let acc = b.fimm32(0.0);
    let k = b.imm32(0);
    let top = b.here_label();
    let av = b.ld_global(Ty::F32, aptr, 0);
    let bv = b.ld_global(Ty::F32, bptr, 0);
    let prod = b.mad_ty(Ty::F32, av, bv, acc);
    b.assign_mov(Ty::F32, acc, prod);
    b.assign_add(Ty::B64, aptr, Operand::Imm(4));
    b.assign_add(Ty::B64, bptr, nstride_w);
    b.assign_add(Ty::B32, k, Operand::Imm(1));
    let p = b.setp(CmpOp::Lt, Ty::B32, k, kdim);
    b.bra_if(p, true, top);
    let cidx = b.mad(row, n, col);
    let coff = b.shl_imm_wide(cidx, 2);
    let pc = b.ld_param(2);
    let cptr = b.add_wide(pc, coff);
    b.st_global(Ty::F32, cptr, 0, acc);
    b.build()
}

/// Tiled shared-memory mat-mul (16x16 tiles), the classic SGEMM shape with
/// `bar.sync` between tile loads.
///
/// Params: `[A, B, C, N]`. Launch with 16x16 blocks covering N x N;
/// `N` must be a multiple of 16.
pub fn matmul_tiled(name: &str) -> Kernel {
    const T: i64 = 16;
    let mut b = KernelBuilder::new(name, 4);
    b.shared_bytes((2 * T * T * 4) as u32);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let col0 = b.shl_imm(bx, 4);
    let col = b.add(col0, tx);
    let row0 = b.shl_imm(by, 4);
    let row = b.add(row0, ty);
    let n = b.ld_param32(3);
    let pa = b.ld_param(0);
    let pb = b.ld_param(1);
    // shared tile offsets for (ty, tx)
    let tidx = b.mad(ty, Operand::Imm(T), tx);
    let soff_a32 = b.shl_imm(tidx, 2);
    let soff_a = b.cvt_wide(soff_a32);
    let soff_b = b.add_wide(soff_a, Operand::Imm(T * T * 4));
    let acc = b.fimm32(0.0);
    let t = b.imm32(0);
    let top = b.here_label();
    // load A[row][t*16+tx] and B[t*16+ty][col] into shared
    let t16 = b.shl_imm(t, 4);
    let acol = b.add(t16, tx);
    let aidx = b.mad(row, n, acol);
    let aoff = b.shl_imm_wide(aidx, 2);
    let aaddr = b.add_wide(pa, aoff);
    let av = b.ld_global(Ty::F32, aaddr, 0);
    b.st_shared(Ty::F32, soff_a, 0, av);
    let brow = b.add(t16, ty);
    let bidx = b.mad(brow, n, col);
    let boff = b.shl_imm_wide(bidx, 2);
    let baddr = b.add_wide(pb, boff);
    let bv = b.ld_global(Ty::F32, baddr, 0);
    b.st_shared(Ty::F32, soff_b, 0, bv);
    b.bar();
    // inner product over the tile (unrolled)
    let tyrow32 = b.shl_imm(ty, 2 + 4); // ty*16*4 bytes
    let tyrow = b.cvt_wide(tyrow32);
    let txcol32 = b.shl_imm(tx, 2);
    let txcol0 = b.cvt_wide(txcol32);
    let txcol = b.add_wide(txcol0, Operand::Imm(T * T * 4));
    for kk in 0..T {
        let a = b.ld_shared(Ty::F32, tyrow, kk * 4);
        let bb_ = b.ld_shared(Ty::F32, txcol, kk * T * 4);
        let r = b.mad_ty(Ty::F32, a, bb_, acc);
        b.assign_mov(Ty::F32, acc, r);
    }
    b.bar();
    b.assign_add(Ty::B32, t, Operand::Imm(1));
    let ntiles = b.shr_imm(Ty::B32, n, 4);
    let p = b.setp(CmpOp::Lt, Ty::B32, t, ntiles);
    b.bra_if(p, true, top);
    let cidx = b.mad(row, n, col);
    let coff = b.shl_imm_wide(cidx, 2);
    let pcp = b.ld_param(2);
    let cptr = b.add_wide(pcp, coff);
    b.st_global(Ty::F32, cptr, 0, acc);
    b.build()
}

/// Mat-vec `y = A x` (rows x cols). `trans` walks A column-wise
/// (stride = cols) like `atax`/`mvt` transposed passes.
///
/// Params: `[A, x, y, cols]`. One thread per row (or per column when
/// `trans`).
pub fn matvec(name: &str, trans: bool) -> Kernel {
    let mut b = KernelBuilder::new(name, 4);
    let i = b.global_tid_x();
    let cols = b.ld_param32(3);
    let pa = b.ld_param(0);
    let (aptr, stride) = if trans {
        // column walk: A + i*4, stride cols*4
        let off = b.shl_imm_wide(i, 2);
        let p = b.add_wide(pa, off);
        let s32 = b.shl_imm(cols, 2);
        let s = b.cvt_wide(s32);
        (p, s)
    } else {
        // row walk: A + i*cols*4, stride 4
        let icols = b.mul(i, cols);
        let off = b.shl_imm_wide(icols, 2);
        let p = b.add_wide(pa, off);
        let s = b.imm64(4);
        (p, s)
    };
    let px = b.ld_param(1);
    let xptr = b.fresh();
    b.assign_mov(Ty::B64, xptr, px);
    let acc = b.fimm32(0.0);
    let k = b.imm32(0);
    let top = b.here_label();
    let av = b.ld_global(Ty::F32, aptr, 0);
    let xv = b.ld_global(Ty::F32, xptr, 0);
    let r = b.mad_ty(Ty::F32, av, xv, acc);
    b.assign_mov(Ty::F32, acc, r);
    b.assign_add(Ty::B64, aptr, stride);
    b.assign_add(Ty::B64, xptr, Operand::Imm(4));
    b.assign_add(Ty::B32, k, Operand::Imm(1));
    let p = b.setp(CmpOp::Lt, Ty::B32, k, cols);
    b.bra_if(p, true, top);
    let yoff = b.shl_imm_wide(i, 2);
    let py = b.ld_param(2);
    let yptr = b.add_wide(py, yoff);
    b.st_global(Ty::F32, yptr, 0, acc);
    b.build()
}

/// 2D stencil over a padded grid: `out[y][x] = sum_k w_k * in[y+dy][x+dx]`.
/// The taps are constant offsets from one shared linear address — the
/// paper's Fig. 8 CFD pattern (one LR group, many `%cr` offsets).
///
/// Params: `[in, out, pitch]`. Interior is `W x H`; the arrays are padded by
/// one element on every side with `pitch = W + 2`. Launch 2D blocks over
/// W x H.
pub fn stencil2d(name: &str, taps: &[(i64, i64, f32)]) -> Kernel {
    let mut b = KernelBuilder::new(name, 3);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pitch = b.ld_param32(2);
    let x1 = b.add(x, Operand::Imm(1));
    let y1 = b.add(y, Operand::Imm(1));
    let idx = b.mad(y1, pitch, x1);
    let off = b.shl_imm_wide(idx, 2);
    let pin = b.ld_param(0);
    let base = b.add_wide(pin, off);
    // The tap byte offsets are only known at launch (pitch is a parameter),
    // so fold dy*pitch into index math per tap: addr = base + (dy*pitch+dx)*4.
    let mut acc = b.fimm32(0.0);
    for &(dy, dx, w) in taps {
        let v = if dy == 0 {
            b.ld_global(Ty::F32, base, dx * 4)
        } else {
            let dpitch = b.mul(pitch, Operand::Imm(dy));
            let delta = b.add(dpitch, Operand::Imm(dx));
            let dw32 = b.shl_imm(delta, 2);
            let dw = b.cvt_wide(dw32);
            let addr = b.add_wide(base, dw);
            b.ld_global(Ty::F32, addr, 0)
        };
        let wc = b.fimm32(w);
        acc = b.mad_ty(Ty::F32, v, wc, acc);
    }
    let pout = b.ld_param(1);
    let obase = b.add_wide(pout, off);
    b.st_global(Ty::F32, obase, 0, acc);
    b.build()
}

/// 3D 7-point stencil: 2D block over (x, y), loop over z. The paper's STC /
/// LPS / 3DC shape (register-heavy, z-loop with plane-stride pointer bumps).
///
/// Params: `[in, out, pitch, planes]` with plane stride `pitch*pitch` and a
/// one-element halo in x/y/z.
pub fn stencil3d(name: &str) -> Kernel {
    let mut b = KernelBuilder::new(name, 4);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pitch = b.ld_param32(2);
    let planes = b.ld_param32(3);
    let plane = b.mul(pitch, pitch);
    let x1 = b.add(x, Operand::Imm(1));
    let y1 = b.add(y, Operand::Imm(1));
    let yrow = b.mad(y1, pitch, x1);
    let idx0 = b.add(yrow, plane); // z = 1
    let off = b.shl_imm_wide(idx0, 2);
    let pin = b.ld_param(0);
    let pout = b.ld_param(1);
    let iptr = b.add_wide(pin, off);
    let optr = b.add_wide(pout, off);
    let pstride32 = b.shl_imm(plane, 2);
    let pstride = b.cvt_wide(pstride32);
    let prow32 = b.shl_imm(pitch, 2);
    let prow = b.cvt_wide(prow32);
    let z = b.imm32(1);
    let top = b.here_label();
    let c = b.ld_global(Ty::F32, iptr, 0);
    let e = b.ld_global(Ty::F32, iptr, 4);
    let w = b.ld_global(Ty::F32, iptr, -4);
    // north/south need runtime pitch stride
    let naddr = b.add_wide(iptr, prow);
    let nn = b.ld_global(Ty::F32, naddr, 0);
    let saddr = b.sub_ty(Ty::B64, iptr, prow);
    let ss = b.ld_global(Ty::F32, saddr, 0);
    let uaddr = b.add_wide(iptr, pstride);
    let uu = b.ld_global(Ty::F32, uaddr, 0);
    let daddr = b.sub_ty(Ty::B64, iptr, pstride);
    let dd = b.ld_global(Ty::F32, daddr, 0);
    let s1 = b.add_ty(Ty::F32, e, w);
    let s2 = b.add_ty(Ty::F32, nn, ss);
    let s3 = b.add_ty(Ty::F32, uu, dd);
    let s4 = b.add_ty(Ty::F32, s1, s2);
    let s5 = b.add_ty(Ty::F32, s3, s4);
    let wc = b.fimm32(1.0 / 6.0);
    let c2 = b.fimm32(0.5);
    let part = b.mul_ty(Ty::F32, s5, wc);
    let res = b.mad_ty(Ty::F32, c, c2, part);
    b.st_global(Ty::F32, optr, 0, res);
    b.assign_add(Ty::B64, iptr, pstride);
    b.assign_add(Ty::B64, optr, pstride);
    b.assign_add(Ty::B32, z, Operand::Imm(1));
    let pm1 = b.sub(planes, Operand::Imm(1));
    let p = b.setp(CmpOp::Lt, Ty::B32, z, pm1);
    b.bra_if(p, true, top);
    b.build()
}

/// CSR traversal body variants for the graph workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphOp {
    /// BFS level expansion: `level[n] = cur + 1` for unvisited neighbors.
    BfsLevel,
    /// SSSP relaxation: `atom.min(dist[n], dist[v] + w[e])`.
    SsspRelax,
    /// Connected components: `atom.min(label[n], label[v])`.
    LabelMin,
    /// K-core: count neighbors with `deg >= k` into `out[v]`.
    CountActive,
}

/// CSR graph kernel: one thread per vertex, guarded early exit for excess
/// threads, data-dependent inner loop over the adjacency list. This is the
/// paper's "irregular with regular address prologue" BFS case (Sec. 5.2).
///
/// Params: `[row_ptr, col_idx, a, b, nverts, k]` where `a`/`b` are the
/// per-variant arrays (level/dist/label/deg + aux) and `k` is a scalar
/// (current BFS level / k-core threshold / edge weight scale).
pub fn csr_kernel(name: &str, op: GraphOp) -> Kernel {
    let mut b = KernelBuilder::new(name, 6);
    let v = b.global_tid_x();
    let nv = b.ld_param32(4);
    let poob = b.setp(CmpOp::Ge, Ty::B32, v, nv);
    b.exit();
    b.guard_last(poob, true);
    let voff = b.shl_imm_wide(v, 2);
    let prp = b.ld_param(0);
    let rp_addr = b.add_wide(prp, voff);
    let start = b.ld_global(Ty::B32, rp_addr, 0);
    let end = b.ld_global(Ty::B32, rp_addr, 4);
    let pa = b.ld_param(2);
    let va_addr = b.add_wide(pa, voff);
    let myval = b.ld_global(Ty::B32, va_addr, 0);
    let kparam = b.ld_param32(5);

    // BFS/label only process "active" vertices this iteration.
    let skip = b.label();
    match op {
        GraphOp::BfsLevel => {
            let pn = b.setp(CmpOp::Ne, Ty::B32, myval, kparam);
            b.bra_if(pn, true, skip);
        }
        GraphOp::LabelMin | GraphOp::SsspRelax | GraphOp::CountActive => {}
    }

    let pci = b.ld_param(1);
    let e = b.fresh();
    b.assign_mov(Ty::B32, e, start);
    let count = b.imm32(0);
    let loop_top = b.here_label();
    let pdone = b.setp(CmpOp::Ge, Ty::B32, e, end);
    b.bra_if(pdone, true, skip);
    let eoff = b.shl_imm_wide(e, 2);
    let ci_addr = b.add_wide(pci, eoff);
    let n = b.ld_global(Ty::B32, ci_addr, 0);
    let noff32 = b.shl_imm(n, 2);
    let noff = b.cvt_wide(noff32);
    match op {
        GraphOp::BfsLevel => {
            let pb_ = b.ld_param(3);
            let lv_addr = b.add_wide(pb_, noff);
            let nl = b.ld_global(Ty::B32, lv_addr, 0);
            let punv = b.setp(CmpOp::Lt, Ty::B32, nl, Operand::Imm(0));
            let k1 = b.add(kparam, Operand::Imm(1));
            b.st_global(Ty::B32, lv_addr, 0, k1);
            b.guard_last(punv, true);
        }
        GraphOp::SsspRelax => {
            let wsc = b.and_ty(Ty::B32, n, Operand::Imm(7));
            let wgt = b.add(wsc, Operand::Imm(1));
            let cand = b.add(myval, wgt);
            let pb_ = b.ld_param(3);
            let d_addr = b.add_wide(pb_, noff);
            b.atom(AtomOp::Min, Ty::B32, d_addr, 0, cand);
        }
        GraphOp::LabelMin => {
            let pb_ = b.ld_param(3);
            let l_addr = b.add_wide(pb_, noff);
            b.atom(AtomOp::Min, Ty::B32, l_addr, 0, myval);
        }
        GraphOp::CountActive => {
            let pb_ = b.ld_param(3);
            let d_addr = b.add_wide(pb_, noff);
            let nd = b.ld_global(Ty::B32, d_addr, 0);
            let pact = b.setp(CmpOp::Ge, Ty::B32, nd, kparam);
            let one = b.selp(Ty::B32, Operand::Imm(1), Operand::Imm(0), pact);
            b.assign_add(Ty::B32, count, one);
        }
    }
    b.assign_add(Ty::B32, e, Operand::Imm(1));
    b.bra(loop_top);
    b.place(skip);
    if op == GraphOp::CountActive {
        b.st_global(Ty::B32, va_addr, 0, count);
    }
    b.build()
}

/// Fully-connected layer `y[o] = act(sum_i W[o*I+i]*x[i] + bias[o])`.
///
/// Params: `[W, x, bias, y, in_features]`. One thread per output feature.
pub fn fc_layer(name: &str, relu: bool) -> Kernel {
    let mut b = KernelBuilder::new(name, 5);
    let o = b.global_tid_x();
    let nin = b.ld_param32(4);
    let row = b.mul(o, nin);
    let woff = b.shl_imm_wide(row, 2);
    let pw = b.ld_param(0);
    let wptr = b.add_wide(pw, woff);
    let px = b.ld_param(1);
    let xptr = b.fresh();
    b.assign_mov(Ty::B64, xptr, px);
    let acc = b.fimm32(0.0);
    let k = b.imm32(0);
    let top = b.here_label();
    let wv = b.ld_global(Ty::F32, wptr, 0);
    let xv = b.ld_global(Ty::F32, xptr, 0);
    let r = b.mad_ty(Ty::F32, wv, xv, acc);
    b.assign_mov(Ty::F32, acc, r);
    b.assign_add(Ty::B64, wptr, Operand::Imm(4));
    b.assign_add(Ty::B64, xptr, Operand::Imm(4));
    b.assign_add(Ty::B32, k, Operand::Imm(1));
    let p = b.setp(CmpOp::Lt, Ty::B32, k, nin);
    b.bra_if(p, true, top);
    let ooff = b.shl_imm_wide(o, 2);
    let pbias = b.ld_param(2);
    let baddr = b.add_wide(pbias, ooff);
    let bias = b.ld_global(Ty::F32, baddr, 0);
    let mut out = b.add_ty(Ty::F32, acc, bias);
    if relu {
        let zero = b.fimm32(0.0);
        out = b.max_ty(Ty::F32, out, zero);
    }
    let py = b.ld_param(3);
    let yaddr = b.add_wide(py, ooff);
    b.st_global(Ty::F32, yaddr, 0, out);
    b.build()
}

/// Direct 3x3 single-channel convolution with weights in memory: the DNN
/// conv-layer shape (nine constant-offset taps from one base — a single LR
/// group — plus nine uniform weight loads).
///
/// Params: `[in, weights, out, pitch]` (padded input, pitch = W + 2).
pub fn conv3x3(name: &str) -> Kernel {
    let mut b = KernelBuilder::new(name, 4);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let ntx = b.ntid_x();
    let nty = b.ntid_y();
    let x = b.mad(bx, ntx, tx);
    let y = b.mad(by, nty, ty);
    let pitch = b.ld_param32(3);
    let x1 = b.add(x, Operand::Imm(1));
    let y1 = b.add(y, Operand::Imm(1));
    let idx = b.mad(y1, pitch, x1);
    let off = b.shl_imm_wide(idx, 2);
    let pin = b.ld_param(0);
    let base = b.add_wide(pin, off);
    let pw = b.ld_param(1);
    let mut acc = b.fimm32(0.0);
    for ky in -1i64..=1 {
        for kx in -1i64..=1 {
            let v = if ky == 0 {
                b.ld_global(Ty::F32, base, kx * 4)
            } else {
                let d = b.mul(pitch, Operand::Imm(ky));
                let d2 = b.add(d, Operand::Imm(kx));
                let dw32 = b.shl_imm(d2, 2);
                let dw = b.cvt_wide(dw32);
                let a = b.add_wide(base, dw);
                b.ld_global(Ty::F32, a, 0)
            };
            let widx = ((ky + 1) * 3 + (kx + 1)) * 4;
            let wv = b.ld_global(Ty::F32, pw, widx);
            acc = b.mad_ty(Ty::F32, v, wv, acc);
        }
    }
    let zero = b.fimm32(0.0);
    let relu = b.max_ty(Ty::F32, acc, zero);
    let pout = b.ld_param(2);
    let obase = b.add_wide(pout, off);
    b.st_global(Ty::F32, obase, 0, relu);
    b.build()
}

/// One radix-2 FFT butterfly stage on interleaved (re, im) f32 pairs; partner
/// selection uses XOR (non-linear), twiddles use the SFU — the mixed
/// regular/irregular profile of the cuFFT workload.
///
/// Params: `[re, im, span, n_half]`. One thread per butterfly.
pub fn fft_stage(name: &str) -> Kernel {
    let mut b = KernelBuilder::new(name, 4);
    let i = b.global_tid_x();
    let span = b.ld_param32(2);
    // lower index: j = (i & ~(span-1)) * 2 + (i & (span-1))
    let sm1 = b.sub(span, Operand::Imm(1));
    let lowbits = b.and_ty(Ty::B32, i, sm1);
    let notm = b.not_like(sm1);
    let hibits = b.and_ty(Ty::B32, i, notm);
    let hi2 = b.shl_imm(hibits, 1);
    let j = b.add(hi2, lowbits);
    let jp = b.add(j, span);
    let joff = b.shl_imm_wide(j, 2);
    let jpoff = b.shl_imm_wide(jp, 2);
    let pre = b.ld_param(0);
    let pim = b.ld_param(1);
    let are = b.add_wide(pre, joff);
    let aim = b.add_wide(pim, joff);
    let bre = b.add_wide(pre, jpoff);
    let bim = b.add_wide(pim, jpoff);
    let xr = b.ld_global(Ty::F32, are, 0);
    let xi = b.ld_global(Ty::F32, aim, 0);
    let yr = b.ld_global(Ty::F32, bre, 0);
    let yi = b.ld_global(Ty::F32, bim, 0);
    // twiddle angle = -pi * lowbits / span
    let lf = b.cvt(Ty::F32, lowbits);
    let sf = b.cvt(Ty::F32, span);
    let ratio = b.div_ty(Ty::F32, lf, sf);
    let mpi = b.fimm32(-std::f32::consts::PI);
    let ang = b.mul_ty(Ty::F32, ratio, mpi);
    let c = b.sfu(SfuOp::Cos, Ty::F32, ang);
    let s = b.sfu(SfuOp::Sin, Ty::F32, ang);
    // t = w * y
    let cyr = b.mul_ty(Ty::F32, c, yr);
    let syi = b.mul_ty(Ty::F32, s, yi);
    let tr = b.sub_ty(Ty::F32, cyr, syi);
    let cyi = b.mul_ty(Ty::F32, c, yi);
    let syr = b.mul_ty(Ty::F32, s, yr);
    let ti = b.add_ty(Ty::F32, cyi, syr);
    let or0 = b.add_ty(Ty::F32, xr, tr);
    let oi0 = b.add_ty(Ty::F32, xi, ti);
    let or1 = b.sub_ty(Ty::F32, xr, tr);
    let oi1 = b.sub_ty(Ty::F32, xi, ti);
    b.st_global(Ty::F32, are, 0, or0);
    b.st_global(Ty::F32, aim, 0, oi0);
    b.st_global(Ty::F32, bre, 0, or1);
    b.st_global(Ty::F32, bim, 0, oi1);
    b.build()
}

trait NotHelper {
    fn not_like(&mut self, r: Reg) -> Reg;
}

impl NotHelper for KernelBuilder {
    fn not_like(&mut self, r: Reg) -> Reg {
        let d = self.fresh();
        self.push(r2d2_isa::Instr::new(
            r2d2_isa::Op::Not,
            Ty::B32,
            Some(r2d2_isa::Dst::Reg(d)),
            vec![Operand::Reg(r)],
        ));
        d
    }
}

/// Histogram with atomics: `atom.add(hist[data[i] & (bins-1)], 1)`.
///
/// Params: `[data, hist, bins_mask]`.
pub fn histogram(name: &str) -> Kernel {
    let mut b = KernelBuilder::new(name, 3);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let pd = b.ld_param(0);
    let daddr = b.add_wide(pd, off);
    let v = b.ld_global(Ty::B32, daddr, 0);
    let mask = b.ld_param32(2);
    let bin = b.and_ty(Ty::B32, v, mask);
    let boff32 = b.shl_imm(bin, 2);
    let boff = b.cvt_wide(boff32);
    let ph = b.ld_param(1);
    let haddr = b.add_wide(ph, boff);
    let one = b.imm32(1);
    b.atom(AtomOp::Add, Ty::B32, haddr, 0, one);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_sim::{functional, Dim3, GlobalMem, Launch};

    #[test]
    fn matmul_computes_correct_product() {
        let k = matmul("mm");
        let n = 16u64;
        let mut g = GlobalMem::new();
        let a = g.alloc(n * n * 4);
        let bb = g.alloc(n * n * 4);
        let c = g.alloc(n * n * 4);
        for i in 0..n * n {
            g.write_f32(a, i, (i % 7) as f32);
            g.write_f32(bb, i, (i % 5) as f32);
        }
        let launch = Launch::new(k, Dim3::d2(1, 1), Dim3::d2(16, 16), vec![a, bb, c, n, n]);
        functional::run(&launch, &mut g, 10_000_000, None).unwrap();
        for row in 0..n {
            for col in 0..n {
                let mut want = 0.0f32;
                for kk in 0..n {
                    want += g.read_f32(a, row * n + kk) * g.read_f32(bb, kk * n + col);
                }
                let got = g.read_f32(c, row * n + col);
                assert!((got - want).abs() < 1e-3, "C[{row}][{col}] {got} != {want}");
            }
        }
    }

    #[test]
    fn tiled_matmul_matches_untiled() {
        let n = 32u64;
        let fill = |g: &mut GlobalMem| {
            let a = g.alloc(n * n * 4);
            let bb = g.alloc(n * n * 4);
            let c = g.alloc(n * n * 4);
            for i in 0..n * n {
                g.write_f32(a, i, ((i * 13) % 11) as f32 - 5.0);
                g.write_f32(bb, i, ((i * 7) % 9) as f32 - 4.0);
            }
            (a, bb, c)
        };
        let mut g1 = GlobalMem::new();
        let (a1, b1, c1) = fill(&mut g1);
        let l1 = Launch::new(
            matmul("mm"),
            Dim3::d2(2, 2),
            Dim3::d2(16, 16),
            vec![a1, b1, c1, n, n],
        );
        functional::run(&l1, &mut g1, 10_000_000, None).unwrap();
        let mut g2 = GlobalMem::new();
        let (a2, b2, c2) = fill(&mut g2);
        let l2 = Launch::new(
            matmul_tiled("mmt"),
            Dim3::d2(2, 2),
            Dim3::d2(16, 16),
            vec![a2, b2, c2, n],
        );
        functional::run(&l2, &mut g2, 10_000_000, None).unwrap();
        for i in 0..n * n {
            let x = g1.read_f32(c1, i);
            let y = g2.read_f32(c2, i);
            assert!((x - y).abs() < 1e-2, "i={i} {x} vs {y}");
        }
    }

    #[test]
    fn stencil2d_averages_neighbors() {
        let taps: &[(i64, i64, f32)] = &[
            (0, 0, 0.5),
            (0, 1, 0.125),
            (0, -1, 0.125),
            (1, 0, 0.125),
            (-1, 0, 0.125),
        ];
        let k = stencil2d("st", taps);
        let w = 16u64;
        let h = 8u64;
        let pitch = w + 2;
        let mut g = GlobalMem::new();
        let input = g.alloc(pitch * (h + 2) * 4);
        let output = g.alloc(pitch * (h + 2) * 4);
        for i in 0..pitch * (h + 2) {
            g.write_f32(input, i, 2.0);
        }
        let launch = Launch::new(
            k,
            Dim3::d2(1, 1),
            Dim3::d2(16, 8),
            vec![input, output, pitch],
        );
        functional::run(&launch, &mut g, 10_000_000, None).unwrap();
        // Uniform field: every interior output equals 2.0 * sum(w) = 2.0.
        for y in 0..h {
            for x in 0..w {
                let v = g.read_f32(output, (y + 1) * pitch + x + 1);
                assert!((v - 2.0).abs() < 1e-5, "({x},{y}) = {v}");
            }
        }
    }

    #[test]
    fn bfs_levels_expand() {
        // Path graph 0-1-2-3: level[0]=0; run 3 iterations.
        let k = csr_kernel("bfs", GraphOp::BfsLevel);
        let mut g = GlobalMem::new();
        let rp = g.alloc(5 * 4);
        let ci = g.alloc(6 * 4);
        // adjacency: 0:[1] 1:[0,2] 2:[1,3] 3:[2]
        for (i, v) in [0, 1, 3, 5, 6].iter().enumerate() {
            g.write_i32(rp, i as u64, *v);
        }
        for (i, v) in [1, 0, 2, 1, 3, 2].iter().enumerate() {
            g.write_i32(ci, i as u64, *v);
        }
        let level = g.alloc(4 * 4);
        for i in 0..4 {
            g.write_i32(level, i, if i == 0 { 0 } else { -1 });
        }
        for it in 0..3u64 {
            let launch = Launch::new(
                k.clone(),
                Dim3::d1(1),
                Dim3::d1(32),
                vec![rp, ci, level, level, 4, it],
            );
            functional::run(&launch, &mut g, 10_000_000, None).unwrap();
        }
        for i in 0..4 {
            assert_eq!(g.read_i32(level, i), i as i32, "level[{i}]");
        }
    }

    #[test]
    fn histogram_counts_everything() {
        let k = histogram("his");
        let mut g = GlobalMem::new();
        let n = 256u64;
        let data = g.alloc(n * 4);
        for i in 0..n {
            g.write_i32(data, i, (i * 37) as i32);
        }
        let hist = g.alloc(16 * 4);
        let launch = Launch::new(k, Dim3::d1(2), Dim3::d1(128), vec![data, hist, 15]);
        functional::run(&launch, &mut g, 10_000_000, None).unwrap();
        let total: i32 = (0..16).map(|i| g.read_i32(hist, i)).sum();
        assert_eq!(total, n as i32);
    }

    #[test]
    fn fc_layer_matches_reference() {
        let k = fc_layer("fc", true);
        let nin = 8u64;
        let nout = 32u64;
        let mut g = GlobalMem::new();
        let w = g.alloc(nout * nin * 4);
        let x = g.alloc(nin * 4);
        let bias = g.alloc(nout * 4);
        let y = g.alloc(nout * 4);
        for i in 0..nout * nin {
            g.write_f32(w, i, ((i % 13) as f32 - 6.0) * 0.1);
        }
        for i in 0..nin {
            g.write_f32(x, i, i as f32 * 0.3);
        }
        for i in 0..nout {
            g.write_f32(bias, i, -0.2);
        }
        let launch = Launch::new(k, Dim3::d1(1), Dim3::d1(32), vec![w, x, bias, y, nin]);
        functional::run(&launch, &mut g, 10_000_000, None).unwrap();
        for o in 0..nout {
            let mut want = -0.2f32;
            for i in 0..nin {
                want += g.read_f32(w, o * nin + i) * g.read_f32(x, i);
            }
            want = want.max(0.0);
            let got = g.read_f32(y, o);
            assert!((got - want).abs() < 1e-4, "y[{o}] {got} != {want}");
        }
    }

    #[test]
    fn fft_stage_preserves_energy() {
        // Parseval-ish smoke check across one full FFT of size 8.
        let n = 8u64;
        let mut g = GlobalMem::new();
        let re = g.alloc(n * 4);
        let im = g.alloc(n * 4);
        for i in 0..n {
            g.write_f32(re, i, (i as f32 * 0.7).sin());
        }
        let k = fft_stage("fft");
        let mut span = 1u64;
        while span < n {
            let launch = Launch::new(
                k.clone(),
                Dim3::d1(1),
                Dim3::d1((n / 2) as u32),
                vec![re, im, span, n / 2],
            );
            functional::run(&launch, &mut g, 10_000_000, None).unwrap();
            span *= 2;
        }
        let sum: f32 = (0..n)
            .map(|i| g.read_f32(re, i).powi(2) + g.read_f32(im, i).powi(2))
            .sum();
        assert!(sum.is_finite() && sum > 0.0);
    }
}
