#![warn(missing_docs)]
//! The benchmark zoo: synthetic reconstructions of the paper's Table 2
//! workloads, written in the `r2d2-isa` virtual ISA.
//!
//! The property R2D2 exploits lives entirely in each kernel's
//! *address-generation structure*: which fraction of its dynamic instructions
//! form linear combinations of built-in indices, how many arrays share index
//! shapes, how much control divergence interleaves, and how memory-intensive
//! the kernel is. Each workload here reproduces those characteristics of its
//! namesake (e.g. `BP` computes the paper's Fig. 2 expression
//! `(hid+1)*(HEIGHT*by+ty+1)+tx+1` verbatim), scaled so the cycle-level
//! simulator finishes in seconds. See `DESIGN.md` for the substitution
//! rationale.
//!
//! # Example
//!
//! ```
//! use r2d2_workloads::{build, Size};
//!
//! let w = build("BP", Size::Small).expect("backprop exists");
//! assert_eq!(w.suite, "rodinia");
//! assert!(!w.launches.is_empty());
//! ```

mod data;
mod patterns;
mod suites;

use r2d2_sim::{GlobalMem, Launch};

/// Workload scale: `Small` keeps unit tests fast; `Full` is what the figure
/// harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// Tiny inputs for tests.
    Small,
    /// Evaluation-sized inputs for the bench harness.
    Full,
}

impl Size {
    /// A generic multiplier used by workload builders.
    pub fn factor(self) -> u32 {
        match self {
            Size::Small => 1,
            Size::Full => 64,
        }
    }
}

/// A ready-to-run workload: initialized device memory plus one or more kernel
/// launches executed back to back (sharing `gmem`).
#[derive(Debug, Clone)]
pub struct Workload {
    /// Table 2 abbreviation (e.g. `"BP"`).
    pub name: &'static str,
    /// Table 2 suite (e.g. `"rodinia"`).
    pub suite: &'static str,
    /// Initialized device memory. Clone it per machine-model run.
    pub gmem: GlobalMem,
    /// Kernel launches, in order.
    pub launches: Vec<Launch>,
}

/// `(abbreviation, suite)` for every implemented workload, in Table 2 order.
pub const NAMES: &[(&str, &str)] = &[
    ("LIB", "ispass"),
    ("LPS", "ispass"),
    ("RAY", "ispass"),
    ("HIS", "parboil"),
    ("MRG", "parboil"),
    ("MRQ", "parboil"),
    ("SAD", "parboil"),
    ("SGM", "parboil"),
    ("SPM", "parboil"),
    ("STC", "parboil"),
    ("2DC", "polybench"),
    ("2MM", "polybench"),
    ("3DC", "polybench"),
    ("3MM", "polybench"),
    ("ATA", "polybench"),
    ("BIC", "polybench"),
    ("FDT", "polybench"),
    ("GEM", "polybench"),
    ("GSM", "polybench"),
    ("MVT", "polybench"),
    ("BFS", "rodinia"),
    ("BP", "rodinia"),
    ("BTR", "rodinia"),
    ("CFD", "rodinia"),
    ("DWT", "rodinia"),
    ("GAS", "rodinia"),
    ("HSP", "rodinia"),
    ("HTW", "rodinia"),
    ("KM", "rodinia"),
    ("LMD", "rodinia"),
    ("LUD", "rodinia"),
    ("MUM", "rodinia"),
    ("NN", "rodinia"),
    ("PTH", "rodinia"),
    ("SRAD1", "rodinia"),
    ("SRAD2", "rodinia"),
    ("CCMP", "graphBig"),
    ("KCR", "graphBig"),
    ("SSSP", "graphBig"),
    ("FFT", "cuFFT"),
    ("FFT_PT", "cuFFT"),
    ("RES", "Nebula"),
    ("VGG", "Nebula"),
];

/// Build one workload by its Table 2 abbreviation.
///
/// Kernels run through the compile-time instruction scheduler
/// ([`r2d2_isa::schedule`]) exactly as `nvcc` software-pipelines the original
/// benchmarks — loads hoist above their uses so warp-level in-order issue can
/// overlap memory latencies.
pub fn build(name: &str, size: Size) -> Option<Workload> {
    let mut w = build_raw(name, size)?;
    for l in &mut w.launches {
        l.kernel = r2d2_isa::schedule(&l.kernel);
    }
    Some(w)
}

fn build_raw(name: &str, size: Size) -> Option<Workload> {
    Some(match name {
        "LIB" => suites::ispass::lib(size),
        "LPS" => suites::ispass::lps(size),
        "RAY" => suites::ispass::ray(size),
        "HIS" => suites::parboil::histo(size),
        "MRG" => suites::parboil::mri_gridding(size),
        "MRQ" => suites::parboil::mri_q(size),
        "SAD" => suites::parboil::sad(size),
        "SGM" => suites::parboil::sgemm(size),
        "SPM" => suites::parboil::spmv(size),
        "STC" => suites::parboil::stencil(size),
        "2DC" => suites::polybench::conv2d(size),
        "2MM" => suites::polybench::mm2(size),
        "3DC" => suites::polybench::conv3d(size),
        "3MM" => suites::polybench::mm3(size),
        "ATA" => suites::polybench::atax(size),
        "BIC" => suites::polybench::bicg(size),
        "FDT" => suites::polybench::fdtd2d(size),
        "GEM" => suites::polybench::gemm(size),
        "GSM" => suites::polybench::gesummv(size),
        "MVT" => suites::polybench::mvt(size),
        "BFS" => suites::rodinia::bfs(size),
        "BP" => suites::rodinia::backprop(size),
        "BTR" => suites::rodinia::btree(size),
        "CFD" => suites::rodinia::cfd(size),
        "DWT" => suites::rodinia::dwt2d(size),
        "GAS" => suites::rodinia::gaussian(size),
        "HSP" => suites::rodinia::hotspot(size),
        "HTW" => suites::rodinia::heartwall(size),
        "KM" => suites::rodinia::kmeans(size),
        "LMD" => suites::rodinia::lavamd(size),
        "LUD" => suites::rodinia::lud(size),
        "MUM" => suites::rodinia::mummer(size),
        "NN" => suites::rodinia::nn(size),
        "PTH" => suites::rodinia::pathfinder(size),
        "SRAD1" => suites::rodinia::srad1(size),
        "SRAD2" => suites::rodinia::srad2(size),
        "CCMP" => suites::graph::ccmp(size),
        "KCR" => suites::graph::kcore(size),
        "SSSP" => suites::graph::sssp(size),
        "FFT" => suites::fft::fft(size),
        "FFT_PT" => suites::fft::fft_pt(size),
        "RES" => suites::dnn::resnet(size),
        "VGG" => suites::dnn::vgg(size),
        // Micro workloads: resolvable ids, deliberately NOT in `NAMES` (the
        // zoo sweeps and figure scripts never pick them up by accident).
        "vecadd" => suites::micro::vecadd(size),
        "saxpy" => suites::micro::saxpy(size),
        _ => return None,
    })
}

/// Build every workload.
pub fn all(size: Size) -> Vec<Workload> {
    NAMES.iter().map(|(n, _)| build(n, size).unwrap()).collect()
}

/// Resolve an extended workload id to a built workload. Accepts every
/// Table 2 abbreviation from [`NAMES`], plus `"BP@n<log>"` for the Table 3
/// scaled backprop (`2^log` input nodes, `log` in `1..=16`). These ids are
/// the stable registry keys the experiment harness hashes into cache keys,
/// so renaming one orphans its cached results.
pub fn resolve(id: &str, size: Size) -> Option<Workload> {
    if let Some(log) = id.strip_prefix("BP@n") {
        let log: u32 = log.parse().ok()?;
        if !(1..=16).contains(&log) {
            return None;
        }
        Some(backprop_scaled(log))
    } else {
        build(id, size)
    }
}

/// Whether `id` names something [`resolve`] can build — without building it
/// (some workloads construct megabytes of input data). Cheap enough to
/// validate ids at submission time, e.g. in `r2d2-serve`'s `POST /jobs`.
pub fn is_valid_id(id: &str) -> bool {
    if let Some(log) = id.strip_prefix("BP@n") {
        return log.parse::<u32>().is_ok_and(|l| (1..=16).contains(&l));
    }
    NAMES.iter().any(|(n, _)| *n == id) || matches!(id, "vecadd" | "saxpy")
}

/// Backprop with a configurable number of input nodes (`2^log_nodes`) for the
/// Table 3 blocks-per-grid sensitivity study.
pub fn backprop_scaled(log_nodes: u32) -> Workload {
    let mut w = suites::rodinia::backprop_with_nodes(1 << log_nodes);
    for l in &mut w.launches {
        l.kernel = r2d2_isa::schedule(&l.kernel);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_builds_and_validates() {
        for (name, suite) in NAMES {
            let w = build(name, Size::Small).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(w.suite, *suite);
            assert!(!w.launches.is_empty(), "{name} has no launches");
            for l in &w.launches {
                assert!(
                    l.kernel.validate().is_ok(),
                    "{name}/{}: {:?}",
                    l.kernel.name,
                    l.kernel.validate()
                );
                assert!(l.num_blocks() > 0);
                assert!(l.threads_per_block() > 0);
                assert!(l.threads_per_block() <= 1024);
            }
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(build("NOPE", Size::Small).is_none());
    }

    #[test]
    fn micro_ids_resolve_but_stay_out_of_the_zoo() {
        for id in ["vecadd", "saxpy"] {
            let w = resolve(id, Size::Small).unwrap_or_else(|| panic!("{id} missing"));
            assert_eq!(w.suite, "micro");
            assert!(!NAMES.iter().any(|(n, _)| *n == id));
            for l in &w.launches {
                assert!(l.kernel.validate().is_ok());
            }
        }
    }

    #[test]
    fn resolve_accepts_plain_and_scaled_ids() {
        assert!(resolve("BP", Size::Small).is_some());
        let w = resolve("BP@n4", Size::Small).unwrap();
        assert_eq!(w.name, "BP");
        for bad in ["BP@n", "BP@n0", "BP@n99", "BP@nx", "NOPE"] {
            assert!(
                resolve(bad, Size::Small).is_none(),
                "{bad:?} should not resolve"
            );
        }
    }

    #[test]
    fn full_size_scales_up() {
        let s = build("GEM", Size::Small).unwrap();
        let f = build("GEM", Size::Full).unwrap();
        let blocks = |w: &Workload| w.launches.iter().map(|l| l.num_blocks()).sum::<u64>();
        assert!(blocks(&f) > blocks(&s));
    }
}
