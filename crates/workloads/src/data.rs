//! Deterministic input-data generators.
//!
//! Randomness comes from the in-repo [`r2d2_sym::Rng`] (SplitMix64) rather
//! than the `rand` crate, keeping the default build dependency-free and the
//! generated inputs bit-stable across toolchains — the experiment harness
//! caches results by content, so input stability is part of the contract.

use r2d2_sim::GlobalMem;
use r2d2_sym::Rng;

/// A seeded RNG so every run sees identical inputs.
pub fn rng(seed: u64) -> Rng {
    Rng::new(seed)
}

/// Allocate and fill an `f32` array with uniform values in `[lo, hi)`.
pub fn alloc_f32(g: &mut GlobalMem, n: u64, rng: &mut Rng, lo: f32, hi: f32) -> u64 {
    let base = g.alloc(n * 4);
    for i in 0..n {
        g.write_f32(base, i, rng.gen_range(lo..hi));
    }
    base
}

/// Allocate a zeroed `f32` array.
pub fn alloc_f32_zero(g: &mut GlobalMem, n: u64) -> u64 {
    g.alloc(n * 4)
}

/// Allocate and fill an `i32` array with uniform values in `[lo, hi)`.
pub fn alloc_i32(g: &mut GlobalMem, n: u64, rng: &mut Rng, lo: i32, hi: i32) -> u64 {
    let base = g.alloc(n * 4);
    for i in 0..n {
        g.write_i32(base, i, rng.gen_range(lo..hi));
    }
    base
}

/// Allocate a zeroed `i32` array.
pub fn alloc_i32_zero(g: &mut GlobalMem, n: u64) -> u64 {
    g.alloc(n * 4)
}

/// A random sparse CSR matrix / graph: returns `(row_ptr, col_idx, nnz)`.
/// `row_ptr` has `rows + 1` entries; each row gets `[1, max_deg]` neighbors.
pub fn alloc_csr(
    g: &mut GlobalMem,
    rows: u64,
    cols: u64,
    max_deg: u64,
    rng: &mut Rng,
) -> (u64, u64, u64) {
    let mut rp: Vec<i32> = Vec::with_capacity(rows as usize + 1);
    let mut ci: Vec<i32> = Vec::new();
    rp.push(0);
    for _ in 0..rows {
        let deg = rng.gen_range(1..=max_deg);
        for _ in 0..deg {
            ci.push(rng.gen_range(0..cols) as i32);
        }
        rp.push(ci.len() as i32);
    }
    let row_ptr = g.alloc((rows + 1) * 4);
    for (i, v) in rp.iter().enumerate() {
        g.write_i32(row_ptr, i as u64, *v);
    }
    let nnz = ci.len() as u64;
    let col_idx = g.alloc(nnz.max(1) * 4);
    for (i, v) in ci.iter().enumerate() {
        g.write_i32(col_idx, i as u64, *v);
    }
    (row_ptr, col_idx, nnz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        let x: f64 = a.f64();
        let y: f64 = b.f64();
        assert_eq!(x, y);
    }

    #[test]
    fn csr_is_well_formed() {
        let mut g = GlobalMem::new();
        let mut r = rng(1);
        let (rp, ci, nnz) = alloc_csr(&mut g, 10, 10, 4, &mut r);
        assert_eq!(g.read_i32(rp, 0), 0);
        assert_eq!(g.read_i32(rp, 10) as u64, nnz);
        for e in 0..nnz {
            let c = g.read_i32(ci, e);
            assert!((0..10).contains(&c));
        }
    }
}
