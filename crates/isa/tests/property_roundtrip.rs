//! Property: any kernel built from random (valid) instructions survives a
//! Display -> parse round trip bit-exactly, and the CFG invariants hold.
//! Cases come from the in-repo seeded PRNG, so the suite is deterministic
//! and dependency-free.

use r2d2_isa::{
    parse_kernel, Cfg, CmpOp, Dst, Instr, Kernel, MemOffset, MemRef, MemSpace, Op, Operand,
    PredReg, Reg, SfuOp, Ty,
};
use r2d2_sym::Rng;

const CASES: usize = 192;

fn gen_ty(r: &mut Rng) -> Ty {
    *r.choose(&[Ty::B32, Ty::B64, Ty::F32, Ty::F64])
}

fn gen_operand(r: &mut Rng) -> Operand {
    match r.below(5) {
        0 => Operand::Reg(Reg(r.gen_range(0u16..16))),
        1 => Operand::Imm(r.gen_range(-1000i64..1000)),
        2 => Operand::Tr(r.gen_range(0u16..4)),
        3 => Operand::Cr(r.gen_range(0u16..4)),
        _ => Operand::Lr(r.gen_range(0u16..4)),
    }
}

fn gen_instr(r: &mut Rng) -> Instr {
    match r.below(8) {
        0 | 1 => {
            // binary ALU
            let op = *r.choose(&[
                Op::Add,
                Op::Sub,
                Op::Mul,
                Op::Shl,
                Op::Shr,
                Op::And,
                Op::Or,
                Op::Xor,
                Op::Min,
                Op::Max,
                Op::Div,
                Op::Rem,
            ]);
            let d = Reg(r.gen_range(0u16..16));
            let (a, b) = (gen_operand(r), gen_operand(r));
            Instr::new(op, gen_ty(r), Some(Dst::Reg(d)), vec![a, b])
        }
        2 => {
            // unary
            let op = *r.choose(&[Op::Mov, Op::Cvt, Op::Not, Op::Abs, Op::Neg]);
            let d = Reg(r.gen_range(0u16..16));
            let a = gen_operand(r);
            Instr::new(op, gen_ty(r), Some(Dst::Reg(d)), vec![a])
        }
        3 => {
            // sfu
            let s = *r.choose(&[
                SfuOp::Rcp,
                SfuOp::Sqrt,
                SfuOp::Rsqrt,
                SfuOp::Ex2,
                SfuOp::Lg2,
                SfuOp::Sin,
                SfuOp::Cos,
            ]);
            let d = Reg(r.gen_range(0u16..16));
            let a = gen_operand(r);
            Instr::new(Op::Sfu(s), Ty::F32, Some(Dst::Reg(d)), vec![a])
        }
        4 => {
            // mad
            let d = Reg(r.gen_range(0u16..16));
            let (a, b, c) = (gen_operand(r), gen_operand(r), gen_operand(r));
            Instr::new(Op::Mad, gen_ty(r), Some(Dst::Reg(d)), vec![a, b, c])
        }
        5 => {
            // setp
            let c = *r.choose(&[
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ]);
            let p = PredReg(r.gen_range(0u16..4));
            let (a, b) = (gen_operand(r), gen_operand(r));
            Instr::new(Op::Setp(c), gen_ty(r), Some(Dst::Pred(p)), vec![a, b])
        }
        6 => {
            // memory: ld or st
            let sp = *r.choose(&[MemSpace::Global, MemSpace::Shared]);
            let base = Reg(r.gen_range(0u16..16));
            let off = r.gen_range(-64i64..64);
            let mem = MemRef {
                base: Operand::Reg(base),
                offset: MemOffset::Imm(off),
            };
            if r.gen_bool() {
                let d = Reg(r.gen_range(0u16..16));
                Instr::new(Op::Ld(sp), gen_ty(r), Some(Dst::Reg(d)), vec![]).with_mem(mem)
            } else {
                let v = gen_operand(r);
                Instr::new(Op::St(sp), gen_ty(r), None, vec![v]).with_mem(mem)
            }
        }
        _ => {
            // param load
            let d = Reg(r.gen_range(0u16..16));
            let p = r.gen_range(0i64..4);
            Instr::new(
                Op::LdParam,
                Ty::B64,
                Some(Dst::Reg(d)),
                vec![Operand::Imm(p)],
            )
        }
    }
}

fn gen_kernel(r: &mut Rng) -> Kernel {
    let n = r.gen_range(1usize..24);
    let mut k = Kernel::new("prop", 4);
    for _ in 0..n {
        let mut i = gen_instr(r);
        if r.below(3) == 0 {
            i = i.with_guard(PredReg(r.gen_range(0u16..4)), r.gen_bool());
        }
        k.instrs.push(i);
    }
    // terminate
    k.instrs.push(Instr::new(Op::Exit, Ty::B32, None, vec![]));
    k
}

#[test]
fn display_parse_roundtrip() {
    let mut r = Rng::new(0x20d2d17);
    for _ in 0..CASES {
        let k = gen_kernel(&mut r);
        assert!(k.validate().is_ok(), "{:?}", k.validate());
        let text = k.to_string();
        let parsed = parse_kernel(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(k, parsed, "round-trip mismatch:\n{text}");
    }
}

#[test]
fn cfg_covers_all_instructions() {
    let mut r = Rng::new(0xcf6);
    for _ in 0..CASES {
        let k = gen_kernel(&mut r);
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.block_of.len(), k.instrs.len());
        for (pc, &b) in cfg.block_of.iter().enumerate() {
            assert!(cfg.blocks[b].start <= pc && pc < cfg.blocks[b].end);
        }
        // Every successor edge has a matching predecessor edge.
        for (bi, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                assert!(cfg.blocks[s].preds.contains(&bi));
            }
        }
    }
}

#[test]
fn num_regs_bounds_every_reference() {
    let mut r = Rng::new(0xb0a2d);
    for _ in 0..CASES {
        let k = gen_kernel(&mut r);
        let n = k.num_regs() as u16;
        for i in &k.instrs {
            if let Some(reg) = i.dst_reg() {
                assert!(reg.0 < n);
            }
            for reg in i.src_regs() {
                assert!(reg.0 < n);
            }
        }
    }
}
