//! Parser robustness: every malformed input must fail with a line-accurate
//! error, never panic.

use r2d2_isa::parse_kernel;

fn fails_at(src: &str, line: usize) {
    let e = parse_kernel(src).expect_err(&format!("should fail:\n{src}"));
    assert_eq!(e.line, line, "wrong line for: {e}");
}

#[test]
fn missing_header() {
    let e = parse_kernel("mov.b32 %r0, 1;").unwrap_err();
    assert!(e.to_string().contains("outside"));
}

#[test]
fn header_typos() {
    assert!(parse_kernel(".kernel k params=x {\n exit;\n}").is_err());
    assert!(parse_kernel(".kernel k bogus=3 {\n exit;\n}").is_err());
    assert!(
        parse_kernel(".kernel k params=1 {\n exit;\n}\n.kernel j params=0 {\n exit;\n}").is_err()
    );
}

#[test]
fn bad_mnemonics_and_operands() {
    fails_at(
        ".kernel k params=0 {\n frobnicate.b32 %r0, %r1;\n exit;\n}",
        2,
    );
    fails_at(
        ".kernel k params=0 {\n add.b32 %r0, %bogus, 1;\n exit;\n}",
        2,
    );
    fails_at(".kernel k params=0 {\n mov.b32 %r0, 12abc;\n exit;\n}", 2);
}

#[test]
fn missing_semicolon() {
    fails_at(".kernel k params=0 {\n mov.b32 %r0, 1\n exit;\n}", 2);
}

#[test]
fn bad_memrefs() {
    fails_at(
        ".kernel k params=1 {\n ld.global.f32 %r0, %r1;\n exit;\n}",
        2,
    );
    fails_at(
        ".kernel k params=1 {\n ld.param.b64 %r0, [Q0];\n exit;\n}",
        2,
    );
    fails_at(
        ".kernel k params=1 {\n ld.global.f32 %r0, [%r1+xyz];\n exit;\n}",
        2,
    );
}

#[test]
fn duplicate_and_unknown_labels() {
    fails_at(".kernel k params=0 {\nA:\nA:\n exit;\n}", 3);
    assert!(parse_kernel(".kernel k params=0 {\n bra NOWHERE;\n exit;\n}").is_err());
}

#[test]
fn setp_requires_predicate_destination() {
    fails_at(
        ".kernel k params=0 {\n setp.lt.b32 %r0, %r1, %r2;\n exit;\n}",
        2,
    );
}

#[test]
fn wrong_arity_is_rejected_by_validate() {
    // The parser accepts `add` with one source; validation rejects it.
    let k = parse_kernel(".kernel k params=0 {\n add.b32 %r0, %r1;\n exit;\n}").unwrap();
    assert!(k.validate().is_err());
}

#[test]
fn comments_and_whitespace_are_tolerated() {
    let src = r#"
.kernel k params=1 {
  // line comment
  mov.b32 %r0, %tid.x;  /* inline */ add.b32 %r1, %r0, 1;
  /* spanning
     nothing */
  exit;
}
"#;
    // block comments must be single-line in this assembler; the two-line one
    // above is rejected cleanly rather than panicking.
    let res = parse_kernel(src);
    assert!(res.is_err());
    let src_ok =
        ".kernel k params=1 {\n mov.b32 %r0, %tid.x; /* c */ add.b32 %r1, %r0, 1;\n exit;\n}";
    let k = parse_kernel(src_ok).unwrap();
    assert_eq!(k.instrs.len(), 3);
}

#[test]
fn empty_kernel_fails_validation_not_parsing() {
    let k = parse_kernel(".kernel k params=0 {\n}").unwrap();
    assert!(k.validate().is_err());
}
