//! Property: any kernel built from random (valid) instructions survives a
//! Display -> parse round trip bit-exactly, and the CFG invariants hold.

use proptest::prelude::*;
use r2d2_isa::{
    parse_kernel, Cfg, CmpOp, Dst, Instr, Kernel, MemOffset, MemRef, MemSpace, Op, Operand,
    PredReg, Reg, SfuOp, Ty,
};

fn ty_strategy() -> impl Strategy<Value = Ty> {
    prop_oneof![Just(Ty::B32), Just(Ty::B64), Just(Ty::F32), Just(Ty::F64)]
}

fn operand_strategy() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u16..16).prop_map(|r| Operand::Reg(Reg(r))),
        (-1000i64..1000).prop_map(Operand::Imm),
        (0u16..4).prop_map(Operand::Tr),
        (0u16..4).prop_map(Operand::Cr),
        (0u16..4).prop_map(Operand::Lr),
    ]
}

fn alu_strategy() -> impl Strategy<Value = Instr> {
    let binop = prop_oneof![
        Just(Op::Add),
        Just(Op::Sub),
        Just(Op::Mul),
        Just(Op::Shl),
        Just(Op::Shr),
        Just(Op::And),
        Just(Op::Or),
        Just(Op::Xor),
        Just(Op::Min),
        Just(Op::Max),
        Just(Op::Div),
        Just(Op::Rem),
    ];
    prop_oneof![
        // binary
        (binop, ty_strategy(), 0u16..16, operand_strategy(), operand_strategy()).prop_map(
            |(op, ty, d, a, b)| Instr::new(op, ty, Some(Dst::Reg(Reg(d))), vec![a, b])
        ),
        // unary
        (
            prop_oneof![Just(Op::Mov), Just(Op::Cvt), Just(Op::Not), Just(Op::Abs), Just(Op::Neg)],
            ty_strategy(),
            0u16..16,
            operand_strategy()
        )
            .prop_map(|(op, ty, d, a)| Instr::new(op, ty, Some(Dst::Reg(Reg(d))), vec![a])),
        // sfu
        (
            prop_oneof![
                Just(SfuOp::Rcp),
                Just(SfuOp::Sqrt),
                Just(SfuOp::Rsqrt),
                Just(SfuOp::Ex2),
                Just(SfuOp::Lg2),
                Just(SfuOp::Sin),
                Just(SfuOp::Cos)
            ],
            0u16..16,
            operand_strategy()
        )
            .prop_map(|(s, d, a)| Instr::new(Op::Sfu(s), Ty::F32, Some(Dst::Reg(Reg(d))), vec![a])),
        // mad / selp
        (ty_strategy(), 0u16..16, operand_strategy(), operand_strategy(), operand_strategy())
            .prop_map(|(ty, d, a, b, c)| Instr::new(Op::Mad, ty, Some(Dst::Reg(Reg(d))), vec![a, b, c])),
        // setp
        (
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Ne),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge)
            ],
            ty_strategy(),
            0u16..4,
            operand_strategy(),
            operand_strategy()
        )
            .prop_map(|(c, ty, p, a, b)| Instr::new(
                Op::Setp(c),
                ty,
                Some(Dst::Pred(PredReg(p))),
                vec![a, b]
            )),
        // memory
        (
            prop_oneof![Just(MemSpace::Global), Just(MemSpace::Shared)],
            ty_strategy(),
            0u16..16,
            0u16..16,
            -64i64..64
        )
            .prop_map(|(sp, ty, d, base, off)| Instr::new(
                Op::Ld(sp),
                ty,
                Some(Dst::Reg(Reg(d))),
                vec![]
            )
            .with_mem(MemRef { base: Operand::Reg(Reg(base)), offset: MemOffset::Imm(off) })),
        (
            prop_oneof![Just(MemSpace::Global), Just(MemSpace::Shared)],
            ty_strategy(),
            operand_strategy(),
            0u16..16,
            -64i64..64
        )
            .prop_map(|(sp, ty, v, base, off)| Instr::new(Op::St(sp), ty, None, vec![v]).with_mem(
                MemRef { base: Operand::Reg(Reg(base)), offset: MemOffset::Imm(off) }
            )),
        // param load
        (0u16..16, 0i64..4).prop_map(|(d, p)| Instr::new(
            Op::LdParam,
            Ty::B64,
            Some(Dst::Reg(Reg(d))),
            vec![Operand::Imm(p)]
        )),
    ]
}

fn guarded(i: Instr, g: Option<(u16, bool)>) -> Instr {
    match g {
        Some((p, s)) => i.with_guard(PredReg(p), s),
        None => i,
    }
}

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    proptest::collection::vec(
        (alu_strategy(), proptest::option::of((0u16..4, any::<bool>()))),
        1..24,
    )
    .prop_map(|instrs| {
        let mut k = Kernel::new("prop", 4);
        for (i, g) in instrs {
            k.instrs.push(guarded(i, g));
        }
        // terminate
        k.instrs.push(Instr::new(Op::Exit, Ty::B32, None, vec![]));
        k
    })
}

proptest! {
    #[test]
    fn display_parse_roundtrip(k in kernel_strategy()) {
        prop_assert!(k.validate().is_ok(), "{:?}", k.validate());
        let text = k.to_string();
        let parsed = parse_kernel(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(&k, &parsed, "round-trip mismatch:\n{}", text);
    }

    #[test]
    fn cfg_covers_all_instructions(k in kernel_strategy()) {
        let cfg = Cfg::build(&k);
        prop_assert_eq!(cfg.block_of.len(), k.instrs.len());
        for (pc, &b) in cfg.block_of.iter().enumerate() {
            prop_assert!(cfg.blocks[b].start <= pc && pc < cfg.blocks[b].end);
        }
        // Every successor edge has a matching predecessor edge.
        for (bi, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                prop_assert!(cfg.blocks[s].preds.contains(&bi));
            }
        }
    }

    #[test]
    fn num_regs_bounds_every_reference(k in kernel_strategy()) {
        let n = k.num_regs() as u16;
        for i in &k.instrs {
            if let Some(r) = i.dst_reg() {
                prop_assert!(r.0 < n);
            }
            for r in i.src_regs() {
                prop_assert!(r.0 < n);
            }
        }
    }
}
