//! Compile-time instruction scheduling (list scheduling per basic block).
//!
//! Real GPU compilers hoist independent loads above their uses so the
//! in-order warp front end can issue them back to back and overlap their
//! latencies (software pipelining). Kernels written naively with
//! `load; use; load; use` chains serialize one memory latency per pair.
//! This pass reorders instructions *within* each basic block, preserving
//! register and memory dependences, with loads given issue priority.
//!
//! The workload zoo applies it to every kernel, mirroring what `nvcc` does
//! to the benchmarks the paper measures.

use crate::cfg::Cfg;
use crate::instr::{Dst, Instr, MemOffset, MemSpace, Op, Operand};
use crate::kernel::Kernel;
use std::collections::HashMap;

/// Reorder instructions within basic blocks: independent loads float upward,
/// dependent arithmetic sinks. Control flow, stores, atomics and barriers
/// keep their relative order. Branch targets are remapped.
pub fn schedule(kernel: &Kernel) -> Kernel {
    let cfg = Cfg::build(kernel);
    let n = kernel.instrs.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for b in &cfg.blocks {
        schedule_block(kernel, b.start, b.end, &mut order);
    }
    debug_assert_eq!(order.len(), n);
    // old pc -> new pc
    let mut new_pc = vec![0u32; n];
    for (new, &old) in order.iter().enumerate() {
        new_pc[old] = new as u32;
    }
    let mut instrs: Vec<Instr> = order.iter().map(|&pc| kernel.instrs[pc].clone()).collect();
    for i in instrs.iter_mut() {
        if let Op::Bra(t) = i.op {
            i.op = Op::Bra(new_pc[t as usize]);
        }
    }
    Kernel {
        name: kernel.name.clone(),
        num_params: kernel.num_params,
        instrs,
        shared_bytes: kernel.shared_bytes,
    }
}

/// Key identifying a written location for dependence tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Loc {
    Reg(u16),
    Pred(u16),
    Tr(u16),
    Br(u16),
    Cr(u16),
}

fn dst_loc(d: &Dst) -> Loc {
    match d {
        Dst::Reg(r) => Loc::Reg(r.0),
        Dst::Pred(p) => Loc::Pred(p.0),
        Dst::Tr(t) => Loc::Tr(*t),
        Dst::Br(b) => Loc::Br(*b),
        Dst::Cr(c) => Loc::Cr(*c),
    }
}

fn src_locs(i: &Instr) -> Vec<Loc> {
    let mut out = Vec::with_capacity(4);
    let mut push_op = |o: &Operand| match o {
        Operand::Reg(r) => out.push(Loc::Reg(r.0)),
        Operand::Pred(p) => out.push(Loc::Pred(p.0)),
        Operand::Tr(t) => out.push(Loc::Tr(*t)),
        Operand::Br(b) => out.push(Loc::Br(*b)),
        Operand::Cr(c) => out.push(Loc::Cr(*c)),
        // %lr reads decompose into tr+br at execution, but for scheduling it
        // is enough that nothing in the same block writes those classes in
        // original kernels; treat as no-reg read.
        Operand::Lr(_) | Operand::Imm(_) | Operand::Special(_) => {}
    };
    for s in &i.srcs {
        push_op(s);
    }
    if let Some(m) = i.mem {
        push_op(&m.base);
        if let MemOffset::Cr(c) | MemOffset::CrImm(c, _) = m.offset {
            out.push(Loc::Cr(c));
        }
    }
    if let Some((p, _)) = i.guard {
        out.push(Loc::Pred(p.0));
    }
    out
}

fn is_load(i: &Instr) -> bool {
    matches!(i.op, Op::Ld(_))
}

/// `true` when the instruction pins program order against other memory ops.
fn mem_kind(i: &Instr) -> Option<(MemSpace, bool)> {
    match i.op {
        Op::Ld(s) => Some((s, false)),
        Op::St(s) => Some((s, true)),
        Op::Atom(_) => Some((MemSpace::Global, true)),
        _ => None,
    }
}

fn schedule_block(kernel: &Kernel, start: usize, end: usize, order: &mut Vec<usize>) {
    let len = end - start;
    if len <= 2 {
        order.extend(start..end);
        return;
    }
    // Build dependence edges: preds[i] = number of unscheduled predecessors.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); len];
    let mut npreds = vec![0usize; len];
    let edge = |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, npreds: &mut Vec<usize>| {
        if !succs[a].contains(&b) {
            succs[a].push(b);
            npreds[b] += 1;
        }
    };
    let mut last_write: HashMap<Loc, usize> = HashMap::new();
    let mut readers: HashMap<Loc, Vec<usize>> = HashMap::new();
    let mut last_store: HashMap<MemSpace, usize> = HashMap::new();
    let mut loads_since_store: HashMap<MemSpace, Vec<usize>> = HashMap::new();
    let mut last_sync: Option<usize> = None;

    for li in 0..len {
        let i = &kernel.instrs[start + li];
        // RAW
        for loc in src_locs(i) {
            if let Some(&w) = last_write.get(&loc) {
                edge(w, li, &mut succs, &mut npreds);
            }
            readers.entry(loc).or_default().push(li);
        }
        if let Some(d) = &i.dst {
            let loc = dst_loc(d);
            // WAW
            if let Some(&w) = last_write.get(&loc) {
                edge(w, li, &mut succs, &mut npreds);
            }
            // WAR
            if let Some(rs) = readers.get(&loc) {
                for &r in rs {
                    if r != li {
                        edge(r, li, &mut succs, &mut npreds);
                    }
                }
            }
            last_write.insert(loc, li);
            readers.insert(loc, vec![]);
        }
        // Memory ordering: loads may pass loads; nothing passes a store,
        // atomic or barrier in the same space.
        if let Some((space, is_write)) = mem_kind(i) {
            if let Some(&s) = last_store.get(&space) {
                edge(s, li, &mut succs, &mut npreds);
            }
            if is_write {
                for &l in loads_since_store.entry(space).or_default().iter() {
                    edge(l, li, &mut succs, &mut npreds);
                }
                loads_since_store.insert(space, vec![]);
                last_store.insert(space, li);
            } else {
                loads_since_store.entry(space).or_default().push(li);
            }
        }
        // Barriers and control flow pin everything before them (and after).
        let pins = matches!(i.op, Op::Bar | Op::Bra(_) | Op::Exit);
        if pins {
            for prev in 0..li {
                edge(prev, li, &mut succs, &mut npreds);
            }
            last_sync = Some(li);
        } else if let Some(s) = last_sync {
            edge(s, li, &mut succs, &mut npreds);
        }
    }

    // List scheduling: among ready instructions pick loads first, then
    // original order (stable, so non-load code stays put).
    let mut ready: Vec<usize> = (0..len).filter(|&i| npreds[i] == 0).collect();
    let mut scheduled = 0usize;
    let mut done = vec![false; len];
    while scheduled < len {
        // choose
        let pick_pos = ready
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let inst = &kernel.instrs[start + i];
                let class = if is_load(inst) { 0usize } else { 1 };
                (class, i)
            })
            .map(|(p, _)| p)
            .expect("cycle in dependence graph");
        let i = ready.swap_remove(pick_pos);
        done[i] = true;
        order.push(start + i);
        scheduled += 1;
        for &s in &succs[i] {
            npreds[s] -= 1;
            if npreds[s] == 0 && !done[s] {
                ready.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::Ty;

    #[test]
    fn loads_hoist_above_dependent_arithmetic() {
        // ld a; add; ld b; add — both loads should come before both adds
        // (after their shared address setup).
        let mut b = KernelBuilder::new("k", 1);
        let p = b.ld_param(0);
        let v0 = b.ld_global(Ty::F32, p, 0);
        let s0 = b.add_ty(Ty::F32, v0, v0);
        let v1 = b.ld_global(Ty::F32, p, 4);
        let s1 = b.add_ty(Ty::F32, s0, v1);
        b.st_global(Ty::F32, p, 8, s1);
        let k = b.build();
        let s = schedule(&k);
        assert!(s.validate().is_ok());
        let pos = |pred: &dyn Fn(&Instr) -> bool| s.instrs.iter().position(pred).unwrap();
        let first_add = pos(&|i: &Instr| i.op == Op::Add && i.ty == Ty::F32);
        let last_load = s
            .instrs
            .iter()
            .rposition(|i| matches!(i.op, Op::Ld(MemSpace::Global)))
            .unwrap();
        assert!(last_load < first_add, "loads must hoist:\n{s}");
    }

    #[test]
    fn stores_pin_loads() {
        // ld x; st x; ld x — the second load must not float above the store.
        let mut b = KernelBuilder::new("k", 1);
        let p = b.ld_param(0);
        let v0 = b.ld_global(Ty::B32, p, 0);
        b.st_global(Ty::B32, p, 0, v0);
        let v1 = b.ld_global(Ty::B32, p, 0);
        b.st_global(Ty::B32, p, 4, v1);
        let k = b.build();
        let s = schedule(&k);
        let st0 = s
            .instrs
            .iter()
            .position(|i| matches!(i.op, Op::St(_)))
            .unwrap();
        let ld_after = s.instrs[st0..]
            .iter()
            .any(|i| matches!(i.op, Op::Ld(MemSpace::Global)));
        assert!(
            ld_after,
            "second load must stay after the first store:\n{s}"
        );
    }

    #[test]
    fn scheduling_preserves_semantics() {
        use crate::parse::parse_kernel;
        let src = r#"
.kernel k params=2 {
  mov.b32 %r0, %tid.x;
  cvt.b64 %r1, %r0;
  shl.b64 %r2, %r1, 2;
  ld.param.b64 %r3, [P0];
  add.b64 %r4, %r3, %r2;
  ld.global.b32 %r5, [%r4];
  add.b32 %r6, %r5, 1;
  ld.global.b32 %r7, [%r4+128];
  add.b32 %r8, %r6, %r7;
  ld.param.b64 %r9, [P1];
  add.b64 %r10, %r9, %r2;
  st.global.b32 [%r10], %r8;
  exit;
}
"#;
        let k = parse_kernel(src).unwrap();
        let s = schedule(&k);
        assert!(s.validate().is_ok());
        assert_eq!(s.instrs.len(), k.instrs.len());
        // Same multiset of instructions.
        let mut a: Vec<String> = k.instrs.iter().map(|i| i.to_string()).collect();
        let mut b: Vec<String> = s.instrs.iter().map(|i| i.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn branches_stay_at_block_ends() {
        use crate::instr::CmpOp;
        let mut b = KernelBuilder::new("loop", 1);
        let i = b.imm32(0);
        let top = b.here_label();
        let p = b.ld_param(0);
        let v = b.ld_global(Ty::B32, p, 0);
        let w = b.add(v, i);
        b.st_global(Ty::B32, p, 0, w);
        b.assign_add(Ty::B32, i, crate::instr::Operand::Imm(1));
        let c = b.setp(CmpOp::Lt, Ty::B32, i, crate::instr::Operand::Imm(4));
        b.bra_if(c, true, top);
        let k = b.build();
        let s = schedule(&k);
        assert!(s.validate().is_ok());
        // The backward branch still targets the loop head region and the
        // loop still terminates with the same behavior (functionally checked
        // in the sim crate's integration tests).
        let bra = s
            .instrs
            .iter()
            .find(|x| matches!(x.op, Op::Bra(_)))
            .unwrap();
        if let Op::Bra(t) = bra.op {
            assert!((t as usize) < s.instrs.len());
        }
    }
}
