//! Kernel container and validation.

use crate::instr::{Dst, Instr, Op, Operand, Reg};
use std::fmt;

/// A compiled kernel: a flat instruction stream with resolved branch targets.
///
/// Mirrors a PTX entry function. `num_params` scalar/pointer parameters are
/// addressable via `ld.param [Pn]`; `shared_bytes` is the static shared-memory
/// footprint per thread block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Kernel {
    /// Kernel (entry) name.
    pub name: String,
    /// Number of parameter slots (each a 64-bit value).
    pub num_params: usize,
    /// The instruction stream; branch targets are indices into this vector.
    pub instrs: Vec<Instr>,
    /// Static shared-memory bytes per thread block.
    pub shared_bytes: u32,
}

/// Error from [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A branch target is out of range.
    BadBranchTarget {
        /// index of the offending instruction
        pc: usize,
        /// the out-of-range target
        target: u32,
    },
    /// An instruction has the wrong number of source operands.
    BadArity {
        /// index of the offending instruction
        pc: usize,
        /// operands found
        got: usize,
        /// operands required
        want: usize,
    },
    /// A memory instruction is missing its memory reference (or a non-memory
    /// instruction has one).
    BadMemRef {
        /// index of the offending instruction
        pc: usize,
    },
    /// A parameter index is out of range.
    BadParam {
        /// index of the offending instruction
        pc: usize,
        /// parameter slot referenced
        param: i64,
    },
    /// The instruction requires a destination but has none (or must not have
    /// one but does).
    BadDst {
        /// index of the offending instruction
        pc: usize,
    },
    /// The final instruction can fall off the end of the stream.
    MissingExit,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadBranchTarget { pc, target } => {
                write!(f, "instruction {pc}: branch target {target} out of range")
            }
            ValidateError::BadArity { pc, got, want } => {
                write!(
                    f,
                    "instruction {pc}: expected {want} source operands, found {got}"
                )
            }
            ValidateError::BadMemRef { pc } => {
                write!(f, "instruction {pc}: invalid memory reference")
            }
            ValidateError::BadParam { pc, param } => {
                write!(f, "instruction {pc}: parameter P{param} out of range")
            }
            ValidateError::BadDst { pc } => {
                write!(f, "instruction {pc}: invalid destination")
            }
            ValidateError::MissingExit => write!(f, "control can fall off the end of the kernel"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl Kernel {
    /// Create an empty kernel.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        Kernel {
            name: name.into(),
            num_params,
            instrs: Vec::new(),
            shared_bytes: 0,
        }
    }

    /// Number of distinct GP virtual registers used (max id + 1).
    pub fn num_regs(&self) -> usize {
        let mut max: Option<u16> = None;
        for i in &self.instrs {
            if let Some(Dst::Reg(Reg(r))) = i.dst {
                max = Some(max.map_or(r, |m| m.max(r)));
            }
            for r in i.src_regs() {
                max = Some(max.map_or(r.0, |m| m.max(r.0)));
            }
        }
        max.map_or(0, |m| m as usize + 1)
    }

    /// Number of distinct predicate registers used (max id + 1).
    pub fn num_preds(&self) -> usize {
        let mut max: Option<u16> = None;
        for i in &self.instrs {
            if let Some(Dst::Pred(p)) = i.dst {
                max = Some(max.map_or(p.0, |m| m.max(p.0)));
            }
            if let Some((p, _)) = i.guard {
                max = Some(max.map_or(p.0, |m| m.max(p.0)));
            }
            for s in &i.srcs {
                if let Operand::Pred(p) = s {
                    max = Some(max.map_or(p.0, |m| m.max(p.0)));
                }
            }
        }
        max.map_or(0, |m| m as usize + 1)
    }

    /// Required source-operand count for an opcode, if fixed.
    fn arity(op: Op) -> Option<usize> {
        Some(match op {
            Op::Mov | Op::Cvt | Op::Not | Op::Abs | Op::Neg | Op::Sfu(_) => 1,
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Shl
            | Op::Shr
            | Op::And
            | Op::Or
            | Op::Xor
            | Op::Min
            | Op::Max
            | Op::Div
            | Op::Rem
            | Op::Setp(_) => 2,
            Op::Mad | Op::Selp => 3,
            Op::LdParam => 1,
            Op::Ld(_) => 0,
            Op::St(_) => 1,
            Op::Atom(crate::instr::AtomOp::Cas) => 2,
            Op::Atom(_) => 1,
            Op::Bra(_) | Op::Bar | Op::Exit => 0,
        })
    }

    /// Validate structural well-formedness: branch targets in range, operand
    /// arities, memory references present exactly where required, parameter
    /// indices within `num_params`, and a terminating instruction.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found, in program order.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let n = self.instrs.len();
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Op::Bra(t) = i.op {
                if t as usize >= n {
                    return Err(ValidateError::BadBranchTarget { pc, target: t });
                }
            }
            if let Some(want) = Self::arity(i.op) {
                if i.srcs.len() != want {
                    return Err(ValidateError::BadArity {
                        pc,
                        got: i.srcs.len(),
                        want,
                    });
                }
            }
            let needs_mem = i.op.is_mem();
            if needs_mem != i.mem.is_some() {
                return Err(ValidateError::BadMemRef { pc });
            }
            if i.op == Op::LdParam {
                match i.srcs.first() {
                    Some(Operand::Imm(p)) if (*p as usize) < self.num_params && *p >= 0 => {}
                    Some(Operand::Imm(p)) => {
                        return Err(ValidateError::BadParam { pc, param: *p });
                    }
                    _ => {
                        return Err(ValidateError::BadArity {
                            pc,
                            got: i.srcs.len(),
                            want: 1,
                        })
                    }
                }
            }
            let needs_dst = !matches!(i.op, Op::St(_) | Op::Bra(_) | Op::Bar | Op::Exit);
            match (needs_dst, i.dst.is_some()) {
                (true, false) => return Err(ValidateError::BadDst { pc }),
                (false, true) if !matches!(i.op, Op::Atom(_)) => {
                    return Err(ValidateError::BadDst { pc })
                }
                _ => {}
            }
            if matches!(i.op, Op::Setp(_)) && !matches!(i.dst, Some(Dst::Pred(_))) {
                return Err(ValidateError::BadDst { pc });
            }
        }
        // Control must not fall off the end: last instruction must be an
        // unconditional exit or unconditional branch.
        match self.instrs.last() {
            Some(i) if i.guard.is_none() && matches!(i.op, Op::Exit | Op::Bra(_)) => Ok(()),
            _ => Err(ValidateError::MissingExit),
        }
    }

    /// Count static instructions by a predicate (useful in tests/reports).
    pub fn count_instrs(&self, f: impl Fn(&Instr) -> bool) -> usize {
        self.instrs.iter().filter(|i| f(i)).count()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ".kernel {} params={} shared={} {{",
            self.name, self.num_params, self.shared_bytes
        )?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "  /*{pc:04}*/ {i}")?;
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{CmpOp, Dst, MemOffset, MemRef, MemSpace, PredReg, Ty};

    fn exit() -> Instr {
        Instr::new(Op::Exit, Ty::B32, None, vec![])
    }

    #[test]
    fn empty_kernel_fails_missing_exit() {
        let k = Kernel::new("k", 0);
        assert_eq!(k.validate(), Err(ValidateError::MissingExit));
    }

    #[test]
    fn minimal_kernel_validates() {
        let mut k = Kernel::new("k", 0);
        k.instrs.push(exit());
        assert_eq!(k.validate(), Ok(()));
    }

    #[test]
    fn branch_target_out_of_range() {
        let mut k = Kernel::new("k", 0);
        k.instrs.push(Instr::new(Op::Bra(5), Ty::B32, None, vec![]));
        k.instrs.push(exit());
        assert_eq!(
            k.validate(),
            Err(ValidateError::BadBranchTarget { pc: 0, target: 5 })
        );
    }

    #[test]
    fn arity_checked() {
        let mut k = Kernel::new("k", 0);
        k.instrs.push(Instr::new(
            Op::Add,
            Ty::B32,
            Some(Dst::Reg(Reg(0))),
            vec![Reg(1).into()],
        ));
        k.instrs.push(exit());
        assert_eq!(
            k.validate(),
            Err(ValidateError::BadArity {
                pc: 0,
                got: 1,
                want: 2
            })
        );
    }

    #[test]
    fn param_range_checked() {
        let mut k = Kernel::new("k", 1);
        k.instrs.push(Instr::new(
            Op::LdParam,
            Ty::B64,
            Some(Dst::Reg(Reg(0))),
            vec![Operand::Imm(3)],
        ));
        k.instrs.push(exit());
        assert_eq!(
            k.validate(),
            Err(ValidateError::BadParam { pc: 0, param: 3 })
        );
    }

    #[test]
    fn mem_ref_required() {
        let mut k = Kernel::new("k", 0);
        k.instrs.push(Instr::new(
            Op::Ld(MemSpace::Global),
            Ty::F32,
            Some(Dst::Reg(Reg(0))),
            vec![],
        ));
        k.instrs.push(exit());
        assert_eq!(k.validate(), Err(ValidateError::BadMemRef { pc: 0 }));
    }

    #[test]
    fn setp_needs_pred_dst() {
        let mut k = Kernel::new("k", 0);
        k.instrs.push(Instr::new(
            Op::Setp(CmpOp::Lt),
            Ty::B32,
            Some(Dst::Reg(Reg(0))),
            vec![Reg(1).into(), Operand::Imm(3)],
        ));
        k.instrs.push(exit());
        assert_eq!(k.validate(), Err(ValidateError::BadDst { pc: 0 }));
    }

    #[test]
    fn reg_counts() {
        let mut k = Kernel::new("k", 0);
        k.instrs.push(Instr::new(
            Op::Setp(CmpOp::Eq),
            Ty::B32,
            Some(Dst::Pred(PredReg(2))),
            vec![Reg(7).into(), Operand::Imm(0)],
        ));
        k.instrs.push(
            Instr::new(Op::St(MemSpace::Global), Ty::B32, None, vec![Reg(3).into()]).with_mem(
                MemRef {
                    base: Operand::Reg(Reg(9)),
                    offset: MemOffset::Imm(0),
                },
            ),
        );
        k.instrs.push(exit());
        assert_eq!(k.num_regs(), 10);
        assert_eq!(k.num_preds(), 3);
    }

    #[test]
    fn display_contains_name_and_pcs() {
        let mut k = Kernel::new("demo", 2);
        k.instrs.push(exit());
        let s = k.to_string();
        assert!(s.contains(".kernel demo params=2"));
        assert!(s.contains("/*0000*/ exit;"));
    }
}
