//! Control-flow graph and immediate post-dominators.
//!
//! The simulator uses immediate post-dominators as SIMT reconvergence points
//! (the classic stack-based reconvergence GPGPU-Sim implements); the analyzer
//! uses basic-block structure to reason about multi-written registers
//! (paper Sec. 3.1.2).

use crate::instr::Op;
use crate::kernel::Kernel;

/// A basic block: instruction indices `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// Control-flow graph over a [`Kernel`]'s flat instruction stream.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks in program order (block 0 is the entry).
    pub blocks: Vec<BasicBlock>,
    /// block id of each instruction.
    pub block_of: Vec<usize>,
    /// Immediate post-dominator of each block (`None` = virtual exit).
    pub ipdom: Vec<Option<usize>>,
}

impl Cfg {
    /// Build the CFG and post-dominator tree for a kernel.
    #[allow(clippy::needless_range_loop)] // index loops mirror the pc math
    pub fn build(kernel: &Kernel) -> Cfg {
        let n = kernel.instrs.len();
        // Leaders: entry, branch targets, instruction after a branch/exit.
        let mut leader = vec![false; n.max(1)];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, i) in kernel.instrs.iter().enumerate() {
            match i.op {
                Op::Bra(t) => {
                    if (t as usize) < n {
                        leader[t as usize] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Op::Exit if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let mut starts: Vec<usize> = (0..n).filter(|&i| leader[i]).collect();
        if starts.is_empty() {
            starts.push(0);
        }
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len());
        for (bi, &s) in starts.iter().enumerate() {
            let e = starts.get(bi + 1).copied().unwrap_or(n);
            blocks.push(BasicBlock {
                start: s,
                end: e,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        let mut block_of = vec![0usize; n];
        for (bi, b) in blocks.iter().enumerate() {
            for pc in b.start..b.end {
                block_of[pc] = bi;
            }
        }
        // Successors.
        let nb = blocks.len();
        for bi in 0..nb {
            let last = blocks[bi].end.saturating_sub(1);
            if blocks[bi].start >= blocks[bi].end {
                continue;
            }
            let i = &kernel.instrs[last];
            let mut succs = Vec::new();
            match i.op {
                Op::Exit if i.guard.is_none() => {}
                Op::Exit => {
                    // predicated exit: may fall through
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    }
                }
                Op::Bra(t) => {
                    succs.push(block_of[t as usize]);
                    if i.guard.is_some() && last + 1 < n {
                        let ft = block_of[last + 1];
                        if !succs.contains(&ft) {
                            succs.push(ft);
                        }
                    }
                }
                _ => {
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    }
                }
            }
            blocks[bi].succs = succs;
        }
        for bi in 0..nb {
            let succs = blocks[bi].succs.clone();
            for s in succs {
                if !blocks[s].preds.contains(&bi) {
                    blocks[s].preds.push(bi);
                }
            }
        }
        let ipdom = Self::compute_ipdom(&blocks);
        Cfg {
            blocks,
            block_of,
            ipdom,
        }
    }

    /// Iterative post-dominator computation with a virtual exit node.
    ///
    /// Uses the standard dataflow formulation: `pdom(b) = {b} ∪ ⋂ pdom(succ)`.
    /// Block count is small, so bitset-free `Vec<Option<usize>>` intersection
    /// over the pdom tree (Cooper-Harvey-Kennedy style) is plenty fast.
    fn compute_ipdom(blocks: &[BasicBlock]) -> Vec<Option<usize>> {
        let n = blocks.len();
        let exit = n; // virtual exit node id
                      // Successor function including virtual exit.
        let succs = |b: usize| -> Vec<usize> {
            if b == exit {
                Vec::new()
            } else if blocks[b].succs.is_empty() {
                vec![exit]
            } else {
                blocks[b].succs.clone()
            }
        };
        // Reverse post-order on the *reverse* CFG, i.e. post-order of forward CFG
        // starting from entry; we instead do a DFS from exit on reverse edges.
        // Build reverse adjacency (preds in the forward CFG = succs in reverse).
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for b in 0..n {
            for s in succs(b) {
                rev[s].push(b);
            }
        }
        // Order: DFS from exit over rev edges, collect post-order, then reverse.
        let mut order = Vec::with_capacity(n + 1);
        let mut seen = vec![false; n + 1];
        let mut stack = vec![(exit, 0usize)];
        seen[exit] = true;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            if *idx < rev[node].len() {
                let nx = rev[node][*idx];
                *idx += 1;
                if !seen[nx] {
                    seen[nx] = true;
                    stack.push((nx, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse(); // reverse post-order of the reverse CFG, exit first
        let mut rpo_num = vec![usize::MAX; n + 1];
        for (i, &b) in order.iter().enumerate() {
            rpo_num[b] = i;
        }
        let mut idom: Vec<Option<usize>> = vec![None; n + 1];
        idom[exit] = Some(exit);
        let intersect = |idom: &[Option<usize>], rpo_num: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_num[a] > rpo_num[b] {
                    a = idom[a].unwrap();
                }
                while rpo_num[b] > rpo_num[a] {
                    b = idom[b].unwrap();
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                // preds in reverse CFG = succs in forward CFG
                let mut new_idom: Option<usize> = None;
                for s in succs(b) {
                    if idom[s].is_some() {
                        new_idom = Some(match new_idom {
                            None => s,
                            Some(cur) => intersect(&idom, &rpo_num, cur, s),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        (0..n)
            .map(|b| match idom[b] {
                Some(d) if d != exit => Some(d),
                _ => None,
            })
            .collect()
    }

    /// The reconvergence pc for a divergent branch inside block `b`: the start
    /// pc of `b`'s immediate post-dominator, or `None` when control only
    /// reconverges at thread exit.
    pub fn reconvergence_pc(&self, b: usize) -> Option<usize> {
        self.ipdom[b].map(|d| self.blocks[d].start)
    }

    /// `true` when the branch at `pc` (targeting `target`) is a back edge,
    /// i.e. part of a loop.
    pub fn is_back_edge(&self, pc: usize, target: usize) -> bool {
        target <= pc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::{CmpOp, Operand, Ty};

    #[test]
    fn straight_line_is_one_block() {
        let mut b = KernelBuilder::new("s", 0);
        b.imm32(1);
        b.imm32(2);
        let k = b.build();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.ipdom[0], None);
    }

    #[test]
    fn if_else_reconverges_at_join() {
        // if (p) {A} else {B}; C
        let mut b = KernelBuilder::new("ite", 0);
        let x = b.imm32(1);
        let p = b.setp(CmpOp::Eq, Ty::B32, x, Operand::Imm(1));
        let else_l = b.label();
        let join = b.label();
        b.bra_if(p, false, else_l);
        b.imm32(10); // then
        b.bra(join);
        b.place(else_l);
        b.imm32(20); // else
        b.place(join);
        b.imm32(30); // join
        let k = b.build();
        let cfg = Cfg::build(&k);
        // Entry block ends with the conditional branch.
        let entry = cfg.block_of[0];
        assert_eq!(cfg.blocks[entry].succs.len(), 2);
        // Its ipdom must be the join block (the one containing imm32(30)).
        let join_pc = k
            .instrs
            .iter()
            .position(|i| matches!(i.srcs.first(), Some(Operand::Imm(30))))
            .unwrap();
        let join_block = cfg.block_of[join_pc];
        assert_eq!(cfg.ipdom[entry], Some(join_block));
        assert_eq!(
            cfg.reconvergence_pc(entry),
            Some(cfg.blocks[join_block].start)
        );
    }

    #[test]
    fn loop_back_edge_detected() {
        let mut b = KernelBuilder::new("loop", 0);
        let i = b.imm32(0);
        let top = b.here_label();
        b.assign_add(Ty::B32, i, Operand::Imm(1));
        let p = b.setp(CmpOp::Lt, Ty::B32, i, Operand::Imm(4));
        b.bra_if(p, true, top);
        let k = b.build();
        let cfg = Cfg::build(&k);
        let bra_pc = k
            .instrs
            .iter()
            .position(|x| matches!(x.op, Op::Bra(_)))
            .unwrap();
        if let Op::Bra(t) = k.instrs[bra_pc].op {
            assert!(cfg.is_back_edge(bra_pc, t as usize));
        }
        // Loop block's ipdom is the block after the loop (the exit block).
        let loop_block = cfg.block_of[bra_pc];
        let after = cfg.ipdom[loop_block].expect("loop must reconverge after itself");
        assert!(cfg.blocks[after].start > bra_pc);
    }

    #[test]
    fn exit_block_has_no_ipdom() {
        let mut b = KernelBuilder::new("e", 0);
        b.imm32(1);
        let k = b.build();
        let cfg = Cfg::build(&k);
        let last = cfg.block_of[k.instrs.len() - 1];
        assert_eq!(cfg.ipdom[last], None);
    }

    #[test]
    fn block_of_covers_every_instruction() {
        let mut b = KernelBuilder::new("cov", 0);
        let x = b.imm32(0);
        let p = b.setp(CmpOp::Ne, Ty::B32, x, Operand::Imm(0));
        let l = b.label();
        b.bra_if(p, true, l);
        b.imm32(7);
        b.place(l);
        let k = b.build();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.block_of.len(), k.instrs.len());
        for (pc, &bi) in cfg.block_of.iter().enumerate() {
            assert!(cfg.blocks[bi].start <= pc && pc < cfg.blocks[bi].end);
        }
    }
}
