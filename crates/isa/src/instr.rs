//! Instruction, operand and register definitions.

use std::fmt;

/// Storage/interpretation type of an instruction.
///
/// Values live in 64-bit register slots; the type selects how an operation
/// interprets them. `B32` integer math is signed 32-bit (like PTX `.s32`
/// index arithmetic); `B64` is 64-bit (addresses); `F32`/`F64` are IEEE
/// floats stored in the low bits; `Pred` is a 1-bit predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ty {
    /// 32-bit integer (signed semantics for compare/divide/shift-right).
    #[default]
    B32,
    /// 64-bit integer (addresses, wide index math).
    B64,
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
    /// 1-bit predicate.
    Pred,
}

impl Ty {
    /// Width in bytes of a value of this type in memory.
    pub fn bytes(self) -> u64 {
        match self {
            Ty::B32 | Ty::F32 => 4,
            Ty::B64 | Ty::F64 => 8,
            Ty::Pred => 1,
        }
    }

    /// `true` for the two integer types.
    pub fn is_int(self) -> bool {
        matches!(self, Ty::B32 | Ty::B64)
    }

    /// `true` for the two float types.
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F32 | Ty::F64)
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ty::B32 => "b32",
            Ty::B64 => "b64",
            Ty::F32 => "f32",
            Ty::F64 => "f64",
            Ty::Pred => "pred",
        };
        f.write_str(s)
    }
}

/// A virtual general-purpose register `%rN`.
///
/// Like PTX, kernels use an unbounded virtual register space; the paper's
/// analyzer relies on the (near-)SSA discipline of PTX to detect loops and
/// divergence through multi-written registers (Sec. 3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%r{}", self.0)
    }
}

/// A predicate register `%pN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredReg(pub u16);

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%p{}", self.0)
    }
}

/// R2D2 register classes (paper Sec. 3.2): the instruction generator defines
/// thread-index (`%tr`), block-index (`%br`), coefficient (`%cr`) and linear
/// (`%lr`) registers on top of the ordinary general-purpose space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// Ordinary per-thread general-purpose register.
    Gp,
    /// Thread-index part register — per thread *slot* in a block, shared by all
    /// thread blocks (computed once per kernel by the first block).
    Tr,
    /// Block-index part register — per thread block, shared by its warps.
    Br,
    /// Coefficient register — per SM scalar, shared by everything on the SM.
    Cr,
    /// Linear register — the architectural *pair* (tr, br); reading it yields
    /// their sum (added by the LSU, Sec. 4.3).
    Lr,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegClass::Gp => "r",
            RegClass::Tr => "tr",
            RegClass::Br => "br",
            RegClass::Cr => "cr",
            RegClass::Lr => "lr",
        };
        f.write_str(s)
    }
}

/// Special (read-only) registers: built-in indices and dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Special {
    /// `%tid.x/y/z` — thread index within the block (dim 0..=2).
    Tid(u8),
    /// `%ctaid.x/y/z` — block index within the grid.
    Ctaid(u8),
    /// `%ntid.x/y/z` — block dimensions.
    Ntid(u8),
    /// `%nctaid.x/y/z` — grid dimensions.
    Nctaid(u8),
    /// `%laneid` — lane within the warp (0..32).
    LaneId,
    /// `%smid` — the SM the warp runs on (used by persistent-thread kernels).
    SmId,
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const DIM: [&str; 3] = ["x", "y", "z"];
        match self {
            Special::Tid(d) => write!(f, "%tid.{}", DIM[*d as usize % 3]),
            Special::Ctaid(d) => write!(f, "%ctaid.{}", DIM[*d as usize % 3]),
            Special::Ntid(d) => write!(f, "%ntid.{}", DIM[*d as usize % 3]),
            Special::Nctaid(d) => write!(f, "%nctaid.{}", DIM[*d as usize % 3]),
            Special::LaneId => write!(f, "%laneid"),
            Special::SmId => write!(f, "%smid"),
        }
    }
}

/// Comparison operator for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// equal
    Eq,
    /// not equal
    Ne,
    /// less than (signed / ordered)
    Lt,
    /// less or equal
    Le,
    /// greater than
    Gt,
    /// greater or equal
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// Special-function-unit operation (transcendental pipe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// reciprocal
    Rcp,
    /// square root
    Sqrt,
    /// reciprocal square root
    Rsqrt,
    /// base-2 exponential
    Ex2,
    /// base-2 logarithm
    Lg2,
    /// sine
    Sin,
    /// cosine
    Cos,
}

impl fmt::Display for SfuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SfuOp::Rcp => "rcp",
            SfuOp::Sqrt => "sqrt",
            SfuOp::Rsqrt => "rsqrt",
            SfuOp::Ex2 => "ex2",
            SfuOp::Lg2 => "lg2",
            SfuOp::Sin => "sin",
            SfuOp::Cos => "cos",
        };
        f.write_str(s)
    }
}

/// Atomic read-modify-write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomOp {
    /// fetch-and-add
    Add,
    /// fetch-and-min
    Min,
    /// fetch-and-max
    Max,
    /// exchange
    Exch,
    /// compare-and-swap (src operands: compare, new)
    Cas,
}

impl fmt::Display for AtomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AtomOp::Add => "add",
            AtomOp::Min => "min",
            AtomOp::Max => "max",
            AtomOp::Exch => "exch",
            AtomOp::Cas => "cas",
        };
        f.write_str(s)
    }
}

/// Memory space for loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device (global) memory through L1/L2/DRAM.
    Global,
    /// Per-block scratchpad (shared memory).
    Shared,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global => f.write_str("global"),
            MemSpace::Shared => f.write_str("shared"),
        }
    }
}

/// Opcodes.
///
/// The subset `{Mov, Cvt, Add, Sub, Mul, Shl, Mad, LdParam}` is exactly the
/// Fig. 6 list the R2D2 analyzer tracks (plus `ld.param` providing the
/// parameter symbols). Everything else terminates linearity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Copy a value (`mov dst, src`).
    Mov,
    /// Convert between widths; `b32 -> b64` sign-extends, float conversions
    /// round (`cvt dst, src`).
    Cvt,
    /// `dst = src0 + src1`
    Add,
    /// `dst = src0 - src1`
    Sub,
    /// `dst = src0 * src1` (low half for ints)
    Mul,
    /// `dst = src0 * src1 + src2`
    Mad,
    /// `dst = src0 << src1`
    Shl,
    /// `dst = src0 >> src1` (arithmetic for B32/B64)
    Shr,
    /// bitwise and
    And,
    /// bitwise or
    Or,
    /// bitwise xor
    Xor,
    /// bitwise not (one source)
    Not,
    /// `dst = min(src0, src1)`
    Min,
    /// `dst = max(src0, src1)`
    Max,
    /// `dst = src0 / src1` (signed ints trap-free: x/0 = 0)
    Div,
    /// `dst = src0 % src1` (x%0 = 0)
    Rem,
    /// absolute value (one source)
    Abs,
    /// negate (one source)
    Neg,
    /// set predicate: `setp.<cmp> %p, src0, src1`
    Setp(CmpOp),
    /// select on predicate: `selp dst, src0, src1, %p`
    Selp,
    /// special function unit op (one source)
    Sfu(SfuOp),
    /// parameter load: `ld.param dst, [Pn]` (src0 = Imm(n))
    LdParam,
    /// memory load: `ld.<space> dst, [base+off]`
    Ld(MemSpace),
    /// memory store: `st.<space> [base+off], src0`
    St(MemSpace),
    /// atomic RMW on global memory: `atom.<op> dst, [base+off], src0 (, src1)`
    Atom(AtomOp),
    /// unconditional/predicated branch to instruction index
    Bra(u32),
    /// block-wide barrier (`bar.sync`)
    Bar,
    /// thread exit
    Exit,
}

impl Op {
    /// `true` if this opcode can propagate a linear combination (the Fig. 6
    /// list). `LdParam` introduces parameter symbols.
    pub fn is_linear_listed(self) -> bool {
        matches!(
            self,
            Op::Mov | Op::Cvt | Op::Add | Op::Sub | Op::Mul | Op::Mad | Op::Shl | Op::LdParam
        )
    }

    /// `true` for control-flow opcodes.
    pub fn is_control(self) -> bool {
        matches!(self, Op::Bra(_) | Op::Bar | Op::Exit)
    }

    /// `true` for memory opcodes (loads, stores, atomics; not `ld.param`).
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Ld(_) | Op::St(_) | Op::Atom(_))
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// General-purpose register.
    Reg(Reg),
    /// Integer immediate (also carries float immediates as raw bits via
    /// [`Operand::fimm32`] / [`Operand::fimm64`]).
    Imm(i64),
    /// Special register (built-in index / dimension).
    Special(Special),
    /// Predicate register (as a data source for `selp`).
    Pred(PredReg),
    /// R2D2 thread-index register (transformed kernels only).
    Tr(u16),
    /// R2D2 block-index register (transformed kernels only).
    Br(u16),
    /// R2D2 coefficient register (transformed kernels only).
    Cr(u16),
    /// R2D2 linear register = tr + br (transformed kernels only).
    Lr(u16),
}

impl Operand {
    /// An `f32` immediate, stored as raw bits.
    pub fn fimm32(v: f32) -> Operand {
        Operand::Imm(v.to_bits() as i64)
    }

    /// An `f64` immediate, stored as raw bits.
    pub fn fimm64(v: f64) -> Operand {
        Operand::Imm(v.to_bits() as i64)
    }

    /// `true` if the operand is one of the R2D2 register classes.
    pub fn is_r2d2_class(self) -> bool {
        matches!(
            self,
            Operand::Tr(_) | Operand::Br(_) | Operand::Cr(_) | Operand::Lr(_)
        )
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Special(s) => write!(f, "{s}"),
            Operand::Pred(p) => write!(f, "{p}"),
            Operand::Tr(i) => write!(f, "%tr{i}"),
            Operand::Br(i) => write!(f, "%br{i}"),
            Operand::Cr(i) => write!(f, "%cr{i}"),
            Operand::Lr(i) => write!(f, "%lr{i}"),
        }
    }
}

/// An instruction destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dst {
    /// General-purpose register.
    Reg(Reg),
    /// Predicate register (for `setp`).
    Pred(PredReg),
    /// R2D2 thread-index register (linear thread-index block).
    Tr(u16),
    /// R2D2 block-index register (linear block-index block).
    Br(u16),
    /// R2D2 coefficient register (linear coefficient block).
    Cr(u16),
}

impl fmt::Display for Dst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dst::Reg(r) => write!(f, "{r}"),
            Dst::Pred(p) => write!(f, "{p}"),
            Dst::Tr(i) => write!(f, "%tr{i}"),
            Dst::Br(i) => write!(f, "%br{i}"),
            Dst::Cr(i) => write!(f, "%cr{i}"),
        }
    }
}

/// Offset part of a memory reference: an immediate byte offset or an R2D2
/// coefficient register (the Sec. 3.1.4 rewrite `ld.global %f1, [%lr1+%cr7]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOffset {
    /// Immediate byte offset.
    Imm(i64),
    /// Coefficient register holding the byte offset (transformed kernels).
    Cr(u16),
    /// Coefficient register plus an immediate (the LSU's existing adder
    /// handles the immediate on top of the tr + br + cr sum, paper Sec. 4.3).
    CrImm(u16, i64),
}

impl Default for MemOffset {
    fn default() -> Self {
        MemOffset::Imm(0)
    }
}

/// A memory reference `[base + offset]` for loads, stores and atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base address operand (GP register, or `%lr` in transformed kernels).
    pub base: Operand,
    /// Byte offset added to the base.
    pub offset: MemOffset,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            MemOffset::Imm(0) => write!(f, "[{}]", self.base),
            MemOffset::Imm(v) if v < 0 => write!(f, "[{}{}]", self.base, v),
            MemOffset::Imm(v) => write!(f, "[{}+{}]", self.base, v),
            MemOffset::Cr(c) => write!(f, "[{}+%cr{}]", self.base, c),
            MemOffset::CrImm(c, v) if v < 0 => write!(f, "[{}+%cr{}{}]", self.base, c, v),
            MemOffset::CrImm(c, v) => write!(f, "[{}+%cr{}+{}]", self.base, c, v),
        }
    }
}

/// One instruction.
///
/// `guard` is PTX-style predication: `Some((p, true))` executes the lane when
/// `p` is set; `Some((p, false))` when it is clear.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// Opcode (with embedded compare/SFU/atomic sub-op or branch target).
    pub op: Op,
    /// Interpretation type.
    pub ty: Ty,
    /// Destination (absent for stores, branches, barriers, exit).
    pub dst: Option<Dst>,
    /// Source operands in positional order.
    pub srcs: Vec<Operand>,
    /// Optional predicate guard `@%p` / `@!%p`.
    pub guard: Option<(PredReg, bool)>,
    /// Memory reference for `Ld`/`St`/`Atom`.
    pub mem: Option<MemRef>,
}

impl Instr {
    /// A new unguarded instruction without a memory reference.
    pub fn new(op: Op, ty: Ty, dst: Option<Dst>, srcs: Vec<Operand>) -> Self {
        Instr {
            op,
            ty,
            dst,
            srcs,
            guard: None,
            mem: None,
        }
    }

    /// Attach a predicate guard.
    pub fn with_guard(mut self, p: PredReg, sense: bool) -> Self {
        self.guard = Some((p, sense));
        self
    }

    /// Attach a memory reference.
    pub fn with_mem(mut self, mem: MemRef) -> Self {
        self.mem = Some(mem);
        self
    }

    /// The GP register this instruction writes, if any.
    pub fn dst_reg(&self) -> Option<Reg> {
        match self.dst {
            Some(Dst::Reg(r)) => Some(r),
            _ => None,
        }
    }

    /// Iterate over all GP registers read by this instruction (sources,
    /// memory base — not guards).
    pub fn src_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        let mem_base = match self.mem {
            Some(MemRef {
                base: Operand::Reg(r),
                ..
            }) => Some(r),
            _ => None,
        };
        self.srcs
            .iter()
            .filter_map(|o| match o {
                Operand::Reg(r) => Some(*r),
                _ => None,
            })
            .chain(mem_base)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some((p, sense)) = self.guard {
            if sense {
                write!(f, "@{p} ")?;
            } else {
                write!(f, "@!{p} ")?;
            }
        }
        // mnemonic
        match self.op {
            Op::Setp(c) => write!(f, "setp.{c}.{}", self.ty)?,
            Op::Sfu(s) => write!(f, "{s}.{}", self.ty)?,
            Op::Atom(a) => write!(f, "atom.{a}.{}", self.ty)?,
            Op::Ld(sp) => write!(f, "ld.{sp}.{}", self.ty)?,
            Op::St(sp) => write!(f, "st.{sp}.{}", self.ty)?,
            Op::LdParam => write!(f, "ld.param.{}", self.ty)?,
            Op::Bra(t) => {
                write!(f, "bra {t};")?;
                return Ok(());
            }
            Op::Bar => {
                write!(f, "bar.sync;")?;
                return Ok(());
            }
            Op::Exit => {
                write!(f, "exit;")?;
                return Ok(());
            }
            op => {
                let m = match op {
                    Op::Mov => "mov",
                    Op::Cvt => "cvt",
                    Op::Add => "add",
                    Op::Sub => "sub",
                    Op::Mul => "mul",
                    Op::Mad => "mad",
                    Op::Shl => "shl",
                    Op::Shr => "shr",
                    Op::And => "and",
                    Op::Or => "or",
                    Op::Xor => "xor",
                    Op::Not => "not",
                    Op::Min => "min",
                    Op::Max => "max",
                    Op::Div => "div",
                    Op::Rem => "rem",
                    Op::Abs => "abs",
                    Op::Neg => "neg",
                    Op::Selp => "selp",
                    _ => unreachable!(),
                };
                write!(f, "{m}.{}", self.ty)?;
            }
        }
        let mut first = true;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if first {
                first = false;
                write!(f, " ")
            } else {
                write!(f, ", ")
            }
        };
        if let Some(d) = &self.dst {
            sep(f)?;
            write!(f, "{d}")?;
        }
        // For st, memory ref prints before the value; for ld/atom, after dst.
        if matches!(self.op, Op::St(_)) {
            if let Some(m) = &self.mem {
                sep(f)?;
                write!(f, "{m}")?;
            }
            for s in &self.srcs {
                sep(f)?;
                write!(f, "{s}")?;
            }
        } else {
            if let Some(m) = &self.mem {
                sep(f)?;
                write!(f, "{m}")?;
            }
            if self.op == Op::LdParam {
                if let Some(Operand::Imm(n)) = self.srcs.first() {
                    sep(f)?;
                    write!(f, "[P{n}]")?;
                }
            } else {
                for s in &self.srcs {
                    sep(f)?;
                    write!(f, "{s}")?;
                }
            }
        }
        write!(f, ";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_arith() {
        let i = Instr::new(
            Op::Mad,
            Ty::B32,
            Some(Dst::Reg(Reg(9))),
            vec![Reg(6).into(), Reg(7).into(), Reg(8).into()],
        );
        assert_eq!(i.to_string(), "mad.b32 %r9, %r6, %r7, %r8;");
    }

    #[test]
    fn display_ld_param() {
        let i = Instr::new(
            Op::LdParam,
            Ty::B64,
            Some(Dst::Reg(Reg(4))),
            vec![Operand::Imm(0)],
        );
        assert_eq!(i.to_string(), "ld.param.b64 %r4, [P0];");
    }

    #[test]
    fn display_ld_global_with_cr_offset() {
        let i = Instr::new(
            Op::Ld(MemSpace::Global),
            Ty::F32,
            Some(Dst::Reg(Reg(1))),
            vec![],
        )
        .with_mem(MemRef {
            base: Operand::Lr(1),
            offset: MemOffset::Cr(7),
        });
        assert_eq!(i.to_string(), "ld.global.f32 %r1, [%lr1+%cr7];");
    }

    #[test]
    fn display_store_and_guard() {
        let i = Instr::new(Op::St(MemSpace::Global), Ty::F32, None, vec![Reg(3).into()])
            .with_mem(MemRef {
                base: Operand::Reg(Reg(2)),
                offset: MemOffset::Imm(8),
            })
            .with_guard(PredReg(0), false);
        assert_eq!(i.to_string(), "@!%p0 st.global.f32 [%r2+8], %r3;");
    }

    #[test]
    fn display_setp_branch_exit() {
        let s = Instr::new(
            Op::Setp(CmpOp::Lt),
            Ty::B32,
            Some(Dst::Pred(PredReg(1))),
            vec![Reg(0).into(), Operand::Imm(10)],
        );
        assert_eq!(s.to_string(), "setp.lt.b32 %p1, %r0, 10;");
        let b = Instr::new(Op::Bra(42), Ty::B32, None, vec![]);
        assert_eq!(b.to_string(), "bra 42;");
        let e = Instr::new(Op::Exit, Ty::B32, None, vec![]);
        assert_eq!(e.to_string(), "exit;");
    }

    #[test]
    fn linear_listed_ops() {
        for op in [
            Op::Mov,
            Op::Cvt,
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Mad,
            Op::Shl,
            Op::LdParam,
        ] {
            assert!(op.is_linear_listed());
        }
        for op in [
            Op::Shr,
            Op::And,
            Op::Div,
            Op::Selp,
            Op::Ld(MemSpace::Global),
        ] {
            assert!(!op.is_linear_listed());
        }
    }

    #[test]
    fn src_regs_includes_mem_base() {
        let i = Instr::new(Op::St(MemSpace::Global), Ty::F32, None, vec![Reg(3).into()]).with_mem(
            MemRef {
                base: Operand::Reg(Reg(2)),
                offset: MemOffset::Imm(0),
            },
        );
        let regs: Vec<Reg> = i.src_regs().collect();
        assert_eq!(regs, vec![Reg(3), Reg(2)]);
    }

    #[test]
    fn float_immediates_roundtrip_bits() {
        let o = Operand::fimm32(1.5);
        if let Operand::Imm(bits) = o {
            assert_eq!(f32::from_bits(bits as u32), 1.5);
        } else {
            panic!("not an imm");
        }
    }
}
