//! Programmatic kernel construction.

use crate::instr::{
    AtomOp, CmpOp, Dst, Instr, MemOffset, MemRef, MemSpace, Op, Operand, PredReg, Reg, SfuOp,
    Special, Ty,
};
use crate::kernel::Kernel;

/// A forward-referencable branch target created by [`KernelBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builds a [`Kernel`] instruction by instruction, allocating virtual
/// registers and resolving labels.
///
/// Methods that produce a value allocate and return a fresh [`Reg`], keeping
/// kernels in the (near-)SSA form the R2D2 analyzer expects — except for
/// explicit loop-carried updates via the `assign_*` methods (e.g.
/// [`KernelBuilder::assign_add`]), which reuse a
/// register exactly like PTX does for loop iterators (paper Sec. 3.1.2).
///
/// # Example
///
/// ```
/// use r2d2_isa::KernelBuilder;
///
/// let mut b = KernelBuilder::new("iota", 1);
/// let i = b.global_tid_x();          // ctaid.x * ntid.x + tid.x
/// let base = b.ld_param(0);
/// let off = b.shl_imm_wide(i, 2);
/// let addr = b.add_wide(base, off);
/// b.st_global(r2d2_isa::Ty::B32, addr, 0, i);
/// let kernel = b.build();
/// assert!(kernel.validate().is_ok());
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    kernel: Kernel,
    next_reg: u16,
    next_pred: u16,
    labels: Vec<Option<usize>>,
    /// (instruction index, label) pairs awaiting resolution.
    pending: Vec<(usize, Label)>,
}

impl KernelBuilder {
    /// Start a kernel with `num_params` parameter slots.
    pub fn new(name: impl Into<String>, num_params: usize) -> Self {
        KernelBuilder {
            kernel: Kernel::new(name, num_params),
            next_reg: 0,
            next_pred: 0,
            labels: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Set the static shared-memory footprint per block.
    pub fn shared_bytes(&mut self, bytes: u32) -> &mut Self {
        self.kernel.shared_bytes = bytes;
        self
    }

    /// Allocate a fresh virtual register without emitting an instruction.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocate a fresh predicate register.
    pub fn fresh_pred(&mut self) -> PredReg {
        let p = PredReg(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Append a raw instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.kernel.instrs.push(i);
        self
    }

    /// Current instruction index (the pc the next pushed instruction gets).
    pub fn here(&self) -> usize {
        self.kernel.instrs.len()
    }

    fn emit(&mut self, op: Op, ty: Ty, srcs: Vec<Operand>) -> Reg {
        let d = self.fresh();
        self.kernel
            .instrs
            .push(Instr::new(op, ty, Some(Dst::Reg(d)), srcs));
        d
    }

    // ---- special registers -------------------------------------------------

    /// `mov dst, %tid.x`
    pub fn tid_x(&mut self) -> Reg {
        self.special(Special::Tid(0))
    }
    /// `mov dst, %tid.y`
    pub fn tid_y(&mut self) -> Reg {
        self.special(Special::Tid(1))
    }
    /// `mov dst, %tid.z`
    pub fn tid_z(&mut self) -> Reg {
        self.special(Special::Tid(2))
    }
    /// `mov dst, %ctaid.x`
    pub fn ctaid_x(&mut self) -> Reg {
        self.special(Special::Ctaid(0))
    }
    /// `mov dst, %ctaid.y`
    pub fn ctaid_y(&mut self) -> Reg {
        self.special(Special::Ctaid(1))
    }
    /// `mov dst, %ctaid.z`
    pub fn ctaid_z(&mut self) -> Reg {
        self.special(Special::Ctaid(2))
    }
    /// `mov dst, %ntid.x`
    pub fn ntid_x(&mut self) -> Reg {
        self.special(Special::Ntid(0))
    }
    /// `mov dst, %ntid.y`
    pub fn ntid_y(&mut self) -> Reg {
        self.special(Special::Ntid(1))
    }
    /// `mov dst, %nctaid.x`
    pub fn nctaid_x(&mut self) -> Reg {
        self.special(Special::Nctaid(0))
    }
    /// `mov dst, %nctaid.y`
    pub fn nctaid_y(&mut self) -> Reg {
        self.special(Special::Nctaid(1))
    }
    /// `mov dst, <special>`
    pub fn special(&mut self, s: Special) -> Reg {
        self.emit(Op::Mov, Ty::B32, vec![Operand::Special(s)])
    }

    /// The canonical 1-D global thread id: `ctaid.x * ntid.x + tid.x`.
    pub fn global_tid_x(&mut self) -> Reg {
        let t = self.tid_x();
        let c = self.ctaid_x();
        let n = self.ntid_x();
        self.mad(c, n, t)
    }

    // ---- parameters & immediates -------------------------------------------

    /// `ld.param.b64 dst, [Pn]` — pointer/size parameters.
    pub fn ld_param(&mut self, n: usize) -> Reg {
        self.emit(Op::LdParam, Ty::B64, vec![Operand::Imm(n as i64)])
    }

    /// `ld.param.b32 dst, [Pn]` — 32-bit scalar parameters.
    pub fn ld_param32(&mut self, n: usize) -> Reg {
        self.emit(Op::LdParam, Ty::B32, vec![Operand::Imm(n as i64)])
    }

    /// `mov.b32 dst, imm`
    pub fn imm32(&mut self, v: i32) -> Reg {
        self.emit(Op::Mov, Ty::B32, vec![Operand::Imm(v as i64)])
    }

    /// `mov.b64 dst, imm`
    pub fn imm64(&mut self, v: i64) -> Reg {
        self.emit(Op::Mov, Ty::B64, vec![Operand::Imm(v)])
    }

    /// `mov.f32 dst, imm`
    pub fn fimm32(&mut self, v: f32) -> Reg {
        self.emit(Op::Mov, Ty::F32, vec![Operand::fimm32(v)])
    }

    // ---- arithmetic ---------------------------------------------------------

    /// `add.b32 dst, a, b`
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.add_ty(Ty::B32, a, b)
    }

    /// `add.<ty> dst, a, b`
    pub fn add_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Add, ty, vec![a.into(), b.into()])
    }

    /// `add.b64 dst, a, b` (address arithmetic)
    pub fn add_wide(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.add_ty(Ty::B64, a, b)
    }

    /// `sub.b32 dst, a, b`
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.sub_ty(Ty::B32, a, b)
    }

    /// `sub.<ty> dst, a, b`
    pub fn sub_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Sub, ty, vec![a.into(), b.into()])
    }

    /// `mul.b32 dst, a, b`
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.mul_ty(Ty::B32, a, b)
    }

    /// `mul.<ty> dst, a, b`
    pub fn mul_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Mul, ty, vec![a.into(), b.into()])
    }

    /// `mad.b32 dst, a, b, c` — `a*b + c`
    pub fn mad(
        &mut self,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        self.mad_ty(Ty::B32, a, b, c)
    }

    /// `mad.<ty> dst, a, b, c`
    pub fn mad_ty(
        &mut self,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        c: impl Into<Operand>,
    ) -> Reg {
        self.emit(Op::Mad, ty, vec![a.into(), b.into(), c.into()])
    }

    /// `shl.b32 dst, a, bits`
    pub fn shl_imm(&mut self, a: impl Into<Operand>, bits: u32) -> Reg {
        self.emit(Op::Shl, Ty::B32, vec![a.into(), Operand::Imm(bits as i64)])
    }

    /// Widen to 64 bits then shift left: the idiomatic "index to byte offset"
    /// sequence (`cvt.b64` + `shl.b64`). Returns the 64-bit byte offset.
    pub fn shl_imm_wide(&mut self, a: impl Into<Operand>, bits: u32) -> Reg {
        let wide = self.cvt_wide(a);
        self.emit(
            Op::Shl,
            Ty::B64,
            vec![wide.into(), Operand::Imm(bits as i64)],
        )
    }

    /// `shr.<ty> dst, a, bits` (arithmetic shift)
    pub fn shr_imm(&mut self, ty: Ty, a: impl Into<Operand>, bits: u32) -> Reg {
        self.emit(Op::Shr, ty, vec![a.into(), Operand::Imm(bits as i64)])
    }

    /// `cvt.b64 dst, a` — sign-extend a 32-bit value to 64 bits.
    pub fn cvt_wide(&mut self, a: impl Into<Operand>) -> Reg {
        self.emit(Op::Cvt, Ty::B64, vec![a.into()])
    }

    /// `cvt.<ty> dst, a` — explicit conversion.
    pub fn cvt(&mut self, ty: Ty, a: impl Into<Operand>) -> Reg {
        self.emit(Op::Cvt, ty, vec![a.into()])
    }

    /// `and.<ty> dst, a, b`
    pub fn and_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::And, ty, vec![a.into(), b.into()])
    }

    /// `or.<ty> dst, a, b`
    pub fn or_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Or, ty, vec![a.into(), b.into()])
    }

    /// `xor.<ty> dst, a, b`
    pub fn xor_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Xor, ty, vec![a.into(), b.into()])
    }

    /// `min.<ty> dst, a, b`
    pub fn min_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Min, ty, vec![a.into(), b.into()])
    }

    /// `max.<ty> dst, a, b`
    pub fn max_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Max, ty, vec![a.into(), b.into()])
    }

    /// `div.<ty> dst, a, b`
    pub fn div_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Div, ty, vec![a.into(), b.into()])
    }

    /// `rem.<ty> dst, a, b`
    pub fn rem_ty(&mut self, ty: Ty, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.emit(Op::Rem, ty, vec![a.into(), b.into()])
    }

    /// `<sfu>.<ty> dst, a` — special-function-unit op.
    pub fn sfu(&mut self, op: SfuOp, ty: Ty, a: impl Into<Operand>) -> Reg {
        self.emit(Op::Sfu(op), ty, vec![a.into()])
    }

    /// Loop-carried update: `add.<ty> r, r, b` writing an *existing* register.
    ///
    /// This deliberately breaks SSA the same way PTX loop iterators do, which
    /// is what the analyzer's multi-write detection keys on.
    pub fn assign_add(&mut self, ty: Ty, r: Reg, b: impl Into<Operand>) -> &mut Self {
        self.kernel.instrs.push(Instr::new(
            Op::Add,
            ty,
            Some(Dst::Reg(r)),
            vec![r.into(), b.into()],
        ));
        self
    }

    /// Loop-carried copy: `mov.<ty> r, src` writing an existing register.
    pub fn assign_mov(&mut self, ty: Ty, r: Reg, src: impl Into<Operand>) -> &mut Self {
        self.kernel
            .instrs
            .push(Instr::new(Op::Mov, ty, Some(Dst::Reg(r)), vec![src.into()]));
        self
    }

    /// Guarded mov into an existing register (`@%p mov r, src`).
    pub fn assign_mov_if(
        &mut self,
        ty: Ty,
        r: Reg,
        src: impl Into<Operand>,
        p: PredReg,
        sense: bool,
    ) -> &mut Self {
        self.kernel.instrs.push(
            Instr::new(Op::Mov, ty, Some(Dst::Reg(r)), vec![src.into()]).with_guard(p, sense),
        );
        self
    }

    // ---- predicates & control flow -----------------------------------------

    /// `setp.<cmp>.<ty> %p, a, b`
    pub fn setp(
        &mut self,
        cmp: CmpOp,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> PredReg {
        let p = self.fresh_pred();
        self.kernel.instrs.push(Instr::new(
            Op::Setp(cmp),
            ty,
            Some(Dst::Pred(p)),
            vec![a.into(), b.into()],
        ));
        p
    }

    /// `selp.<ty> dst, a, b, %p` — dst = p ? a : b
    pub fn selp(
        &mut self,
        ty: Ty,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
        p: PredReg,
    ) -> Reg {
        self.emit(Op::Selp, ty, vec![a.into(), b.into(), Operand::Pred(p)])
    }

    /// Create an unplaced label for forward branches.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Place a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, l: Label) -> &mut Self {
        assert!(self.labels[l.0].is_none(), "label placed twice");
        self.labels[l.0] = Some(self.kernel.instrs.len());
        self
    }

    /// Create a label placed at the current position (for backward branches).
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.place(l);
        l
    }

    /// Unconditional `bra label`.
    pub fn bra(&mut self, l: Label) -> &mut Self {
        let pc = self.kernel.instrs.len();
        self.kernel
            .instrs
            .push(Instr::new(Op::Bra(u32::MAX), Ty::B32, None, vec![]));
        self.pending.push((pc, l));
        self
    }

    /// Predicated `@%p bra label` (or `@!%p` when `sense` is false).
    pub fn bra_if(&mut self, p: PredReg, sense: bool, l: Label) -> &mut Self {
        let pc = self.kernel.instrs.len();
        self.kernel
            .instrs
            .push(Instr::new(Op::Bra(u32::MAX), Ty::B32, None, vec![]).with_guard(p, sense));
        self.pending.push((pc, l));
        self
    }

    /// `bar.sync` — block-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.kernel
            .instrs
            .push(Instr::new(Op::Bar, Ty::B32, None, vec![]));
        self
    }

    /// `exit`
    pub fn exit(&mut self) -> &mut Self {
        self.kernel
            .instrs
            .push(Instr::new(Op::Exit, Ty::B32, None, vec![]));
        self
    }

    // ---- memory -------------------------------------------------------------

    /// `ld.global.<ty> dst, [addr+off]`
    pub fn ld_global(&mut self, ty: Ty, addr: Reg, off: i64) -> Reg {
        let d = self.fresh();
        self.kernel.instrs.push(
            Instr::new(Op::Ld(MemSpace::Global), ty, Some(Dst::Reg(d)), vec![]).with_mem(MemRef {
                base: Operand::Reg(addr),
                offset: MemOffset::Imm(off),
            }),
        );
        d
    }

    /// `st.global.<ty> [addr+off], val`
    pub fn st_global(&mut self, ty: Ty, addr: Reg, off: i64, val: impl Into<Operand>) -> &mut Self {
        self.kernel.instrs.push(
            Instr::new(Op::St(MemSpace::Global), ty, None, vec![val.into()]).with_mem(MemRef {
                base: Operand::Reg(addr),
                offset: MemOffset::Imm(off),
            }),
        );
        self
    }

    /// `ld.shared.<ty> dst, [addr+off]`
    pub fn ld_shared(&mut self, ty: Ty, addr: Reg, off: i64) -> Reg {
        let d = self.fresh();
        self.kernel.instrs.push(
            Instr::new(Op::Ld(MemSpace::Shared), ty, Some(Dst::Reg(d)), vec![]).with_mem(MemRef {
                base: Operand::Reg(addr),
                offset: MemOffset::Imm(off),
            }),
        );
        d
    }

    /// `st.shared.<ty> [addr+off], val`
    pub fn st_shared(&mut self, ty: Ty, addr: Reg, off: i64, val: impl Into<Operand>) -> &mut Self {
        self.kernel.instrs.push(
            Instr::new(Op::St(MemSpace::Shared), ty, None, vec![val.into()]).with_mem(MemRef {
                base: Operand::Reg(addr),
                offset: MemOffset::Imm(off),
            }),
        );
        self
    }

    /// `atom.<op>.<ty> dst, [addr+off], val` — returns the old value.
    pub fn atom(
        &mut self,
        op: AtomOp,
        ty: Ty,
        addr: Reg,
        off: i64,
        val: impl Into<Operand>,
    ) -> Reg {
        let d = self.fresh();
        self.kernel.instrs.push(
            Instr::new(Op::Atom(op), ty, Some(Dst::Reg(d)), vec![val.into()]).with_mem(MemRef {
                base: Operand::Reg(addr),
                offset: MemOffset::Imm(off),
            }),
        );
        d
    }

    /// Guard the most recently pushed instruction with `@%p` / `@!%p`.
    ///
    /// # Panics
    ///
    /// Panics if no instruction has been pushed yet.
    pub fn guard_last(&mut self, p: PredReg, sense: bool) -> &mut Self {
        let i = self
            .kernel
            .instrs
            .last_mut()
            .expect("no instruction to guard");
        i.guard = Some((p, sense));
        self
    }

    /// Resolve labels and finish the kernel, appending a final `exit` if the
    /// stream does not already end in one.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never placed.
    pub fn build(mut self) -> Kernel {
        match self.kernel.instrs.last() {
            Some(i) if i.guard.is_none() && matches!(i.op, Op::Exit) => {}
            _ => {
                self.kernel
                    .instrs
                    .push(Instr::new(Op::Exit, Ty::B32, None, vec![]));
            }
        }
        for (pc, l) in &self.pending {
            let target = self.labels[l.0].expect("branch to unplaced label");
            if let Op::Bra(ref mut t) = self.kernel.instrs[*pc].op {
                *t = target as u32;
            }
        }
        self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vecadd_builds_and_validates() {
        let mut b = KernelBuilder::new("vecadd", 3);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let pa = b.ld_param(0);
        let a = b.add_wide(pa, off);
        let v = b.ld_global(Ty::F32, a, 0);
        let pb = b.ld_param(1);
        let c = b.add_wide(pb, off);
        b.st_global(Ty::F32, c, 0, v);
        let k = b.build();
        assert!(k.validate().is_ok());
        assert_eq!(k.instrs.last().unwrap().op, Op::Exit);
    }

    #[test]
    fn loop_with_backward_branch() {
        let mut b = KernelBuilder::new("loop", 0);
        let i = b.imm32(0);
        let top = b.here_label();
        b.assign_add(Ty::B32, i, Operand::Imm(1));
        let p = b.setp(CmpOp::Lt, Ty::B32, i, Operand::Imm(10));
        b.bra_if(p, true, top);
        let k = b.build();
        assert!(k.validate().is_ok());
        // The backward branch targets the assign_add.
        let bra = k
            .instrs
            .iter()
            .find(|x| matches!(x.op, Op::Bra(_)))
            .unwrap();
        if let Op::Bra(t) = bra.op {
            assert_eq!(t, 1);
        }
    }

    #[test]
    fn forward_label_resolved() {
        let mut b = KernelBuilder::new("fwd", 0);
        let skip = b.label();
        let x = b.imm32(3);
        let p = b.setp(CmpOp::Eq, Ty::B32, x, Operand::Imm(3));
        b.bra_if(p, true, skip);
        b.imm32(99); // skipped work
        b.place(skip);
        b.exit();
        let k = b.build();
        assert!(k.validate().is_ok());
        if let Op::Bra(t) = k.instrs[2].op {
            assert_eq!(t as usize, 4);
        } else {
            panic!("expected bra at 2");
        }
    }

    #[test]
    #[should_panic(expected = "unplaced label")]
    fn unplaced_label_panics() {
        let mut b = KernelBuilder::new("bad", 0);
        let l = b.label();
        b.bra(l);
        let _ = b.build();
    }

    #[test]
    fn build_appends_exit_once() {
        let mut b = KernelBuilder::new("k", 0);
        b.exit();
        let k = b.build();
        assert_eq!(k.instrs.len(), 1);
    }
}
