//! Text assembler for the PTX-like kernel format.
//!
//! Accepts the format produced by the `Display` impls (numeric branch targets,
//! `/*pc*/` comments) and the more convenient human-written form with `Label:`
//! lines and `bra Label;`.

use crate::instr::{
    AtomOp, CmpOp, Dst, Instr, MemOffset, MemRef, MemSpace, Op, Operand, PredReg, Reg, SfuOp,
    Special, Ty,
};
use crate::kernel::Kernel;
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`parse_kernel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a kernel from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line on malformed input,
/// unknown mnemonics/operands, or unresolved labels.
///
/// # Example
///
/// ```
/// let src = r#"
/// .kernel scale params=2 {
///   mov.b32 %r0, %tid.x;
///   ld.param.b64 %r1, [P0];
///   cvt.b64 %r2, %r0;
///   shl.b64 %r3, %r2, 2;
///   add.b64 %r4, %r1, %r3;
///   ld.global.f32 %r5, [%r4];
///   mul.f32 %r6, %r5, %r5;
///   st.global.f32 [%r4], %r6;
///   exit;
/// }
/// "#;
/// let k = r2d2_isa::parse_kernel(src).unwrap();
/// assert_eq!(k.name, "scale");
/// assert!(k.validate().is_ok());
/// ```
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let mut name = String::new();
    let mut num_params = 0usize;
    let mut shared_bytes = 0u32;
    let mut body: Vec<(usize, String)> = Vec::new(); // (line, statement)
    let mut in_body = false;
    let mut header_seen = false;

    for (ln, raw) in src.lines().enumerate() {
        let line = ln + 1;
        let mut s = raw.to_string();
        // strip comments
        if let Some(p) = s.find("//") {
            s.truncate(p);
        }
        while let (Some(a), Some(b)) = (s.find("/*"), s.find("*/")) {
            if b < a {
                return err(line, "unmatched block comment");
            }
            s.replace_range(a..b + 2, " ");
        }
        let t = s.trim();
        if t.is_empty() {
            continue;
        }
        if t.starts_with(".kernel") {
            if header_seen {
                return err(line, "multiple .kernel headers");
            }
            header_seen = true;
            let rest = t
                .trim_start_matches(".kernel")
                .trim()
                .trim_end_matches('{')
                .trim();
            for (i, tok) in rest.split_whitespace().enumerate() {
                if i == 0 {
                    name = tok.to_string();
                } else if let Some(v) = tok.strip_prefix("params=") {
                    num_params = v.parse().map_err(|_| ParseError {
                        line,
                        msg: "bad params=".into(),
                    })?;
                } else if let Some(v) = tok.strip_prefix("shared=") {
                    shared_bytes = v.parse().map_err(|_| ParseError {
                        line,
                        msg: "bad shared=".into(),
                    })?;
                } else {
                    return err(line, format!("unexpected header token `{tok}`"));
                }
            }
            in_body = true;
            continue;
        }
        if t == "}" {
            in_body = false;
            continue;
        }
        if !in_body {
            return err(line, "statement outside .kernel { }");
        }
        // Split on ';' — multiple statements per line allowed; labels end with ':'.
        let mut rest = t;
        loop {
            rest = rest.trim();
            if rest.is_empty() {
                break;
            }
            // A label?
            if let Some(p) = rest.find(':') {
                let candidate = &rest[..p];
                if !candidate.contains(';')
                    && !candidate.is_empty()
                    && candidate.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && !candidate.chars().next().unwrap().is_ascii_digit()
                {
                    body.push((line, format!("{candidate}:")));
                    rest = &rest[p + 1..];
                    continue;
                }
            }
            match rest.find(';') {
                Some(p) => {
                    body.push((line, rest[..p].trim().to_string()));
                    rest = &rest[p + 1..];
                }
                None => {
                    return err(line, "missing `;`");
                }
            }
        }
    }
    if !header_seen {
        return err(0, "missing .kernel header");
    }

    // First pass: label positions.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut pc = 0usize;
    for (line, stmt) in &body {
        if let Some(lbl) = stmt.strip_suffix(':') {
            if labels.insert(lbl.to_string(), pc).is_some() {
                return err(*line, format!("duplicate label `{lbl}`"));
            }
        } else if !stmt.is_empty() {
            pc += 1;
        }
    }

    // Second pass: instructions.
    let mut instrs = Vec::with_capacity(pc);
    for (line, stmt) in &body {
        if stmt.ends_with(':') || stmt.is_empty() {
            continue;
        }
        instrs.push(parse_instr(*line, stmt, &labels)?);
    }

    Ok(Kernel {
        name,
        num_params,
        instrs,
        shared_bytes,
    })
}

fn parse_instr(
    line: usize,
    stmt: &str,
    labels: &HashMap<String, usize>,
) -> Result<Instr, ParseError> {
    let mut s = stmt.trim();
    // guard
    let mut guard = None;
    if let Some(rest) = s.strip_prefix('@') {
        let (sense, rest) = match rest.strip_prefix('!') {
            Some(r) => (false, r),
            None => (true, rest),
        };
        let end = rest.find(char::is_whitespace).ok_or(ParseError {
            line,
            msg: "guard without instruction".into(),
        })?;
        let ptok = &rest[..end];
        let p = parse_pred(line, ptok)?;
        guard = Some((p, sense));
        s = rest[end..].trim();
    }
    // mnemonic
    let (mn, ops_str) = match s.find(char::is_whitespace) {
        Some(p) => (&s[..p], s[p..].trim()),
        None => (s, ""),
    };
    let parts: Vec<&str> = mn.split('.').collect();
    let ops: Vec<String> = split_operands(ops_str);

    let last_ty = |parts: &[&str]| -> Ty { parse_ty(parts.last().copied().unwrap_or("b32")) };

    let base = parts[0];
    let mut instr = match base {
        "bra" => {
            if ops.len() != 1 {
                return err(line, "bra takes one target");
            }
            let target = if let Ok(n) = ops[0].parse::<u32>() {
                n
            } else if let Some(&t) = labels.get(ops[0].as_str()) {
                t as u32
            } else {
                return err(line, format!("unknown label `{}`", ops[0]));
            };
            Instr::new(Op::Bra(target), Ty::B32, None, vec![])
        }
        "bar" => Instr::new(Op::Bar, Ty::B32, None, vec![]),
        "exit" => Instr::new(Op::Exit, Ty::B32, None, vec![]),
        "setp" => {
            if parts.len() < 3 {
                return err(line, "setp needs .cmp.ty");
            }
            let cmp = parse_cmp(line, parts[1])?;
            let ty = parse_ty(parts[2]);
            if ops.len() != 3 {
                return err(line, "setp takes %p, a, b");
            }
            let p = parse_pred(line, &ops[0])?;
            Instr::new(
                Op::Setp(cmp),
                ty,
                Some(Dst::Pred(p)),
                vec![parse_operand(line, &ops[1])?, parse_operand(line, &ops[2])?],
            )
        }
        "ld" if parts.get(1) == Some(&"param") => {
            let ty = last_ty(&parts);
            if ops.len() != 2 {
                return err(line, "ld.param takes dst, [Pn]");
            }
            let dst = parse_dst(line, &ops[0])?;
            let inner = ops[1]
                .strip_prefix("[P")
                .and_then(|x| x.strip_suffix(']'))
                .ok_or(ParseError {
                    line,
                    msg: "ld.param needs [Pn]".into(),
                })?;
            let n: i64 = inner.parse().map_err(|_| ParseError {
                line,
                msg: "bad param index".into(),
            })?;
            Instr::new(Op::LdParam, ty, Some(dst), vec![Operand::Imm(n)])
        }
        "ld" | "st" | "atom" => {
            let space = match (base, parts.get(1)) {
                ("atom", _) => MemSpace::Global,
                (_, Some(&"global")) => MemSpace::Global,
                (_, Some(&"shared")) => MemSpace::Shared,
                _ => return err(line, "ld/st needs .global or .shared"),
            };
            let ty = last_ty(&parts);
            match base {
                "ld" => {
                    if ops.len() != 2 {
                        return err(line, "ld takes dst, [addr]");
                    }
                    let dst = parse_dst(line, &ops[0])?;
                    let mem = parse_memref(line, &ops[1])?;
                    Instr::new(Op::Ld(space), ty, Some(dst), vec![]).with_mem(mem)
                }
                "st" => {
                    if ops.len() != 2 {
                        return err(line, "st takes [addr], src");
                    }
                    let mem = parse_memref(line, &ops[0])?;
                    let v = parse_operand(line, &ops[1])?;
                    Instr::new(Op::St(space), ty, None, vec![v]).with_mem(mem)
                }
                _ => {
                    let aop = parse_atom(line, parts.get(1).copied().unwrap_or(""))?;
                    let nsrc = if aop == AtomOp::Cas { 2 } else { 1 };
                    if ops.len() != 2 + nsrc {
                        return err(line, "atom takes dst, [addr], src(s)");
                    }
                    let dst = parse_dst(line, &ops[0])?;
                    let mem = parse_memref(line, &ops[1])?;
                    let mut srcs = Vec::new();
                    for o in &ops[2..] {
                        srcs.push(parse_operand(line, o)?);
                    }
                    Instr::new(Op::Atom(aop), ty, Some(dst), srcs).with_mem(mem)
                }
            }
        }
        _ => {
            // plain ALU / SFU op: mnemonic.ty
            let ty = last_ty(&parts);
            let op = match base {
                "mov" => Op::Mov,
                "cvt" => Op::Cvt,
                "add" => Op::Add,
                "sub" => Op::Sub,
                "mul" => Op::Mul,
                "mad" => Op::Mad,
                "shl" => Op::Shl,
                "shr" => Op::Shr,
                "and" => Op::And,
                "or" => Op::Or,
                "xor" => Op::Xor,
                "not" => Op::Not,
                "min" => Op::Min,
                "max" => Op::Max,
                "div" => Op::Div,
                "rem" => Op::Rem,
                "abs" => Op::Abs,
                "neg" => Op::Neg,
                "selp" => Op::Selp,
                "rcp" => Op::Sfu(SfuOp::Rcp),
                "sqrt" => Op::Sfu(SfuOp::Sqrt),
                "rsqrt" => Op::Sfu(SfuOp::Rsqrt),
                "ex2" => Op::Sfu(SfuOp::Ex2),
                "lg2" => Op::Sfu(SfuOp::Lg2),
                "sin" => Op::Sfu(SfuOp::Sin),
                "cos" => Op::Sfu(SfuOp::Cos),
                _ => return err(line, format!("unknown mnemonic `{mn}`")),
            };
            if ops.is_empty() {
                return err(line, "missing destination");
            }
            let dst = parse_dst(line, &ops[0])?;
            let mut srcs = Vec::new();
            for o in &ops[1..] {
                srcs.push(parse_operand(line, o)?);
            }
            Instr::new(op, ty, Some(dst), srcs)
        }
    };
    instr.guard = guard;
    Ok(instr)
}

/// Split operands on commas that are not inside brackets.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' => {
                depth += 1;
                cur.push(c);
            }
            ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                let t = cur.trim().to_string();
                if !t.is_empty() {
                    out.push(t);
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let t = cur.trim().to_string();
    if !t.is_empty() {
        out.push(t);
    }
    out
}

fn parse_ty(s: &str) -> Ty {
    match s {
        "b64" | "s64" | "u64" => Ty::B64,
        "f32" => Ty::F32,
        "f64" => Ty::F64,
        "pred" => Ty::Pred,
        _ => Ty::B32,
    }
}

fn parse_cmp(line: usize, s: &str) -> Result<CmpOp, ParseError> {
    Ok(match s {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        _ => return err(line, format!("unknown comparison `{s}`")),
    })
}

fn parse_atom(line: usize, s: &str) -> Result<AtomOp, ParseError> {
    Ok(match s {
        "add" => AtomOp::Add,
        "min" => AtomOp::Min,
        "max" => AtomOp::Max,
        "exch" => AtomOp::Exch,
        "cas" => AtomOp::Cas,
        _ => return err(line, format!("unknown atomic `{s}`")),
    })
}

fn parse_pred(line: usize, s: &str) -> Result<PredReg, ParseError> {
    s.strip_prefix("%p")
        .and_then(|x| x.parse().ok())
        .map(PredReg)
        .ok_or(ParseError {
            line,
            msg: format!("expected predicate register, got `{s}`"),
        })
}

fn parse_dst(line: usize, s: &str) -> Result<Dst, ParseError> {
    if let Some(x) = s.strip_prefix("%tr") {
        if let Ok(n) = x.parse() {
            return Ok(Dst::Tr(n));
        }
    }
    if let Some(x) = s.strip_prefix("%br") {
        if let Ok(n) = x.parse() {
            return Ok(Dst::Br(n));
        }
    }
    if let Some(x) = s.strip_prefix("%cr") {
        if let Ok(n) = x.parse() {
            return Ok(Dst::Cr(n));
        }
    }
    if let Some(x) = s.strip_prefix("%p") {
        if let Ok(n) = x.parse() {
            return Ok(Dst::Pred(PredReg(n)));
        }
    }
    if let Some(x) = s.strip_prefix("%r") {
        if let Ok(n) = x.parse() {
            return Ok(Dst::Reg(Reg(n)));
        }
    }
    err(line, format!("expected destination register, got `{s}`"))
}

fn parse_special(s: &str) -> Option<Special> {
    let dim = |d: &str| -> Option<u8> {
        match d {
            "x" => Some(0),
            "y" => Some(1),
            "z" => Some(2),
            _ => None,
        }
    };
    if let Some(r) = s.strip_prefix("%tid.") {
        return dim(r).map(Special::Tid);
    }
    if let Some(r) = s.strip_prefix("%ctaid.") {
        return dim(r).map(Special::Ctaid);
    }
    if let Some(r) = s.strip_prefix("%ntid.") {
        return dim(r).map(Special::Ntid);
    }
    if let Some(r) = s.strip_prefix("%nctaid.") {
        return dim(r).map(Special::Nctaid);
    }
    match s {
        "%laneid" => Some(Special::LaneId),
        "%smid" => Some(Special::SmId),
        _ => None,
    }
}

fn parse_operand(line: usize, s: &str) -> Result<Operand, ParseError> {
    if let Some(sp) = parse_special(s) {
        return Ok(Operand::Special(sp));
    }
    if let Some(x) = s.strip_prefix("%tr") {
        if let Ok(n) = x.parse() {
            return Ok(Operand::Tr(n));
        }
    }
    if let Some(x) = s.strip_prefix("%br") {
        if let Ok(n) = x.parse() {
            return Ok(Operand::Br(n));
        }
    }
    if let Some(x) = s.strip_prefix("%cr") {
        if let Ok(n) = x.parse() {
            return Ok(Operand::Cr(n));
        }
    }
    if let Some(x) = s.strip_prefix("%lr") {
        if let Ok(n) = x.parse() {
            return Ok(Operand::Lr(n));
        }
    }
    if let Some(x) = s.strip_prefix("%p") {
        if let Ok(n) = x.parse() {
            return Ok(Operand::Pred(PredReg(n)));
        }
    }
    if let Some(x) = s.strip_prefix("%r") {
        if let Ok(n) = x.parse() {
            return Ok(Operand::Reg(Reg(n)));
        }
    }
    // integer immediate (decimal or 0x hex)
    let v = if let Some(h) = s.strip_prefix("0x") {
        i64::from_str_radix(h, 16).ok()
    } else if let Some(h) = s.strip_prefix("-0x") {
        i64::from_str_radix(h, 16).ok().map(|v| -v)
    } else {
        s.parse::<i64>().ok()
    };
    match v {
        Some(v) => Ok(Operand::Imm(v)),
        None => err(line, format!("cannot parse operand `{s}`")),
    }
}

fn parse_memref(line: usize, s: &str) -> Result<MemRef, ParseError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or(ParseError {
            line,
            msg: format!("expected [addr], got `{s}`"),
        })?;
    // forms: base | base+imm | base-imm | base+%crN | base+%crN+imm
    // Split at the FIRST +/- after the base register (the offset part may
    // itself contain a '+', e.g. `%lr0+%cr9+768`).
    let plus = inner.find('+');
    let minus = inner.find('-');
    let (base_s, off) = match (plus, minus) {
        (Some(p), Some(m)) if m < p => (&inner[..m], Some((&inner[m + 1..], -1i64))),
        (Some(p), _) => (&inner[..p], Some((&inner[p + 1..], 1i64))),
        (None, Some(m)) => (&inner[..m], Some((&inner[m + 1..], -1i64))),
        (None, None) => (inner, None),
    };
    let base = parse_operand(line, base_s.trim())?;
    let offset = match off {
        None => MemOffset::Imm(0),
        Some((tok, sign)) => {
            let tok = tok.trim();
            if let Some(x) = tok.strip_prefix("%cr") {
                if sign < 0 {
                    return err(line, "negative %cr offset not supported");
                }
                // %crN, %crN+imm or %crN-imm
                let (crs, rest) = match x.find(['+', '-']) {
                    Some(p) => (&x[..p], Some(&x[p..])),
                    None => (x, None),
                };
                let cr: u16 = crs.parse().map_err(|_| ParseError {
                    line,
                    msg: "bad %cr".into(),
                })?;
                match rest {
                    None => MemOffset::Cr(cr),
                    Some(r) => {
                        let v: i64 = r.parse().map_err(|_| ParseError {
                            line,
                            msg: "bad %cr offset".into(),
                        })?;
                        MemOffset::CrImm(cr, v)
                    }
                }
            } else {
                let v: i64 = tok.parse().map_err(|_| ParseError {
                    line,
                    msg: "bad offset".into(),
                })?;
                MemOffset::Imm(sign * v)
            }
        }
    };
    Ok(MemRef { base, offset })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn parse_minimal() {
        let k = parse_kernel(".kernel k params=0 {\n exit;\n}").unwrap();
        assert_eq!(k.instrs.len(), 1);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn parse_labels_and_guards() {
        let src = r#"
.kernel loop params=1 shared=16 {
  mov.b32 %r0, 0;
TOP:
  add.b32 %r0, %r0, 1;
  setp.lt.b32 %p0, %r0, 10;
  @%p0 bra TOP;
  @!%p0 bra DONE;
DONE:
  exit;
}
"#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.name, "loop");
        assert_eq!(k.shared_bytes, 16);
        assert!(k.validate().is_ok());
        if let Op::Bra(t) = k.instrs[3].op {
            assert_eq!(t, 1);
        } else {
            panic!("expected bra");
        }
        assert_eq!(k.instrs[3].guard, Some((PredReg(0), true)));
        assert_eq!(k.instrs[4].guard, Some((PredReg(0), false)));
    }

    #[test]
    fn parse_memrefs() {
        let src = r#"
.kernel m params=2 {
  ld.param.b64 %r0, [P1];
  ld.global.f32 %r1, [%r0+8];
  ld.global.f32 %r2, [%r0-4];
  st.shared.b32 [%r0], %r1;
  atom.add.b32 %r3, [%r0+16], %r1;
  ld.global.f32 %r4, [%lr1+%cr7];
  exit;
}
"#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(
            k.instrs[1].mem,
            Some(MemRef {
                base: Operand::Reg(Reg(0)),
                offset: MemOffset::Imm(8)
            })
        );
        assert_eq!(
            k.instrs[2].mem,
            Some(MemRef {
                base: Operand::Reg(Reg(0)),
                offset: MemOffset::Imm(-4)
            })
        );
        assert_eq!(
            k.instrs[5].mem,
            Some(MemRef {
                base: Operand::Lr(1),
                offset: MemOffset::Cr(7)
            })
        );
    }

    #[test]
    fn roundtrip_display_parse() {
        let mut b = KernelBuilder::new("rt", 2);
        let i = b.global_tid_x();
        let p0 = b.ld_param(0);
        let off = b.shl_imm_wide(i, 2);
        let a = b.add_wide(p0, off);
        let v = b.ld_global(Ty::F32, a, 4);
        let w = b.mul_ty(Ty::F32, v, v);
        let p = b.setp(CmpOp::Ge, Ty::F32, w, Operand::fimm32(0.0));
        b.st_global(Ty::F32, a, 0, w);
        b.guard_last(p, true);
        let k = b.build();
        let text = k.to_string();
        let k2 = parse_kernel(&text).unwrap();
        assert_eq!(k, k2, "display->parse must round-trip\n{text}");
    }

    #[test]
    fn error_reports_line() {
        let src = ".kernel k params=0 {\n bogus.b32 %r0, %r1;\n exit;\n}";
        let e = parse_kernel(src).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
    }

    #[test]
    fn unknown_label_is_error() {
        let src = ".kernel k params=0 {\n bra NOWHERE;\n exit;\n}";
        assert!(parse_kernel(src).is_err());
    }

    #[test]
    fn special_registers_parse() {
        let src = ".kernel k params=0 {\n mov.b32 %r0, %ctaid.y;\n mov.b32 %r1, %ntid.z;\n mov.b32 %r2, %laneid;\n exit;\n}";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.instrs[0].srcs[0], Operand::Special(Special::Ctaid(1)));
        assert_eq!(k.instrs[1].srcs[0], Operand::Special(Special::Ntid(2)));
        assert_eq!(k.instrs[2].srcs[0], Operand::Special(Special::LaneId));
    }
}
