#![warn(missing_docs)]
//! A PTX-like virtual ISA for the R2D2 reproduction.
//!
//! The paper's software support operates on NVIDIA PTX: a static-single-
//! assignment-style intermediate representation with special registers for the
//! built-in indices (`%tid.x`, `%ctaid.y`, ...), parameter loads
//! (`ld.param`), and the arithmetic opcodes the analyzer tracks (Fig. 6:
//! `mov`, `cvt`, `add`, `sub`, `mul`, `shl`, `mad`). This crate defines a
//! faithful, self-contained equivalent:
//!
//! * [`Instr`] / [`Op`] / [`Operand`] — the instruction set, including the four
//!   R2D2 register classes (`%tr`, `%br`, `%cr`, `%lr`) that only appear in
//!   transformed kernels (paper Sec. 3.2).
//! * [`Kernel`] — a flat instruction stream with resolved branch targets,
//!   parameter count and shared-memory footprint, plus validation.
//! * [`KernelBuilder`] — an ergonomic programmatic front end used by the
//!   workload zoo.
//! * [`parse_kernel`] — a text assembler for the human-readable form that
//!   [`fmt::Display`](std::fmt::Display) produces, so kernels round-trip.
//! * [`Cfg`] — basic blocks, back edge detection, and immediate post-dominators
//!   (the simulator's SIMT reconvergence points).
//!
//! # Example
//!
//! ```
//! use r2d2_isa::{KernelBuilder, Ty};
//!
//! // out[i] = a[i] + b[i] with i = ctaid.x * ntid.x + tid.x
//! let mut b = KernelBuilder::new("vecadd", 3);
//! let tid = b.tid_x();
//! let cta = b.ctaid_x();
//! let ntid = b.ntid_x();
//! let i = b.mad(cta, ntid, tid);
//! let off = b.shl_imm_wide(i, 2);
//! let pa = b.ld_param(0);
//! let pb = b.ld_param(1);
//! let pc = b.ld_param(2);
//! let aa = b.add_ty(Ty::B64, pa, off);
//! let ba = b.add_ty(Ty::B64, pb, off);
//! let ca = b.add_ty(Ty::B64, pc, off);
//! let va = b.ld_global(Ty::F32, aa, 0);
//! let vb = b.ld_global(Ty::F32, ba, 0);
//! let vc = b.add_ty(Ty::F32, va, vb);
//! b.st_global(Ty::F32, ca, 0, vc);
//! let k = b.build();
//! assert!(k.validate().is_ok());
//! ```

mod builder;
mod cfg;
mod instr;
mod kernel;
mod parse;
mod sched;

pub use builder::{KernelBuilder, Label};
pub use cfg::{BasicBlock, Cfg};
pub use instr::{
    AtomOp, CmpOp, Dst, Instr, MemOffset, MemRef, MemSpace, Op, Operand, PredReg, Reg, RegClass,
    SfuOp, Special, Ty,
};
pub use kernel::{Kernel, ValidateError};
pub use parse::{parse_kernel, ParseError};
pub use sched::schedule;
