//! Sharded multi-threaded timing loop.
//!
//! SMs interact only through the shared L2/DRAM side (and global memory), so
//! the loop partitions them into contiguous shards, runs each shard on a
//! `std::thread::scope` worker, and synchronizes on fixed-length *cycle
//! epochs*. Within an epoch every shard simulates its SMs privately; all
//! L2/DRAM-bound work is deferred into per-shard queues ([`DrainItem`]) and
//! resolved by the coordinator at the epoch boundary in deterministic
//! `(cycle, sm, program order)` order — exactly the order the sequential
//! loop would have touched the shared state in. Scoreboard destinations of
//! deferred accesses hold [`PENDING`] until the drain; the epoch length is
//! chosen (`min(l2_hit, dram, atomic)`) so no dependent could have issued
//! before the boundary anyway, which makes the sentinel invisible to
//! scheduling. The result is bit-identical `Stats`, memory contents, and
//! stall attribution versus `threads = 1`. See DESIGN.md "Sharded execution
//! & epoch protocol".
//!
//! Caveat (documented, not checked): kernels where a *plain* load races a
//! same-epoch store or atomic from another warp to the same address are not
//! deterministic across thread counts under `threads > 1` (the zoo's atomic
//! workloads are write-only or double-buffered, so all shipped workloads are
//! safe). Runs at a fixed thread count are always deterministic.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use super::{
    sm_pass_event, sm_pass_lockstep, DrainItem, EvAcc, EvKind, L2Kind, LaunchCtx, MemBackend,
    MemSide, Shared, SimError, Sm, CAUSE_DRAM, CAUSE_LSU, DEADLOCK_WINDOW, PENDING,
};
use crate::config::LoopKind;
use crate::exec::{atomic_rmw, OperandVals};
use crate::filter::IssueFilter;
use crate::mem::GlobalMem;
use crate::stats::Stats;
use r2d2_isa::Dst;
use r2d2_trace::{EventSink, NullSink, ShardBuffer, ShardSink, StallCause};

/// A sense-reversing spin barrier. `std::sync::Barrier` parks threads on a
/// condvar, which costs microseconds per crossing — at two crossings per
/// epoch that overhead would eat the parallel speedup on short epochs, so
/// workers spin briefly and then yield.
struct SpinBarrier {
    count: u64,
    arrived: AtomicU64,
    generation: AtomicU64,
}

impl SpinBarrier {
    fn new(count: usize) -> Self {
        SpinBarrier {
            count: count as u64,
            arrived: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::SeqCst);
        if self.arrived.fetch_add(1, Ordering::SeqCst) + 1 == self.count {
            self.arrived.store(0, Ordering::SeqCst);
            self.generation.fetch_add(1, Ordering::SeqCst);
        } else {
            // Brief spin for the common multi-core case, then yield so
            // oversubscribed (or single-core) machines still make progress.
            let mut spins = 0u32;
            while self.generation.load(Ordering::SeqCst) == generation {
                spins = spins.wrapping_add(1);
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The deferred [`MemBackend`] owned by one shard.
struct ShardMem<'g, 'm> {
    /// The real global memory, locked only for the functional effects of
    /// global loads/stores (atomics defer their RMW to the drain).
    gmem: &'m Mutex<&'g mut GlobalMem>,
    /// Empty arena handed to instructions that must not touch global memory.
    /// An out-of-bounds panic here means the `needs_global` gating in
    /// `attempt_issue` is wrong — loud, instead of a silent race.
    dummy: GlobalMem,
    /// Deferred events and stall fixes, in shard program order.
    queue: Vec<DrainItem>,
}

impl MemBackend for ShardMem<'_, '_> {
    const DEFERRED: bool = true;

    fn with_gmem<R>(&mut self, needs_global: bool, f: impl FnOnce(&mut GlobalMem) -> R) -> R {
        if needs_global {
            let mut g = self.gmem.lock().unwrap();
            f(&mut g)
        } else {
            f(&mut self.dummy)
        }
    }

    fn side(&mut self) -> &mut MemSide {
        unreachable!("sharded backend resolves the shared memory side at the epoch drain")
    }

    fn defer(&mut self, item: DrainItem) {
        self.queue.push(item);
    }
}

/// One shard's complete private state. Workers lock it during the simulate
/// phase, the coordinator during drains; the barrier protocol makes the lock
/// uncontended — it exists so the borrow checker and `Send` bounds stay
/// honest.
struct ShardState<'g, 'm, S2: ShardSink> {
    sms: Vec<Sm>,
    /// Global SM id of `sms[0]` (the shard owns a contiguous range).
    base: u32,
    stats: Stats,
    filter: Box<dyn IssueFilter + Send>,
    scratch: OperandVals,
    remaining: u64,
    /// Full-length copy of the static block-assignment cursor; only this
    /// shard's entries are read or written.
    sm_next: Vec<u64>,
    last_issue: u64,
    now: u64,
    mem: ShardMem<'g, 'm>,
    buf: S2,
    /// First execution error in this shard, as `(cycle, global sm, error)`.
    error: Option<(u64, u32, SimError)>,
}

/// Simulate one epoch of one shard: cycles `st.now + 1 ..= target`.
///
/// `force_pass` (sink mode) keeps running SM passes after the shard's own
/// blocks finish so every SM emits `sm_cycle_end` each cycle until *global*
/// completion, matching the sequential event stream. Without it (plain
/// mode) the shard freezes at local completion — drained SMs' passes are
/// no-ops, so stopping early is exact.
fn shard_epoch<S2: ShardSink>(
    ctx: &LaunchCtx<'_>,
    st: &mut ShardState<'_, '_, S2>,
    target: u64,
    lockstep: bool,
    force_pass: bool,
) {
    while st.error.is_none() && st.now < target && (st.remaining > 0 || force_pass) {
        st.now += 1;
        let now = st.now;
        let mut ev = EvAcc::new();
        for i in 0..st.sms.len() {
            let gi = st.base + i as u32;
            let ShardState {
                sms,
                stats,
                filter,
                scratch,
                remaining,
                sm_next,
                last_issue,
                mem,
                buf,
                ..
            } = st;
            let mut sh = Shared {
                stats,
                mem,
                filter: &mut **filter,
                scratch,
                remaining,
                sm_next: sm_next.as_mut_slice(),
                last_issue,
                sink: buf,
            };
            let r = if lockstep {
                sm_pass_lockstep(ctx, &mut sms[i], &mut sh, gi, now)
            } else {
                sm_pass_event(ctx, &mut sms[i], &mut sh, gi, now, &mut ev)
            };
            if let Err(e) = r {
                st.error = Some((now, gi, e));
                return;
            }
        }
        if !lockstep && !force_pass && !ev.progress && st.remaining > 0 {
            // Shard-local idle skip: nothing in this shard can change before
            // the earliest finite wakeup, and deferred ([`PENDING`]) entries
            // resolve past the boundary, so clamping to `target + 1` is
            // exact (the loop then exits with `now == target`).
            let t = ev.wake.min(target + 1);
            debug_assert!(t > now, "wakeup must be in the future");
            st.now = t - 1;
        }
    }
}

/// Resolve one epoch's deferred work against the shared memory side, in the
/// exact order the sequential loop would have: stable-sorted by `(cycle,
/// sm)`, shard program order within. Scoreboard [`PENDING`] sentinels are
/// replaced by exact readiness times, deferred atomics apply their RMW, and
/// provisional stall causes are patched in the shard buffers.
#[allow(clippy::too_many_arguments)]
fn drain_epoch<S2: ShardSink>(
    ctx: &LaunchCtx<'_>,
    guards: &mut [MutexGuard<'_, ShardState<'_, '_, S2>>],
    per: usize,
    side: &mut MemSide,
    gmem_lock: &Mutex<&mut GlobalMem>,
    stats: &mut Stats,
    membuf: &mut S2,
) {
    let mut items: Vec<DrainItem> = Vec::new();
    for g in guards.iter_mut() {
        items.append(&mut g.mem.queue);
    }
    if items.is_empty() {
        return;
    }
    // Stable sort: intra-shard program order is preserved within equal keys,
    // and one (cycle, sm) key never spans shards.
    items.sort_by_key(|it| it.key());
    let mut gmem = gmem_lock.lock().unwrap();
    for item in items {
        match item {
            DrainItem::Mem(ev) => {
                let st = &mut *guards[ev.sm as usize / per];
                let sm = &mut st.sms[(ev.sm - st.base) as usize];
                let kind = match &ev.kind {
                    EvKind::Load => L2Kind::Load,
                    EvKind::Store => L2Kind::Store,
                    EvKind::Atomic(_) => L2Kind::Atomic,
                };
                let mut worst = ev.eager_worst;
                let mut served = false;
                for &line in &ev.lines {
                    let (lat, s) = side.l2_line(ctx.cfg, ev.cycle, line, kind, stats, membuf);
                    worst = worst.max(lat);
                    served |= s;
                }
                let ready = ev.cycle + worst + ev.extra;
                let mcause = if served { CAUSE_DRAM } else { CAUSE_LSU };
                // The issuing warp may have completed (and its slot been
                // recycled) within the epoch; warp-local effects are guarded
                // by the dispatch sequence number, exactly like the
                // sequential loop's writes (which would land on state that
                // is then recycled anyway).
                let live = sm.warps[ev.wi as usize]
                    .as_mut()
                    .filter(|t| t.seq == ev.seq);
                if let EvKind::Atomic(ap) = &ev.kind {
                    let mut tw = live;
                    for lane in 0..crate::exec::WARP_SIZE {
                        if ap.mask & (1u32 << lane) == 0 {
                            continue;
                        }
                        let old = atomic_rmw(
                            &mut gmem,
                            ap.aop,
                            ap.ty,
                            ap.addrs[lane],
                            ap.vals.x[lane],
                            ap.vals.desired[lane],
                        );
                        if let (Some(dst), Some(t)) = (ap.value_dst, tw.as_deref_mut()) {
                            t.w.write_warp_dst(lane, dst, old);
                        }
                    }
                    match ev.dst {
                        Some(Dst::Reg(r)) => {
                            if let Some(t) = tw {
                                t.reg_ready[r.0 as usize] = ready;
                                if let Some(c) = t.reg_cause.get_mut(r.0 as usize) {
                                    *c = mcause;
                                }
                            }
                        }
                        Some(Dst::Pred(p)) => {
                            if let Some(t) = tw {
                                t.pred_ready[p.0 as usize] = ready;
                            }
                        }
                        _ => {}
                    }
                    continue;
                }
                match ev.dst {
                    Some(Dst::Reg(r)) => {
                        if let Some(t) = live {
                            t.reg_ready[r.0 as usize] = ready;
                            // Empty unless the shard's sink is enabled, as in
                            // the sequential loop.
                            if let Some(c) = t.reg_cause.get_mut(r.0 as usize) {
                                *c = mcause;
                            }
                        }
                    }
                    Some(Dst::Pred(p)) => {
                        if let Some(t) = live {
                            t.pred_ready[p.0 as usize] = ready;
                        }
                    }
                    Some(Dst::Cr(k)) => sm.cr_ready[k as usize] = ready,
                    Some(Dst::Tr(k)) => sm.tr_ready[k as usize] = ev.prev_tr.max(ready),
                    // SM-shared writes are unconditional, matching the
                    // sequential scoreboard exactly (dispatch never resets
                    // `br_ready`). The slot index is derivable from `wi`.
                    Some(Dst::Br(_)) => sm.br_ready[ev.wi as usize / ctx.wpb] = ready,
                    None => {}
                }
            }
            DrainItem::Fix(fix) => {
                // Processing the merged stream in order means the SM's
                // shared scoreboard arrays now hold exactly the values the
                // sequential loop would have had when it examined this warp:
                // pre-examination writes applied, later ones still pending
                // behind us in the stream.
                let st = &mut *guards[fix.sm as usize / per];
                let sm = &st.sms[(fix.sm - st.base) as usize];
                let mut best_t = 0u64;
                let mut best = StallCause::Scoreboard;
                for &(t, cause, pend) in &fix.entries {
                    let t = match pend {
                        super::Pend::No => t,
                        super::Pend::Cr(k) => sm.cr_ready[k as usize],
                        super::Pend::Tr(k) => sm.tr_ready[k as usize],
                        super::Pend::Br(s) => sm.br_ready[s],
                    };
                    debug_assert!(t != PENDING, "pending entry unresolved at fix time");
                    if t > best_t {
                        best_t = t;
                        best = cause;
                    }
                }
                let st = &mut *guards[fix.sm as usize / per];
                st.buf.patch_stall(fix.buf_idx, best);
            }
        }
    }
}

/// Entry point from `run_launch`: `sms` arrive pre-filled with the initial
/// block wave (events already on `sink`), one forked filter per shard.
pub(super) fn run_sharded<S: EventSink>(
    ctx: &LaunchCtx<'_>,
    sms: Vec<Sm>,
    filters: Vec<Box<dyn IssueFilter + Send>>,
    sm_next: Vec<u64>,
    gmem: &mut GlobalMem,
    sink: &mut S,
) -> Result<Stats, SimError> {
    if S::ENABLED {
        run_shards::<S, ShardBuffer>(ctx, sms, filters, sm_next, gmem, sink)
    } else {
        run_shards::<S, NullSink>(ctx, sms, filters, sm_next, gmem, sink)
    }
}

fn run_shards<S: EventSink, S2: ShardSink>(
    ctx: &LaunchCtx<'_>,
    sms: Vec<Sm>,
    filters: Vec<Box<dyn IssueFilter + Send>>,
    sm_next: Vec<u64>,
    gmem: &mut GlobalMem,
    sink: &mut S,
) -> Result<Stats, SimError> {
    let cfg = ctx.cfg;
    let num_sms = cfg.num_sms as usize;
    let nshards = filters.len();
    let per = num_sms.div_ceil(nshards);
    let lockstep = matches!(cfg.loop_kind, LoopKind::Lockstep);
    // Sink mode must emit a complete, ordered event stream every cycle, so
    // epochs collapse to one cycle. Plain mode uses the longest epoch that
    // keeps PENDING invisible: any deferred access resolves no earlier than
    // the cheapest L2-bound latency after issue, so dependents could not
    // have issued inside the epoch anyway.
    let force_pass = S::ENABLED;
    let epoch = if S::ENABLED {
        1
    } else {
        cfg.lat.l2_hit.min(cfg.lat.dram).min(cfg.lat.atomic).max(1)
    };

    let gmem_lock = Mutex::new(gmem);
    let mut side = MemSide::new(cfg);
    let mut drain_stats = Stats::default();
    let mut membuf = S2::default();

    let mut states: Vec<Mutex<ShardState<'_, '_, S2>>> = Vec::with_capacity(nshards);
    {
        let total = ctx.total_blocks;
        let mut rest = sms;
        let mut base = 0usize;
        for filter in filters {
            let take = per.min(rest.len());
            let mut shard_sms = rest;
            rest = shard_sms.split_off(take);
            let remaining: u64 = (base..base + take)
                .map(|smi| {
                    let smi = smi as u64;
                    if smi < total {
                        (total - smi).div_ceil(num_sms as u64)
                    } else {
                        0
                    }
                })
                .sum();
            states.push(Mutex::new(ShardState {
                sms: shard_sms,
                base: base as u32,
                stats: Stats::default(),
                filter,
                scratch: OperandVals::default(),
                remaining,
                sm_next: sm_next.clone(),
                last_issue: 0,
                now: 0,
                mem: ShardMem {
                    gmem: &gmem_lock,
                    dummy: GlobalMem::default(),
                    queue: Vec::new(),
                },
                buf: S2::default(),
                error: None,
            }));
            base += take;
        }
    }

    let barrier = SpinBarrier::new(nshards + 1);
    let stop = AtomicBool::new(false);
    let target = AtomicU64::new(0);

    let result: Result<u64, SimError> = std::thread::scope(|scope| {
        for k in 0..nshards {
            let states = &states;
            let barrier = &barrier;
            let stop = &stop;
            let target = &target;
            scope.spawn(move || loop {
                barrier.wait();
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let t = target.load(Ordering::SeqCst);
                let mut st = states[k].lock().unwrap();
                shard_epoch(ctx, &mut st, t, lockstep, force_pass);
                drop(st);
                barrier.wait();
            });
        }

        let mut now = 0u64;
        let outcome = loop {
            // Workers are parked at the first barrier here, so the state
            // locks are free.
            let mut remaining = 0u64;
            let mut last_issue = 0u64;
            let mut first_err: Option<(u64, u32, SimError)> = None;
            for s in states.iter() {
                let st = s.lock().unwrap();
                remaining += st.remaining;
                last_issue = last_issue.max(st.last_issue);
                if let Some((c, g, e)) = &st.error {
                    if first_err
                        .as_ref()
                        .is_none_or(|(fc, fg, _)| (*c, *g) < (*fc, *fg))
                    {
                        first_err = Some((*c, *g, e.clone()));
                    }
                }
            }
            if let Some((_, _, e)) = first_err {
                break Err(e);
            }
            if remaining == 0 {
                break Ok(());
            }
            // Cooperative cancellation is observed at epoch boundaries only:
            // the workers are parked, so breaking here leaves every shard in
            // a coherent (if incomplete) state.
            if ctx.cancelled() {
                break Err(SimError::Cancelled { cycle: now });
            }
            // First cycle at which the sequential loop head would error.
            let error_at = cfg
                .watchdog_cycles
                .saturating_add(1)
                .min(last_issue.saturating_add(DEADLOCK_WINDOW + 1));
            if now >= error_at - 1 {
                // Workers simulated through error_at - 1 and the horizon did
                // not move: declare exactly what the sequential loop would.
                break Err(if error_at == cfg.watchdog_cycles.saturating_add(1) {
                    SimError::Watchdog {
                        limit: cfg.watchdog_cycles,
                    }
                } else {
                    SimError::Deadlock { cycle: error_at }
                });
            }
            let t = (now + epoch).min(error_at - 1);
            target.store(t, Ordering::SeqCst);
            barrier.wait(); // release workers into the epoch
            barrier.wait(); // workers done
            now = t;
            let mut guards: Vec<_> = states.iter().map(|s| s.lock().unwrap()).collect();
            drain_epoch(
                ctx,
                &mut guards,
                per,
                &mut side,
                &gmem_lock,
                &mut drain_stats,
                &mut membuf,
            );
            if S::ENABLED {
                // Epoch length is 1 in sink mode: emit the cycle envelope,
                // replay each shard's (patched) buffer in shard order, then
                // the drain's L2/DRAM events.
                sink.cycle_start(now);
                for g in guards.iter_mut() {
                    g.buf.replay_into(sink);
                    g.buf.clear();
                }
                membuf.replay_into(sink);
                membuf.clear();
            }
        };
        stop.store(true, Ordering::SeqCst);
        barrier.wait();
        outcome.map(|()| now)
    });

    let cycles = states
        .iter_mut()
        .map(|s| s.get_mut().unwrap().now)
        .max()
        .unwrap_or(0);
    result?;

    let mut stats = Stats::default();
    let mut prologue = 0u64;
    for s in states {
        let st = s.into_inner().unwrap();
        stats.merge_sequential(&st.stats);
        prologue = prologue.max(
            st.sms
                .iter()
                .map(|m| m.gates_open_cycle.unwrap_or(0))
                .max()
                .unwrap_or(0),
        );
    }
    stats.merge_sequential(&drain_stats);
    stats.cycles = cycles;
    stats.events.cycles = cycles;
    stats.prologue_cycles = prologue;
    if S::ENABLED {
        sink.launch_done(cycles);
    }
    Ok(stats)
}
