//! Purely functional (timing-free) kernel execution.
//!
//! Used for (a) correctness oracles — the R2D2-transformed kernel must leave
//! device memory byte-identical to the original — and (b) the ideal
//! instruction-count machines of paper Fig. 4, which only need a dynamic
//! instruction trace, not timing.

use crate::exec::{ExecError, MemInfo, OperandVals, Outcome, StepInfo, WarpExec, WarpState};
use crate::launch::Launch;
use crate::linear::{LinearStore, Phase};
use crate::mem::GlobalMem;
use r2d2_isa::{Cfg, Instr, Kernel, Op};

/// One dynamic warp instruction, as seen by an [`Observer`].
#[derive(Debug)]
pub struct InstrEvent<'a> {
    /// pc of the instruction.
    pub pc: usize,
    /// The static instruction.
    pub instr: &'a Instr,
    /// Linear block id within the grid.
    pub block: u64,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Lanes on the active path.
    pub active: u32,
    /// Lanes that actually executed.
    pub exec_mask: u32,
    /// Thread instructions this warp instruction represents.
    pub charged_lanes: u32,
    /// Captured operand values (when the observer wants them).
    pub vals: Option<&'a OperandVals>,
    /// Memory access description for loads/stores/atomics.
    pub mem: Option<&'a MemInfo>,
    /// R2D2 phase (Main for plain kernels).
    pub phase: Phase,
}

/// Consumer of a dynamic instruction trace.
pub trait Observer {
    /// `true` if the observer needs per-lane operand values (slower).
    fn wants_values(&self) -> bool {
        false
    }

    /// Called for every executed warp instruction.
    fn on_instr(&mut self, ev: &InstrEvent<'_>);

    /// Called when a thread block completes.
    fn on_block_done(&mut self, _block: u64) {}
}

/// Instruction counters from a functional run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncStats {
    /// Dynamic warp instructions.
    pub warp_instrs: u64,
    /// Dynamic thread instructions (sum of charged lanes).
    pub thread_instrs: u64,
    /// Warp instructions per R2D2 phase.
    pub warp_by_phase: [u64; 4],
    /// Thread instructions per R2D2 phase.
    pub thread_by_phase: [u64; 4],
}

fn charged_lanes(info: &StepInfo, instr: &Instr) -> u32 {
    // Linear phases run with forced masks (1 thread / n_lr lanes); everything
    // else charges the whole active path — predicated-off lanes still occupy
    // their SIMD slots, as in GPGPU-Sim thread-instruction accounting.
    let base = if info.phase.is_linear() || matches!(instr.op, Op::Exit) {
        info.exec_mask
    } else {
        info.active
    };
    base.count_ones()
}

impl FuncStats {
    fn record(&mut self, info: &StepInfo, instr: &Instr) {
        let lanes = charged_lanes(info, instr) as u64;
        self.warp_instrs += 1;
        self.thread_instrs += lanes;
        self.warp_by_phase[info.phase.idx()] += 1;
        self.thread_by_phase[info.phase.idx()] += lanes;
    }
}

struct BlockRun<'a> {
    kernel: &'a Kernel,
    cfg: &'a Cfg,
    launch: &'a Launch,
    watchdog: u64,
}

impl<'a> BlockRun<'a> {
    /// Run a set of warps (one thread block) to completion, handling
    /// barriers, accumulating stats, feeding the observer.
    #[allow(clippy::too_many_arguments)]
    fn run_warps(
        &self,
        warps: &mut [WarpState],
        gmem: &mut GlobalMem,
        smem: &mut [u8],
        linear: Option<(&crate::linear::LinearMeta, &mut LinearStore, usize)>,
        stats: &mut FuncStats,
        obs: &mut Option<&mut dyn Observer>,
    ) -> Result<(), ExecError> {
        let collect = obs.as_ref().is_some_and(|o| o.wants_values());
        let mut scratch = OperandVals::default();
        let mut linear = linear;
        loop {
            let mut progressed = false;
            for w in warps.iter_mut() {
                if w.done || w.at_barrier {
                    continue;
                }
                progressed = true;
                loop {
                    let lin = linear.as_mut().map(|(m, s, b)| (*m, &mut **s, *b));
                    let mut ex = WarpExec {
                        kernel: self.kernel,
                        cfg: self.cfg,
                        params: &self.launch.params,
                        ntid: [
                            self.launch.block.x,
                            self.launch.block.y,
                            self.launch.block.z,
                        ],
                        nctaid: [self.launch.grid.x, self.launch.grid.y, self.launch.grid.z],
                        smid: 0,
                        gmem,
                        smem,
                        linear: lin,
                        scratch: if collect { Some(&mut scratch) } else { None },
                        watchdog: self.watchdog,
                        defer_global_atomics: false,
                    };
                    let info = ex.step(w)?;
                    if info.outcome == Outcome::Exited && info.exec_mask == 0 && info.active == 0 {
                        break;
                    }
                    let instr = &self.kernel.instrs[info.pc];
                    stats.record(&info, instr);
                    if let Some(o) = obs.as_deref_mut() {
                        o.on_instr(&InstrEvent {
                            pc: info.pc,
                            instr,
                            block: w.block_lin,
                            warp_in_block: w.warp_in_block,
                            active: info.active,
                            exec_mask: info.exec_mask,
                            charged_lanes: charged_lanes(&info, instr),
                            vals: if collect { Some(&scratch) } else { None },
                            mem: info.mem.as_ref(),
                            phase: info.phase,
                        });
                    }
                    if info.outcome == Outcome::Barrier || w.done {
                        break;
                    }
                }
            }
            // Barrier release: all non-done warps arrived.
            let waiting = warps.iter().filter(|w| w.at_barrier).count();
            let live = warps.iter().filter(|w| !w.done).count();
            if waiting > 0 && waiting == live {
                for w in warps.iter_mut() {
                    w.at_barrier = false;
                }
                progressed = true;
            }
            if warps.iter().all(|w| w.done) {
                return Ok(());
            }
            assert!(progressed, "intra-block deadlock: warps stuck at a barrier");
        }
    }
}

/// Run a plain (non-R2D2) launch functionally, block by block.
///
/// # Errors
///
/// Returns [`ExecError::Watchdog`] if any warp exceeds `watchdog` dynamic
/// instructions.
pub fn run(
    launch: &Launch,
    gmem: &mut GlobalMem,
    watchdog: u64,
    mut obs: Option<&mut dyn Observer>,
) -> Result<FuncStats, ExecError> {
    let kernel = &launch.kernel;
    let cfg = Cfg::build(kernel);
    let runner = BlockRun {
        kernel,
        cfg: &cfg,
        launch,
        watchdog,
    };
    let mut stats = FuncStats::default();
    let tpb = launch.threads_per_block();
    let wpb = launch.warps_per_block();
    let nregs = kernel.num_regs();
    let npreds = kernel.num_preds().max(1);
    for blk in 0..launch.num_blocks() {
        let ctaid = launch.grid.unflatten(blk);
        let mut warps: Vec<WarpState> = (0..wpb)
            .map(|wib| WarpState::new(nregs, npreds, blk, ctaid, wib, tpb, 0))
            .collect();
        let mut smem = vec![0u8; kernel.shared_bytes as usize];
        runner.run_warps(&mut warps, gmem, &mut smem, None, &mut stats, &mut obs)?;
        if let Some(o) = obs.as_deref_mut() {
            o.on_block_done(blk);
        }
    }
    Ok(stats)
}

/// Run an R2D2-transformed launch functionally.
///
/// Phase order follows the paper (Sec. 4.1): coefficients once, thread-index
/// parts once, then per block: block-index parts by the first warp, then the
/// non-linear stream by every warp. This is the "one ideal SM" view; the
/// timing simulator replicates the prologue per SM as real hardware would.
///
/// # Errors
///
/// Returns [`ExecError::Watchdog`] if any warp exceeds `watchdog` dynamic
/// instructions.
///
/// # Panics
///
/// Panics if `launch.meta` is `None`.
pub fn run_r2d2(
    launch: &Launch,
    gmem: &mut GlobalMem,
    watchdog: u64,
    mut obs: Option<&mut dyn Observer>,
) -> Result<FuncStats, ExecError> {
    let meta = launch
        .meta
        .as_ref()
        .expect("run_r2d2 requires linear metadata");
    let kernel = &launch.kernel;
    let cfg = Cfg::build(kernel);
    let runner = BlockRun {
        kernel,
        cfg: &cfg,
        launch,
        watchdog,
    };
    let mut stats = FuncStats::default();
    let tpb = launch.threads_per_block();
    let wpb = launch.warps_per_block();
    let nregs = kernel.num_regs();
    let npreds = kernel.num_preds().max(1);
    let mut store = LinearStore::new(meta, tpb as usize, 1);

    // Helper: run one warp from `start` until its pc reaches `stop` (linear
    // blocks are straight-line, so pc increases monotonically).
    let run_range = |store: &mut LinearStore,
                     gmem: &mut GlobalMem,
                     stats: &mut FuncStats,
                     blk: u64,
                     ctaid: [u32; 3],
                     wib: u32,
                     start: usize,
                     stop: usize|
     -> Result<(), ExecError> {
        let mut w = WarpState::new(nregs, npreds, blk, ctaid, wib, tpb, start);
        let mut smem: Vec<u8> = Vec::new();
        loop {
            match w.sync_top() {
                Some((pc, _)) if pc < stop => {}
                _ => return Ok(()),
            }
            let mut ex = WarpExec {
                kernel,
                cfg: &cfg,
                params: &launch.params,
                ntid: [launch.block.x, launch.block.y, launch.block.z],
                nctaid: [launch.grid.x, launch.grid.y, launch.grid.z],
                smid: 0,
                gmem,
                smem: &mut smem,
                linear: Some((meta, store, 0)),
                scratch: None,
                watchdog,
                defer_global_atomics: false,
            };
            let info = ex.step(&mut w)?;
            stats.record(&info, &kernel.instrs[info.pc]);
        }
    };

    // 1. Coefficients (single thread).
    run_range(
        &mut store,
        gmem,
        &mut stats,
        0,
        [0; 3],
        0,
        meta.coef_start,
        meta.tidx_start,
    )?;
    // 2. Thread-index parts (every warp of the first block).
    for wib in 0..wpb {
        run_range(
            &mut store,
            gmem,
            &mut stats,
            0,
            [0; 3],
            wib,
            meta.tidx_start,
            meta.bidx_start,
        )?;
    }
    // 3. Per block: block-index parts then the non-linear stream.
    for blk in 0..launch.num_blocks() {
        let ctaid = launch.grid.unflatten(blk);
        run_range(
            &mut store,
            gmem,
            &mut stats,
            blk,
            ctaid,
            0,
            meta.bidx_start,
            meta.main_start,
        )?;
        let mut warps: Vec<WarpState> = (0..wpb)
            .map(|wib| WarpState::new(nregs, npreds, blk, ctaid, wib, tpb, meta.main_start))
            .collect();
        let mut smem = vec![0u8; kernel.shared_bytes as usize];
        runner.run_warps(
            &mut warps,
            gmem,
            &mut smem,
            Some((meta, &mut store, 0)),
            &mut stats,
            &mut obs,
        )?;
        if let Some(o) = obs.as_deref_mut() {
            o.on_block_done(blk);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Dim3;
    use r2d2_isa::{KernelBuilder, Ty};

    fn iota_kernel() -> r2d2_isa::Kernel {
        let mut b = KernelBuilder::new("iota", 1);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let p = b.ld_param(0);
        let a = b.add_wide(p, off);
        b.st_global(Ty::B32, a, 0, i);
        b.build()
    }

    #[test]
    fn multiblock_grid_covers_all_threads() {
        let k = iota_kernel();
        let mut gmem = GlobalMem::new();
        let n = 4 * 64u64;
        let out = gmem.alloc(n * 4);
        let launch = Launch::new(k, Dim3::d1(4), Dim3::d1(64), vec![out]);
        let stats = run(&launch, &mut gmem, 1_000_000, None).unwrap();
        for i in 0..n {
            assert_eq!(gmem.read_i32(out, i), i as i32);
        }
        // 4 blocks x 2 warps x 6 instructions (5 + exit)
        assert_eq!(stats.warp_instrs, 4 * 2 * (k_instrs() as u64));
        assert_eq!(stats.thread_instrs, 4 * 2 * 32 * (k_instrs() as u64));
    }

    fn k_instrs() -> usize {
        iota_kernel().instrs.len()
    }

    #[test]
    fn observer_sees_every_warp_instruction() {
        struct Count(u64, u64);
        impl Observer for Count {
            fn on_instr(&mut self, ev: &InstrEvent<'_>) {
                self.0 += 1;
                self.1 += ev.charged_lanes as u64;
            }
        }
        let k = iota_kernel();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(128 * 4);
        let launch = Launch::new(k, Dim3::d1(2), Dim3::d1(64), vec![out]);
        let mut c = Count(0, 0);
        let stats = run(&launch, &mut gmem, 1_000_000, Some(&mut c)).unwrap();
        assert_eq!(c.0, stats.warp_instrs);
        assert_eq!(c.1, stats.thread_instrs);
    }

    #[test]
    fn barrier_across_warps_orders_shared_memory() {
        // warp-reverse through shared memory: out[t] = in-shared[tpb-1-t]
        let mut b = KernelBuilder::new("rev", 1);
        b.shared_bytes(64 * 4);
        let t = b.tid_x();
        let ntid = b.ntid_x();
        let soff = b.shl_imm_wide(t, 2);
        b.st_shared(Ty::B32, soff, 0, t);
        b.bar();
        let nm1 = b.sub(ntid, r2d2_isa::Operand::Imm(1));
        let rt = b.sub(nm1, t);
        let roff = b.shl_imm_wide(rt, 2);
        let v = b.ld_shared(Ty::B32, roff, 0);
        let goff = b.shl_imm_wide(t, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, goff);
        b.st_global(Ty::B32, addr, 0, v);
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(64 * 4);
        let launch = Launch::new(k, Dim3::d1(1), Dim3::d1(64), vec![out]);
        run(&launch, &mut gmem, 1_000_000, None).unwrap();
        for t in 0..64 {
            assert_eq!(gmem.read_i32(out, t), (63 - t) as i32, "t={t}");
        }
    }

    #[test]
    fn phase_counters_stay_in_main_without_meta() {
        let k = iota_kernel();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(64 * 4);
        let launch = Launch::new(k, Dim3::d1(1), Dim3::d1(64), vec![out]);
        let stats = run(&launch, &mut gmem, 1_000_000, None).unwrap();
        assert_eq!(stats.warp_by_phase[0], 0);
        assert_eq!(stats.warp_by_phase[1], 0);
        assert_eq!(stats.warp_by_phase[2], 0);
        assert_eq!(stats.warp_by_phase[3], stats.warp_instrs);
    }
}
