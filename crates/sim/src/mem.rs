//! Global (device) memory with a bump allocator.

use r2d2_isa::Ty;

/// Device memory: a flat byte array with a simple bump allocator, standing in
/// for the GPU's one-dimensional global address space (paper Sec. 1: "hardware
/// threads on GPUs access the data in memory whose address space is always
/// one-dimensional").
#[derive(Debug, Clone, Default)]
pub struct GlobalMem {
    data: Vec<u8>,
    next: u64,
}

/// Allocation alignment: one cache line, so buffers never straddle lines
/// accidentally.
const ALIGN: u64 = 256;

impl GlobalMem {
    /// Empty memory. Address 0 is reserved (never allocated) to catch
    /// null-pointer style bugs.
    pub fn new() -> Self {
        GlobalMem {
            data: Vec::new(),
            next: ALIGN,
        }
    }

    /// Allocate `bytes` of zeroed device memory; returns the base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        self.next = (self.next + bytes).div_ceil(ALIGN) * ALIGN;
        let need = self.next as usize;
        if self.data.len() < need {
            self.data.resize(need, 0);
        }
        base
    }

    /// Total bytes currently backed.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[track_caller]
    fn slice(&self, addr: u64, len: u64) -> &[u8] {
        let a = addr as usize;
        let l = len as usize;
        assert!(
            addr >= ALIGN && a + l <= self.data.len(),
            "global memory access out of bounds: addr={addr:#x} len={len}"
        );
        &self.data[a..a + l]
    }

    #[track_caller]
    fn slice_mut(&mut self, addr: u64, len: u64) -> &mut [u8] {
        let a = addr as usize;
        let l = len as usize;
        assert!(
            addr >= ALIGN && a + l <= self.data.len(),
            "global memory access out of bounds: addr={addr:#x} len={len}"
        );
        &mut self.data[a..a + l]
    }

    /// Read a typed value; 32-bit integers are sign-extended into the 64-bit
    /// register slot (matching the ISA's B32 convention), floats are stored as
    /// raw bits.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (an invariant violation in a workload).
    #[track_caller]
    pub fn read(&self, ty: Ty, addr: u64) -> u64 {
        match ty {
            Ty::B32 => {
                let b: [u8; 4] = self.slice(addr, 4).try_into().unwrap();
                i32::from_le_bytes(b) as i64 as u64
            }
            Ty::F32 => {
                let b: [u8; 4] = self.slice(addr, 4).try_into().unwrap();
                u32::from_le_bytes(b) as u64
            }
            Ty::B64 | Ty::F64 => {
                let b: [u8; 8] = self.slice(addr, 8).try_into().unwrap();
                u64::from_le_bytes(b)
            }
            Ty::Pred => u64::from(self.slice(addr, 1)[0] != 0),
        }
    }

    /// Write a typed value.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[track_caller]
    pub fn write(&mut self, ty: Ty, addr: u64, val: u64) {
        match ty {
            Ty::B32 | Ty::F32 => {
                self.slice_mut(addr, 4)
                    .copy_from_slice(&(val as u32).to_le_bytes());
            }
            Ty::B64 | Ty::F64 => {
                self.slice_mut(addr, 8).copy_from_slice(&val.to_le_bytes());
            }
            Ty::Pred => self.slice_mut(addr, 1)[0] = (val != 0) as u8,
        }
    }

    // ---- typed host-side helpers (for workload setup and result checks) ----

    /// Write an `i32` at `base + 4*i`.
    pub fn write_i32(&mut self, base: u64, i: u64, v: i32) {
        self.write(Ty::B32, base + 4 * i, v as u32 as u64);
    }

    /// Read an `i32` from `base + 4*i`.
    pub fn read_i32(&self, base: u64, i: u64) -> i32 {
        self.read(Ty::B32, base + 4 * i) as u32 as i32
    }

    /// Write an `f32` at `base + 4*i`.
    pub fn write_f32(&mut self, base: u64, i: u64, v: f32) {
        self.write(Ty::F32, base + 4 * i, v.to_bits() as u64);
    }

    /// Read an `f32` from `base + 4*i`.
    pub fn read_f32(&self, base: u64, i: u64) -> f32 {
        f32::from_bits(self.read(Ty::F32, base + 4 * i) as u32)
    }

    /// Write a `u64` at `base + 8*i`.
    pub fn write_u64(&mut self, base: u64, i: u64, v: u64) {
        self.write(Ty::B64, base + 8 * i, v);
    }

    /// Read a `u64` from `base + 8*i`.
    pub fn read_u64(&self, base: u64, i: u64) -> u64 {
        self.read(Ty::B64, base + 8 * i)
    }

    /// Snapshot of the full backing store (for end-to-end equivalence tests).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMem::new();
        let a = m.alloc(100);
        let b = m.alloc(10);
        assert_eq!(a % ALIGN, 0);
        assert_eq!(b % ALIGN, 0);
        assert!(b >= a + 100);
        assert_ne!(a, 0, "address 0 must stay unmapped");
    }

    #[test]
    fn b32_reads_sign_extend() {
        let mut m = GlobalMem::new();
        let a = m.alloc(16);
        m.write_i32(a, 0, -5);
        assert_eq!(m.read(Ty::B32, a), (-5i64) as u64);
        assert_eq!(m.read_i32(a, 0), -5);
    }

    #[test]
    fn f32_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc(16);
        m.write_f32(a, 2, 3.25);
        assert_eq!(m.read_f32(a, 2), 3.25);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = GlobalMem::new();
        let a = m.alloc(64);
        m.write_u64(a, 3, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(a, 3), 0xdead_beef_cafe_f00d);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_panics() {
        let m = GlobalMem::new();
        let _ = m.read(Ty::B32, 0x10);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn null_write_panics() {
        let mut m = GlobalMem::new();
        m.alloc(64);
        m.write(Ty::B32, 0, 1);
    }
}
