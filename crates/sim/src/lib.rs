#![warn(missing_docs)]
//! A from-scratch cycle-level SIMT GPU simulator for the R2D2 reproduction.
//!
//! This crate is the substrate the paper assumes: the role GPGPU-Sim v4.0 +
//! a TITAN V (Volta) configuration play in the original evaluation (Sec. 5).
//! It provides:
//!
//! * [`GlobalMem`] — the one-dimensional device address space with a bump
//!   allocator for workload buffers.
//! * [`functional`] — timing-free execution (correctness oracles, dynamic
//!   instruction traces for the ideal machines of Fig. 4).
//! * [`timing`] — the cycle-level model: SMs with four GTO warp schedulers,
//!   scoreboard, SIMT reconvergence stack, L1/L2/DRAM hierarchy with a
//!   coalescer, thread-block scheduler, barriers — and the R2D2
//!   microarchitecture (starting-PC table, phase gates, register classes,
//!   Sec. 5.4 latency adders) when a launch carries [`LinearMeta`].
//! * [`IssueFilter`] — the hook machine models (DAC, DARSIE, ...) use to
//!   skip/scalarize warp instructions "with no overhead", as the paper models
//!   them.
//!
//! # Example
//!
//! ```
//! use r2d2_isa::{KernelBuilder, Ty};
//! use r2d2_sim::{Dim3, GlobalMem, GpuConfig, Launch, SimSession};
//!
//! // out[i] = i
//! let mut b = KernelBuilder::new("iota", 1);
//! let i = b.global_tid_x();
//! let off = b.shl_imm_wide(i, 2);
//! let p = b.ld_param(0);
//! let addr = b.add_wide(p, off);
//! b.st_global(Ty::B32, addr, 0, i);
//! let kernel = b.build();
//!
//! let mut gmem = GlobalMem::new();
//! let out = gmem.alloc(4 * 256);
//! let launch = Launch::new(kernel, Dim3::d1(2), Dim3::d1(128), vec![out]);
//! let cfg = GpuConfig::default().with_num_sms(4);
//! let stats = SimSession::new(&cfg).run(&launch, &mut gmem)?;
//! assert_eq!(gmem.read_i32(out, 200), 200);
//! assert!(stats.cycles > 0);
//! # Ok::<(), r2d2_sim::SimError>(())
//! ```

mod cache;
mod config;
mod exec;
mod filter;
pub mod functional;
mod launch;
mod linear;
mod mem;
mod session;
mod stats;
pub mod timing;

pub use cache::Cache;
pub use config::{CacheConfig, GpuConfig, Latencies, LoopKind, R2d2Latencies};
pub use exec::{
    ExecError, MemInfo, OperandVals, Outcome, StackEntry, StepInfo, WarpExec, WarpState, NO_RPC,
    WARP_SIZE,
};
pub use filter::{BaselineFilter, Disposition, IssueCtx, IssueFilter, NoFilter};
pub use functional::{FuncStats, InstrEvent, Observer};
pub use launch::{Dim3, Launch};
pub use linear::{LinearMeta, LinearStore, Phase, MAX_LR};
pub use mem::GlobalMem;
pub use session::SimSession;
pub use stats::Stats;
pub use timing::{blocks_per_sm, phys_regs_estimate, CancelToken, SimError};

// Observability layer (see `r2d2-trace`): the sink trait the timing loops
// are generic over, plus the stall-attribution profiler and its exporters.
pub use r2d2_trace::{self as trace, EventSink, MemLevel, NullSink, Profiler, StallCause};
