//! Functional warp execution: SIMT stack, operand semantics, memory ops.
//!
//! The same executor backs both the purely functional runner (correctness,
//! ideal instruction-count machines) and the cycle-level timing model —
//! timing executes functionally at issue, then charges latency. This keeps a
//! single source of truth for semantics: machine models can change what an
//! instruction *costs*, never what it *does*.

use crate::linear::{LinearMeta, LinearStore, Phase};
use crate::mem::GlobalMem;
use r2d2_isa::{AtomOp, CmpOp, Dst, Kernel, MemOffset, MemSpace, Op, Operand, SfuOp, Special, Ty};

/// Warp width (paper Table 1: SIMD width 32).
pub const WARP_SIZE: usize = 32;

/// Sentinel "no reconvergence pc" (reconverge at thread exit).
pub const NO_RPC: usize = usize::MAX;

/// One SIMT reconvergence stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Next pc for this path.
    pub pc: usize,
    /// Reconvergence pc: entry is popped when `pc` reaches it.
    pub rpc: usize,
    /// Lanes on this path.
    pub mask: u32,
}

/// Architectural state of one warp.
#[derive(Debug, Clone)]
pub struct WarpState {
    /// Linear block id within the grid.
    pub block_lin: u64,
    /// Block index (ctaid.x/y/z).
    pub ctaid: [u32; 3],
    /// Warp index within its thread block.
    pub warp_in_block: u32,
    /// Per-lane GP registers, laid out `reg * 32 + lane`.
    pub regs: Vec<u64>,
    /// Predicate registers (one bit per lane).
    pub preds: Vec<u32>,
    /// SIMT reconvergence stack (top = current path).
    pub stack: Vec<StackEntry>,
    /// Lanes that executed `exit`.
    pub exited: u32,
    /// Lanes that exist (block size may not fill the last warp).
    pub init_mask: u32,
    /// Warp has fully terminated.
    pub done: bool,
    /// Warp is parked at a `bar.sync`.
    pub at_barrier: bool,
    /// Dynamic instructions executed (watchdog).
    pub instr_count: u64,
}

impl WarpState {
    /// Create a warp for `warp_in_block` of the given block, starting at
    /// `start_pc` (non-zero for R2D2 phase entry points).
    pub fn new(
        num_regs: usize,
        num_preds: usize,
        block_lin: u64,
        ctaid: [u32; 3],
        warp_in_block: u32,
        threads_per_block: u32,
        start_pc: usize,
    ) -> Self {
        let first = warp_in_block * WARP_SIZE as u32;
        let lanes = threads_per_block
            .saturating_sub(first)
            .min(WARP_SIZE as u32);
        let init_mask = if lanes >= 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        WarpState {
            block_lin,
            ctaid,
            warp_in_block,
            regs: vec![0; num_regs * WARP_SIZE],
            preds: vec![0; num_preds],
            stack: vec![StackEntry {
                pc: start_pc,
                rpc: NO_RPC,
                mask: init_mask,
            }],
            exited: 0,
            init_mask,
            done: lanes == 0,
            at_barrier: false,
            instr_count: 0,
        }
    }

    /// Pop completed/empty stack entries; return the current `(pc, active)`
    /// or `None` when the warp has terminated.
    pub fn sync_top(&mut self) -> Option<(usize, u32)> {
        loop {
            let Some(top) = self.stack.last() else {
                self.done = true;
                return None;
            };
            let live = top.mask & !self.exited;
            if live == 0 || top.pc == top.rpc {
                self.stack.pop();
                continue;
            }
            return Some((top.pc, live));
        }
    }

    /// Read one lane's GP register.
    pub fn reg(&self, r: u16, lane: usize) -> u64 {
        self.regs[r as usize * WARP_SIZE + lane]
    }

    /// Write one lane's GP register.
    pub fn set_reg(&mut self, r: u16, lane: usize, v: u64) {
        self.regs[r as usize * WARP_SIZE + lane] = v;
    }

    /// Write a per-warp destination (GP register or predicate) for one lane.
    /// Used by the sharded loop's drain to land deferred atomic results;
    /// linear-class destinations live in SM-level state and are not handled.
    pub(crate) fn write_warp_dst(&mut self, lane: usize, dst: Dst, v: u64) {
        match dst {
            Dst::Reg(r) => self.set_reg(r.0, lane, v),
            Dst::Pred(p) => {
                let bit = 1u32 << lane;
                let cur = &mut self.preds[p.0 as usize];
                if v != 0 {
                    *cur |= bit;
                } else {
                    *cur &= !bit;
                }
            }
            Dst::Cr(_) | Dst::Tr(_) | Dst::Br(_) => {
                unreachable!("linear-class atomic destinations are not deferrable")
            }
        }
    }
}

/// What a step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Ordinary instruction executed.
    Normal,
    /// A `bar.sync` was issued; the warp is parked until released.
    Barrier,
    /// The warp has fully terminated (nothing executed).
    Exited,
}

/// Per-lane memory access description (for the coalescer / timing model).
#[derive(Debug, Clone)]
pub struct MemInfo {
    /// Memory space.
    pub space: MemSpace,
    /// `true` for stores and atomics.
    pub write: bool,
    /// `true` for atomics.
    pub atomic: bool,
    /// Access width type.
    pub ty: Ty,
    /// Lanes that accessed memory.
    pub mask: u32,
    /// Byte address per lane (valid where `mask` is set).
    pub addrs: [u64; WARP_SIZE],
}

impl MemInfo {
    /// Unique cache-line ids touched (the coalescer's transaction count).
    pub fn lines(&self, line_size: u64) -> Vec<u64> {
        let mut out: Vec<u64> = Vec::with_capacity(4);
        for lane in 0..WARP_SIZE {
            if self.mask & (1 << lane) != 0 {
                let l = self.addrs[lane] / line_size;
                if !out.contains(&l) {
                    out.push(l);
                }
            }
        }
        out
    }
}

/// Captured operand values for machine-model observers (WP/TB/DAC/DARSIE).
#[derive(Debug, Clone)]
pub struct OperandVals {
    /// Number of meaningful source vectors.
    pub nsrc: usize,
    /// Source value per lane per operand.
    pub srcs: [[u64; WARP_SIZE]; 3],
    /// Destination value per lane (where produced).
    pub dst: [u64; WARP_SIZE],
    /// `true` when `dst` was written.
    pub has_dst: bool,
}

impl Default for OperandVals {
    fn default() -> Self {
        OperandVals {
            nsrc: 0,
            srcs: [[0; WARP_SIZE]; 3],
            dst: [0; WARP_SIZE],
            has_dst: false,
        }
    }
}

/// Per-lane source operands of a global atomic whose read-modify-write was
/// deferred (see [`WarpExec::defer_global_atomics`]). The sharded timing
/// loop applies the captured operation later, in deterministic order.
#[derive(Debug, Clone)]
pub struct AtomVals {
    /// `srcs[0]` per lane (the operand / CAS comparand).
    pub x: [u64; WARP_SIZE],
    /// `srcs[1]` per lane (the CAS replacement value; 0 for non-CAS ops).
    pub desired: [u64; WARP_SIZE],
}

impl Default for AtomVals {
    fn default() -> Self {
        AtomVals {
            x: [0; WARP_SIZE],
            desired: [0; WARP_SIZE],
        }
    }
}

/// Result of executing one warp instruction.
#[derive(Debug, Clone)]
pub struct StepInfo {
    /// pc of the executed instruction.
    pub pc: usize,
    /// Lanes active on the current path (pre-guard).
    pub active: u32,
    /// Lanes that actually executed (post-guard, post-phase-forcing).
    pub exec_mask: u32,
    /// What happened.
    pub outcome: Outcome,
    /// Memory access info, when the instruction touched memory.
    pub mem: Option<MemInfo>,
    /// R2D2 phase of the executed pc (Main when no metadata).
    pub phase: Phase,
    /// Captured atomic operands when [`WarpExec::defer_global_atomics`]
    /// suppressed the read-modify-write (and the destination write, so any
    /// captured `OperandVals::dst` is stale for deferred atomics).
    pub atom: Option<Box<AtomVals>>,
}

/// Error from warp execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A warp exceeded the per-warp dynamic instruction watchdog.
    Watchdog {
        /// pc at which the limit was hit.
        pc: usize,
        /// the limit.
        limit: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Watchdog { pc, limit } => {
                write!(
                    f,
                    "warp exceeded {limit} dynamic instructions at pc {pc} (infinite loop?)"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Execution context for stepping warps of one thread block.
pub struct WarpExec<'a> {
    /// The kernel being executed.
    pub kernel: &'a Kernel,
    /// Its CFG (for reconvergence points).
    pub cfg: &'a r2d2_isa::Cfg,
    /// Launch parameters (`P0..`), as 64-bit words.
    pub params: &'a [u64],
    /// Block dimensions.
    pub ntid: [u32; 3],
    /// Grid dimensions.
    pub nctaid: [u32; 3],
    /// SM id (for `%smid`).
    pub smid: u32,
    /// Device memory.
    pub gmem: &'a mut GlobalMem,
    /// This block's shared memory.
    pub smem: &'a mut [u8],
    /// R2D2 linear state: metadata, storage, and this block's slot.
    pub linear: Option<(&'a LinearMeta, &'a mut LinearStore, usize)>,
    /// When present, per-lane operand values are captured here (reused across
    /// steps to avoid per-instruction allocation).
    pub scratch: Option<&'a mut OperandVals>,
    /// Per-warp dynamic instruction limit.
    pub watchdog: u64,
    /// When `true`, global atomics do not touch `gmem` or their destination;
    /// the per-lane operands are captured in [`StepInfo::atom`] instead so
    /// the caller can apply the read-modify-write later in a deterministic
    /// order (the sharded timing loop's epoch drain).
    pub defer_global_atomics: bool,
}

impl<'a> WarpExec<'a> {
    fn special(&self, w: &WarpState, lane: usize, s: Special) -> u64 {
        let slot = w.warp_in_block as usize * WARP_SIZE + lane;
        match s {
            Special::Tid(0) => (slot as u64) % self.ntid[0] as u64,
            Special::Tid(1) => (slot as u64 / self.ntid[0] as u64) % self.ntid[1] as u64,
            Special::Tid(2) => slot as u64 / (self.ntid[0] as u64 * self.ntid[1] as u64),
            Special::Tid(_) => unreachable!(),
            Special::Ctaid(d) => w.ctaid[d as usize % 3] as u64,
            Special::Ntid(d) => self.ntid[d as usize % 3] as u64,
            Special::Nctaid(d) => self.nctaid[d as usize % 3] as u64,
            Special::LaneId => lane as u64,
            Special::SmId => self.smid as u64,
        }
    }

    fn read_operand(&self, w: &WarpState, lane: usize, op: Operand, dst_is_br: bool) -> u64 {
        match op {
            Operand::Reg(r) => w.reg(r.0, lane),
            Operand::Imm(v) => v as u64,
            Operand::Special(s) => self.special(w, lane, s),
            Operand::Pred(p) => u64::from(w.preds[p.0 as usize] & (1 << lane) != 0),
            Operand::Tr(k) => {
                let (_, store, _) = self.linear.as_ref().expect("%tr without linear state");
                let slot = w.warp_in_block as usize * WARP_SIZE + lane;
                store.tr_read(k, slot)
            }
            Operand::Br(_) => {
                let (_, store, bslot) = self.linear.as_ref().expect("%br without linear state");
                store.br[*bslot][lane]
            }
            Operand::Cr(k) => {
                let (_, store, _) = self.linear.as_ref().expect("%cr without linear state");
                if dst_is_br {
                    // Vector read across coefficient slots (paper Sec. 3.2.3):
                    // lane i of a `.br` instruction reads %cr(k+i).
                    store.cr.get(k as usize + lane).copied().unwrap_or(0)
                } else {
                    store.cr[k as usize]
                }
            }
            Operand::Lr(k) => {
                let (meta, store, bslot) = self.linear.as_ref().expect("%lr without linear state");
                let slot = w.warp_in_block as usize * WARP_SIZE + lane;
                store.lr_read(meta, k, *bslot, slot)
            }
        }
    }

    fn write_dst(&mut self, w: &mut WarpState, lane: usize, dst: Dst, v: u64) {
        match dst {
            Dst::Reg(r) => w.set_reg(r.0, lane, v),
            Dst::Pred(p) => {
                let bit = 1u32 << lane;
                let cur = &mut w.preds[p.0 as usize];
                if v != 0 {
                    *cur |= bit;
                } else {
                    *cur &= !bit;
                }
            }
            Dst::Cr(k) => {
                let (_, store, _) = self.linear.as_mut().expect("%cr dst without linear state");
                store.cr[k as usize] = v;
            }
            Dst::Tr(k) => {
                let slot = w.warp_in_block as usize * WARP_SIZE + lane;
                let (_, store, _) = self.linear.as_mut().expect("%tr dst without linear state");
                store.tr_write(k, slot, v);
            }
            Dst::Br(_) => {
                let (_, store, bslot) = self.linear.as_mut().expect("%br dst without linear state");
                let bslot = *bslot;
                if lane < store.br[bslot].len() {
                    store.br[bslot][lane] = v;
                }
            }
        }
    }

    /// Execute one warp instruction. Returns [`StepInfo`] describing it.
    ///
    /// # Errors
    ///
    /// [`ExecError::Watchdog`] when the warp exceeds the dynamic-instruction
    /// limit (a runaway loop).
    #[allow(clippy::needless_range_loop)] // lane loops index several arrays
    pub fn step(&mut self, w: &mut WarpState) -> Result<StepInfo, ExecError> {
        let Some((pc, active)) = w.sync_top() else {
            return Ok(StepInfo {
                pc: 0,
                active: 0,
                exec_mask: 0,
                outcome: Outcome::Exited,
                mem: None,
                phase: Phase::Main,
                atom: None,
            });
        };
        w.instr_count += 1;
        if w.instr_count > self.watchdog {
            return Err(ExecError::Watchdog {
                pc,
                limit: self.watchdog,
            });
        }
        let instr = &self.kernel.instrs[pc];
        let phase = match &self.linear {
            Some((meta, _, _)) => meta.phase_of(pc),
            None => Phase::Main,
        };
        // Guard filtering.
        let mut exec_mask = match instr.guard {
            None => active,
            Some((p, true)) => active & w.preds[p.0 as usize],
            Some((p, false)) => active & !w.preds[p.0 as usize],
        };
        // R2D2 phase lane forcing: coefficients run on a single thread
        // (scalar pipeline); block-index parts run on n_lr lanes regardless of
        // block size (each lane computes a different coefficient vector).
        match phase {
            Phase::Coef => exec_mask = 1,
            Phase::Bidx => {
                let (meta, _, _) = self.linear.as_ref().unwrap();
                exec_mask = if meta.n_lr >= 32 {
                    u32::MAX
                } else {
                    (1u32 << meta.n_lr) - 1
                };
            }
            _ => {}
        }

        let mut info = StepInfo {
            pc,
            active,
            exec_mask,
            outcome: Outcome::Normal,
            mem: None,
            phase,
            atom: None,
        };

        match instr.op {
            Op::Bra(t) => {
                let t = t as usize;
                let top = w.stack.last_mut().unwrap();
                if instr.guard.is_none() {
                    top.pc = t;
                } else {
                    let taken = exec_mask;
                    let not_taken = active & !exec_mask;
                    if taken == 0 {
                        top.pc = pc + 1;
                    } else if not_taken == 0 {
                        top.pc = t;
                    } else {
                        // Divergence: current entry becomes the reconvergence
                        // entry; push fall-through then taken (taken runs first).
                        let rpc = self
                            .cfg
                            .reconvergence_pc(self.cfg.block_of[pc])
                            .unwrap_or(NO_RPC);
                        top.pc = rpc;
                        w.stack.push(StackEntry {
                            pc: pc + 1,
                            rpc,
                            mask: not_taken,
                        });
                        w.stack.push(StackEntry {
                            pc: t,
                            rpc,
                            mask: taken,
                        });
                    }
                }
                return Ok(info);
            }
            Op::Bar => {
                w.stack.last_mut().unwrap().pc = pc + 1;
                w.at_barrier = true;
                info.outcome = Outcome::Barrier;
                return Ok(info);
            }
            Op::Exit => {
                w.exited |= exec_mask;
                w.stack.last_mut().unwrap().pc = pc + 1;
                if w.exited & w.init_mask == w.init_mask {
                    w.stack.clear();
                    w.done = true;
                }
                return Ok(info);
            }
            _ => {}
        }

        // Data-path instruction.
        if let Some(vs) = self.scratch.as_deref_mut() {
            vs.nsrc = instr.srcs.len().min(3);
            vs.has_dst = instr.dst.is_some();
        }

        let dst_is_br = matches!(instr.dst, Some(Dst::Br(_)));
        let ty = instr.ty;
        // Detach the scratch buffer so per-lane writes don't conflict with
        // `&self`/`&mut self` operand accesses below.
        let mut vals = self.scratch.take();

        if instr.op.is_mem() {
            let mem = instr.mem.expect("memory instruction without memref");
            let mut mi = MemInfo {
                space: match instr.op {
                    Op::Ld(s) | Op::St(s) => s,
                    Op::Atom(_) => MemSpace::Global,
                    _ => unreachable!(),
                },
                write: !matches!(instr.op, Op::Ld(_)),
                atomic: matches!(instr.op, Op::Atom(_)),
                ty,
                mask: exec_mask,
                addrs: [0; WARP_SIZE],
            };
            let mut atom_capture: Option<Box<AtomVals>> = None;
            for lane in 0..WARP_SIZE {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let base = self.read_operand(w, lane, mem.base, false);
                let off = match mem.offset {
                    MemOffset::Imm(v) => v as u64,
                    MemOffset::Cr(k) => self.read_operand(w, lane, Operand::Cr(k), false),
                    MemOffset::CrImm(k, v) => self
                        .read_operand(w, lane, Operand::Cr(k), false)
                        .wrapping_add(v as u64),
                };
                let addr = base.wrapping_add(off);
                mi.addrs[lane] = addr;
                match instr.op {
                    Op::Ld(space) => {
                        let v = match space {
                            MemSpace::Global => self.gmem.read(ty, addr),
                            MemSpace::Shared => shared_read(self.smem, ty, addr),
                        };
                        if let Some(vs) = vals.as_deref_mut() {
                            vs.dst[lane] = v;
                        }
                        self.write_dst(w, lane, instr.dst.unwrap(), v);
                    }
                    Op::St(space) => {
                        let v = self.read_operand(w, lane, instr.srcs[0], false);
                        if let Some(vs) = vals.as_deref_mut() {
                            vs.srcs[0][lane] = v;
                        }
                        match space {
                            MemSpace::Global => self.gmem.write(ty, addr, v),
                            MemSpace::Shared => shared_write(self.smem, ty, addr, v),
                        }
                    }
                    Op::Atom(aop) => {
                        let x = self.read_operand(w, lane, instr.srcs[0], false);
                        if self.defer_global_atomics {
                            let desired = if matches!(aop, AtomOp::Cas) {
                                self.read_operand(w, lane, instr.srcs[1], false)
                            } else {
                                0
                            };
                            let cap = atom_capture.get_or_insert_with(Box::default);
                            cap.x[lane] = x;
                            cap.desired[lane] = desired;
                            if let Some(vs) = vals.as_deref_mut() {
                                vs.srcs[0][lane] = x;
                            }
                        } else {
                            let desired = if matches!(aop, AtomOp::Cas) {
                                self.read_operand(w, lane, instr.srcs[1], false)
                            } else {
                                0
                            };
                            let old = atomic_rmw(self.gmem, aop, ty, addr, x, desired);
                            if let Some(d) = instr.dst {
                                self.write_dst(w, lane, d, old);
                            }
                            if let Some(vs) = vals.as_deref_mut() {
                                vs.srcs[0][lane] = x;
                                vs.dst[lane] = old;
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
            info.mem = Some(mi);
            info.atom = atom_capture;
        } else {
            // Pure ALU / mov / cvt / setp / selp / ld.param.
            for lane in 0..WARP_SIZE {
                if exec_mask & (1 << lane) == 0 {
                    continue;
                }
                let mut s = [0u64; 3];
                for (i, src) in instr.srcs.iter().enumerate().take(3) {
                    s[i] = self.read_operand(w, lane, *src, dst_is_br);
                }
                if let Some(vs) = vals.as_deref_mut() {
                    for i in 0..instr.srcs.len().min(3) {
                        vs.srcs[i][lane] = s[i];
                    }
                }
                let v = match instr.op {
                    Op::LdParam => {
                        let n = s[0] as usize;
                        self.params.get(n).copied().unwrap_or(0)
                    }
                    Op::Setp(c) => compare(c, ty, s[0], s[1]) as u64,
                    Op::Selp => {
                        if s[2] != 0 {
                            s[0]
                        } else {
                            s[1]
                        }
                    }
                    op => alu(op, ty, s[0], s[1], s[2]),
                };
                if let Some(vs) = vals.as_deref_mut() {
                    vs.dst[lane] = v;
                }
                if let Some(d) = instr.dst {
                    self.write_dst(w, lane, d, v);
                }
            }
        }

        w.stack.last_mut().unwrap().pc = pc + 1;
        self.scratch = vals;
        Ok(info)
    }
}

fn shared_read(smem: &[u8], ty: Ty, addr: u64) -> u64 {
    let a = addr as usize;
    match ty {
        Ty::B32 => i32::from_le_bytes(smem[a..a + 4].try_into().unwrap()) as i64 as u64,
        Ty::F32 => u32::from_le_bytes(smem[a..a + 4].try_into().unwrap()) as u64,
        Ty::B64 | Ty::F64 => u64::from_le_bytes(smem[a..a + 8].try_into().unwrap()),
        Ty::Pred => u64::from(smem[a] != 0),
    }
}

fn shared_write(smem: &mut [u8], ty: Ty, addr: u64, v: u64) {
    let a = addr as usize;
    match ty {
        Ty::B32 | Ty::F32 => smem[a..a + 4].copy_from_slice(&(v as u32).to_le_bytes()),
        Ty::B64 | Ty::F64 => smem[a..a + 8].copy_from_slice(&v.to_le_bytes()),
        Ty::Pred => smem[a] = (v != 0) as u8,
    }
}

fn int_add(ty: Ty, a: u64, b: u64) -> u64 {
    match ty {
        Ty::B32 => ((a as u32 as i32).wrapping_add(b as u32 as i32)) as i64 as u64,
        _ => a.wrapping_add(b),
    }
}

fn int_min(ty: Ty, a: u64, b: u64) -> u64 {
    match ty {
        Ty::B32 => ((a as u32 as i32).min(b as u32 as i32)) as i64 as u64,
        _ => ((a as i64).min(b as i64)) as u64,
    }
}

fn int_max(ty: Ty, a: u64, b: u64) -> u64 {
    match ty {
        Ty::B32 => ((a as u32 as i32).max(b as u32 as i32)) as i64 as u64,
        _ => ((a as i64).max(b as i64)) as u64,
    }
}

/// Apply one lane of a global atomic read-modify-write, returning the old
/// value. The single place that defines atomic semantics: the eager path in
/// [`WarpExec::step`] and the sharded loop's deferred drain both call it.
pub(crate) fn atomic_rmw(
    gmem: &mut GlobalMem,
    aop: AtomOp,
    ty: Ty,
    addr: u64,
    x: u64,
    desired: u64,
) -> u64 {
    let old = gmem.read(ty, addr);
    let newv = match aop {
        AtomOp::Add => int_add(ty, old, x),
        AtomOp::Min => int_min(ty, old, x),
        AtomOp::Max => int_max(ty, old, x),
        AtomOp::Exch => x,
        AtomOp::Cas => {
            if old == x {
                desired
            } else {
                old
            }
        }
    };
    gmem.write(ty, addr, newv);
    old
}

/// Core ALU semantics. 32-bit integer results are stored sign-extended.
fn alu(op: Op, ty: Ty, a: u64, b: u64, c: u64) -> u64 {
    match ty {
        Ty::B32 => {
            let x = a as u32 as i32;
            let y = b as u32 as i32;
            let z = c as u32 as i32;
            let r: i32 = match op {
                Op::Mov => x,
                Op::Cvt => x, // i64 -> i32 truncation happens via the cast above
                Op::Add => x.wrapping_add(y),
                Op::Sub => x.wrapping_sub(y),
                Op::Mul => x.wrapping_mul(y),
                Op::Mad => x.wrapping_mul(y).wrapping_add(z),
                Op::Shl => x.wrapping_shl(b as u32 & 31),
                Op::Shr => x.wrapping_shr(b as u32 & 31),
                Op::And => x & y,
                Op::Or => x | y,
                Op::Xor => x ^ y,
                Op::Not => !x,
                Op::Min => x.min(y),
                Op::Max => x.max(y),
                Op::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                Op::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                Op::Abs => x.wrapping_abs(),
                Op::Neg => x.wrapping_neg(),
                Op::Sfu(_) => {
                    // Integer SFU is not meaningful; define as identity.
                    x
                }
                _ => unreachable!("alu called with non-ALU op {op:?}"),
            };
            r as i64 as u64
        }
        Ty::B64 => {
            let x = a as i64;
            let y = b as i64;
            let z = c as i64;
            let r: i64 = match op {
                Op::Mov => x,
                // b32 -> b64: storage is already sign-extended, so cvt is a copy.
                Op::Cvt => x,
                Op::Add => x.wrapping_add(y),
                Op::Sub => x.wrapping_sub(y),
                Op::Mul => x.wrapping_mul(y),
                Op::Mad => x.wrapping_mul(y).wrapping_add(z),
                Op::Shl => x.wrapping_shl(b as u32 & 63),
                Op::Shr => x.wrapping_shr(b as u32 & 63),
                Op::And => x & y,
                Op::Or => x | y,
                Op::Xor => x ^ y,
                Op::Not => !x,
                Op::Min => x.min(y),
                Op::Max => x.max(y),
                Op::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                Op::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                Op::Abs => x.wrapping_abs(),
                Op::Neg => x.wrapping_neg(),
                Op::Sfu(_) => x,
                _ => unreachable!("alu called with non-ALU op {op:?}"),
            };
            r as u64
        }
        Ty::F32 => {
            let x = f32::from_bits(a as u32);
            let y = f32::from_bits(b as u32);
            let z = f32::from_bits(c as u32);
            let r: f32 = match op {
                Op::Mov => x,
                // int -> f32 conversion (the storage is a sign-extended i64).
                Op::Cvt => a as i64 as f32,
                Op::Add => x + y,
                Op::Sub => x - y,
                Op::Mul => x * y,
                Op::Mad => x * y + z,
                Op::Min => x.min(y),
                Op::Max => x.max(y),
                Op::Div => x / y,
                Op::Abs => x.abs(),
                Op::Neg => -x,
                Op::Sfu(s) => sfu32(s, x),
                _ => unreachable!("f32 op {op:?} unsupported"),
            };
            r.to_bits() as u64
        }
        Ty::F64 => {
            let x = f64::from_bits(a);
            let y = f64::from_bits(b);
            let z = f64::from_bits(c);
            let r: f64 = match op {
                Op::Mov => x,
                // f32 -> f64 widening (paper Fig. 7: `cvt %fd4, %f3`).
                Op::Cvt => f64::from(f32::from_bits(a as u32)),
                Op::Add => x + y,
                Op::Sub => x - y,
                Op::Mul => x * y,
                Op::Mad => x * y + z,
                Op::Min => x.min(y),
                Op::Max => x.max(y),
                Op::Div => x / y,
                Op::Abs => x.abs(),
                Op::Neg => -x,
                Op::Sfu(s) => sfu64(s, x),
                _ => unreachable!("f64 op {op:?} unsupported"),
            };
            r.to_bits()
        }
        Ty::Pred => unreachable!("pred-typed ALU op"),
    }
}

fn sfu32(s: SfuOp, x: f32) -> f32 {
    match s {
        SfuOp::Rcp => 1.0 / x,
        SfuOp::Sqrt => x.sqrt(),
        SfuOp::Rsqrt => 1.0 / x.sqrt(),
        SfuOp::Ex2 => x.exp2(),
        SfuOp::Lg2 => x.log2(),
        SfuOp::Sin => x.sin(),
        SfuOp::Cos => x.cos(),
    }
}

fn sfu64(s: SfuOp, x: f64) -> f64 {
    match s {
        SfuOp::Rcp => 1.0 / x,
        SfuOp::Sqrt => x.sqrt(),
        SfuOp::Rsqrt => 1.0 / x.sqrt(),
        SfuOp::Ex2 => x.exp2(),
        SfuOp::Lg2 => x.log2(),
        SfuOp::Sin => x.sin(),
        SfuOp::Cos => x.cos(),
    }
}

fn compare(c: CmpOp, ty: Ty, a: u64, b: u64) -> bool {
    match ty {
        Ty::B32 => {
            let x = a as u32 as i32;
            let y = b as u32 as i32;
            cmp_ord(c, x.cmp(&y))
        }
        Ty::B64 => cmp_ord(c, (a as i64).cmp(&(b as i64))),
        Ty::F32 => {
            let x = f32::from_bits(a as u32);
            let y = f32::from_bits(b as u32);
            match x.partial_cmp(&y) {
                Some(o) => cmp_ord(c, o),
                None => c == CmpOp::Ne, // NaN: only `ne` holds
            }
        }
        Ty::F64 => {
            let x = f64::from_bits(a);
            let y = f64::from_bits(b);
            match x.partial_cmp(&y) {
                Some(o) => cmp_ord(c, o),
                None => c == CmpOp::Ne,
            }
        }
        Ty::Pred => cmp_ord(c, (a != 0).cmp(&(b != 0))),
    }
}

fn cmp_ord(c: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match c {
        CmpOp::Eq => o == Equal,
        CmpOp::Ne => o != Equal,
        CmpOp::Lt => o == Less,
        CmpOp::Le => o != Greater,
        CmpOp::Gt => o == Greater,
        CmpOp::Ge => o != Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::{Cfg, KernelBuilder, Operand};

    #[allow(clippy::too_many_arguments)]
    fn run_to_completion(
        kernel: &Kernel,
        ctaid: [u32; 3],
        warp_in_block: u32,
        tpb: u32,
        ntid: [u32; 3],
        nctaid: [u32; 3],
        gmem: &mut GlobalMem,
        params: &[u64],
    ) -> WarpState {
        let cfg = Cfg::build(kernel);
        let mut w = WarpState::new(
            kernel.num_regs(),
            kernel.num_preds().max(1),
            0,
            ctaid,
            warp_in_block,
            tpb,
            0,
        );
        let mut smem = vec![0u8; kernel.shared_bytes as usize];
        let mut ex = WarpExec {
            kernel,
            cfg: &cfg,
            params,
            ntid,
            nctaid,
            smid: 0,
            gmem,
            smem: &mut smem,
            linear: None,
            scratch: None,
            watchdog: 1_000_000,
            defer_global_atomics: false,
        };
        while !w.done {
            let s = ex.step(&mut w).unwrap();
            if s.outcome == Outcome::Barrier {
                w.at_barrier = false; // single-warp tests: barrier is a no-op
            }
        }
        w
    }

    #[test]
    fn vecadd_single_warp() {
        let mut b = KernelBuilder::new("vecadd", 3);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let pa = b.ld_param(0);
        let pb = b.ld_param(1);
        let pc = b.ld_param(2);
        let aa = b.add_wide(pa, off);
        let ba = b.add_wide(pb, off);
        let ca = b.add_wide(pc, off);
        let va = b.ld_global(Ty::F32, aa, 0);
        let vb = b.ld_global(Ty::F32, ba, 0);
        let vc = b.add_ty(Ty::F32, va, vb);
        b.st_global(Ty::F32, ca, 0, vc);
        let k = b.build();

        let mut gmem = GlobalMem::new();
        let a = gmem.alloc(32 * 4);
        let bb = gmem.alloc(32 * 4);
        let c = gmem.alloc(32 * 4);
        for i in 0..32 {
            gmem.write_f32(a, i, i as f32);
            gmem.write_f32(bb, i, 100.0 + i as f32);
        }
        run_to_completion(
            &k,
            [0; 3],
            0,
            32,
            [32, 1, 1],
            [1, 1, 1],
            &mut gmem,
            &[a, bb, c],
        );
        for i in 0..32 {
            assert_eq!(gmem.read_f32(c, i), 100.0 + 2.0 * i as f32);
        }
    }

    #[test]
    fn tid_decomposition_2d() {
        // Store tid.y into out[slot] for a (8,4,1) block.
        let mut b = KernelBuilder::new("tids", 1);
        let ty_ = b.tid_y();
        let tx = b.tid_x();
        let ntx = b.ntid_x();
        let slot = b.mad(ty_, ntx, tx);
        let off = b.shl_imm_wide(slot, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        b.st_global(Ty::B32, addr, 0, ty_);
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(32 * 4);
        run_to_completion(&k, [0; 3], 0, 32, [8, 4, 1], [1, 1, 1], &mut gmem, &[out]);
        for slot in 0..32 {
            assert_eq!(gmem.read_i32(out, slot), (slot / 8) as i32, "slot {slot}");
        }
    }

    #[test]
    fn divergent_if_else_reconverges() {
        // if (lane < 10) out[i] = 1 else out[i] = 2; then out[i] += 10 (all).
        let mut b = KernelBuilder::new("div", 1);
        let i = b.tid_x();
        let off = b.shl_imm_wide(i, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, off);
        let p = b.setp(CmpOp::Lt, Ty::B32, i, Operand::Imm(10));
        let else_l = b.label();
        let join = b.label();
        b.bra_if(p, false, else_l);
        b.st_global(Ty::B32, addr, 0, Operand::Imm(1));
        b.bra(join);
        b.place(else_l);
        b.st_global(Ty::B32, addr, 0, Operand::Imm(2));
        b.place(join);
        let v = b.ld_global(Ty::B32, addr, 0);
        let v2 = b.add(v, Operand::Imm(10));
        b.st_global(Ty::B32, addr, 0, v2);
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(32 * 4);
        run_to_completion(&k, [0; 3], 0, 32, [32, 1, 1], [1, 1, 1], &mut gmem, &[out]);
        for lane in 0..32 {
            let want = if lane < 10 { 11 } else { 12 };
            assert_eq!(gmem.read_i32(out, lane), want, "lane {lane}");
        }
    }

    #[test]
    fn loop_counts_iterations() {
        // out[lane] = sum of 0..lane (a data-dependent loop trip count).
        let mut b = KernelBuilder::new("tri", 1);
        let lane = b.tid_x();
        let acc = b.imm32(0);
        let i = b.imm32(0);
        let top = b.here_label();
        let p = b.setp(CmpOp::Lt, Ty::B32, i, lane);
        let done = b.label();
        b.bra_if(p, false, done);
        b.assign_add(Ty::B32, acc, i);
        b.assign_add(Ty::B32, i, Operand::Imm(1));
        b.bra(top);
        b.place(done);
        let off = b.shl_imm_wide(lane, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, off);
        b.st_global(Ty::B32, addr, 0, acc);
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(32 * 4);
        run_to_completion(&k, [0; 3], 0, 32, [32, 1, 1], [1, 1, 1], &mut gmem, &[out]);
        for lane in 0..32i64 {
            assert_eq!(
                gmem.read_i32(out, lane as u64),
                (lane * (lane - 1) / 2) as i32
            );
        }
    }

    #[test]
    fn partial_last_warp_masks_lanes() {
        let mut b = KernelBuilder::new("partial", 1);
        let i = b.tid_x();
        let off = b.shl_imm_wide(i, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, off);
        b.st_global(Ty::B32, addr, 0, Operand::Imm(7));
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(32 * 4);
        // block of 40 threads: warp 1 has only 8 lanes; tid.x = 32..39
        run_to_completion(&k, [0; 3], 1, 40, [40, 1, 1], [1, 1, 1], &mut gmem, &[out]);
        // warp 1 lanes map to tid 32..39 -> out[0..8] untouched? No:
        // addresses are p0 + 4*tid, so indices 32..39 of a 40-element buffer.
        // We only allocated 32 entries; allocate more for this test instead.
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(64 * 4);
        run_to_completion(&k, [0; 3], 1, 40, [40, 1, 1], [1, 1, 1], &mut gmem, &[out]);
        for i in 0..64 {
            let want = if (32..40).contains(&i) { 7 } else { 0 };
            assert_eq!(gmem.read_i32(out, i), want, "i={i}");
        }
    }

    #[test]
    fn guarded_exit_terminates_lanes() {
        // lanes >= 4 exit early; survivors write 1.
        let mut b = KernelBuilder::new("gexit", 1);
        let i = b.tid_x();
        let p = b.setp(CmpOp::Ge, Ty::B32, i, Operand::Imm(4));
        b.exit();
        b.guard_last(p, true);
        let off = b.shl_imm_wide(i, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, off);
        b.st_global(Ty::B32, addr, 0, Operand::Imm(1));
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(32 * 4);
        run_to_completion(&k, [0; 3], 0, 32, [32, 1, 1], [1, 1, 1], &mut gmem, &[out]);
        for lane in 0..32 {
            assert_eq!(gmem.read_i32(out, lane), i32::from(lane < 4));
        }
    }

    #[test]
    fn atomics_accumulate() {
        let mut b = KernelBuilder::new("atom", 1);
        let p0 = b.ld_param(0);
        let one = b.imm32(1);
        b.atom(AtomOp::Add, Ty::B32, p0, 0, one);
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let ctr = gmem.alloc(4);
        run_to_completion(&k, [0; 3], 0, 32, [32, 1, 1], [1, 1, 1], &mut gmem, &[ctr]);
        assert_eq!(gmem.read_i32(ctr, 0), 32);
    }

    #[test]
    fn shared_memory_roundtrip() {
        let mut b = KernelBuilder::new("sm", 1);
        b.shared_bytes(128);
        let i = b.tid_x();
        let soff32 = b.shl_imm(i, 2);
        let soff = b.cvt_wide(soff32);
        // write lane id to shared, read neighbour (i+1)%32 after barrier
        b.st_shared(Ty::B32, soff, 0, i);
        b.bar();
        let ip1 = b.add(i, Operand::Imm(1));
        let wrapped = b.and_ty(Ty::B32, ip1, Operand::Imm(31));
        let noff32 = b.shl_imm(wrapped, 2);
        let noff = b.cvt_wide(noff32);
        let n = b.ld_shared(Ty::B32, noff, 0);
        let goff = b.shl_imm_wide(i, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, goff);
        b.st_global(Ty::B32, addr, 0, n);
        let k = b.build();
        let mut gmem = GlobalMem::new();
        let out = gmem.alloc(32 * 4);
        run_to_completion(&k, [0; 3], 0, 32, [32, 1, 1], [1, 1, 1], &mut gmem, &[out]);
        for lane in 0..32 {
            assert_eq!(gmem.read_i32(out, lane), ((lane + 1) % 32) as i32);
        }
    }

    #[test]
    fn watchdog_fires_on_infinite_loop() {
        let mut b = KernelBuilder::new("inf", 0);
        let top = b.here_label();
        b.imm32(0);
        b.bra(top);
        let k = b.build();
        let cfg = Cfg::build(&k);
        let mut gmem = GlobalMem::new();
        let mut smem = vec![];
        let mut w = WarpState::new(k.num_regs(), 1, 0, [0; 3], 0, 32, 0);
        let mut ex = WarpExec {
            kernel: &k,
            cfg: &cfg,
            params: &[],
            ntid: [32, 1, 1],
            nctaid: [1, 1, 1],
            smid: 0,
            gmem: &mut gmem,
            smem: &mut smem,
            linear: None,
            scratch: None,
            watchdog: 100,
            defer_global_atomics: false,
        };
        let mut hit = false;
        for _ in 0..1000 {
            if ex.step(&mut w).is_err() {
                hit = true;
                break;
            }
        }
        assert!(hit, "watchdog must fire");
    }

    #[test]
    fn collect_vals_captures_sources() {
        let mut b = KernelBuilder::new("vals", 0);
        let x = b.imm32(5);
        b.add(x, Operand::Imm(3));
        let k = b.build();
        let cfg = Cfg::build(&k);
        let mut gmem = GlobalMem::new();
        let mut smem = vec![];
        let mut scratch = OperandVals::default();
        let mut w = WarpState::new(k.num_regs(), 1, 0, [0; 3], 0, 32, 0);
        let mut ex = WarpExec {
            kernel: &k,
            cfg: &cfg,
            params: &[],
            ntid: [32, 1, 1],
            nctaid: [1, 1, 1],
            smid: 0,
            gmem: &mut gmem,
            smem: &mut smem,
            linear: None,
            scratch: Some(&mut scratch),
            watchdog: 100,
            defer_global_atomics: false,
        };
        let _ = ex.step(&mut w).unwrap(); // mov
        let _ = ex.step(&mut w).unwrap(); // add
        assert_eq!(scratch.srcs[0][0], 5);
        assert_eq!(scratch.srcs[1][7], 3);
        assert_eq!(scratch.dst[31], 8);
    }

    #[test]
    fn meminfo_lines_coalesce() {
        let mi = MemInfo {
            space: MemSpace::Global,
            write: false,
            atomic: false,
            ty: Ty::F32,
            mask: u32::MAX,
            addrs: std::array::from_fn(|l| 0x1000 + 4 * l as u64),
        };
        assert_eq!(
            mi.lines(128).len(),
            1,
            "consecutive f32 accesses fit one line"
        );
        let mi2 = MemInfo {
            addrs: std::array::from_fn(|l| 0x1000 + 128 * l as u64),
            ..mi
        };
        assert_eq!(mi2.lines(128).len(), 32, "strided accesses hit 32 lines");
    }
}
