//! R2D2 linear-instruction metadata and register storage.
//!
//! A transformed kernel's instruction stream is laid out as four consecutive
//! blocks (paper Fig. 5 / Sec. 3.2):
//!
//! ```text
//! [ coefficients ][ thread-index parts ][ block-index parts ][ non-linear ]
//!   ^coef_start     ^tidx_start           ^bidx_start          ^main_start
//! ```
//!
//! The starting PCs form the microarchitecture's "Starting PC table"
//! (Fig. 10). The register table (16 entries, Sec. 3.3) couples each linear
//! register `%lrK` with a thread-index register id, so an `%lr` read resolves
//! to `tr[table[K]] + br[K]`.

/// Maximum linear registers (register-table entries, paper Sec. 3.3).
pub const MAX_LR: usize = 16;

/// Metadata accompanying an R2D2-transformed kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearMeta {
    /// Start pc of the coefficient block (always 0 in generated kernels).
    pub coef_start: usize,
    /// Start pc of the thread-index block.
    pub tidx_start: usize,
    /// Start pc of the block-index block.
    pub bidx_start: usize,
    /// Start pc of the non-linear (main) stream.
    pub main_start: usize,
    /// Number of coefficient registers.
    pub n_cr: usize,
    /// Number of thread-index registers.
    pub n_tr: usize,
    /// Number of linear registers (= block-index part count), at most [`MAX_LR`].
    pub n_lr: usize,
    /// Register table: linear register id -> thread-index register id
    /// (`None` when the combination has no thread-index part).
    pub lr_tr: [Option<u16>; MAX_LR],
}

impl LinearMeta {
    /// Which linear block a pc falls into.
    pub fn phase_of(&self, pc: usize) -> Phase {
        if pc < self.tidx_start {
            Phase::Coef
        } else if pc < self.bidx_start {
            Phase::Tidx
        } else if pc < self.main_start {
            Phase::Bidx
        } else {
            Phase::Main
        }
    }

    /// `true` when the transformed stream actually contains linear
    /// instructions (the analyzer found something to decouple).
    pub fn has_linear(&self) -> bool {
        self.main_start > 0
    }
}

/// Which of the four instruction blocks an instruction belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Linear instructions for coefficients (single thread per SM).
    Coef,
    /// Linear instructions for thread-index parts (first block per SM).
    Tidx,
    /// Linear instructions for block-index parts (first warp per block).
    Bidx,
    /// Non-linear instructions (every thread).
    Main,
}

impl Phase {
    /// Phase as an array index (Coef=0 .. Main=3).
    pub fn idx(self) -> usize {
        match self {
            Phase::Coef => 0,
            Phase::Tidx => 1,
            Phase::Bidx => 2,
            Phase::Main => 3,
        }
    }

    /// `true` for the three decoupled linear blocks.
    pub fn is_linear(self) -> bool {
        self != Phase::Main
    }
}

/// Per-SM storage for the R2D2 register classes.
///
/// * `cr` — coefficient registers, one scalar slot each (per SM).
/// * `tr` — thread-index parts: `n_tr × threads_per_block` values, shared by
///   all thread blocks on the SM (computed once per kernel).
/// * `br` — block-index parts: `n_lr` values per *block slot* (recomputed for
///   each newly scheduled block; following blocks reuse the slot's registers,
///   paper Sec. 4.4).
#[derive(Debug, Clone, Default)]
pub struct LinearStore {
    /// Coefficient registers (scalar, per SM).
    pub cr: Vec<u64>,
    /// Thread-index registers: indexed `tr_id * threads_per_block + slot`.
    pub tr: Vec<u64>,
    /// Block-index registers per block slot: indexed `[slot][lr_id]`.
    pub br: Vec<Vec<u64>>,
    /// Threads per block (row stride of `tr`).
    pub threads_per_block: usize,
}

impl LinearStore {
    /// Allocate storage for a launch.
    pub fn new(meta: &LinearMeta, threads_per_block: usize, block_slots: usize) -> Self {
        LinearStore {
            cr: vec![0; meta.n_cr],
            tr: vec![0; meta.n_tr * threads_per_block],
            br: vec![vec![0; meta.n_lr]; block_slots],
            threads_per_block,
        }
    }

    /// Read a thread-index register for a thread slot.
    pub fn tr_read(&self, tr_id: u16, thread_slot: usize) -> u64 {
        self.tr[tr_id as usize * self.threads_per_block + thread_slot]
    }

    /// Write a thread-index register for a thread slot.
    pub fn tr_write(&mut self, tr_id: u16, thread_slot: usize, v: u64) {
        self.tr[tr_id as usize * self.threads_per_block + thread_slot] = v;
    }

    /// The linear register value for a thread: `tr + br` (paper Sec. 4.3).
    pub fn lr_read(
        &self,
        meta: &LinearMeta,
        lr_id: u16,
        block_slot: usize,
        thread_slot: usize,
    ) -> u64 {
        let t = match meta.lr_tr[lr_id as usize] {
            Some(tr_id) => self.tr_read(tr_id, thread_slot),
            None => 0,
        };
        t.wrapping_add(self.br[block_slot][lr_id as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> LinearMeta {
        LinearMeta {
            coef_start: 0,
            tidx_start: 3,
            bidx_start: 7,
            main_start: 10,
            n_cr: 4,
            n_tr: 2,
            n_lr: 3,
            lr_tr: {
                let mut t = [None; MAX_LR];
                t[0] = Some(0);
                t[1] = Some(1);
                // lr2 has no thread part
                t
            },
        }
    }

    #[test]
    fn phase_boundaries() {
        let m = meta();
        assert_eq!(m.phase_of(0), Phase::Coef);
        assert_eq!(m.phase_of(2), Phase::Coef);
        assert_eq!(m.phase_of(3), Phase::Tidx);
        assert_eq!(m.phase_of(7), Phase::Bidx);
        assert_eq!(m.phase_of(10), Phase::Main);
        assert_eq!(m.phase_of(999), Phase::Main);
        assert!(m.has_linear());
        assert!(Phase::Coef.is_linear());
        assert!(!Phase::Main.is_linear());
    }

    #[test]
    fn lr_read_sums_tr_and_br() {
        let m = meta();
        let mut s = LinearStore::new(&m, 64, 2);
        s.tr_write(0, 5, 100);
        s.br[1][0] = 23;
        assert_eq!(s.lr_read(&m, 0, 1, 5), 123);
        // lr2 has no thread part: value is br only.
        s.br[1][2] = 77;
        assert_eq!(s.lr_read(&m, 2, 1, 63), 77);
    }

    #[test]
    fn tr_rows_are_disjoint() {
        let m = meta();
        let mut s = LinearStore::new(&m, 4, 1);
        s.tr_write(0, 3, 1);
        s.tr_write(1, 0, 2);
        assert_eq!(s.tr_read(0, 3), 1);
        assert_eq!(s.tr_read(1, 0), 2);
        assert_eq!(s.tr_read(0, 0), 0);
    }
}
