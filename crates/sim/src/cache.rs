//! Set-associative cache tag model (LRU).

use crate::config::CacheConfig;

/// A tag-only set-associative cache with LRU replacement.
///
/// Data never lives here — functional values come straight from
/// [`crate::GlobalMem`]; the cache only answers "would this access hit?" for
/// the timing and energy models.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    num_sets: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    lru: u64,
    valid: bool,
}

impl Cache {
    /// Build from a geometry description.
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.sets();
        Cache {
            sets: vec![
                vec![
                    Way {
                        tag: 0,
                        lru: 0,
                        valid: false
                    };
                    cfg.ways as usize
                ];
                num_sets as usize
            ],
            num_sets,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access a cache line (by line id, not byte address). Returns `true` on
    /// hit. Misses allocate the line (evicting LRU).
    pub fn access(&mut self, line: u64) -> bool {
        self.tick += 1;
        let set = (line % self.num_sets) as usize;
        let tag = line / self.num_sets;
        let ways = &mut self.sets[set];
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.lru = self.tick;
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        // Evict the LRU (or first invalid) way.
        let mut victim = 0;
        let mut best = u64::MAX;
        for (i, w) in ways.iter().enumerate() {
            if !w.valid {
                victim = i;
                break;
            }
            if w.lru < best {
                best = w.lru;
                victim = i;
            }
        }
        ways[victim] = Way {
            tag,
            lru: self.tick,
            valid: true,
        };
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 128B lines = 1 KiB
        Cache::new(CacheConfig {
            bytes: 1024,
            line: 128,
            ways: 2,
        })
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = small();
        assert!(!c.access(5));
        assert!(c.access(5));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn associativity_holds_two_lines_per_set() {
        let mut c = small();
        // lines 0, 4, 8 all map to set 0 (4 sets)
        c.access(0);
        c.access(4);
        assert!(c.access(0), "two ways keep both");
        assert!(c.access(4));
        c.access(8); // evicts LRU = line 0
        assert!(!c.access(0), "line 0 was evicted");
    }

    #[test]
    fn lru_eviction_prefers_oldest() {
        let mut c = small();
        c.access(0);
        c.access(4);
        c.access(0); // 4 is now LRU
        c.access(8); // evicts 4
        assert!(c.access(0));
        assert!(!c.access(4));
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for line in 0..4 {
            c.access(line);
        }
        for line in 0..4 {
            assert!(c.access(line), "line {line} in its own set");
        }
    }
}
