//! Cycle-level timing simulation.
//!
//! Models the paper's baseline GPU (Table 1): 80 SMs, 4 GTO warp schedulers
//! per SM issuing one instruction per cycle each, a per-register scoreboard,
//! per-SM L1, shared banked L2, and a bandwidth-limited DRAM. R2D2 kernels
//! additionally get the Sec. 4 microarchitecture: per-warp starting PCs
//! (the Starting PC table), phase gating flags, round-robin scheduling while
//! linear instructions are in flight, and the Sec. 5.4 latency adders.
//!
//! Execution is *execute-at-issue*: functional effects happen when the
//! instruction issues, and the scoreboard delays dependents by the modeled
//! latency. Machine models ([`IssueFilter`]) reclassify instructions at issue
//! (execute / scalar / skip) without ever changing values.
//!
//! Two main-loop implementations share one per-candidate issue engine
//! (`attempt_issue`) and are selected by [`crate::config::LoopKind`]:
//!
//! * `Lockstep` — the reference: every cycle, each scheduler rebuilds and
//!   sorts its candidate list from scratch.
//! * `EventDriven` (default) — persistent per-scheduler orderings (a GTO
//!   priority list in `seq` order, an RR ring pointer) maintained at
//!   dispatch/completion events, recycled scoreboard/smem buffers, and exact
//!   idle-cycle skipping: when a full pass over all SMs neither executes an
//!   instruction nor crosses a phase-gate boundary, `now` jumps straight to
//!   the earliest scoreboard wakeup (or the cycle where the watchdog or
//!   deadlock check would fire, whichever is first).
//!
//! Both produce bit-identical [`Stats`] and global memory; the
//! `loop_equivalence` differential test enforces this across the workload
//! zoo and every machine model. See DESIGN.md "Timing-loop internals" for
//! the exactness argument.
//!
//! The whole machinery is generic over an [`EventSink`] (see `r2d2-trace`):
//! every instrumentation site is guarded by `if S::ENABLED`, so an
//! unobserved [`crate::SimSession`] run (which passes [`r2d2_trace::NullSink`])
//! monomorphizes to the uninstrumented hot loop, while `.sink(...)` with a
//! [`r2d2_trace::Profiler`] records per-SM/per-warp stall attribution and
//! time series. Both loop kinds emit identical event streams — the
//! event-driven loop reports skipped idle spans via `idle_skip`, which the
//! profiler replays from the preceding no-progress cycle (exact, because no
//! SM state can change while nothing issues). See DESIGN.md "Observability".

use crate::cache::Cache;
use crate::config::{GpuConfig, LoopKind};
use crate::exec::{AtomVals, ExecError, MemInfo, OperandVals, Outcome, WarpExec, WarpState};
use crate::filter::{Disposition, IssueCtx, IssueFilter};
use crate::launch::Launch;
use crate::linear::{LinearMeta, LinearStore, Phase};
use crate::mem::GlobalMem;
use crate::stats::Stats;
use r2d2_isa::{AtomOp, Cfg, Dst, Instr, Kernel, MemOffset, MemSpace, Op, Operand, Ty};
use r2d2_trace::{EventSink, MemLevel, StallCause};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

mod shard;

use shard::run_sharded;

/// Cooperative cancellation flag for a running simulation.
///
/// Cloning is cheap (it wraps an `Arc<AtomicBool>`) and every clone observes
/// the same flag, so a token handed to a [`crate::SimSession`] can be
/// triggered from any thread. The timing loops poll it where the watchdog is
/// evaluated — the head of both single-threaded loops and every epoch
/// boundary of the sharded loop — so a cancelled run stops within one epoch
/// and returns [`SimError::Cancelled`] instead of running to completion.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Error from a timing simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A warp ran away (functional watchdog).
    Exec(ExecError),
    /// No instruction issued for a long time with work remaining.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
    },
    /// The global cycle watchdog fired.
    Watchdog {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// The kernel cannot be resident on an SM (block too large).
    Unschedulable,
    /// The run's [`CancelToken`] was triggered.
    Cancelled {
        /// Cycle at which the cancellation was observed.
        cycle: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "{e}"),
            SimError::Deadlock { cycle } => write!(f, "no forward progress at cycle {cycle}"),
            SimError::Watchdog { limit } => write!(f, "exceeded {limit} cycles"),
            SimError::Unschedulable => write!(f, "thread block does not fit on an SM"),
            SimError::Cancelled { cycle } => write!(f, "cancelled at cycle {cycle}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> Self {
        SimError::Exec(e)
    }
}

const NO_GATE: usize = usize::MAX;
/// Cap on zero-cost skips consumed per scheduler slot per cycle.
const MAX_SKIPS_PER_PICK: usize = 64;
/// Cycles without an issue before the deadlock detector fires.
const DEADLOCK_WINDOW: u64 = 1_000_000;

/// `TWarp::reg_cause` codes: which unit produced a register's pending value
/// (tracked only when the event sink is enabled; maps a scoreboard block to
/// a [`StallCause`]).
const CAUSE_ALU: u8 = 0;
const CAUSE_LSU: u8 = 1;
const CAUSE_DRAM: u8 = 2;

/// Scoreboard sentinel written by the sharded loop for a value produced by a
/// deferred (L2/DRAM-bound) access: "not ready at any cycle inside the
/// current epoch". The epoch length is chosen so the true readiness time
/// always lands past the epoch boundary, where the drain replaces the
/// sentinel with the exact cycle (see the `shard` module).
const PENDING: u64 = u64::MAX;

struct TWarp {
    w: WarpState,
    reg_ready: Vec<u64>,
    pred_ready: Vec<u64>,
    /// Producer kind per register ([`CAUSE_ALU`]/[`CAUSE_LSU`]/[`CAUSE_DRAM`]);
    /// empty unless the event sink is enabled.
    reg_cause: Vec<u8>,
    slot: usize,
    seq: u64,
    next_gate: usize,
}

struct Slot {
    active: bool,
    first_wave: bool,
    live: u32,
    barrier_wait: u32,
    smem: Vec<u8>,
    bidx_done: bool,
}

struct Sm {
    warps: Vec<Option<TWarp>>,
    slots: Vec<Slot>,
    l1: Cache,
    store: Option<LinearStore>,
    cr_ready: Vec<u64>,
    tr_ready: Vec<u64>,
    br_ready: Vec<u64>,
    coef_done: bool,
    tidx_done: bool,
    tidx_pending: u32,
    owner_assigned: bool,
    gto_last: Vec<Option<usize>>,
    rr_ptr: Vec<usize>,
    gates_open_cycle: Option<u64>,
    next_seq: u64,
    /// Per-scheduler warp indices in `seq` order (the persistent GTO list;
    /// appended at dispatch, pruned at block completion). Entries may point
    /// at done/at-barrier warps — filtered at iteration time.
    lane_seq: Vec<Vec<u32>>,
    /// Recycled `(reg_ready, pred_ready, reg_cause)` buffers from completed
    /// warps.
    free_ready: Vec<(Vec<u64>, Vec<u64>, Vec<u8>)>,
}

/// Compute how many blocks of this launch fit on one SM, honoring the Table 1
/// limits plus the register/shared-memory capacity, and — for R2D2 kernels —
/// the Sec. 4.4 accounting for thread-index, block-index and coefficient
/// registers.
pub fn blocks_per_sm(cfg: &GpuConfig, launch: &Launch, phys_regs: u32) -> u32 {
    let tpb = launch.threads_per_block() as u64;
    let wpb = launch.warps_per_block();
    if wpb == 0 || wpb > cfg.max_warps_per_sm {
        return 0;
    }
    let mut cand = cfg.max_blocks_per_sm.min(cfg.max_warps_per_sm / wpb);
    if launch.kernel.shared_bytes > 0 {
        cand = cand.min((cfg.shared_bytes_per_sm / launch.kernel.shared_bytes as u64) as u32);
    }
    let regs_avail = cfg.regs_per_sm();
    while cand > 0 {
        let gp = phys_regs as u64 * tpb * cand as u64;
        let linear = match &launch.meta {
            Some(m) if m.has_linear() => {
                // Sec. 5.6 accounting: tr are 4-byte per thread slot (shared
                // across blocks), br take 8 bytes per lr per resident block,
                // cr are per-SM scalars.
                m.n_tr as u64 * tpb + 2 * m.n_lr as u64 * cand as u64 + m.n_cr as u64
            }
            _ => 0,
        };
        if gp + linear <= regs_avail {
            return cand;
        }
        cand -= 1;
    }
    0
}

/// An estimate of physical registers per thread: the maximum number of
/// simultaneously live virtual registers (what a register allocator needs).
pub fn phys_regs_estimate(kernel: &Kernel, cfg: &Cfg) -> u32 {
    max_live_regs(kernel, cfg).max(8) as u32
}

/// Maximum number of simultaneously-live GP virtual registers, by iterative
/// backward liveness over the CFG.
#[allow(clippy::needless_range_loop)]
fn max_live_regs(kernel: &Kernel, cfg: &Cfg) -> usize {
    let nregs = kernel.num_regs();
    if nregs == 0 {
        return 0;
    }
    let words = nregs.div_ceil(64);
    let nb = cfg.blocks.len();
    let mut live_out = vec![vec![0u64; words]; nb];
    let mut live_in = vec![vec![0u64; words]; nb];
    let set = |v: &mut [u64], r: usize| v[r / 64] |= 1 << (r % 64);
    let get = |v: &[u64], r: usize| v[r / 64] & (1 << (r % 64)) != 0;
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut out = vec![0u64; words];
            for &s in &cfg.blocks[b].succs {
                for (o, i) in out.iter_mut().zip(live_in[s].iter()) {
                    *o |= *i;
                }
            }
            let mut cur = out.clone();
            for pc in (cfg.blocks[b].start..cfg.blocks[b].end).rev() {
                let ins = &kernel.instrs[pc];
                if let Some(Dst::Reg(r)) = ins.dst {
                    cur[r.0 as usize / 64] &= !(1 << (r.0 as usize % 64));
                }
                for r in ins.src_regs() {
                    set(&mut cur, r.0 as usize);
                }
            }
            if out != live_out[b] || cur != live_in[b] {
                live_out[b] = out;
                live_in[b] = cur;
                changed = true;
            }
        }
    }
    // Max live at any point: re-walk each block.
    let mut best = 0usize;
    for b in 0..nb {
        let mut cur = live_out[b].clone();
        let count = |v: &[u64]| v.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        best = best.max(count(&cur));
        for pc in (cfg.blocks[b].start..cfg.blocks[b].end).rev() {
            let ins = &kernel.instrs[pc];
            if let Some(Dst::Reg(r)) = ins.dst {
                cur[r.0 as usize / 64] &= !(1 << (r.0 as usize % 64));
            }
            for r in ins.src_regs() {
                if !get(&cur, r.0 as usize) {
                    set(&mut cur, r.0 as usize);
                }
            }
            best = best.max(count(&cur));
        }
    }
    best
}

fn base_latency(cfg: &GpuConfig, instr: &Instr) -> u64 {
    match instr.op {
        Op::Sfu(_) => cfg.lat.sfu,
        Op::Div | Op::Rem if instr.ty.is_int() => cfg.lat.sfu,
        _ => match instr.ty {
            Ty::F64 => cfg.lat.fp64,
            Ty::F32 => cfg.lat.fp32,
            _ => cfg.lat.int_alu,
        },
    }
}

/// The memory side every SM shares: the banked L2 and the DRAM service-slot
/// accounting (sub-cycle units). One owned object instead of loose `&mut
/// Cache` / `&mut u64` borrows threaded through the loop — the single-threaded
/// path owns it inside [`DirectMem`], the sharded path keeps it on the
/// coordinator and feeds it deferred events at epoch drains.
pub(crate) struct MemSide {
    l2: Cache,
    dram_busy_u: u64,
}

/// Which sequential accounting path an L2-bound line takes in
/// [`MemSide::l2_line`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L2Kind {
    Load,
    Store,
    Atomic,
}

impl MemSide {
    fn new(cfg: &GpuConfig) -> Self {
        MemSide {
            l2: Cache::new(cfg.l2),
            dram_busy_u: 0,
        }
    }

    /// Bandwidth-limited DRAM: `dram_txns_per_cycle` service slots per cycle,
    /// tracked in sub-cycle units. Returns queueing delay in cycles.
    fn dram_queue(&mut self, cfg: &GpuConfig, now: u64) -> u64 {
        let rate = cfg.dram_txns_per_cycle as u64;
        let now_u = now * rate;
        let slot = self.dram_busy_u.max(now_u);
        self.dram_busy_u = slot + 1;
        (slot - now_u) / rate
    }

    /// Account one L2-bound line access at cycle `now`: L2 tag access, DRAM
    /// queueing on a miss, stats, and sink events. Returns `(latency
    /// contribution, served by DRAM)`. The single source of truth shared by
    /// the direct path and the sharded epoch drain — the branch structure
    /// mirrors the original `mem_latency` exactly.
    fn l2_line<S: EventSink>(
        &mut self,
        cfg: &GpuConfig,
        now: u64,
        line: u64,
        kind: L2Kind,
        stats: &mut Stats,
        sink: &mut S,
    ) -> (u64, bool) {
        stats.events.l2_accesses += 1;
        let hit = self.l2.access(line);
        if hit {
            stats.l2_hits += 1;
            if S::ENABLED {
                sink.mem_access(MemLevel::L2, true);
            }
        } else {
            stats.l2_misses += 1;
            stats.dram_txns += 1;
            stats.events.dram_txns += 1;
            if S::ENABLED {
                sink.mem_access(MemLevel::L2, false);
                sink.mem_access(MemLevel::Dram, true);
            }
        }
        match kind {
            // Atomics are processed at the L2.
            L2Kind::Atomic => {
                if hit {
                    (cfg.lat.atomic, false)
                } else {
                    (self.dram_queue(cfg, now) + cfg.lat.atomic, true)
                }
            }
            // Write-through, no-allocate at L1; allocate at L2. Stores don't
            // produce a value, so they contribute no latency either way.
            L2Kind::Store => {
                if !hit {
                    self.dram_queue(cfg, now);
                }
                (0, false)
            }
            L2Kind::Load => {
                if hit {
                    (cfg.lat.l2_hit, false)
                } else {
                    (self.dram_queue(cfg, now) + cfg.lat.dram, true)
                }
            }
        }
    }
}

/// One deferred L2/DRAM-bound access, queued by a shard at issue and resolved
/// by the epoch drain in deterministic `(cycle, sm, program order)` order.
pub(crate) struct MemEvent {
    cycle: u64,
    /// Global SM id (drain sort key after `cycle`).
    sm: u32,
    /// Warp index on that SM plus its dispatch sequence number: the drain
    /// skips warp-local writebacks when the slot has been recycled.
    wi: u32,
    seq: u64,
    /// L2-bound line ids, first-touch order (empty only for skipped atomics,
    /// which keep their functional RMW but charge nothing).
    lines: Vec<u64>,
    /// Latency already resolved in-shard (worst L1 hit among lines that never
    /// reached the L2; 0 for stores and atomics).
    eager_worst: u64,
    /// `(n_lines - 1)` LSU serialization plus the R2D2 latency adders.
    extra: u64,
    kind: EvKind,
    /// Scoreboard destination holding [`PENDING`] (None for stores and
    /// skipped instructions).
    dst: Option<Dst>,
    /// `tr_ready` value the write replaced, for the max-merge writeback of a
    /// `%tr` destination.
    prev_tr: u64,
}

enum EvKind {
    Load,
    Store,
    /// A deferred global atomic: the read-modify-write itself was suppressed
    /// at issue and is applied at the drain.
    Atomic(Box<AtomApply>),
}

/// Everything needed to apply a deferred atomic's functional effects.
struct AtomApply {
    aop: AtomOp,
    ty: Ty,
    mask: u32,
    addrs: [u64; crate::exec::WARP_SIZE],
    vals: AtomVals,
    /// Where each lane's old value lands (applied even when a filter skipped
    /// the instruction — functional effects are unconditional).
    value_dst: Option<Dst>,
}

/// A buffered stall event whose winning cause depends on scoreboard entries
/// that were still [`PENDING`] when the warp was examined; the drain
/// re-derives the cause once those entries resolve and patches the shard's
/// event buffer in place.
pub(crate) struct StallFix {
    cycle: u64,
    sm: u32,
    /// Index of the `stall` event in the shard's [`r2d2_trace::ShardBuffer`].
    buf_idx: usize,
    /// `(readiness, cause, pending key)` per scoreboard entry the blocked
    /// instruction waits on, in `deps_block_cause` walk order.
    entries: Vec<(u64, StallCause, Pend)>,
}

/// Identifies which SM-shared scoreboard array resolves a pending entry.
#[derive(Debug, Clone, Copy)]
enum Pend {
    /// The captured readiness time was already exact.
    No,
    Cr(u16),
    Tr(u16),
    Br(usize),
}

/// One entry of a shard's deferred-work queue. Queue position is intra-shard
/// program order; the drain's stable sort by `(cycle, sm)` therefore
/// reconstructs the exact order the sequential loop would have touched the
/// shared memory side in.
pub(crate) enum DrainItem {
    Mem(MemEvent),
    Fix(StallFix),
}

impl DrainItem {
    fn key(&self) -> (u64, u32) {
        match self {
            DrainItem::Mem(e) => (e.cycle, e.sm),
            DrainItem::Fix(f) => (f.cycle, f.sm),
        }
    }
}

/// How the issue engine reaches global memory and the shared L2/DRAM side.
/// The single-threaded loops resolve everything at issue ([`DirectMem`]); the
/// sharded loop executes global loads/stores functionally under a lock but
/// defers all L2/DRAM timing (and atomics entirely) into a queue drained at
/// epoch boundaries (`shard::ShardMem`).
pub(crate) trait MemBackend {
    /// `true` when L2-bound timing resolves at the epoch drain.
    const DEFERRED: bool;

    /// Run `f` with global memory. Deferred backends take the shared lock
    /// only when `needs_global` and hand out an empty arena otherwise, so a
    /// mis-gated access fails loudly instead of racing.
    fn with_gmem<R>(&mut self, needs_global: bool, f: impl FnOnce(&mut GlobalMem) -> R) -> R;

    /// The shared memory side (direct backends only).
    fn side(&mut self) -> &mut MemSide;

    /// Queue a deferred item (deferred backends only).
    fn defer(&mut self, item: DrainItem);
}

/// The single-threaded backend: exclusive access to everything.
pub(crate) struct DirectMem<'a> {
    side: MemSide,
    gmem: &'a mut GlobalMem,
}

impl MemBackend for DirectMem<'_> {
    const DEFERRED: bool = false;

    fn with_gmem<R>(&mut self, _needs_global: bool, f: impl FnOnce(&mut GlobalMem) -> R) -> R {
        f(self.gmem)
    }

    fn side(&mut self) -> &mut MemSide {
        &mut self.side
    }

    fn defer(&mut self, _item: DrainItem) {
        unreachable!("direct backend never defers")
    }
}

/// Resolution of one warp memory access at issue time.
enum MemRes {
    /// Fully resolved: `(latency, reg-cause code)`.
    Now(u64, u8),
    /// At least one line is L2-bound; timing completes at the epoch drain.
    Defer {
        lines: Vec<u64>,
        eager_worst: u64,
        extra_n: u64,
    },
}

/// Memory-access timing at issue. On the direct path this resolves every line
/// immediately, preserving the original per-line L1→L2→DRAM interleaving
/// byte for byte. On the deferred path only the SM-private L1 is probed
/// eagerly; anything touching the shared L2/DRAM is returned as
/// [`MemRes::Defer`] for the epoch drain.
fn mem_latency<S: EventSink, M: MemBackend>(
    cfg: &GpuConfig,
    mi: &MemInfo,
    l1: &mut Cache,
    mem: &mut M,
    now: u64,
    stats: &mut Stats,
    sink: &mut S,
) -> MemRes {
    match mi.space {
        MemSpace::Shared => {
            stats.shared_txns += 1;
            stats.events.shared_accesses += 1;
            if S::ENABLED {
                sink.mem_access(MemLevel::Shared, true);
            }
            MemRes::Now(cfg.lat.shared, CAUSE_LSU)
        }
        MemSpace::Global => {
            let lines = mi.lines(cfg.l1.line);
            let n = lines.len() as u64;
            if M::DEFERRED {
                if mi.atomic || mi.write {
                    // Atomics and stores never touch the L1.
                    return MemRes::Defer {
                        lines,
                        eager_worst: 0,
                        extra_n: n.saturating_sub(1),
                    };
                }
                let mut l2_lines = Vec::new();
                let mut eager_worst = 0u64;
                for line in lines {
                    stats.events.l1_accesses += 1;
                    if l1.access(line) {
                        stats.l1_hits += 1;
                        if S::ENABLED {
                            sink.mem_access(MemLevel::L1, true);
                        }
                        eager_worst = eager_worst.max(cfg.lat.l1_hit);
                    } else {
                        stats.l1_misses += 1;
                        if S::ENABLED {
                            sink.mem_access(MemLevel::L1, false);
                        }
                        l2_lines.push(line);
                    }
                }
                if l2_lines.is_empty() {
                    // All lines hit the private L1: fully resolved in-shard.
                    return MemRes::Now(eager_worst + n.saturating_sub(1), CAUSE_LSU);
                }
                return MemRes::Defer {
                    lines: l2_lines,
                    eager_worst,
                    extra_n: n.saturating_sub(1),
                };
            }
            let mut worst = 0u64;
            let mut dram_served = false;
            for line in lines {
                let (lat, served) = if mi.atomic {
                    mem.side()
                        .l2_line(cfg, now, line, L2Kind::Atomic, stats, sink)
                } else if mi.write {
                    mem.side()
                        .l2_line(cfg, now, line, L2Kind::Store, stats, sink)
                } else {
                    stats.events.l1_accesses += 1;
                    if l1.access(line) {
                        stats.l1_hits += 1;
                        if S::ENABLED {
                            sink.mem_access(MemLevel::L1, true);
                        }
                        (cfg.lat.l1_hit, false)
                    } else {
                        stats.l1_misses += 1;
                        if S::ENABLED {
                            sink.mem_access(MemLevel::L1, false);
                        }
                        mem.side()
                            .l2_line(cfg, now, line, L2Kind::Load, stats, sink)
                    }
                };
                worst = worst.max(lat);
                dram_served |= served;
            }
            let cause = if dram_served { CAUSE_DRAM } else { CAUSE_LSU };
            // The LSU serializes transactions of one warp access.
            MemRes::Now(worst + n.saturating_sub(1), cause)
        }
    }
}

enum Gate {
    Ready(usize),
    Blocked,
    Done,
}

/// Resolve the warp's next PC through the R2D2 phase gates. Sets `crossed`
/// when a gate boundary is crossed — crossings mutate SM-wide state
/// (`coef_done`/`tidx_done`/`tidx_pending`/`bidx_done`) that other warps
/// observe, so the event-driven loop must treat them as forward progress.
#[allow(clippy::too_many_arguments)]
fn gate_and_pc(
    tw: &mut TWarp,
    meta: Option<&LinearMeta>,
    coef_done: &mut bool,
    tidx_done: &mut bool,
    tidx_pending: &mut u32,
    slot_bidx_done: &mut bool,
    crossed: &mut bool,
) -> Gate {
    loop {
        let Some((pc, _)) = tw.w.sync_top() else {
            return Gate::Done;
        };
        let Some(m) = meta else {
            return Gate::Ready(pc);
        };
        if tw.next_gate != NO_GATE && pc >= tw.next_gate {
            let boundary = tw.next_gate;
            *crossed = true;
            if boundary == m.tidx_start {
                *coef_done = true;
                tw.next_gate = m.bidx_start;
            } else if boundary == m.bidx_start {
                *tidx_pending = tidx_pending.saturating_sub(1);
                if *tidx_pending == 0 {
                    *tidx_done = true;
                }
                if tw.w.warp_in_block == 0 {
                    tw.next_gate = m.main_start;
                } else {
                    // Non-first warps skip the block-index block.
                    if let Some(top) = tw.w.stack.last_mut() {
                        top.pc = m.main_start;
                    }
                    tw.next_gate = NO_GATE;
                }
            } else if boundary == m.main_start {
                *slot_bidx_done = true;
                tw.next_gate = NO_GATE;
            } else {
                tw.next_gate = NO_GATE;
            }
            continue;
        }
        // Entry gating at region starts.
        if pc == m.tidx_start && m.tidx_start != m.bidx_start && !*coef_done {
            return Gate::Blocked;
        }
        if pc == m.bidx_start && m.bidx_start != m.main_start && !*coef_done {
            return Gate::Blocked;
        }
        if pc == m.main_start && !(*tidx_done && *slot_bidx_done) {
            return Gate::Blocked;
        }
        return Gate::Ready(pc);
    }
}

/// Per-SM readiness of the R2D2 register classes (a scoreboard over `%cr`,
/// `%tr` and `%br`, shared across the SM's warps like the registers
/// themselves).
struct LinearReadiness<'a> {
    cr: &'a [u64],
    tr: &'a [u64],
    br_slot: u64,
    lr_tr: &'a [Option<u16>; crate::linear::MAX_LR],
}

impl LinearReadiness<'_> {
    /// Cycle at which the operand's scoreboard entry clears (0 = ready).
    fn operand_time(&self, o: &Operand) -> u64 {
        match o {
            Operand::Cr(k) => self.cr.get(*k as usize).copied().unwrap_or(0),
            Operand::Tr(k) => self.tr.get(*k as usize).copied().unwrap_or(0),
            Operand::Br(_) => self.br_slot,
            Operand::Lr(k) => {
                let t = match self.lr_tr[*k as usize] {
                    Some(t) => self.tr.get(t as usize).copied().unwrap_or(0),
                    None => 0,
                };
                t.max(self.br_slot)
            }
            _ => 0,
        }
    }

    fn operand_ready(&self, o: &Operand, now: u64) -> bool {
        self.operand_time(o) <= now
    }
}

fn deps_ready(tw: &TWarp, instr: &Instr, now: u64, lin: Option<&LinearReadiness<'_>>) -> bool {
    if let Some((p, _)) = instr.guard {
        if tw.pred_ready[p.0 as usize] > now {
            return false;
        }
    }
    for s in &instr.srcs {
        match s {
            Operand::Reg(r) if tw.reg_ready[r.0 as usize] > now => {
                return false;
            }
            Operand::Pred(p) if tw.pred_ready[p.0 as usize] > now => {
                return false;
            }
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    if !l.operand_ready(o, now) {
                        return false;
                    }
                }
            }
            _ => {}
        }
    }
    if let Some(m) = instr.mem {
        match m.base {
            Operand::Reg(r) if tw.reg_ready[r.0 as usize] > now => {
                return false;
            }
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    if !l.operand_ready(&o, now) {
                        return false;
                    }
                }
            }
            _ => {}
        }
        if let MemOffset::Cr(k) | MemOffset::CrImm(k, _) = m.offset {
            if let Some(l) = lin {
                if !l.operand_ready(&Operand::Cr(k), now) {
                    return false;
                }
            }
        }
    }
    match instr.dst {
        Some(Dst::Reg(r)) => tw.reg_ready[r.0 as usize] <= now,
        Some(Dst::Pred(p)) => tw.pred_ready[p.0 as usize] <= now,
        Some(Dst::Cr(k)) => lin.is_none_or(|l| l.cr.get(k as usize).copied().unwrap_or(0) <= now),
        Some(Dst::Tr(k)) => lin.is_none_or(|l| l.tr.get(k as usize).copied().unwrap_or(0) <= now),
        Some(Dst::Br(_)) => lin.is_none_or(|l| l.br_slot <= now),
        None => true,
    }
}

/// Earliest cycle at which [`deps_ready`] could turn true: the max readiness
/// time over every scoreboard entry the instruction waits on. Only meaningful
/// when `deps_ready` is currently false; the event-driven loop folds this
/// into its wakeup minimum. `deps_ready(tw, instr, t, lin)` holds exactly for
/// all `t >= deps_wake(tw, instr, lin)` (scoreboard entries only move forward
/// when an instruction issues, which counts as progress).
fn deps_wake(tw: &TWarp, instr: &Instr, lin: Option<&LinearReadiness<'_>>) -> u64 {
    let mut t = 0u64;
    if let Some((p, _)) = instr.guard {
        t = t.max(tw.pred_ready[p.0 as usize]);
    }
    for s in &instr.srcs {
        match s {
            Operand::Reg(r) => t = t.max(tw.reg_ready[r.0 as usize]),
            Operand::Pred(p) => t = t.max(tw.pred_ready[p.0 as usize]),
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    t = t.max(l.operand_time(o));
                }
            }
            _ => {}
        }
    }
    if let Some(m) = instr.mem {
        match m.base {
            Operand::Reg(r) => t = t.max(tw.reg_ready[r.0 as usize]),
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    t = t.max(l.operand_time(&o));
                }
            }
            _ => {}
        }
        if let MemOffset::Cr(k) | MemOffset::CrImm(k, _) = m.offset {
            if let Some(l) = lin {
                t = t.max(l.operand_time(&Operand::Cr(k)));
            }
        }
    }
    match instr.dst {
        Some(Dst::Reg(r)) => t = t.max(tw.reg_ready[r.0 as usize]),
        Some(Dst::Pred(p)) => t = t.max(tw.pred_ready[p.0 as usize]),
        Some(Dst::Cr(k)) => {
            if let Some(l) = lin {
                t = t.max(l.cr.get(k as usize).copied().unwrap_or(0));
            }
        }
        Some(Dst::Tr(k)) => {
            if let Some(l) = lin {
                t = t.max(l.tr.get(k as usize).copied().unwrap_or(0));
            }
        }
        Some(Dst::Br(_)) => {
            if let Some(l) = lin {
                t = t.max(l.br_slot);
            }
        }
        None => {}
    }
    t
}

/// Which stall category to charge when [`deps_ready`] is false: the category
/// of the operand with the greatest readiness time — the entry [`deps_wake`]
/// waits for, with ties broken by walk order (first maximal entry wins, so
/// the answer is deterministic and identical across both loop kinds). R2D2
/// register classes charge the operand collector; GP registers charge the
/// unit that produced the pending value (`TWarp::reg_cause`); predicates are
/// always ALU-produced.
fn deps_block_cause(tw: &TWarp, instr: &Instr, lin: Option<&LinearReadiness<'_>>) -> StallCause {
    let mut best_t = 0u64;
    let mut best = StallCause::Scoreboard;
    let reg_cause = |r: usize| match tw.reg_cause.get(r).copied().unwrap_or(CAUSE_ALU) {
        CAUSE_LSU => StallCause::LsuMshr,
        CAUSE_DRAM => StallCause::Dram,
        _ => StallCause::Scoreboard,
    };
    let mut upd = |t: u64, c: StallCause| {
        if t > best_t {
            best_t = t;
            best = c;
        }
    };
    if let Some((p, _)) = instr.guard {
        upd(tw.pred_ready[p.0 as usize], StallCause::Scoreboard);
    }
    for s in &instr.srcs {
        match s {
            Operand::Reg(r) => upd(tw.reg_ready[r.0 as usize], reg_cause(r.0 as usize)),
            Operand::Pred(p) => upd(tw.pred_ready[p.0 as usize], StallCause::Scoreboard),
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    upd(l.operand_time(o), StallCause::OperandCollector);
                }
            }
            _ => {}
        }
    }
    if let Some(m) = instr.mem {
        match m.base {
            Operand::Reg(r) => upd(tw.reg_ready[r.0 as usize], reg_cause(r.0 as usize)),
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    upd(l.operand_time(&o), StallCause::OperandCollector);
                }
            }
            _ => {}
        }
        if let MemOffset::Cr(k) | MemOffset::CrImm(k, _) = m.offset {
            if let Some(l) = lin {
                upd(
                    l.operand_time(&Operand::Cr(k)),
                    StallCause::OperandCollector,
                );
            }
        }
    }
    match instr.dst {
        Some(Dst::Reg(r)) => upd(tw.reg_ready[r.0 as usize], reg_cause(r.0 as usize)),
        Some(Dst::Pred(p)) => upd(tw.pred_ready[p.0 as usize], StallCause::Scoreboard),
        Some(Dst::Cr(k)) => {
            if let Some(l) = lin {
                upd(
                    l.cr.get(k as usize).copied().unwrap_or(0),
                    StallCause::OperandCollector,
                );
            }
        }
        Some(Dst::Tr(k)) => {
            if let Some(l) = lin {
                upd(
                    l.tr.get(k as usize).copied().unwrap_or(0),
                    StallCause::OperandCollector,
                );
            }
        }
        Some(Dst::Br(_)) => {
            if let Some(l) = lin {
                upd(l.br_slot, StallCause::OperandCollector);
            }
        }
        None => {}
    }
    best
}

/// `true` when the instruction reads any R2D2 register class (costs the
/// physical-register-ID computation of Sec. 4.2).
fn reads_r2d2_class(instr: &Instr) -> bool {
    instr.srcs.iter().any(|s| s.is_r2d2_class())
        || matches!(
            instr.mem,
            Some(m) if m.base.is_r2d2_class()
                || matches!(m.offset, MemOffset::Cr(_) | MemOffset::CrImm(..))
        )
}

/// Count register-file source reads for energy: each GP/Tr/Br/Cr/Lr source is
/// one access; an `%lr` costs an extra (scalar) access because it reads both
/// the tr and br halves (Sec. 4.3).
fn rf_reads_of(instr: &Instr) -> (u64, u64) {
    let mut vec_reads = 0u64;
    let mut scalar_reads = 0u64;
    let mut count = |o: &Operand| match o {
        Operand::Reg(_) | Operand::Tr(_) => vec_reads += 1,
        Operand::Lr(_) => {
            vec_reads += 1;
            scalar_reads += 1;
        }
        Operand::Br(_) | Operand::Cr(_) => scalar_reads += 1,
        _ => {}
    };
    for s in &instr.srcs {
        count(s);
    }
    if let Some(m) = instr.mem {
        count(&m.base);
        if let MemOffset::Cr(_) | MemOffset::CrImm(..) = m.offset {
            scalar_reads += 1;
        }
    }
    (vec_reads, scalar_reads)
}

/// Launch-wide immutable context threaded through the loop machinery.
struct LaunchCtx<'a> {
    cfg: &'a GpuConfig,
    kernel: &'a Kernel,
    cfgr: &'a Cfg,
    meta: Option<&'a LinearMeta>,
    launch: &'a Launch,
    tpb: u32,
    wpb: usize,
    nregs: usize,
    npreds: usize,
    total_blocks: u64,
    nsched: usize,
    wants_vals: bool,
    cancel: Option<&'a CancelToken>,
}

impl LaunchCtx<'_> {
    /// Whether the run's cancel token (if any) has been triggered.
    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(CancelToken::is_cancelled)
    }
}

/// Full mutable simulation state of the single-threaded loops.
struct Machine<'a, S: EventSink> {
    sms: Vec<Sm>,
    stats: Stats,
    mem: DirectMem<'a>,
    filter: &'a mut dyn IssueFilter,
    scratch: OperandVals,
    remaining: u64,
    /// Next block each SM will take (indexed by global SM id): block `b`
    /// statically belongs to SM `b % num_sms`, so refill is deterministic
    /// and identical whether SMs are simulated together or in shards.
    sm_next: Vec<u64>,
    last_issue: u64,
    sink: &'a mut S,
}

/// The non-SM slice of the simulation state, split-borrowed so an `&mut Sm`
/// can be held alongside it during a scheduler pass. Shared between the
/// single-threaded loops (`M = DirectMem`) and each shard of the parallel
/// loop (`M = shard::ShardMem`).
struct Shared<'a, S: EventSink, M: MemBackend> {
    stats: &'a mut Stats,
    mem: &'a mut M,
    filter: &'a mut dyn IssueFilter,
    scratch: &'a mut OperandVals,
    remaining: &'a mut u64,
    sm_next: &'a mut [u64],
    last_issue: &'a mut u64,
    sink: &'a mut S,
}

impl<'a, S: EventSink> Machine<'a, S> {
    /// Split-borrow SM `sm_i` alongside the rest of the machine state.
    fn split(&mut self, sm_i: usize) -> (&mut Sm, Shared<'_, S, DirectMem<'a>>) {
        let Machine {
            sms,
            stats,
            mem,
            filter,
            scratch,
            remaining,
            sm_next,
            last_issue,
            sink,
        } = self;
        (
            &mut sms[sm_i],
            Shared {
                stats,
                mem,
                filter: &mut **filter,
                scratch,
                remaining,
                sm_next: sm_next.as_mut_slice(),
                last_issue,
                sink: &mut **sink,
            },
        )
    }
}

/// Wakeup accounting accumulated over one full pass of the event-driven loop.
struct EvAcc {
    /// Earliest future cycle at which any blocked dependency clears
    /// (`u64::MAX` = no finite wakeup exists).
    wake: u64,
    /// Whether this pass executed an instruction or crossed a gate boundary.
    progress: bool,
}

impl EvAcc {
    fn new() -> Self {
        EvAcc {
            wake: u64::MAX,
            progress: false,
        }
    }
}

/// What a scheduler learned from examining one candidate warp.
enum Attempt {
    /// The scheduler's issue slot was consumed (issue or exhausted skip
    /// chain); move on to the next scheduler.
    Used,
    /// The candidate could not issue; try the next candidate.
    Next,
}

fn is_candidate(warps: &[Option<TWarp>], wi: usize) -> bool {
    warps[wi]
        .as_ref()
        .is_some_and(|t| !t.w.done && !t.w.at_barrier)
}

/// Dispatch block `blk` into `(sm, slot_i)`, recycling scoreboard buffers
/// from previously completed warps and the slot's shared-memory buffer.
fn dispatch_block<S: EventSink>(
    ctx: &LaunchCtx<'_>,
    sm: &mut Sm,
    sm_gi: u32,
    slot_i: usize,
    blk: u64,
    sink: &mut S,
) {
    let meta = ctx.meta;
    let ctaid = ctx.launch.grid.unflatten(blk);
    let slot = &mut sm.slots[slot_i];
    slot.active = true;
    slot.live = ctx.wpb as u32;
    slot.barrier_wait = 0;
    slot.smem.clear();
    slot.smem.resize(ctx.launch.kernel.shared_bytes as usize, 0);
    slot.bidx_done = meta.is_none();
    let owner = meta.is_some() && !sm.owner_assigned;
    if owner {
        sm.owner_assigned = true;
        sm.tidx_pending = ctx.wpb as u32;
    }
    for wib in 0..ctx.wpb {
        let (start, gate) = match meta {
            None => (0, NO_GATE),
            Some(m) => {
                if owner {
                    if wib == 0 {
                        (m.coef_start, m.tidx_start)
                    } else {
                        (m.tidx_start, m.bidx_start)
                    }
                } else if wib == 0 {
                    (m.bidx_start, m.main_start)
                } else {
                    (m.main_start, NO_GATE)
                }
            }
        };
        let w = WarpState::new(
            ctx.nregs, ctx.npreds, blk, ctaid, wib as u32, ctx.tpb, start,
        );
        let (mut reg_ready, mut pred_ready, mut reg_cause) =
            sm.free_ready.pop().unwrap_or_default();
        reg_ready.clear();
        reg_ready.resize(ctx.nregs, 0);
        pred_ready.clear();
        pred_ready.resize(ctx.npreds, 0);
        reg_cause.clear();
        if S::ENABLED {
            reg_cause.resize(ctx.nregs, CAUSE_ALU);
        }
        let wi = slot_i * ctx.wpb + wib;
        sm.warps[wi] = Some(TWarp {
            w,
            reg_ready,
            pred_ready,
            reg_cause,
            slot: slot_i,
            seq: sm.next_seq,
            next_gate: gate,
        });
        sm.next_seq += 1;
        // `seq` is monotonic, so appending keeps the lane list seq-sorted.
        sm.lane_seq[wi % ctx.nsched].push(wi as u32);
    }
    if S::ENABLED {
        sink.warp_delta(sm_gi, ctx.wpb as i32);
    }
}

/// Capture the `deps_block_cause` walk as explicit `(time, cause, pending
/// key)` entries so the epoch drain can re-derive the winning cause after
/// [`PENDING`] scoreboard entries resolve. Only SM-shared `%cr`/`%tr`/`%br`
/// entries can be pending at examination time under the sink-mode epoch
/// length of 1 (a warp's own registers resolve at the previous drain), so
/// GP registers and predicates always capture exact times with [`Pend::No`].
fn deps_block_entries(
    tw: &TWarp,
    instr: &Instr,
    lin: Option<&LinearReadiness<'_>>,
    slot: usize,
) -> Vec<(u64, StallCause, Pend)> {
    let mut out = Vec::new();
    let reg_cause = |r: usize| match tw.reg_cause.get(r).copied().unwrap_or(CAUSE_ALU) {
        CAUSE_LSU => StallCause::LsuMshr,
        CAUSE_DRAM => StallCause::Dram,
        _ => StallCause::Scoreboard,
    };
    let lin_entry =
        |l: &LinearReadiness<'_>, o: &Operand, out: &mut Vec<(u64, StallCause, Pend)>| {
            let oc = StallCause::OperandCollector;
            match o {
                Operand::Cr(k) => {
                    let t = l.cr.get(*k as usize).copied().unwrap_or(0);
                    let p = if t == PENDING { Pend::Cr(*k) } else { Pend::No };
                    out.push((t, oc, p));
                }
                Operand::Tr(k) => {
                    let t = l.tr.get(*k as usize).copied().unwrap_or(0);
                    let p = if t == PENDING { Pend::Tr(*k) } else { Pend::No };
                    out.push((t, oc, p));
                }
                Operand::Br(_) => {
                    let t = l.br_slot;
                    let p = if t == PENDING {
                        Pend::Br(slot)
                    } else {
                        Pend::No
                    };
                    out.push((t, oc, p));
                }
                // `%lr` reads both halves; `deps_block_cause` takes their max
                // under one cause, so two same-cause entries are equivalent.
                Operand::Lr(k) => {
                    match l.lr_tr[*k as usize] {
                        Some(t) => {
                            let tt = l.tr.get(t as usize).copied().unwrap_or(0);
                            let p = if tt == PENDING { Pend::Tr(t) } else { Pend::No };
                            out.push((tt, oc, p));
                        }
                        None => out.push((0, oc, Pend::No)),
                    }
                    let t = l.br_slot;
                    let p = if t == PENDING {
                        Pend::Br(slot)
                    } else {
                        Pend::No
                    };
                    out.push((t, oc, p));
                }
                _ => {}
            }
        };
    if let Some((p, _)) = instr.guard {
        out.push((
            tw.pred_ready[p.0 as usize],
            StallCause::Scoreboard,
            Pend::No,
        ));
    }
    for s in &instr.srcs {
        match s {
            Operand::Reg(r) => out.push((
                tw.reg_ready[r.0 as usize],
                reg_cause(r.0 as usize),
                Pend::No,
            )),
            Operand::Pred(p) => out.push((
                tw.pred_ready[p.0 as usize],
                StallCause::Scoreboard,
                Pend::No,
            )),
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    lin_entry(l, o, &mut out);
                }
            }
            _ => {}
        }
    }
    if let Some(m) = instr.mem {
        match m.base {
            Operand::Reg(r) => out.push((
                tw.reg_ready[r.0 as usize],
                reg_cause(r.0 as usize),
                Pend::No,
            )),
            o if o.is_r2d2_class() => {
                if let Some(l) = lin {
                    lin_entry(l, &o, &mut out);
                }
            }
            _ => {}
        }
        if let MemOffset::Cr(k) | MemOffset::CrImm(k, _) = m.offset {
            if let Some(l) = lin {
                lin_entry(l, &Operand::Cr(k), &mut out);
            }
        }
    }
    match instr.dst {
        Some(Dst::Reg(r)) => out.push((
            tw.reg_ready[r.0 as usize],
            reg_cause(r.0 as usize),
            Pend::No,
        )),
        Some(Dst::Pred(p)) => out.push((
            tw.pred_ready[p.0 as usize],
            StallCause::Scoreboard,
            Pend::No,
        )),
        Some(Dst::Cr(k)) => {
            if let Some(l) = lin {
                lin_entry(l, &Operand::Cr(k), &mut out);
            }
        }
        Some(Dst::Tr(k)) => {
            if let Some(l) = lin {
                lin_entry(l, &Operand::Tr(k), &mut out);
            }
        }
        Some(Dst::Br(b)) => {
            if let Some(l) = lin {
                lin_entry(l, &Operand::Br(b), &mut out);
            }
        }
        None => {}
    }
    out
}

/// Examine candidate warp `wi` on scheduler `sched`: gate resolution, the
/// scoreboard check, functional execute, machine-model classification, skip
/// chains, charging, and outcome handling. This is the single issue engine
/// shared by both loop implementations — their only difference is the order
/// in which they present candidates and how they advance `now`.
#[allow(clippy::too_many_arguments)]
fn attempt_issue<S: EventSink, M: MemBackend>(
    ctx: &LaunchCtx<'_>,
    sm: &mut Sm,
    sh: &mut Shared<'_, S, M>,
    sm_gi: u32,
    sched: usize,
    wi: usize,
    now: u64,
    linear_mode: bool,
    issued_this_cycle: &mut u32,
    ev: &mut EvAcc,
) -> Result<Attempt, SimError> {
    let kernel = ctx.kernel;
    let meta = ctx.meta;
    let mut skips = 0usize;
    loop {
        // --- gate / pc ---
        let (pc, linear_phase, phase) = {
            let (warps, slots) = (&mut sm.warps, &mut sm.slots);
            let tw = warps[wi].as_mut().unwrap();
            let mut slot_bidx = slots[tw.slot].bidx_done;
            let mut crossed = false;
            let g = gate_and_pc(
                tw,
                meta,
                &mut sm.coef_done,
                &mut sm.tidx_done,
                &mut sm.tidx_pending,
                &mut slot_bidx,
                &mut crossed,
            );
            slots[tw.slot].bidx_done = slot_bidx;
            if crossed {
                ev.progress = true;
            }
            match g {
                Gate::Blocked => {
                    // Blocked in the R2D2 address-generation front end.
                    if S::ENABLED {
                        sh.sink
                            .stall(sm_gi, wi as u32, StallCause::OperandCollector);
                    }
                    return Ok(Attempt::Next);
                }
                Gate::Done => {
                    // Warp finished via earlier skip chain.
                    return Ok(Attempt::Next);
                }
                Gate::Ready(pc) => {
                    let ph = meta.map_or(Phase::Main, |m| m.phase_of(pc));
                    (pc, ph.is_linear(), ph)
                }
            }
        };
        let instr = &kernel.instrs[pc];
        {
            let tw = sm.warps[wi].as_ref().unwrap();
            let lr = meta.map(|m| LinearReadiness {
                cr: &sm.cr_ready,
                tr: &sm.tr_ready,
                br_slot: sm.br_ready[tw.slot],
                lr_tr: &m.lr_tr,
            });
            if !deps_ready(tw, instr, now, lr.as_ref()) {
                let wake = deps_wake(tw, instr, lr.as_ref()).max(now + 1);
                ev.wake = ev.wake.min(wake);
                if S::ENABLED {
                    // A provisional cause is recorded either way; when a
                    // PENDING entry participates (wake saturates), the drain
                    // patches the buffered event with the resolved winner.
                    let cause = deps_block_cause(tw, instr, lr.as_ref());
                    if M::DEFERRED && wake == PENDING {
                        let entries = deps_block_entries(tw, instr, lr.as_ref(), tw.slot);
                        let buf_idx = sh.sink.stall_index();
                        sh.sink.stall(sm_gi, wi as u32, cause);
                        sh.mem.defer(DrainItem::Fix(StallFix {
                            cycle: now,
                            sm: sm_gi,
                            buf_idx,
                            entries,
                        }));
                    } else {
                        sh.sink.stall(sm_gi, wi as u32, cause);
                    }
                }
                return Ok(Attempt::Next);
            }
        }
        // --- execute functionally ---
        let tw = sm.warps[wi].as_mut().unwrap();
        let tslot = tw.slot;
        let mut info = {
            // Deferred mode locks global memory only for global loads/stores
            // (atomics defer their RMW entirely; see `EvKind::Atomic`).
            let needs_global = matches!(
                instr.op,
                Op::Ld(MemSpace::Global) | Op::St(MemSpace::Global)
            ) || (matches!(instr.op, Op::Atom(_)) && !M::DEFERRED);
            let lin = sm.store.as_mut().map(|s| (meta.unwrap(), s, tslot));
            let smem = &mut sm.slots[tslot].smem;
            let scratch = if ctx.wants_vals && phase == Phase::Main {
                Some(&mut *sh.scratch)
            } else {
                None
            };
            let w = &mut tw.w;
            sh.mem.with_gmem(needs_global, |gmem| {
                let mut ex = WarpExec {
                    kernel,
                    cfg: ctx.cfgr,
                    params: &ctx.launch.params,
                    ntid: [ctx.launch.block.x, ctx.launch.block.y, ctx.launch.block.z],
                    nctaid: [ctx.launch.grid.x, ctx.launch.grid.y, ctx.launch.grid.z],
                    smid: sm_gi,
                    gmem,
                    smem,
                    linear: lin,
                    scratch,
                    watchdog: ctx.cfg.watchdog_warp_instrs,
                    defer_global_atomics: M::DEFERRED,
                };
                ex.step(w)
            })?
        };
        let mut atom_vals = info.atom.take();
        *sh.last_issue = now;
        ev.progress = true;
        let charged = if phase.is_linear() || matches!(instr.op, Op::Exit) {
            info.exec_mask.count_ones()
        } else {
            info.active.count_ones()
        } as u64;

        // --- classify ---
        let disposition = if phase != Phase::Main || instr.op.is_control() {
            if phase == Phase::Coef {
                Disposition::Scalar
            } else {
                Disposition::Execute
            }
        } else {
            sh.filter.classify(&IssueCtx {
                pc,
                instr,
                block: tw.w.block_lin,
                warp_in_block: tw.w.warp_in_block,
                exec_mask: info.exec_mask,
                vals: if ctx.wants_vals {
                    Some(&*sh.scratch)
                } else {
                    None
                },
                mem: info.mem.as_ref(),
            })
        };

        if disposition == Disposition::Skip {
            sh.stats.skipped_warp_instrs += 1;
            sh.stats.skipped_thread_instrs += charged;
            if M::DEFERRED {
                if let Some(vals) = atom_vals.take() {
                    // Functional effects of a skipped atomic still apply:
                    // queue the RMW with no lines and no scoreboard target so
                    // the drain performs it with zero timing side effects.
                    let mi = info.mem.as_ref().unwrap();
                    let Op::Atom(aop) = instr.op else {
                        unreachable!()
                    };
                    sh.mem.defer(DrainItem::Mem(MemEvent {
                        cycle: now,
                        sm: sm_gi,
                        wi: wi as u32,
                        seq: tw.seq,
                        lines: Vec::new(),
                        eager_worst: 0,
                        extra: 0,
                        kind: EvKind::Atomic(Box::new(AtomApply {
                            aop,
                            ty: mi.ty,
                            mask: mi.mask,
                            addrs: mi.addrs,
                            vals: *vals,
                            value_dst: instr.dst,
                        })),
                        dst: None,
                        prev_tr: 0,
                    }));
                }
            }
            // Results are available immediately; no charges.
            skips += 1;
            if tw.w.done || info.outcome != Outcome::Normal {
                // fall through to completion handling below
            } else if skips < MAX_SKIPS_PER_PICK {
                continue;
            }
        }

        // --- charge (Execute / Scalar / post-skip bookkeeping) ---
        if disposition != Disposition::Skip {
            *issued_this_cycle += 1;
            if S::ENABLED {
                sh.sink.issue(sm_gi, wi as u32);
            }
            let scalar = disposition == Disposition::Scalar;
            let stats = &mut *sh.stats;
            stats.warp_instrs += 1;
            stats.thread_instrs += if scalar { 1 } else { charged };
            stats.warp_instrs_by_phase[phase.idx()] += 1;
            stats.thread_instrs_by_phase[phase.idx()] += if scalar { 1 } else { charged };
            if scalar {
                stats.scalar_warp_instrs += 1;
            }
            stats.events.fetch_decode += 1;
            let (vr, sr) = rf_reads_of(instr);
            if scalar {
                stats.events.rf_scalar_reads += vr + sr;
                if instr.dst.is_some() {
                    stats.events.rf_scalar_writes += 1;
                }
            } else {
                stats.events.rf_reads += vr;
                stats.events.rf_scalar_reads += sr;
                if instr.dst.is_some() {
                    match instr.dst {
                        Some(Dst::Cr(_)) | Some(Dst::Br(_)) => {
                            stats.events.rf_scalar_writes += 1;
                        }
                        _ => stats.events.rf_writes += 1,
                    }
                }
            }
            let lanes = if scalar { 1 } else { charged };
            if !instr.op.is_mem() && !instr.op.is_control() {
                match (instr.op, instr.ty) {
                    (Op::Sfu(_), _) => stats.events.sfu_lane_ops += lanes,
                    (_, Ty::F32) => stats.events.fp_lane_ops += lanes,
                    (_, Ty::F64) => stats.events.fp64_lane_ops += lanes,
                    _ => stats.events.int_lane_ops += lanes,
                }
            }

            // Latency & scoreboard. The R2D2 adders apply to both resolved
            // and deferred accesses, so compute them separately.
            let mut adders = 0u64;
            if linear_phase {
                adders += ctx.cfg.r2d2.fetch_table;
            }
            if reads_r2d2_class(instr) {
                adders += ctx.cfg.r2d2.regid_calc;
                if matches!(info.mem, Some(ref m) if matches!(m.space, MemSpace::Global))
                    && matches!(instr.mem, Some(mm) if matches!(mm.base, Operand::Lr(_)))
                {
                    adders += ctx.cfg.r2d2.lr_add;
                }
            }
            let res = match &info.mem {
                Some(mi) => mem_latency(
                    ctx.cfg,
                    mi,
                    &mut sm.l1,
                    &mut *sh.mem,
                    now,
                    &mut *sh.stats,
                    &mut *sh.sink,
                ),
                None => MemRes::Now(base_latency(ctx.cfg, instr), CAUSE_ALU),
            };
            let tw = sm.warps[wi].as_mut().unwrap();
            let tw_slot = tw.slot;
            let tw_seq = tw.seq;
            match res {
                MemRes::Now(lat0, mcause) => {
                    let lat = lat0 + adders;
                    match instr.dst {
                        Some(Dst::Reg(r)) => {
                            tw.reg_ready[r.0 as usize] = now + lat;
                            if S::ENABLED {
                                tw.reg_cause[r.0 as usize] = mcause;
                            }
                        }
                        Some(Dst::Pred(p)) => tw.pred_ready[p.0 as usize] = now + lat,
                        Some(Dst::Cr(k)) => sm.cr_ready[k as usize] = now + lat,
                        Some(Dst::Tr(k)) => {
                            let e = &mut sm.tr_ready[k as usize];
                            *e = (*e).max(now + lat);
                        }
                        Some(Dst::Br(_)) => sm.br_ready[tw_slot] = now + lat,
                        None => {}
                    }
                }
                MemRes::Defer {
                    lines,
                    eager_worst,
                    extra_n,
                } => {
                    // Mark the destination pending and queue the event; the
                    // epoch drain resolves the exact latency in sequential
                    // shared-memory order. The scoreboard blocks a second
                    // write to the same destination while the first is in
                    // flight (`deps_ready` checks `dst`), so at most one
                    // event targets a given cell and `prev_tr` is exact.
                    let mut prev_tr = 0;
                    match instr.dst {
                        Some(Dst::Reg(r)) => tw.reg_ready[r.0 as usize] = PENDING,
                        Some(Dst::Pred(p)) => tw.pred_ready[p.0 as usize] = PENDING,
                        Some(Dst::Cr(k)) => sm.cr_ready[k as usize] = PENDING,
                        Some(Dst::Tr(k)) => {
                            prev_tr = sm.tr_ready[k as usize];
                            sm.tr_ready[k as usize] = PENDING;
                        }
                        Some(Dst::Br(_)) => sm.br_ready[tw_slot] = PENDING,
                        None => {}
                    }
                    let mi = info.mem.as_ref().unwrap();
                    let kind = if mi.atomic {
                        let Op::Atom(aop) = instr.op else {
                            unreachable!()
                        };
                        EvKind::Atomic(Box::new(AtomApply {
                            aop,
                            ty: mi.ty,
                            mask: mi.mask,
                            addrs: mi.addrs,
                            vals: atom_vals.take().map(|b| *b).unwrap_or_default(),
                            value_dst: instr.dst,
                        }))
                    } else if mi.write {
                        EvKind::Store
                    } else {
                        EvKind::Load
                    };
                    sh.mem.defer(DrainItem::Mem(MemEvent {
                        cycle: now,
                        sm: sm_gi,
                        wi: wi as u32,
                        seq: tw_seq,
                        lines,
                        eager_worst,
                        extra: extra_n + adders,
                        kind,
                        dst: instr.dst,
                        prev_tr,
                    }));
                }
            }
        }

        // --- outcome handling ---
        let tw = sm.warps[wi].as_mut().unwrap();
        let warp_done = tw.w.done;
        let at_barrier = info.outcome == Outcome::Barrier;
        if at_barrier {
            sm.slots[tslot].barrier_wait += 1;
        }
        if warp_done {
            sm.slots[tslot].live -= 1;
        }
        // Barrier release: all live warps arrived.
        let slot = &mut sm.slots[tslot];
        if slot.barrier_wait > 0 && slot.barrier_wait == slot.live {
            slot.barrier_wait = 0;
            for wj in (0..ctx.wpb).map(|k| tslot * ctx.wpb + k) {
                if let Some(t) = sm.warps[wj].as_mut() {
                    t.w.at_barrier = false;
                }
            }
        }
        if warp_done && slot.live == 0 {
            slot.active = false;
            *sh.remaining -= 1;
            let blk = sm.warps[wi].as_ref().unwrap().w.block_lin;
            sh.filter.on_block_done(blk);
            for wj in (0..ctx.wpb).map(|k| tslot * ctx.wpb + k) {
                if let Some(t) = sm.warps[wj].take() {
                    sm.free_ready.push((t.reg_ready, t.pred_ready, t.reg_cause));
                }
                sm.lane_seq[wj % ctx.nsched].retain(|&x| x as usize != wj);
            }
            if S::ENABLED {
                sh.sink.warp_delta(sm_gi, -(ctx.wpb as i32));
            }
            // Static refill: this SM only ever takes blocks congruent to its
            // id mod num_sms, so the assignment is independent of completion
            // order across SMs (and thus of shard interleaving).
            let nb = sh.sm_next[sm_gi as usize];
            if nb < ctx.total_blocks {
                sm.slots[tslot].first_wave = false;
                dispatch_block(ctx, sm, sm_gi, tslot, nb, &mut *sh.sink);
                sh.sm_next[sm_gi as usize] = nb + ctx.cfg.num_sms as u64;
            }
        }
        if disposition != Disposition::Skip || warp_done || at_barrier {
            if !linear_mode {
                sm.gto_last[sched] = Some(wi);
            } else {
                sm.rr_ptr[sched] = (wi / ctx.nsched + 1) % (sm.warps.len() / ctx.nsched).max(1);
            }
            return Ok(Attempt::Used);
        }
        // Skip chain exhausted its budget: issue slot spent.
        return Ok(Attempt::Used);
    }
}

/// Record the cycle at which this SM's R2D2 phase gates all opened.
fn eval_gates_open(sm: &mut Sm, now: u64) {
    if sm.gates_open_cycle.is_none()
        && sm.coef_done
        && sm.tidx_done
        && sm
            .slots
            .iter()
            .all(|s| !s.active || !s.first_wave || s.bidx_done)
    {
        sm.gates_open_cycle = Some(now);
    }
}

/// One cycle of one SM under the lockstep reference: rebuild and sort each
/// scheduler's candidate list from scratch, exactly as the original loop did.
fn sm_pass_lockstep<S: EventSink, M: MemBackend>(
    ctx: &LaunchCtx<'_>,
    sm: &mut Sm,
    sh: &mut Shared<'_, S, M>,
    sm_gi: u32,
    now: u64,
) -> Result<(), SimError> {
    // Round-robin only while the SM-wide linear prologue (coefficients
    // + thread-index parts) is in flight (Sec. 4.1); per-block
    // block-index recomputation rides on normal GTO scheduling.
    let linear_mode = ctx.meta.is_some() && (!sm.coef_done || !sm.tidx_done);
    let mut issued_this_cycle = 0u32;
    let mut ev = EvAcc::new(); // unused by the reference loop
    for sched in 0..ctx.nsched {
        if issued_this_cycle >= ctx.cfg.sm_issue_width {
            break;
        }
        // Build candidate order.
        let mut order: Vec<usize> = (sched..sm.warps.len())
            .step_by(ctx.nsched)
            .filter(|&i| is_candidate(&sm.warps, i))
            .collect();
        if order.is_empty() {
            continue;
        }
        if linear_mode {
            // Round-robin while linear instructions are pending (Sec. 4.1).
            let ptr = sm.rr_ptr[sched];
            let len = sm.warps.len();
            order.sort_by_key(|&i| {
                let pos = i / ctx.nsched;
                (pos + len - ptr) % len
            });
        } else {
            order.sort_by_key(|&i| sm.warps[i].as_ref().map_or(u64::MAX, |t| t.seq));
            if let Some(last) = sm.gto_last[sched] {
                if let Some(p) = order.iter().position(|&i| i == last) {
                    let l = order.remove(p);
                    order.insert(0, l);
                }
            }
        }
        for &wi in &order {
            let a = attempt_issue(
                ctx,
                sm,
                sh,
                sm_gi,
                sched,
                wi,
                now,
                linear_mode,
                &mut issued_this_cycle,
                &mut ev,
            )?;
            if let Attempt::Used = a {
                break;
            }
        }
    }
    eval_gates_open(sm, now);
    if S::ENABLED {
        let any_barrier = sm
            .warps
            .iter()
            .flatten()
            .any(|t| t.w.at_barrier && !t.w.done);
        sh.sink.sm_cycle_end(sm_gi, ev.progress, any_barrier);
    }
    Ok(())
}

/// One cycle of one SM under the event-driven loop: walk the persistent
/// per-scheduler orderings (no allocation, no sort) and fold blocked-warp
/// wakeups into `ev`. Presents candidates in exactly the order the lockstep
/// pass would: for RR, ring positions `ptr..=maxpos` then `0..ptr` (the sort
/// key `(pos + len - ptr) % len` ranks all `pos >= ptr` ascending before all
/// `pos < ptr` ascending); for GTO, `gto_last` first (when a candidate) then
/// the seq-ordered lane list.
fn sm_pass_event<S: EventSink, M: MemBackend>(
    ctx: &LaunchCtx<'_>,
    sm: &mut Sm,
    sh: &mut Shared<'_, S, M>,
    sm_gi: u32,
    now: u64,
    ev: &mut EvAcc,
) -> Result<(), SimError> {
    let linear_mode = ctx.meta.is_some() && (!sm.coef_done || !sm.tidx_done);
    let mut issued_this_cycle = 0u32;
    // `ev.progress` accumulates across SMs; to attribute this SM's cycle we
    // observe the pass in isolation and fold the prior value back afterwards.
    let progress_before = if S::ENABLED {
        let p = ev.progress;
        ev.progress = false;
        p
    } else {
        false
    };
    'sched: for sched in 0..ctx.nsched {
        if issued_this_cycle >= ctx.cfg.sm_issue_width {
            break;
        }
        if linear_mode {
            let len = sm.warps.len();
            if sched >= len {
                continue;
            }
            let maxpos = (len - 1 - sched) / ctx.nsched;
            let ptr = sm.rr_ptr[sched];
            // rr_ptr is always <= maxpos (it is taken modulo the lane
            // length); fall back to 0 defensively, matching what the
            // lockstep sort key degenerates to for an out-of-range ptr.
            let ptr = if ptr > maxpos { 0 } else { ptr };
            for pos in (ptr..=maxpos).chain(0..ptr) {
                let wi = sched + pos * ctx.nsched;
                if !is_candidate(&sm.warps, wi) {
                    continue;
                }
                let a = attempt_issue(
                    ctx,
                    sm,
                    sh,
                    sm_gi,
                    sched,
                    wi,
                    now,
                    linear_mode,
                    &mut issued_this_cycle,
                    ev,
                )?;
                if let Attempt::Used = a {
                    continue 'sched;
                }
            }
        } else {
            let last = sm.gto_last[sched].filter(|&l| is_candidate(&sm.warps, l));
            if let Some(l) = last {
                let a = attempt_issue(
                    ctx,
                    sm,
                    sh,
                    sm_gi,
                    sched,
                    l,
                    now,
                    linear_mode,
                    &mut issued_this_cycle,
                    ev,
                )?;
                if let Attempt::Used = a {
                    continue 'sched;
                }
            }
            // Index-walk the lane list: membership only changes inside an
            // attempt that returns `Used`, which exits this loop.
            let mut k = 0;
            while k < sm.lane_seq[sched].len() {
                let wi = sm.lane_seq[sched][k] as usize;
                k += 1;
                if Some(wi) == last || !is_candidate(&sm.warps, wi) {
                    continue;
                }
                let a = attempt_issue(
                    ctx,
                    sm,
                    sh,
                    sm_gi,
                    sched,
                    wi,
                    now,
                    linear_mode,
                    &mut issued_this_cycle,
                    ev,
                )?;
                if let Attempt::Used = a {
                    continue 'sched;
                }
            }
        }
    }
    eval_gates_open(sm, now);
    if S::ENABLED {
        let any_barrier = sm
            .warps
            .iter()
            .flatten()
            .any(|t| t.w.at_barrier && !t.w.done);
        sh.sink.sm_cycle_end(sm_gi, ev.progress, any_barrier);
        ev.progress |= progress_before;
    }
    Ok(())
}

/// The reference main loop: advance one cycle at a time.
fn run_lockstep<S: EventSink>(
    ctx: &LaunchCtx<'_>,
    m: &mut Machine<'_, S>,
) -> Result<u64, SimError> {
    let mut now = 0u64;
    while m.remaining > 0 {
        now += 1;
        if now > ctx.cfg.watchdog_cycles {
            return Err(SimError::Watchdog {
                limit: ctx.cfg.watchdog_cycles,
            });
        }
        if now - m.last_issue > DEADLOCK_WINDOW {
            return Err(SimError::Deadlock { cycle: now });
        }
        if ctx.cancelled() {
            return Err(SimError::Cancelled { cycle: now });
        }
        if S::ENABLED {
            m.sink.cycle_start(now);
        }
        for sm_i in 0..m.sms.len() {
            let (sm, mut sh) = m.split(sm_i);
            sm_pass_lockstep(ctx, sm, &mut sh, sm_i as u32, now)?;
        }
    }
    Ok(now)
}

/// The event-driven main loop. Identical per-cycle semantics to
/// [`run_lockstep`], plus: when a full pass over every SM makes no progress
/// (nothing executed, no gate boundary crossed), no SM state can change
/// before the earliest scoreboard wakeup — every blocked warp is blocked
/// either on a scoreboard time (collected into `ev.wake`) or on an event
/// that only progress can trigger (gate entry, barrier release). So `now`
/// jumps directly to the minimum of `ev.wake` and the first cycle at which
/// the watchdog or deadlock check would fire; the loop head then performs
/// exactly the checks the lockstep loop would have performed there. With no
/// finite wakeup, the jump lands on the error cycle and the run terminates
/// with the identical `SimError`.
fn run_event<S: EventSink>(ctx: &LaunchCtx<'_>, m: &mut Machine<'_, S>) -> Result<u64, SimError> {
    let mut now = 0u64;
    while m.remaining > 0 {
        now += 1;
        if now > ctx.cfg.watchdog_cycles {
            return Err(SimError::Watchdog {
                limit: ctx.cfg.watchdog_cycles,
            });
        }
        if now - m.last_issue > DEADLOCK_WINDOW {
            return Err(SimError::Deadlock { cycle: now });
        }
        if ctx.cancelled() {
            return Err(SimError::Cancelled { cycle: now });
        }
        if S::ENABLED {
            m.sink.cycle_start(now);
        }
        let mut ev = EvAcc::new();
        for sm_i in 0..m.sms.len() {
            let (sm, mut sh) = m.split(sm_i);
            sm_pass_event(ctx, sm, &mut sh, sm_i as u32, now, &mut ev)?;
        }
        if !ev.progress && m.remaining > 0 {
            let error_at = ctx
                .cfg
                .watchdog_cycles
                .saturating_add(1)
                .min(m.last_issue.saturating_add(DEADLOCK_WINDOW + 1));
            let target = ev.wake.min(error_at);
            debug_assert!(target > now, "wakeup must be in the future");
            if S::ENABLED && target > now + 1 {
                // Cycles now+1 .. target-1 are pure replays of this cycle's
                // per-SM attribution: no state changed, every blocked
                // operand's readiness time is >= target, gates and barriers
                // can only move on progress.
                m.sink.idle_skip(target - 1 - now);
            }
            // Loop head re-adds 1 and re-runs the error checks, exactly as
            // the lockstep loop would at `target`.
            now = target - 1;
        }
    }
    Ok(now)
}

/// The single real entry point behind [`crate::SimSession`]: set up
/// launch-wide state, dispatch the initial block wave, then run
/// single-threaded (`threads <= 1`, or when the filter cannot be forked) or
/// sharded across `threads` workers.
pub(crate) fn run_launch<S: EventSink>(
    cfg: &GpuConfig,
    launch: &Launch,
    gmem: &mut GlobalMem,
    filter: &mut dyn IssueFilter,
    sink: &mut S,
    threads: u32,
    cancel: Option<&CancelToken>,
) -> Result<Stats, SimError> {
    let kernel = &launch.kernel;
    let cfgr = Cfg::build(kernel);
    let meta = launch.meta.as_ref().filter(|m| m.has_linear());
    let phys = phys_regs_estimate(kernel, &cfgr);
    let resident = blocks_per_sm(cfg, launch, phys);
    if resident == 0 {
        return Err(SimError::Unschedulable);
    }
    let tpb = launch.threads_per_block();
    let wpb = launch.warps_per_block() as usize;
    let nsched = cfg.schedulers_per_sm as usize;
    filter.on_launch(kernel, [launch.block.x, launch.block.y, launch.block.z]);

    let sms: Vec<Sm> = (0..cfg.num_sms)
        .map(|_| Sm {
            warps: (0..resident as usize * wpb).map(|_| None).collect(),
            slots: (0..resident as usize)
                .map(|_| Slot {
                    active: false,
                    first_wave: true,
                    live: 0,
                    barrier_wait: 0,
                    smem: Vec::new(),
                    bidx_done: true,
                })
                .collect(),
            l1: Cache::new(cfg.l1),
            store: meta.map(|m| LinearStore::new(m, tpb as usize, resident as usize)),
            cr_ready: vec![0; meta.map_or(0, |m| m.n_cr)],
            tr_ready: vec![0; meta.map_or(0, |m| m.n_tr)],
            br_ready: vec![0; resident as usize],
            coef_done: meta.is_none(),
            tidx_done: meta.is_none(),
            tidx_pending: 0,
            owner_assigned: false,
            gto_last: vec![None; nsched],
            rr_ptr: vec![0; nsched],
            gates_open_cycle: if meta.is_none() { Some(0) } else { None },
            next_seq: 0,
            lane_seq: vec![Vec::new(); nsched],
            free_ready: Vec::new(),
        })
        .collect();

    let ctx = LaunchCtx {
        cfg,
        kernel,
        cfgr: &cfgr,
        meta,
        launch,
        tpb,
        wpb,
        nregs: kernel.num_regs(),
        npreds: kernel.num_preds().max(1),
        total_blocks: launch.num_blocks(),
        nsched,
        wants_vals: filter.wants_values(),
        cancel,
    };

    let mut sms = sms;
    let num_sms = cfg.num_sms as u64;

    // Initial breadth-first fill: block `slot * num_sms + sm` lands on SM
    // `sm`, so every block `b` statically belongs to SM `b % num_sms` and the
    // per-SM refill in `attempt_issue` keeps the same partition. Identical to
    // the original counter walk, but shard-independent.
    'fill: for slot_i in 0..resident as usize {
        for (sm_i, sm) in sms.iter_mut().enumerate() {
            let blk = slot_i as u64 * num_sms + sm_i as u64;
            if blk >= ctx.total_blocks {
                break 'fill;
            }
            dispatch_block(&ctx, sm, sm_i as u32, slot_i, blk, sink);
        }
    }
    let sm_next: Vec<u64> = (0..num_sms)
        .map(|i| i + resident as u64 * num_sms)
        .collect();

    let nshards = (threads as usize).clamp(1, cfg.num_sms.max(1) as usize);
    if nshards > 1 {
        // Fork the filter per shard (launch-time analysis state is cloned —
        // `fork_shard` runs after `on_launch`). A filter that does not
        // support forking falls back to the single-threaded path.
        let forks: Option<Vec<_>> = (0..nshards).map(|_| filter.fork_shard()).collect();
        if let Some(filters) = forks {
            return run_sharded(&ctx, sms, filters, sm_next, gmem, sink);
        }
    }

    let mut m = Machine {
        sms,
        stats: Stats::default(),
        mem: DirectMem {
            side: MemSide::new(cfg),
            gmem,
        },
        filter,
        scratch: OperandVals::default(),
        remaining: ctx.total_blocks,
        sm_next,
        last_issue: 0,
        sink,
    };

    let now = match cfg.loop_kind {
        LoopKind::Lockstep => run_lockstep(&ctx, &mut m)?,
        LoopKind::EventDriven => run_event(&ctx, &mut m)?,
    };
    if S::ENABLED {
        m.sink.launch_done(now);
    }

    let mut stats = m.stats;
    stats.cycles = now;
    stats.events.cycles = now;
    stats.prologue_cycles = m
        .sms
        .iter()
        .map(|s| s.gates_open_cycle.unwrap_or(0))
        .max()
        .unwrap_or(0);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::Dim3;
    use r2d2_isa::KernelBuilder;

    fn iota_kernel() -> Kernel {
        let mut b = KernelBuilder::new("iota", 1);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let p = b.ld_param(0);
        let a = b.add_wide(p, off);
        b.st_global(Ty::B32, a, 0, i);
        b.build()
    }

    #[test]
    fn timing_matches_functional_results() {
        let k = iota_kernel();
        let n = 8 * 128u64;
        let mk = |mut gmem: GlobalMem| {
            let out = gmem.alloc(n * 4);
            (gmem, out)
        };
        let (mut g1, out1) = mk(GlobalMem::new());
        let launch1 = Launch::new(k.clone(), Dim3::d1(8), Dim3::d1(128), vec![out1]);
        crate::functional::run(&launch1, &mut g1, 1_000_000, None).unwrap();

        let (mut g2, out2) = mk(GlobalMem::new());
        let launch2 = Launch::new(k, Dim3::d1(8), Dim3::d1(128), vec![out2]);
        let cfg = GpuConfig::default().with_num_sms(4);
        let stats = crate::SimSession::new(&cfg).run(&launch2, &mut g2).unwrap();
        assert_eq!(g1.bytes(), g2.bytes(), "timing and functional must agree");
        assert!(stats.cycles > 0);
        assert!(stats.warp_instrs > 0);
    }

    #[test]
    fn cancelled_token_aborts_every_loop_kind() {
        let k = iota_kernel();
        for (kind, threads) in [
            (LoopKind::Lockstep, 1),
            (LoopKind::EventDriven, 1),
            (LoopKind::Lockstep, 2),
            (LoopKind::EventDriven, 2),
        ] {
            let mut g = GlobalMem::new();
            let out = g.alloc(16 * 128 * 4);
            let launch = Launch::new(k.clone(), Dim3::d1(16), Dim3::d1(128), vec![out]);
            let cfg = GpuConfig::default().with_num_sms(4).with_loop_kind(kind);
            let token = CancelToken::new();
            token.cancel();
            let err = crate::SimSession::new(&cfg)
                .threads(threads)
                .cancel(&token)
                .run(&launch, &mut g)
                .unwrap_err();
            assert!(
                matches!(err, SimError::Cancelled { .. }),
                "{kind:?}/t{threads}: {err}"
            );
        }
    }

    #[test]
    fn untriggered_token_changes_nothing() {
        let k = iota_kernel();
        let run_with = |token: Option<&CancelToken>| {
            let mut g = GlobalMem::new();
            let out = g.alloc(8 * 128 * 4);
            let launch = Launch::new(k.clone(), Dim3::d1(8), Dim3::d1(128), vec![out]);
            let cfg = GpuConfig::default().with_num_sms(4);
            let mut s = crate::SimSession::new(&cfg);
            if let Some(t) = token {
                s = s.cancel(t);
            }
            s.run(&launch, &mut g).unwrap()
        };
        let token = CancelToken::new();
        assert_eq!(
            run_with(None),
            run_with(Some(&token)),
            "an armed but untriggered token must not perturb the run"
        );
    }

    #[test]
    fn more_sms_not_slower() {
        let k = iota_kernel();
        let run_with = |sms: u32| {
            let mut g = GlobalMem::new();
            let out = g.alloc(64 * 128 * 4);
            let launch = Launch::new(k.clone(), Dim3::d1(64), Dim3::d1(128), vec![out]);
            let cfg = GpuConfig::default().with_num_sms(sms);
            crate::SimSession::new(&cfg)
                .run(&launch, &mut g)
                .unwrap()
                .cycles
        };
        let c8 = run_with(8);
        let c32 = run_with(32);
        assert!(c32 <= c8, "more SMs should not be slower ({c32} vs {c8})");
    }

    #[test]
    fn barrier_kernel_completes() {
        let k = barrier_kernel();
        let mut g = GlobalMem::new();
        let out = g.alloc(256 * 4);
        let launch = Launch::new(k, Dim3::d1(1), Dim3::d1(256), vec![out]);
        let cfg = GpuConfig::default().with_num_sms(2);
        let stats = crate::SimSession::new(&cfg).run(&launch, &mut g).unwrap();
        assert!(stats.cycles > 0);
        for t in 0..256 {
            assert_eq!(g.read_i32(out, t), t as i32);
        }
    }

    #[test]
    fn occupancy_respects_limits() {
        let k = iota_kernel();
        let cfg = GpuConfig::default();
        let launch = Launch::new(k, Dim3::d1(1), Dim3::d1(1024), vec![0]);
        // 1024 threads = 32 warps; 64 warps/SM max -> 2 blocks by warps.
        let b = blocks_per_sm(&cfg, &launch, 16);
        assert_eq!(b, 2);
        let launch64 = Launch {
            block: Dim3::d1(64),
            ..launch
        };
        // 2 warps per block -> warp limit gives 32, block limit gives 32.
        assert_eq!(blocks_per_sm(&cfg, &launch64, 16), 32);
    }

    #[test]
    fn max_live_regs_is_reasonable() {
        let k = iota_kernel();
        let c = Cfg::build(&k);
        let live = max_live_regs(&k, &c);
        assert!(live >= 2 && live <= k.num_regs(), "live={live}");
    }

    fn barrier_kernel() -> Kernel {
        let mut b = KernelBuilder::new("barrier", 1);
        b.shared_bytes(256 * 4);
        let t = b.tid_x();
        let soff = b.shl_imm_wide(t, 2);
        b.st_shared(Ty::B32, soff, 0, t);
        b.bar();
        let v = b.ld_shared(Ty::B32, soff, 0);
        let goff = b.shl_imm_wide(t, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, goff);
        b.st_global(Ty::B32, addr, 0, v);
        b.build()
    }

    // Streams through `stride_blocks` * 4 bytes of input: DRAM-bound for
    // large strides, L1-resident for small ones.
    fn stream_kernel(stride_blocks: u32) -> Kernel {
        let mut b = KernelBuilder::new("ld", 2);
        let i = b.global_tid_x();
        let nb = b.imm32(stride_blocks as i32);
        let wrapped = b.rem_ty(Ty::B32, i, nb);
        let off = b.shl_imm_wide(wrapped, 2);
        let p = b.ld_param(0);
        let a = b.add_wide(p, off);
        let v = b.ld_global(Ty::F32, a, 0);
        let q = b.ld_param(1);
        let oo = b.shl_imm_wide(i, 2);
        let oa = b.add_wide(q, oo);
        b.st_global(Ty::F32, oa, 0, v);
        b.build()
    }

    #[test]
    fn cache_locality_speeds_up_reuse() {
        // Two kernels: one streams 4MB (DRAM-bound), one rereads 16KB (L1).
        let run = |k: Kernel| {
            let mut g = GlobalMem::new();
            let inp = g.alloc(1024 * 1024 * 4);
            let out = g.alloc(256 * 256 * 4);
            let launch = Launch::new(k, Dim3::d1(256), Dim3::d1(256), vec![inp, out]);
            let cfg = GpuConfig::default().with_num_sms(8);
            crate::SimSession::new(&cfg).run(&launch, &mut g).unwrap()
        };
        let hot = run(stream_kernel(1024)); // 4KB working set
        let cold = run(stream_kernel(1024 * 1024)); // way beyond L1
        assert!(
            hot.l1_hits * 2 > hot.l1_hits + hot.l1_misses,
            "hot loop should mostly hit L1: {} hits {} misses",
            hot.l1_hits,
            hot.l1_misses
        );
        assert!(cold.dram_txns > hot.dram_txns);
    }

    // --- lockstep vs event-driven differential coverage -------------------

    fn run_kind(
        kind: LoopKind,
        k: &Kernel,
        grid: u32,
        block: u32,
        allocs: &[u64],
        watchdog: Option<u64>,
    ) -> Result<(Stats, Vec<u8>), SimError> {
        let mut g = GlobalMem::new();
        let params: Vec<u64> = allocs.iter().map(|&b| g.alloc(b)).collect();
        let launch = Launch::new(k.clone(), Dim3::d1(grid), Dim3::d1(block), params);
        let cfg = GpuConfig::default()
            .with_num_sms(4)
            .with_loop_kind(kind)
            .with_watchdog_cycles(watchdog.unwrap_or(GpuConfig::default().watchdog_cycles));
        let stats = crate::SimSession::new(&cfg).run(&launch, &mut g)?;
        Ok((stats, g.bytes().to_vec()))
    }

    fn assert_loops_agree(k: &Kernel, grid: u32, block: u32, allocs: &[u64]) {
        let (s1, m1) = run_kind(LoopKind::Lockstep, k, grid, block, allocs, None).unwrap();
        let (s2, m2) = run_kind(LoopKind::EventDriven, k, grid, block, allocs, None).unwrap();
        assert_eq!(s1, s2, "stats must be bit-identical across loop kinds");
        assert_eq!(m1, m2, "memory must be bit-identical across loop kinds");
    }

    #[test]
    fn event_loop_matches_lockstep_on_alu_kernel() {
        assert_loops_agree(&iota_kernel(), 8, 128, &[8 * 128 * 4]);
    }

    #[test]
    fn event_loop_matches_lockstep_on_dram_bound_kernel() {
        assert_loops_agree(
            &stream_kernel(1024 * 1024),
            64,
            256,
            &[1024 * 1024 * 4, 64 * 256 * 4],
        );
    }

    #[test]
    fn event_loop_matches_lockstep_on_barrier_kernel() {
        assert_loops_agree(&barrier_kernel(), 4, 256, &[256 * 4]);
    }

    #[test]
    fn event_loop_skips_idle_cycles_without_changing_cycle_count() {
        // A single small block leaves long fully-idle stretches behind each
        // DRAM miss — exactly the cycles the event loop must skip over while
        // still reporting the same end-to-end cycle count.
        let k = stream_kernel(1024 * 1024);
        let (s1, _) = run_kind(
            LoopKind::Lockstep,
            &k,
            1,
            32,
            &[1024 * 1024 * 4, 32 * 4],
            None,
        )
        .unwrap();
        let (s2, _) = run_kind(
            LoopKind::EventDriven,
            &k,
            1,
            32,
            &[1024 * 1024 * 4, 32 * 4],
            None,
        )
        .unwrap();
        assert_eq!(s1, s2);
        assert!(s1.cycles > 400, "expected DRAM latency to dominate");
    }

    #[test]
    fn watchdog_fires_identically_under_both_loops() {
        // Watchdog far below the DRAM latency: the event loop reaches it via
        // a jump, the lockstep loop by spinning — same error either way.
        let k = stream_kernel(1024 * 1024);
        let allocs = [1024 * 1024 * 4, 32 * 4];
        let e1 = run_kind(LoopKind::Lockstep, &k, 1, 32, &allocs, Some(50)).unwrap_err();
        let e2 = run_kind(LoopKind::EventDriven, &k, 1, 32, &allocs, Some(50)).unwrap_err();
        assert_eq!(e1, SimError::Watchdog { limit: 50 });
        assert_eq!(e1, e2);
    }
}
