//! Kernel launch descriptors.

use crate::linear::LinearMeta;
use r2d2_isa::Kernel;
use r2d2_sym::LaunchEnv;

/// Grid/block dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dim3 {
    /// x extent (fastest varying).
    pub x: u32,
    /// y extent.
    pub y: u32,
    /// z extent.
    pub z: u32,
}

impl Dim3 {
    /// 1-D dimension.
    pub fn d1(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// 2-D dimension.
    pub fn d2(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// 3-D dimension.
    pub fn d3(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total element count.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// The `i`-th element in x-fastest linear order as `[x, y, z]`.
    pub fn unflatten(&self, i: u64) -> [u32; 3] {
        let x = (i % self.x as u64) as u32;
        let y = ((i / self.x as u64) % self.y as u64) as u32;
        let z = (i / (self.x as u64 * self.y as u64)) as u32;
        [x, y, z]
    }

    /// As an `[i64; 3]` (for [`LaunchEnv`]).
    pub fn as_i64(&self) -> [i64; 3] {
        [self.x as i64, self.y as i64, self.z as i64]
    }
}

/// A kernel launch: code plus configuration.
///
/// `meta` is present only for R2D2-transformed kernels and describes the
/// decoupled linear instruction blocks (paper Sec. 3.2-3.3).
#[derive(Debug, Clone)]
pub struct Launch {
    /// The kernel to run.
    pub kernel: Kernel,
    /// Grid dimensions (blocks).
    pub grid: Dim3,
    /// Block dimensions (threads).
    pub block: Dim3,
    /// Parameter values (`P0`, `P1`, ... as 64-bit words; pointers or scalars).
    pub params: Vec<u64>,
    /// R2D2 linear metadata (transformed kernels only).
    pub meta: Option<LinearMeta>,
}

impl Launch {
    /// A plain (non-R2D2) launch.
    pub fn new(kernel: Kernel, grid: Dim3, block: Dim3, params: Vec<u64>) -> Self {
        Launch {
            kernel,
            grid,
            block,
            params,
            meta: None,
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Warps per block (warp size 32).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(32)
    }

    /// Total thread blocks.
    pub fn num_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// The launch-time symbol environment seen by the R2D2 software.
    pub fn env(&self) -> LaunchEnv {
        LaunchEnv::new(
            self.params.iter().map(|&p| p as i64).collect(),
            self.block.as_i64(),
            self.grid.as_i64(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::KernelBuilder;

    #[test]
    fn dim3_unflatten_roundtrip() {
        let d = Dim3::d3(4, 3, 2);
        assert_eq!(d.count(), 24);
        for i in 0..d.count() {
            let [x, y, z] = d.unflatten(i);
            assert_eq!(
                i,
                x as u64 + (y as u64) * d.x as u64 + (z as u64) * d.x as u64 * d.y as u64
            );
        }
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let k = KernelBuilder::new("k", 0).build();
        let l = Launch::new(k, Dim3::d1(2), Dim3::d1(33), vec![]);
        assert_eq!(l.warps_per_block(), 2);
        assert_eq!(l.num_blocks(), 2);
    }

    #[test]
    fn env_reflects_launch() {
        let k = KernelBuilder::new("k", 0).build();
        let mut l = Launch::new(k, Dim3::d2(8, 2), Dim3::d2(16, 4), vec![7, 9]);
        l.params = vec![7, 9];
        let env = l.env();
        assert_eq!(env.params, vec![7, 9]);
        assert_eq!(env.ntid, [16, 4, 1]);
        assert_eq!(env.nctaid, [8, 2, 1]);
    }
}
