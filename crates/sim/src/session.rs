//! [`SimSession`]: the builder-style public entry point of the simulator.
//!
//! One launch is one session. The builder collects the optional pieces —
//! a machine-model [`IssueFilter`], an [`EventSink`] observer, a thread
//! count — and [`SimSession::run`] executes the launch:
//!
//! ```
//! use r2d2_sim::{Dim3, GlobalMem, GpuConfig, Launch, NoFilter, SimSession};
//! # use r2d2_isa::KernelBuilder;
//! # let kernel = KernelBuilder::new("noop", 0).build();
//! let cfg = GpuConfig::default().with_num_sms(4).with_threads(2);
//! let launch = Launch::new(kernel, Dim3::d1(8), Dim3::d1(64), vec![]);
//! let mut gmem = GlobalMem::new();
//! let stats = SimSession::new(&cfg)
//!     .filter(&mut NoFilter)
//!     .run(&launch, &mut gmem)?;
//! assert!(stats.cycles > 0);
//! # Ok::<(), r2d2_sim::SimError>(())
//! ```
//!
//! Defaults: [`BaselineFilter`] as the machine model, no observer, and
//! `cfg.threads` worker threads (itself defaulting to 1). Every combination
//! of filter, sink, loop kind and thread count produces bit-identical
//! [`Stats`], memory contents, and (with a sink) stall attribution.

use crate::config::GpuConfig;
use crate::filter::{BaselineFilter, IssueFilter};
use crate::launch::Launch;
use crate::mem::GlobalMem;
use crate::stats::Stats;
use crate::timing::{run_launch, CancelToken, SimError};
use r2d2_trace::{EventSink, NullSink};

/// Builder for one simulated kernel launch.
///
/// One launch is one session: collect the optional pieces ([`filter`],
/// [`sink`], [`threads`]) and call [`run`].
///
/// [`filter`]: SimSession::filter
/// [`sink`]: SimSession::sink
/// [`threads`]: SimSession::threads
/// [`run`]: SimSession::run
#[must_use = "a session does nothing until `.run()` is called"]
pub struct SimSession<'a, S: EventSink = NullSink> {
    cfg: &'a GpuConfig,
    filter: Option<&'a mut dyn IssueFilter>,
    sink: Option<&'a mut S>,
    threads: Option<u32>,
    cancel: Option<&'a CancelToken>,
}

impl<'a> SimSession<'a, NullSink> {
    /// Start building a session against `cfg`.
    pub fn new(cfg: &'a GpuConfig) -> Self {
        SimSession {
            cfg,
            filter: None,
            sink: None,
            threads: None,
            cancel: None,
        }
    }
}

impl<'a, S: EventSink> SimSession<'a, S> {
    /// Use `filter` as the machine model (default: [`BaselineFilter`]).
    pub fn filter(mut self, filter: &'a mut dyn IssueFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// Observe the run through `sink` (e.g. a [`r2d2_trace::Profiler`]).
    ///
    /// The sink may be reused across sessions to profile a multi-kernel
    /// workload as one run. Event streams are identical under both loop
    /// kinds and all thread counts, and the returned [`Stats`] are
    /// bit-identical to an unobserved run.
    pub fn sink<T: EventSink>(self, sink: &'a mut T) -> SimSession<'a, T> {
        SimSession {
            cfg: self.cfg,
            filter: self.filter,
            sink: Some(sink),
            threads: self.threads,
            cancel: self.cancel,
        }
    }

    /// Observe `token` for cooperative cancellation. The timing loops poll it
    /// alongside the watchdog — at every cycle single-threaded, at every
    /// epoch boundary sharded — and a triggered token aborts the run with
    /// [`SimError::Cancelled`] within one epoch.
    pub fn cancel(mut self, token: &'a CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Shard the timing loop across `n` worker threads (default:
    /// `cfg.threads`). Results are bit-identical for every `n`; values are
    /// clamped to `[1, num_sms]`. Filters that do not implement
    /// [`IssueFilter::fork_shard`] fall back to the single-threaded loop.
    pub fn threads(mut self, n: u32) -> Self {
        self.threads = Some(n);
        self
    }

    /// Execute the launch against `gmem`.
    ///
    /// # Errors
    ///
    /// [`SimError`] on deadlock, watchdog, runaway warps, or a block that
    /// cannot fit on an SM. On error the sink's `launch_done` is never
    /// called, and under `threads > 1` the contents of `gmem` are
    /// unspecified.
    pub fn run(self, launch: &Launch, gmem: &mut GlobalMem) -> Result<Stats, SimError> {
        let threads = self.threads.unwrap_or(self.cfg.threads);
        let mut default_filter = BaselineFilter;
        let filter: &mut dyn IssueFilter = match self.filter {
            Some(f) => f,
            None => &mut default_filter,
        };
        match self.sink {
            Some(sink) => run_launch(self.cfg, launch, gmem, filter, sink, threads, self.cancel),
            None => run_launch(
                self.cfg,
                launch,
                gmem,
                filter,
                &mut NullSink,
                threads,
                self.cancel,
            ),
        }
    }
}
