//! GPU configuration (paper Table 1) and instruction latencies.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.bytes / self.line / self.ways as u64).max(1)
    }
}

/// Instruction and memory latencies in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Integer ALU result latency.
    pub int_alu: u64,
    /// FP32 result latency.
    pub fp32: u64,
    /// FP64 result latency.
    pub fp64: u64,
    /// SFU (transcendental) latency.
    pub sfu: u64,
    /// Shared-memory access latency.
    pub shared: u64,
    /// Global load, L1 hit.
    pub l1_hit: u64,
    /// Global load, L2 hit.
    pub l2_hit: u64,
    /// Global load served by DRAM.
    pub dram: u64,
    /// Atomic operation (processed at the L2).
    pub atomic: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            int_alu: 4,
            fp32: 4,
            fp64: 8,
            sfu: 16,
            shared: 24,
            l1_hit: 28,
            l2_hit: 190,
            dram: 400,
            atomic: 210,
        }
    }
}

/// Extra pipeline latencies R2D2 introduces (paper Sec. 5.4): starting-PC
/// table access in the fetch units, physical-register-ID computation for
/// linear register reads, and the LSU-side thread-index + block-index add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct R2d2Latencies {
    /// Added to the fetch of every *linear* (decoupled-block) instruction.
    pub fetch_table: u64,
    /// Added to any instruction reading an `%lr`/`%tr`/`%br` operand.
    pub regid_calc: u64,
    /// Added to memory address generation when an `%lr` base is used
    /// (the tr + br addition; paper assumes 4 cycles like a CUDA-core add).
    pub lr_add: u64,
}

impl Default for R2d2Latencies {
    fn default() -> Self {
        // The paper's operating point: small latencies fully hidden by TLP.
        R2d2Latencies {
            fetch_table: 1,
            regid_calc: 1,
            lr_add: 4,
        }
    }
}

/// Which main-loop implementation [`crate::timing::simulate`] uses.
///
/// Both produce bit-identical [`crate::Stats`] and global memory — the
/// equivalence is enforced by the `loop_equivalence` differential test across
/// the full workload zoo and every machine model. `Lockstep` is the naive
/// one-cycle-at-a-time reference; `EventDriven` (the default) keeps
/// persistent scheduler orderings and fast-forwards over cycles in which no
/// warp can possibly issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopKind {
    /// Advance one cycle at a time, rebuilding scheduler candidate orderings
    /// from scratch each cycle. Slow; kept as the semantic reference.
    Lockstep,
    /// Allocation-free scheduling plus exact idle-cycle skipping.
    #[default]
    EventDriven,
}

/// Full GPU configuration. Defaults model the paper's baseline
/// (NVIDIA TITAN V, Volta — Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessors. Table 1: 80.
    pub num_sms: u32,
    /// SIMD width / warp size. Table 1: 32.
    pub warp_size: u32,
    /// Warp schedulers per SM. Table 1: 4.
    pub schedulers_per_sm: u32,
    /// Shared fetch/decode bandwidth: instructions issued per SM per cycle
    /// across all schedulers. GPGPU-Sim-class models are frontend-limited
    /// (achieved baseline IPC/SM of 1-2); 2 reproduces that regime.
    pub sm_issue_width: u32,
    /// Max resident warps per SM. Table 1: 64.
    pub max_warps_per_sm: u32,
    /// Max resident thread blocks per SM. Table 1: 32.
    pub max_blocks_per_sm: u32,
    /// Register file bytes per SM. Table 1: 256 KB.
    pub regfile_bytes: u64,
    /// Shared memory bytes per SM.
    pub shared_bytes_per_sm: u64,
    /// L1 data cache per SM. Table 1: 96 KB.
    pub l1: CacheConfig,
    /// Shared L2. Table 1: 4.5 MB, 24-way.
    pub l2: CacheConfig,
    /// Instruction/memory latencies.
    pub lat: Latencies,
    /// DRAM service rate: transactions per core cycle (GPU-wide).
    pub dram_txns_per_cycle: u32,
    /// R2D2 added latencies (ignored for kernels without linear metadata).
    pub r2d2: R2d2Latencies,
    /// Abort a run after this many cycles (guards against deadlock bugs).
    pub watchdog_cycles: u64,
    /// Abort functional execution after this many instructions per warp.
    pub watchdog_warp_instrs: u64,
    /// Which timing main loop to run (identical results either way).
    pub loop_kind: LoopKind,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 80,
            warp_size: 32,
            schedulers_per_sm: 4,
            sm_issue_width: 2,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            regfile_bytes: 256 * 1024,
            shared_bytes_per_sm: 96 * 1024,
            l1: CacheConfig {
                bytes: 96 * 1024,
                line: 128,
                ways: 4,
            },
            l2: CacheConfig {
                bytes: 4608 * 1024,
                line: 128,
                ways: 24,
            },
            lat: Latencies::default(),
            dram_txns_per_cycle: 8,
            r2d2: R2d2Latencies::default(),
            watchdog_cycles: 200_000_000,
            watchdog_warp_instrs: 50_000_000,
            loop_kind: LoopKind::default(),
        }
    }
}

impl GpuConfig {
    /// Convenience: the Table 1 baseline with a different SM count
    /// (Sec. 5.8.2 sweeps 80..160 SMs).
    pub fn with_sms(num_sms: u32) -> Self {
        GpuConfig {
            num_sms,
            ..Default::default()
        }
    }

    /// 4-byte registers available per SM.
    pub fn regs_per_sm(&self) -> u64 {
        self.regfile_bytes / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = GpuConfig::default();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_warps_per_sm, 64);
        assert_eq!(c.max_blocks_per_sm, 32);
        assert_eq!(c.schedulers_per_sm, 4);
        assert_eq!(c.regfile_bytes, 256 * 1024);
        assert_eq!(c.regs_per_sm(), 65536);
        assert_eq!(c.l1.bytes, 96 * 1024);
        assert_eq!(c.l2.ways, 24);
    }

    #[test]
    fn cache_sets() {
        let c = CacheConfig {
            bytes: 96 * 1024,
            line: 128,
            ways: 4,
        };
        assert_eq!(c.sets(), 192);
    }
}
