//! GPU configuration (paper Table 1) and instruction latencies.

/// Cache geometry.
///
/// `#[non_exhaustive]`: construct via [`Default`] (through
/// [`GpuConfig::default`]) and adjust fields, or use
/// [`CacheConfig::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Line size in bytes.
    pub line: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Cache with the given capacity, line size, and associativity.
    pub fn new(bytes: u64, line: u64, ways: u32) -> Self {
        CacheConfig { bytes, line, ways }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.bytes / self.line / self.ways as u64).max(1)
    }
}

/// Instruction and memory latencies in core cycles.
///
/// `#[non_exhaustive]`: start from [`Latencies::default`] and overwrite
/// individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Latencies {
    /// Integer ALU result latency.
    pub int_alu: u64,
    /// FP32 result latency.
    pub fp32: u64,
    /// FP64 result latency.
    pub fp64: u64,
    /// SFU (transcendental) latency.
    pub sfu: u64,
    /// Shared-memory access latency.
    pub shared: u64,
    /// Global load, L1 hit.
    pub l1_hit: u64,
    /// Global load, L2 hit.
    pub l2_hit: u64,
    /// Global load served by DRAM.
    pub dram: u64,
    /// Atomic operation (processed at the L2).
    pub atomic: u64,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies {
            int_alu: 4,
            fp32: 4,
            fp64: 8,
            sfu: 16,
            shared: 24,
            l1_hit: 28,
            l2_hit: 190,
            dram: 400,
            atomic: 210,
        }
    }
}

/// Extra pipeline latencies R2D2 introduces (paper Sec. 5.4): starting-PC
/// table access in the fetch units, physical-register-ID computation for
/// linear register reads, and the LSU-side thread-index + block-index add.
///
/// `#[non_exhaustive]`: start from [`R2d2Latencies::default`] and overwrite
/// individual fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct R2d2Latencies {
    /// Added to the fetch of every *linear* (decoupled-block) instruction.
    pub fetch_table: u64,
    /// Added to any instruction reading an `%lr`/`%tr`/`%br` operand.
    pub regid_calc: u64,
    /// Added to memory address generation when an `%lr` base is used
    /// (the tr + br addition; paper assumes 4 cycles like a CUDA-core add).
    pub lr_add: u64,
}

impl Default for R2d2Latencies {
    fn default() -> Self {
        // The paper's operating point: small latencies fully hidden by TLP.
        R2d2Latencies {
            fetch_table: 1,
            regid_calc: 1,
            lr_add: 4,
        }
    }
}

/// Which main-loop implementation a [`crate::SimSession`] run uses.
///
/// Both produce bit-identical [`crate::Stats`] and global memory — the
/// equivalence is enforced by the `loop_equivalence` differential test across
/// the full workload zoo and every machine model. `Lockstep` is the naive
/// one-cycle-at-a-time reference; `EventDriven` (the default) keeps
/// persistent scheduler orderings and fast-forwards over cycles in which no
/// warp can possibly issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoopKind {
    /// Advance one cycle at a time, rebuilding scheduler candidate orderings
    /// from scratch each cycle. Slow; kept as the semantic reference.
    Lockstep,
    /// Allocation-free scheduling plus exact idle-cycle skipping.
    #[default]
    EventDriven,
}

/// Full GPU configuration. Defaults model the paper's baseline
/// (NVIDIA TITAN V, Volta — Table 1).
///
/// `#[non_exhaustive]`: new fields (like [`threads`](GpuConfig::threads))
/// can be added without breaking downstream users. Build one with
/// [`GpuConfig::default`] or [`GpuConfig::with_sms`] and customize via the
/// chained `with_*` setters:
///
/// ```
/// use r2d2_sim::{GpuConfig, LoopKind};
/// let cfg = GpuConfig::default()
///     .with_num_sms(8)
///     .with_loop_kind(LoopKind::Lockstep)
///     .with_threads(4);
/// assert_eq!(cfg.num_sms, 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct GpuConfig {
    /// Streaming multiprocessors. Table 1: 80.
    pub num_sms: u32,
    /// SIMD width / warp size. Table 1: 32.
    pub warp_size: u32,
    /// Warp schedulers per SM. Table 1: 4.
    pub schedulers_per_sm: u32,
    /// Shared fetch/decode bandwidth: instructions issued per SM per cycle
    /// across all schedulers. GPGPU-Sim-class models are frontend-limited
    /// (achieved baseline IPC/SM of 1-2); 2 reproduces that regime.
    pub sm_issue_width: u32,
    /// Max resident warps per SM. Table 1: 64.
    pub max_warps_per_sm: u32,
    /// Max resident thread blocks per SM. Table 1: 32.
    pub max_blocks_per_sm: u32,
    /// Register file bytes per SM. Table 1: 256 KB.
    pub regfile_bytes: u64,
    /// Shared memory bytes per SM.
    pub shared_bytes_per_sm: u64,
    /// L1 data cache per SM. Table 1: 96 KB.
    pub l1: CacheConfig,
    /// Shared L2. Table 1: 4.5 MB, 24-way.
    pub l2: CacheConfig,
    /// Instruction/memory latencies.
    pub lat: Latencies,
    /// DRAM service rate: transactions per core cycle (GPU-wide).
    pub dram_txns_per_cycle: u32,
    /// R2D2 added latencies (ignored for kernels without linear metadata).
    pub r2d2: R2d2Latencies,
    /// Abort a run after this many cycles (guards against deadlock bugs).
    pub watchdog_cycles: u64,
    /// Abort functional execution after this many instructions per warp.
    pub watchdog_warp_instrs: u64,
    /// Which timing main loop to run (identical results either way).
    pub loop_kind: LoopKind,
    /// Worker threads for the sharded timing loop. `1` (the default) runs
    /// the classic single-threaded loops; `N > 1` partitions the SMs into
    /// `min(N, num_sms)` shards that simulate concurrently and synchronize
    /// on the shared L2/DRAM at epoch boundaries. Results are bit-identical
    /// for any thread count.
    pub threads: u32,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 80,
            warp_size: 32,
            schedulers_per_sm: 4,
            sm_issue_width: 2,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            regfile_bytes: 256 * 1024,
            shared_bytes_per_sm: 96 * 1024,
            l1: CacheConfig {
                bytes: 96 * 1024,
                line: 128,
                ways: 4,
            },
            l2: CacheConfig {
                bytes: 4608 * 1024,
                line: 128,
                ways: 24,
            },
            lat: Latencies::default(),
            dram_txns_per_cycle: 8,
            r2d2: R2d2Latencies::default(),
            watchdog_cycles: 200_000_000,
            watchdog_warp_instrs: 50_000_000,
            loop_kind: LoopKind::default(),
            threads: 1,
        }
    }
}

impl GpuConfig {
    /// Convenience: the Table 1 baseline with a different SM count
    /// (Sec. 5.8.2 sweeps 80..160 SMs).
    pub fn with_sms(num_sms: u32) -> Self {
        GpuConfig {
            num_sms,
            ..Default::default()
        }
    }

    /// 4-byte registers available per SM.
    pub fn regs_per_sm(&self) -> u64 {
        self.regfile_bytes / 4
    }

    /// Set the SM count.
    pub fn with_num_sms(mut self, v: u32) -> Self {
        self.num_sms = v;
        self
    }

    /// Set the warp size.
    pub fn with_warp_size(mut self, v: u32) -> Self {
        self.warp_size = v;
        self
    }

    /// Set the warp schedulers per SM.
    pub fn with_schedulers_per_sm(mut self, v: u32) -> Self {
        self.schedulers_per_sm = v;
        self
    }

    /// Set the per-SM issue width (instructions per cycle across schedulers).
    pub fn with_sm_issue_width(mut self, v: u32) -> Self {
        self.sm_issue_width = v;
        self
    }

    /// Set the max resident warps per SM.
    pub fn with_max_warps_per_sm(mut self, v: u32) -> Self {
        self.max_warps_per_sm = v;
        self
    }

    /// Set the max resident thread blocks per SM.
    pub fn with_max_blocks_per_sm(mut self, v: u32) -> Self {
        self.max_blocks_per_sm = v;
        self
    }

    /// Set the register file size per SM (bytes).
    pub fn with_regfile_bytes(mut self, v: u64) -> Self {
        self.regfile_bytes = v;
        self
    }

    /// Set the shared memory size per SM (bytes).
    pub fn with_shared_bytes_per_sm(mut self, v: u64) -> Self {
        self.shared_bytes_per_sm = v;
        self
    }

    /// Set the per-SM L1 data-cache geometry.
    pub fn with_l1(mut self, v: CacheConfig) -> Self {
        self.l1 = v;
        self
    }

    /// Set the shared L2 geometry.
    pub fn with_l2(mut self, v: CacheConfig) -> Self {
        self.l2 = v;
        self
    }

    /// Set the latency table.
    pub fn with_lat(mut self, v: Latencies) -> Self {
        self.lat = v;
        self
    }

    /// Set the DRAM service rate (transactions per core cycle, GPU-wide).
    pub fn with_dram_txns_per_cycle(mut self, v: u32) -> Self {
        self.dram_txns_per_cycle = v;
        self
    }

    /// Set the R2D2 added latencies.
    pub fn with_r2d2(mut self, v: R2d2Latencies) -> Self {
        self.r2d2 = v;
        self
    }

    /// Set the cycle watchdog.
    pub fn with_watchdog_cycles(mut self, v: u64) -> Self {
        self.watchdog_cycles = v;
        self
    }

    /// Set the per-warp instruction watchdog.
    pub fn with_watchdog_warp_instrs(mut self, v: u64) -> Self {
        self.watchdog_warp_instrs = v;
        self
    }

    /// Set the timing main-loop implementation.
    pub fn with_loop_kind(mut self, v: LoopKind) -> Self {
        self.loop_kind = v;
        self
    }

    /// Set the worker-thread count for the sharded timing loop.
    pub fn with_threads(mut self, v: u32) -> Self {
        self.threads = v;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = GpuConfig::default();
        assert_eq!(c.num_sms, 80);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_warps_per_sm, 64);
        assert_eq!(c.max_blocks_per_sm, 32);
        assert_eq!(c.schedulers_per_sm, 4);
        assert_eq!(c.regfile_bytes, 256 * 1024);
        assert_eq!(c.regs_per_sm(), 65536);
        assert_eq!(c.l1.bytes, 96 * 1024);
        assert_eq!(c.l2.ways, 24);
    }

    #[test]
    fn chained_setters_mirror_fields() {
        let c = GpuConfig::default()
            .with_num_sms(4)
            .with_sm_issue_width(1)
            .with_loop_kind(LoopKind::Lockstep)
            .with_watchdog_cycles(5_000)
            .with_threads(8);
        assert_eq!(c.num_sms, 4);
        assert_eq!(c.sm_issue_width, 1);
        assert_eq!(c.loop_kind, LoopKind::Lockstep);
        assert_eq!(c.watchdog_cycles, 5_000);
        assert_eq!(c.threads, 8);
        assert_eq!(GpuConfig::default().threads, 1);
    }

    #[test]
    fn cache_sets() {
        let c = CacheConfig {
            bytes: 96 * 1024,
            line: 128,
            ways: 4,
        };
        assert_eq!(c.sets(), 192);
    }
}
