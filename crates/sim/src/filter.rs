//! Issue-time machine-model hooks.
//!
//! The paper evaluates DAC, DARSIE and DARSIE+Scalar as *optimistic* models
//! layered on the baseline pipeline ("with no overhead", Sec. 5). We reproduce
//! that with an [`IssueFilter`]: the timing simulator executes every warp
//! instruction functionally, then asks the filter how to *charge* it:
//! execute normally, execute on the scalar pipe, or skip it entirely.
//! Filters never change values — only cost — which keeps all machine models
//! bit-identical in results.

use crate::exec::{MemInfo, OperandVals};
use r2d2_isa::Instr;

/// How an issued warp instruction is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Normal SIMD execution.
    Execute,
    /// Executed once on the scalar pipeline (still occupies an issue slot;
    /// paper Sec. 2.2: scalar warp instructions "should pass all GPU pipeline
    /// stages").
    Scalar,
    /// Skipped entirely: no issue slot, no latency, no energy (the paper's
    /// optimistic DAC/DARSIE modeling).
    Skip,
}

/// Context handed to [`IssueFilter::classify`].
#[derive(Debug)]
pub struct IssueCtx<'a> {
    /// pc of the instruction.
    pub pc: usize,
    /// The instruction.
    pub instr: &'a Instr,
    /// Linear block id within the grid.
    pub block: u64,
    /// Warp index within the block.
    pub warp_in_block: u32,
    /// Lanes that executed.
    pub exec_mask: u32,
    /// Captured operand values (present when the filter requested them via
    /// [`IssueFilter::wants_values`]).
    pub vals: Option<&'a OperandVals>,
    /// Memory access description for loads/stores/atomics.
    pub mem: Option<&'a MemInfo>,
}

/// A machine model's issue-time policy.
pub trait IssueFilter {
    /// `true` if the filter needs per-lane operand values (slower).
    fn wants_values(&self) -> bool {
        false
    }

    /// Called once per launch before simulation starts, with the kernel and
    /// the block dimensions (for launch-time static analyses like DARSIE's
    /// dimensionality check).
    fn on_launch(&mut self, _kernel: &r2d2_isa::Kernel, _block: [u32; 3]) {}

    /// Decide how to charge this warp instruction.
    fn classify(&mut self, ctx: &IssueCtx<'_>) -> Disposition;

    /// Called when a thread block completes (lets per-block state be freed).
    fn on_block_done(&mut self, _block: u64) {}

    /// Produce an independent copy of this filter for one shard of the
    /// parallel timing loop. Called after [`IssueFilter::on_launch`], so
    /// launch-time analysis state must be included in the copy. Blocks are
    /// statically partitioned across SMs, so per-block state never crosses
    /// shards. Returning `None` (the default) makes `threads > 1` runs fall
    /// back to the single-threaded loop for this filter.
    fn fork_shard(&self) -> Option<Box<dyn IssueFilter + Send>> {
        None
    }
}

/// The baseline machine: everything executes on the SIMD pipeline, except
/// immediate/parameter-only operations which use the scalar pipeline that
/// "existing GPUs" provide (paper Sec. 5: "The baseline GPU includes a scalar
/// pipeline for the operations with constant variables").
#[derive(Debug, Default, Clone)]
pub struct BaselineFilter;

impl IssueFilter for BaselineFilter {
    fn fork_shard(&self) -> Option<Box<dyn IssueFilter + Send>> {
        Some(Box::new(self.clone()))
    }

    fn classify(&mut self, ctx: &IssueCtx<'_>) -> Disposition {
        use r2d2_isa::{Op, Operand};
        if ctx.instr.op.is_control() || ctx.instr.op.is_mem() {
            return Disposition::Execute;
        }
        let const_only = ctx.instr.srcs.iter().all(|s| {
            matches!(
                s,
                Operand::Imm(_)
                    | Operand::Special(r2d2_isa::Special::Ntid(_))
                    | Operand::Special(r2d2_isa::Special::Nctaid(_))
            )
        });
        if const_only && !ctx.instr.srcs.is_empty() || ctx.instr.op == Op::LdParam {
            Disposition::Scalar
        } else {
            Disposition::Execute
        }
    }
}

/// A filter that executes everything normally (no scalar pipe at all).
#[derive(Debug, Default, Clone)]
pub struct NoFilter;

impl IssueFilter for NoFilter {
    fn fork_shard(&self) -> Option<Box<dyn IssueFilter + Send>> {
        Some(Box::new(self.clone()))
    }

    fn classify(&mut self, _ctx: &IssueCtx<'_>) -> Disposition {
        Disposition::Execute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::{Dst, Instr, Op, Operand, Reg, Ty};

    fn ctx<'a>(instr: &'a Instr) -> IssueCtx<'a> {
        IssueCtx {
            pc: 0,
            instr,
            block: 0,
            warp_in_block: 0,
            exec_mask: u32::MAX,
            vals: None,
            mem: None,
        }
    }

    #[test]
    fn baseline_scalarizes_immediates() {
        let mut f = BaselineFilter;
        let imm = Instr::new(
            Op::Mov,
            Ty::B32,
            Some(Dst::Reg(Reg(0))),
            vec![Operand::Imm(3)],
        );
        assert_eq!(f.classify(&ctx(&imm)), Disposition::Scalar);
        let ldp = Instr::new(
            Op::LdParam,
            Ty::B64,
            Some(Dst::Reg(Reg(0))),
            vec![Operand::Imm(0)],
        );
        assert_eq!(f.classify(&ctx(&ldp)), Disposition::Scalar);
        let add = Instr::new(
            Op::Add,
            Ty::B32,
            Some(Dst::Reg(Reg(1))),
            vec![Operand::Reg(Reg(0)), Operand::Imm(1)],
        );
        assert_eq!(f.classify(&ctx(&add)), Disposition::Execute);
    }

    #[test]
    fn no_filter_always_executes() {
        let mut f = NoFilter;
        let i = Instr::new(
            Op::Mov,
            Ty::B32,
            Some(Dst::Reg(Reg(0))),
            vec![Operand::Imm(3)],
        );
        assert_eq!(f.classify(&ctx(&i)), Disposition::Execute);
    }
}
