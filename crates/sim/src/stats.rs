//! Execution statistics.

use r2d2_energy::EventCounts;
use r2d2_trace::{Profiler, StallCause};

/// Counters collected by a simulation run.
///
/// Phase-indexed arrays use [`crate::linear::Phase::idx`] (Coef=0, Tidx=1,
/// Bidx=2, Main=3); plain kernels put everything in Main.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// End-to-end execution cycles (timing runs only).
    pub cycles: u64,
    /// Warp instructions issued (vector + scalar; excludes skipped).
    pub warp_instrs: u64,
    /// Thread instructions charged (active lanes for vector issues, 1 for
    /// scalar issues).
    pub thread_instrs: u64,
    /// Warp instructions that went down the scalar pipeline.
    pub scalar_warp_instrs: u64,
    /// Warp instructions skipped by an ideal machine model (DAC/DARSIE).
    pub skipped_warp_instrs: u64,
    /// Thread instructions those skips would have cost.
    pub skipped_thread_instrs: u64,
    /// Warp instructions by R2D2 phase.
    pub warp_instrs_by_phase: [u64; 4],
    /// Thread instructions by R2D2 phase.
    pub thread_instrs_by_phase: [u64; 4],
    /// Cycle at which the last SM finished its linear prologue (coefficient +
    /// thread-index + first-wave block-index computations). ~Fig. 15's
    /// "linear instruction" execution time.
    pub prologue_cycles: u64,
    /// L1 data cache hits (128B transactions).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM transactions.
    pub dram_txns: u64,
    /// Shared-memory transactions.
    pub shared_txns: u64,
    /// SM-cycles in which an SM issued or made forward progress. Zero unless
    /// the run was profiled (see [`Stats::absorb_profile`]).
    pub issued_sm_cycles: u64,
    /// Stall SM-cycles per [`StallCause`] (indexed by [`StallCause::idx`]).
    /// Zero unless the run was profiled. When populated,
    /// `issued_sm_cycles + sum(stall_sm_cycles) == cycles * num_sms`.
    pub stall_sm_cycles: [u64; StallCause::COUNT],
    /// Energy-relevant event counts.
    pub events: EventCounts,
}

impl Stats {
    /// Thread instructions including the ones machine models skipped —
    /// i.e. what the baseline would have executed for the same work.
    pub fn thread_instrs_with_skipped(&self) -> u64 {
        self.thread_instrs + self.skipped_thread_instrs
    }

    /// Warp instructions including skips.
    pub fn warp_instrs_with_skipped(&self) -> u64 {
        self.warp_instrs + self.skipped_warp_instrs
    }

    /// Fraction of issued warp instructions that were linear (R2D2 overhead,
    /// Fig. 14's "linear" bars).
    pub fn linear_warp_share(&self) -> f64 {
        let lin: u64 = self.warp_instrs_by_phase[..3].iter().sum();
        if self.warp_instrs == 0 {
            0.0
        } else {
            lin as f64 / self.warp_instrs as f64
        }
    }

    /// Accumulate another run's counters (cycles take the max — SMs run in
    /// parallel, but distinct launches add).
    pub fn merge_sequential(&mut self, o: &Stats) {
        self.cycles += o.cycles;
        self.warp_instrs += o.warp_instrs;
        self.thread_instrs += o.thread_instrs;
        self.scalar_warp_instrs += o.scalar_warp_instrs;
        self.skipped_warp_instrs += o.skipped_warp_instrs;
        self.skipped_thread_instrs += o.skipped_thread_instrs;
        for i in 0..4 {
            self.warp_instrs_by_phase[i] += o.warp_instrs_by_phase[i];
            self.thread_instrs_by_phase[i] += o.thread_instrs_by_phase[i];
        }
        self.prologue_cycles += o.prologue_cycles;
        self.l1_hits += o.l1_hits;
        self.l1_misses += o.l1_misses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.dram_txns += o.dram_txns;
        self.shared_txns += o.shared_txns;
        self.issued_sm_cycles += o.issued_sm_cycles;
        for i in 0..StallCause::COUNT {
            self.stall_sm_cycles[i] += o.stall_sm_cycles[i];
        }
        let cycles = self.events.cycles + o.events.cycles;
        self.events.add(&o.events);
        self.events.cycles = cycles;
    }

    /// Copy a [`Profiler`]'s stall-attribution totals into this `Stats`.
    /// Call once after all launches of a profiled run have completed.
    pub fn absorb_profile(&mut self, p: &Profiler) {
        self.issued_sm_cycles = p.issued_sm_cycles();
        self.stall_sm_cycles = p.stall_totals();
    }

    /// `issued_sm_cycles + sum(stall_sm_cycles)` — equals
    /// `cycles * num_sms` on a profiled run (the attribution invariant).
    pub fn attributed_sm_cycles(&self) -> u64 {
        self.issued_sm_cycles + self.stall_sm_cycles.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skipped_accounting() {
        let s = Stats {
            warp_instrs: 80,
            skipped_warp_instrs: 20,
            thread_instrs: 2560,
            skipped_thread_instrs: 640,
            ..Default::default()
        };
        assert_eq!(s.warp_instrs_with_skipped(), 100);
        assert_eq!(s.thread_instrs_with_skipped(), 3200);
    }

    #[test]
    fn linear_share() {
        let s = Stats {
            warp_instrs: 100,
            warp_instrs_by_phase: [1, 2, 3, 94],
            ..Default::default()
        };
        assert!((s.linear_warp_share() - 0.06).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_cycles_sequentially() {
        let mut a = Stats {
            cycles: 10,
            warp_instrs: 5,
            ..Default::default()
        };
        let b = Stats {
            cycles: 7,
            warp_instrs: 3,
            ..Default::default()
        };
        a.merge_sequential(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.warp_instrs, 8);
    }
}
