//! Behavioral tests of the timing model: bandwidth limits, issue limits,
//! occupancy waves, barrier costs — things the unit tests inside `timing.rs`
//! don't cover end to end.

use r2d2_isa::{KernelBuilder, Operand, Ty};
use r2d2_sim::{Dim3, GlobalMem, GpuConfig, Launch, SimSession};

fn streaming_kernel(loads: usize) -> r2d2_isa::Kernel {
    let mut b = KernelBuilder::new("stream", 2);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let p = b.ld_param(0);
    let a = b.add_wide(p, off);
    let mut acc = b.fimm32(0.0);
    for k in 0..loads {
        let v = b.ld_global(Ty::F32, a, (k as i64) * 1_048_576);
        acc = b.add_ty(Ty::F32, acc, v);
    }
    let q = b.ld_param(1);
    let oa = b.add_wide(q, off);
    b.st_global(Ty::F32, oa, 0, acc);
    b.build()
}

fn run(cfg: &GpuConfig, kernel: r2d2_isa::Kernel, blocks: u32, tpb: u32) -> r2d2_sim::Stats {
    // Schedule like a real compiler would (hoists the independent loads).
    let kernel = r2d2_isa::schedule(&kernel);
    let mut g = GlobalMem::new();
    let n = (blocks as u64 * tpb as u64).max(1);
    let p0 = g.alloc(n * 4 + 64 * 1_048_576);
    let p1 = g.alloc(n * 4 + 4096);
    let launch = Launch::new(kernel, Dim3::d1(blocks), Dim3::d1(tpb), vec![p0, p1]);
    SimSession::new(cfg).run(&launch, &mut g).unwrap()
}

#[test]
fn dram_bandwidth_limits_streaming() {
    // Starving DRAM bandwidth must lengthen a DRAM-bound kernel noticeably.
    // Enough blocks that aggregate traffic, not per-warp latency, dominates.
    let fast = GpuConfig::default()
        .with_num_sms(4)
        .with_dram_txns_per_cycle(16);
    let slow = GpuConfig::default()
        .with_num_sms(4)
        .with_dram_txns_per_cycle(1);
    let cf = run(&fast, streaming_kernel(8), 512, 256);
    let cs = run(&slow, streaming_kernel(8), 512, 256);
    assert!(
        cs.cycles as f64 > cf.cycles as f64 * 1.5,
        "slow {} vs fast {}",
        cs.cycles,
        cf.cycles
    );
}

#[test]
fn issue_width_limits_compute() {
    // An ALU-heavy kernel must scale with the SM issue width.
    let mut b = KernelBuilder::new("alu", 1);
    let i = b.global_tid_x();
    let mut v = i;
    for _ in 0..64 {
        v = b.add(v, Operand::Imm(1));
    }
    let off = b.shl_imm_wide(i, 2);
    let p = b.ld_param(0);
    let a = b.add_wide(p, off);
    b.st_global(Ty::B32, a, 0, v);
    let k = b.build();
    let wide = GpuConfig::default().with_num_sms(2).with_sm_issue_width(4);
    let narrow = GpuConfig::default().with_num_sms(2).with_sm_issue_width(1);
    let cw = run(&wide, k.clone(), 64, 256);
    let cn = run(&narrow, k, 64, 256);
    assert!(
        cn.cycles as f64 > cw.cycles as f64 * 2.0,
        "narrow {} vs wide {}",
        cn.cycles,
        cw.cycles
    );
}

#[test]
fn multiple_waves_scale_roughly_linearly() {
    let cfg = GpuConfig::default().with_num_sms(2);
    let one = run(&cfg, streaming_kernel(2), 16, 256); // 8 blocks/SM: one wave
    let four = run(&cfg, streaming_kernel(2), 64, 256); // four waves
    let ratio = four.cycles as f64 / one.cycles as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "4x work should take 2-8x time in a pipelined machine, got {ratio:.2}"
    );
}

#[test]
fn barriers_serialize_block_phases() {
    // A kernel with K barriers is slower than the same kernel without.
    let mk = |bars: usize| {
        let mut b = KernelBuilder::new("bars", 1);
        b.shared_bytes(4 * 256);
        let t = b.tid_x();
        let soff = b.shl_imm_wide(t, 2);
        for _ in 0..bars {
            b.st_shared(Ty::B32, soff, 0, t);
            b.bar();
        }
        let v = b.ld_shared(Ty::B32, soff, 0);
        let off = b.shl_imm_wide(t, 2);
        let p = b.ld_param(0);
        let a = b.add_wide(p, off);
        b.st_global(Ty::B32, a, 0, v);
        b.build()
    };
    let cfg = GpuConfig::default().with_num_sms(1);
    let no_bar = run(&cfg, mk(0), 4, 256);
    let many = run(&cfg, mk(16), 4, 256);
    assert!(many.cycles > no_bar.cycles);
}

#[test]
fn l1_is_per_sm_and_l2_is_shared() {
    // The same workload on 1 SM vs many SMs: total L1 misses can grow with
    // SM count (cold caches), while results stay identical.
    let k = streaming_kernel(4);
    let one = run(&GpuConfig::default().with_num_sms(1), k.clone(), 32, 256);
    let many = run(&GpuConfig::default().with_num_sms(16), k, 32, 256);
    assert!(many.l1_misses >= one.l1_misses);
    assert_eq!(
        one.warp_instrs, many.warp_instrs,
        "instruction count must not depend on SM count"
    );
}

#[test]
fn partial_warps_charge_only_active_lanes() {
    let mut b = KernelBuilder::new("partial", 1);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let p = b.ld_param(0);
    let a = b.add_wide(p, off);
    b.st_global(Ty::B32, a, 0, i);
    let k = b.build();
    let cfg = GpuConfig::default().with_num_sms(1);
    let full = run(&cfg, k.clone(), 1, 32);
    let partial = run(&cfg, k, 1, 8);
    assert_eq!(full.warp_instrs, partial.warp_instrs);
    // Vector instructions charge 8 vs 32 lanes; scalar-pipe instructions
    // charge 1 either way, so the ratio sits between 3x and 4x here.
    assert!(partial.thread_instrs * 3 <= full.thread_instrs);
}

#[test]
fn watchdog_catches_infinite_loops() {
    let mut b = KernelBuilder::new("inf", 0);
    let top = b.here_label();
    b.imm32(1);
    b.bra(top);
    let k = b.build();
    let cfg = GpuConfig::default()
        .with_num_sms(1)
        .with_watchdog_cycles(5_000)
        .with_watchdog_warp_instrs(100_000);
    let mut g = GlobalMem::new();
    g.alloc(64);
    let launch = Launch::new(k, Dim3::d1(1), Dim3::d1(32), vec![]);
    let err = SimSession::new(&cfg).run(&launch, &mut g).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("cycle") || msg.contains("instructions"),
        "unexpected error: {msg}"
    );
}

#[test]
fn unschedulable_block_is_rejected() {
    let k = KernelBuilder::new("tiny", 0).build();
    // 2048 threads/block = 64 warps > hardware's per-block residency options.
    let mut g = GlobalMem::new();
    g.alloc(64);
    let cfg = GpuConfig::default()
        .with_num_sms(1)
        .with_max_warps_per_sm(32);
    let launch = Launch::new(k, Dim3::d1(1), Dim3::d1(2048), vec![]);
    let err = SimSession::new(&cfg).run(&launch, &mut g).unwrap_err();
    assert!(err.to_string().contains("fit"), "{err}");
}
