//! Direct tests of the R2D2 phase engine (paper Sec. 4.1): hand-assembled
//! linear instruction blocks with a hand-written register table, exercising
//! the starting-PC gates, the per-SM register classes, and the LSU's tr+br
//! addition — independently of the code generator.

use r2d2_isa::parse_kernel;
use r2d2_sim::{functional, Dim3, GlobalMem, GpuConfig, Launch, LinearMeta, SimSession, MAX_LR};

/// A transformed-style kernel, written by hand:
///   coef:  %cr0 = P1 (the scale)           [pc 0]
///   tidx:  %tr0 = tid.x * %cr0             [pc 1..3]
///   bidx:  %br = bank(cr1); %br += ctaid.x * bank(cr2)  [pc 3..6]
///   main:  out[gtid] = %lr0                [pc 6..]
/// with cr1 = P2 (constant part) and cr2 = P3 (ctaid coefficient) filled by
/// two more coef instructions.
fn kernel_and_meta() -> (r2d2_isa::Kernel, LinearMeta) {
    let src = r#"
.kernel handmade params=4 {
  // --- coefficients (single thread) ---
  ld.param.b64 %cr0, [P1];
  ld.param.b64 %cr1, [P2];
  ld.param.b64 %cr2, [P3];
  // --- thread-index parts (first block) ---
  mov.b32 %r0, %tid.x;
  mad.b64 %tr0, %r0, %cr0, 0;
  // --- block-index parts (first warp of each block) ---
  mov.b64 %br0, %cr1;
  mov.b32 %r1, %ctaid.x;
  mad.b64 %br0, %r1, %cr2, %br0;
  // --- non-linear stream (everyone) ---
  mov.b32 %r2, %tid.x;
  mov.b32 %r3, %ctaid.x;
  mov.b32 %r4, %ntid.x;
  mad.b32 %r5, %r3, %r4, %r2;
  cvt.b64 %r6, %r5;
  shl.b64 %r7, %r6, 2;
  ld.param.b64 %r8, [P0];
  add.b64 %r9, %r8, %r7;
  mov.b64 %r10, %lr0;
  st.global.b32 [%r9], %r10;
  exit;
}
"#;
    let k = parse_kernel(src).unwrap();
    k.validate().unwrap();
    let mut lr_tr = [None; MAX_LR];
    lr_tr[0] = Some(0);
    let meta = LinearMeta {
        coef_start: 0,
        tidx_start: 3,
        bidx_start: 5,
        main_start: 8,
        n_cr: 3,
        n_tr: 1,
        n_lr: 1,
        lr_tr,
    };
    (k, meta)
}

fn expected(scale: i64, cnst: i64, bcoef: i64, tid: i64, ctaid: i64) -> i32 {
    (cnst + scale * tid + bcoef * ctaid) as i32
}

#[test]
fn functional_phases_compute_lr_as_tr_plus_br() {
    let (k, meta) = kernel_and_meta();
    let mut g = GlobalMem::new();
    let out = g.alloc(1 << 16);
    let (scale, cnst, bcoef) = (3i64, 1000, 777);
    let mut l = Launch::new(
        k,
        Dim3::d1(4),
        Dim3::d1(64),
        vec![out, scale as u64, cnst as u64, bcoef as u64],
    );
    l.meta = Some(meta);
    functional::run_r2d2(&l, &mut g, 1_000_000, None).unwrap();
    for b in 0..4i64 {
        for t in 0..64i64 {
            let got = g.read_i32(out, (b * 64 + t) as u64);
            assert_eq!(got, expected(scale, cnst, bcoef, t, b), "b={b} t={t}");
        }
    }
}

#[test]
fn timed_phases_match_functional_and_respect_gates() {
    let (k, meta) = kernel_and_meta();
    let (scale, cnst, bcoef) = (5i64, 4000, 123);
    let mk = |g: &mut GlobalMem| g.alloc(1 << 16);

    let mut g1 = GlobalMem::new();
    let out1 = mk(&mut g1);
    let mut l1 = Launch::new(
        k.clone(),
        Dim3::d1(32),
        Dim3::d1(64),
        vec![out1, scale as u64, cnst as u64, bcoef as u64],
    );
    l1.meta = Some(meta.clone());
    functional::run_r2d2(&l1, &mut g1, 1_000_000, None).unwrap();

    let mut g2 = GlobalMem::new();
    let out2 = mk(&mut g2);
    let mut l2 = Launch::new(
        k,
        Dim3::d1(32),
        Dim3::d1(64),
        vec![out2, scale as u64, cnst as u64, bcoef as u64],
    );
    l2.meta = Some(meta);
    let cfg = GpuConfig::default().with_num_sms(4);
    let stats = SimSession::new(&cfg).run(&l2, &mut g2).unwrap();

    assert_eq!(g1.bytes(), g2.bytes());
    // Phase accounting: coefficients run once per SM (scalar), thread-index
    // parts once per SM-block, block-index parts once per block.
    assert_eq!(
        stats.warp_instrs_by_phase[0],
        3 * 4,
        "3 coef instrs x 4 SMs"
    );
    assert_eq!(
        stats.warp_instrs_by_phase[1],
        2 * 2 * 4,
        "2 tidx instrs x 2 warps x 4 SMs"
    );
    assert_eq!(
        stats.warp_instrs_by_phase[2],
        3 * 32,
        "3 bidx instrs x 32 blocks"
    );
    assert!(stats.prologue_cycles > 0 && stats.prologue_cycles < stats.cycles);
    // Coefficient instructions go down the scalar pipe: 1 thread each.
    assert_eq!(stats.thread_instrs_by_phase[0], 12);
    // Block-index instructions run n_lr = 1 lane.
    assert_eq!(stats.thread_instrs_by_phase[2], 3 * 32);
}

#[test]
fn second_wave_blocks_recompute_block_parts_only() {
    // More blocks than can be resident: following blocks must re-run the
    // bidx block (their ctaid differs) but never coef/tidx.
    let (k, meta) = kernel_and_meta();
    let mut g = GlobalMem::new();
    let out = g.alloc(1 << 20);
    let mut l = Launch::new(k, Dim3::d1(256), Dim3::d1(64), vec![out, 2, 10, 1000]);
    l.meta = Some(meta);
    let cfg = GpuConfig::default().with_num_sms(2);
    let stats = SimSession::new(&cfg).run(&l, &mut g).unwrap();
    assert_eq!(stats.warp_instrs_by_phase[0], 3 * 2, "coef once per SM");
    assert_eq!(stats.warp_instrs_by_phase[1], 2 * 2 * 2, "tidx once per SM");
    assert_eq!(
        stats.warp_instrs_by_phase[2],
        3 * 256,
        "bidx once per block"
    );
    for blk in 0..256i64 {
        for t in 0..64i64 {
            let got = g.read_i32(out, (blk * 64 + t) as u64);
            assert_eq!(got, (10 + 2 * t + 1000 * blk) as i32, "blk={blk}");
        }
    }
}

#[test]
fn kernels_without_linearity_ignore_the_phase_engine() {
    // meta.has_linear() == false must behave exactly like a plain launch.
    let src = ".kernel plain params=1 {\n mov.b32 %r0, %tid.x;\n ld.param.b64 %r1, [P0];\n cvt.b64 %r2, %r0;\n shl.b64 %r3, %r2, 2;\n add.b64 %r4, %r1, %r3;\n st.global.b32 [%r4], %r0;\n exit;\n}";
    let k = parse_kernel(src).unwrap();
    let meta = LinearMeta {
        coef_start: 0,
        tidx_start: 0,
        bidx_start: 0,
        main_start: 0,
        n_cr: 0,
        n_tr: 0,
        n_lr: 0,
        lr_tr: [None; MAX_LR],
    };
    assert!(!meta.has_linear());
    let mut g = GlobalMem::new();
    let out = g.alloc(4096);
    let mut l = Launch::new(k, Dim3::d1(2), Dim3::d1(32), vec![out]);
    l.meta = Some(meta);
    let cfg = GpuConfig::default().with_num_sms(1);
    let stats = SimSession::new(&cfg).run(&l, &mut g).unwrap();
    assert_eq!(stats.warp_instrs_by_phase[0], 0);
    assert_eq!(stats.warp_instrs_by_phase[1], 0);
    assert_eq!(stats.warp_instrs_by_phase[2], 0);
    for t in 0..32 {
        assert_eq!(g.read_i32(out, t), t as i32);
    }
}
