//! Randomized tests for the SIMT reconvergence stack: randomly generated
//! divergent control flow must produce exactly what a per-thread Rust
//! reference computes. Cases come from the in-repo seeded PRNG.

use r2d2_isa::{CmpOp, KernelBuilder, Operand, Ty};
use r2d2_sim::{functional, Dim3, GlobalMem, Launch};
use r2d2_sym::Rng;

const CASES: usize = 48;

/// A little branchy program over a per-thread value `x = data[i]`:
/// nested if/else via thresholds plus a data-dependent loop, then a store.
#[derive(Debug, Clone)]
struct Program {
    t1: i32,
    t2: i32,
    t3: i32,
    loop_mod: i32,
}

impl Program {
    fn gen(r: &mut Rng) -> Self {
        Program {
            t1: r.gen_range(-50i32..50),
            t2: r.gen_range(-50i32..50),
            t3: r.gen_range(-50i32..50),
            loop_mod: r.gen_range(1i32..6),
        }
    }

    fn reference(&self, x: i32) -> i32 {
        let mut acc = 0i32;
        if x < self.t1 {
            acc = acc.wrapping_add(10);
            if x < self.t2 {
                acc = acc.wrapping_add(100);
            } else {
                acc = acc.wrapping_add(200);
            }
        } else {
            acc = acc.wrapping_add(20);
        }
        // data-dependent trip count in [0, loop_mod)
        let trips = x.rem_euclid(self.loop_mod);
        let mut i = 0;
        while i < trips {
            acc = acc.wrapping_add(i.wrapping_mul(3));
            i += 1;
        }
        if x > self.t3 {
            return acc.wrapping_mul(2); // early-exit path writes doubled value
        }
        acc
    }

    fn kernel(&self) -> r2d2_isa::Kernel {
        let mut b = KernelBuilder::new("branchy", 2);
        let gid = b.global_tid_x();
        let doff = b.shl_imm_wide(gid, 2);
        let p0 = b.ld_param(0);
        let daddr = b.add_wide(p0, doff);
        let x = b.ld_global(Ty::B32, daddr, 0);
        let acc = b.imm32(0);

        let else_l = b.label();
        let join_l = b.label();
        let p = b.setp(CmpOp::Lt, Ty::B32, x, Operand::Imm(self.t1 as i64));
        b.bra_if(p, false, else_l);
        b.assign_add(Ty::B32, acc, Operand::Imm(10));
        let inner_else = b.label();
        let inner_join = b.label();
        let p2 = b.setp(CmpOp::Lt, Ty::B32, x, Operand::Imm(self.t2 as i64));
        b.bra_if(p2, false, inner_else);
        b.assign_add(Ty::B32, acc, Operand::Imm(100));
        b.bra(inner_join);
        b.place(inner_else);
        b.assign_add(Ty::B32, acc, Operand::Imm(200));
        b.place(inner_join);
        b.bra(join_l);
        b.place(else_l);
        b.assign_add(Ty::B32, acc, Operand::Imm(20));
        b.place(join_l);

        // trips = x mod loop_mod (euclidean: ((x % m) + m) % m)
        let m = b.imm32(self.loop_mod);
        let r0 = b.rem_ty(Ty::B32, x, m);
        let r1 = b.add(r0, m);
        let trips = b.rem_ty(Ty::B32, r1, m);
        let i = b.imm32(0);
        let loop_done = b.label();
        let loop_top = b.here_label();
        let pd = b.setp(CmpOp::Ge, Ty::B32, i, trips);
        b.bra_if(pd, true, loop_done);
        let i3 = b.mul(i, Operand::Imm(3));
        b.assign_add(Ty::B32, acc, i3);
        b.assign_add(Ty::B32, i, Operand::Imm(1));
        b.bra(loop_top);
        b.place(loop_done);

        // store (doubled on the > t3 path)
        let p1 = b.ld_param(1);
        let oaddr = b.add_wide(p1, doff);
        let pg = b.setp(CmpOp::Gt, Ty::B32, x, Operand::Imm(self.t3 as i64));
        let doubled = b.add(acc, acc);
        let skip_dbl = b.label();
        b.bra_if(pg, false, skip_dbl);
        b.st_global(Ty::B32, oaddr, 0, doubled);
        b.exit();
        b.place(skip_dbl);
        b.st_global(Ty::B32, oaddr, 0, acc);
        b.build()
    }
}

fn gen_data(r: &mut Rng, n: usize) -> Vec<i32> {
    (0..n).map(|_| r.gen_range(-100i32..100)).collect()
}

#[test]
fn divergent_control_flow_matches_reference() {
    let mut r = Rng::new(0xd1e6);
    for _ in 0..CASES {
        let prog = Program::gen(&mut r);
        let k = prog.kernel();
        assert!(k.validate().is_ok(), "{:?}", k.validate());
        let blocks = r.gen_range(1u32..3);
        let tpb = 32u32;
        let n = (blocks * tpb) as usize;
        let data = gen_data(&mut r, 64);
        let mut g = GlobalMem::new();
        let din = g.alloc(n as u64 * 4);
        let dout = g.alloc(n as u64 * 4);
        for (i, v) in data.iter().cycle().take(n).enumerate() {
            g.write_i32(din, i as u64, *v);
        }
        let inputs: Vec<i32> = (0..n).map(|i| g.read_i32(din, i as u64)).collect();
        let launch = Launch::new(k, Dim3::d1(blocks), Dim3::d1(tpb), vec![din, dout]);
        functional::run(&launch, &mut g, 10_000_000, None).unwrap();
        for (i, x) in inputs.iter().enumerate() {
            let want = prog.reference(*x);
            let got = g.read_i32(dout, i as u64);
            assert_eq!(got, want, "thread {i} x={x} prog={prog:?}");
        }
    }
}

#[test]
fn scheduling_preserves_divergent_semantics() {
    // The compile-time instruction scheduler must be semantics-preserving
    // even under divergence and loops.
    let mut r = Rng::new(0x5c4ed);
    for _ in 0..CASES {
        let prog = Program::gen(&mut r);
        let k = prog.kernel();
        let s = r2d2_isa::schedule(&k);
        assert!(s.validate().is_ok(), "{:?}", s.validate());
        let n = 64usize;
        let data = gen_data(&mut r, n);
        let fill = |g: &mut GlobalMem| {
            let din = g.alloc(n as u64 * 4);
            let dout = g.alloc(n as u64 * 4);
            for (i, v) in data.iter().take(n).enumerate() {
                g.write_i32(din, i as u64, *v);
            }
            (din, dout)
        };
        let mut g1 = GlobalMem::new();
        let (din1, dout1) = fill(&mut g1);
        let l1 = Launch::new(k, Dim3::d1(2), Dim3::d1(32), vec![din1, dout1]);
        functional::run(&l1, &mut g1, 10_000_000, None).unwrap();
        let mut g2 = GlobalMem::new();
        let (din2, dout2) = fill(&mut g2);
        let l2 = Launch::new(s, Dim3::d1(2), Dim3::d1(32), vec![din2, dout2]);
        functional::run(&l2, &mut g2, 10_000_000, None).unwrap();
        assert_eq!(g1.bytes(), g2.bytes(), "{prog:?}");
    }
}

#[test]
fn timing_model_matches_functional_on_divergent_code() {
    use r2d2_sim::{GpuConfig, SimSession};
    let mut r = Rng::new(0x71316);
    for _ in 0..CASES {
        let prog = Program {
            loop_mod: r.gen_range(1i32..5),
            ..Program::gen(&mut r)
        };
        let k = prog.kernel();
        let n = 128u64;
        let seed = r.gen_range(0u64..1000);
        let fill = |g: &mut GlobalMem| {
            let din = g.alloc(n * 4);
            let dout = g.alloc(n * 4);
            for i in 0..n {
                g.write_i32(din, i, ((i.wrapping_mul(seed + 7)) % 199) as i32 - 99);
            }
            (din, dout)
        };
        let mut g1 = GlobalMem::new();
        let (din1, dout1) = fill(&mut g1);
        let l1 = Launch::new(k.clone(), Dim3::d1(2), Dim3::d1(64), vec![din1, dout1]);
        functional::run(&l1, &mut g1, 10_000_000, None).unwrap();
        let mut g2 = GlobalMem::new();
        let (din2, dout2) = fill(&mut g2);
        let l2 = Launch::new(k, Dim3::d1(2), Dim3::d1(64), vec![din2, dout2]);
        let cfg = GpuConfig::default().with_num_sms(2);
        SimSession::new(&cfg).run(&l2, &mut g2).unwrap();
        assert_eq!(g1.bytes(), g2.bytes(), "{prog:?}");
    }
}
