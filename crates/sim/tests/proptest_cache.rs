//! Property test: the set-associative LRU cache must agree with a simple
//! reference model for arbitrary access traces.

use proptest::prelude::*;
use r2d2_sim::{Cache, CacheConfig};

/// Reference: per set, a vector of tags in LRU order (front = most recent).
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    nsets: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); cfg.sets() as usize],
            ways: cfg.ways as usize,
            nsets: cfg.sets(),
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = (line % self.nsets) as usize;
        let tag = line / self.nsets;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            let t = s.remove(pos);
            s.insert(0, t);
            true
        } else {
            s.insert(0, tag);
            s.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #[test]
    fn lru_cache_matches_reference(
        ways in 1u32..8,
        sets_log in 0u32..5,
        trace in proptest::collection::vec(0u64..256, 1..400),
    ) {
        let line = 128u64;
        let sets = 1u64 << sets_log;
        let cfg = CacheConfig { bytes: sets * ways as u64 * line, line, ways };
        let mut dut = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        let mut hits = 0u64;
        for &l in &trace {
            let want = reference.access(l);
            let got = dut.access(l);
            prop_assert_eq!(got, want, "line {}", l);
            if want {
                hits += 1;
            }
        }
        prop_assert_eq!(dut.hits(), hits);
        prop_assert_eq!(dut.misses(), trace.len() as u64 - hits);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup(
        ways in 2u32..8,
        sets_log in 1u32..4,
    ) {
        let line = 128u64;
        let sets = 1u64 << sets_log;
        let cfg = CacheConfig { bytes: sets * ways as u64 * line, line, ways };
        let capacity_lines = sets * ways as u64;
        let mut c = Cache::new(cfg);
        // Touch exactly `capacity_lines` distinct lines twice.
        for l in 0..capacity_lines {
            c.access(l);
        }
        for l in 0..capacity_lines {
            prop_assert!(c.access(l), "line {} must hit within capacity", l);
        }
    }
}
