//! ALU semantics: each opcode/type pair must match wrapping Rust arithmetic,
//! across a set of tricky operand values (negative, overflow, zero divisors).

use r2d2_isa::{CmpOp, KernelBuilder, Operand, SfuOp, Ty};
use r2d2_sim::{functional, Dim3, GlobalMem, Launch};

/// Run a 1-warp kernel that loads two lanes-worth of inputs, applies `build`,
/// and stores the result; returns out[lane] for all 32 lanes.
fn eval_binary(
    ty: Ty,
    build: impl Fn(&mut KernelBuilder, r2d2_isa::Reg, r2d2_isa::Reg) -> r2d2_isa::Reg,
    a_vals: &[u64; 32],
    b_vals: &[u64; 32],
) -> Vec<u64> {
    let mut b = KernelBuilder::new("alu", 3);
    let lane = b.tid_x();
    let off = b.shl_imm_wide(lane, 3);
    let pa = b.ld_param(0);
    let aa = b.add_wide(pa, off);
    let av = b.ld_global(Ty::B64, aa, 0);
    let pb = b.ld_param(1);
    let ba = b.add_wide(pb, off);
    let bv = b.ld_global(Ty::B64, ba, 0);
    let r = build(&mut b, av, bv);
    let po = b.ld_param(2);
    let oa = b.add_wide(po, off);
    b.st_global(Ty::B64, oa, 0, r);
    let _ = ty;
    let k = b.build();
    let mut g = GlobalMem::new();
    let a = g.alloc(32 * 8);
    let bb = g.alloc(32 * 8);
    let o = g.alloc(32 * 8);
    for i in 0..32 {
        g.write_u64(a, i, a_vals[i as usize]);
        g.write_u64(bb, i, b_vals[i as usize]);
    }
    let l = Launch::new(k, Dim3::d1(1), Dim3::d1(32), vec![a, bb, o]);
    functional::run(&l, &mut g, 1_000_000, None).unwrap();
    (0..32).map(|i| g.read_u64(o, i)).collect()
}

fn tricky_pairs() -> ([u64; 32], [u64; 32]) {
    let mut a = [0u64; 32];
    let mut b = [0u64; 32];
    let interesting: [i64; 8] = [
        0,
        1,
        -1,
        i32::MAX as i64,
        i32::MIN as i64,
        7,
        -12345,
        1 << 20,
    ];
    for i in 0..32 {
        a[i] = interesting[i % 8] as u64;
        b[i] = interesting[(i / 8 + i) % 8] as u64;
    }
    // avoid div-by-zero ambiguity in half the lanes: keep zeros (we define x/0 = 0)
    (a, b)
}

#[test]
fn b32_arithmetic_matches_wrapping_rust() {
    let (a, b) = tricky_pairs();
    type BinRef = fn(i32, i32) -> i32;
    let cases: Vec<(&str, BinRef)> = vec![
        ("add", |x, y| x.wrapping_add(y)),
        ("sub", |x, y| x.wrapping_sub(y)),
        ("mul", |x, y| x.wrapping_mul(y)),
        ("min", |x, y| x.min(y)),
        ("max", |x, y| x.max(y)),
        ("and", |x, y| x & y),
        ("or", |x, y| x | y),
        ("xor", |x, y| x ^ y),
        ("div", |x, y| if y == 0 { 0 } else { x.wrapping_div(y) }),
        ("rem", |x, y| if y == 0 { 0 } else { x.wrapping_rem(y) }),
    ];
    for (name, reference) in cases {
        let got = eval_binary(
            Ty::B32,
            |bld, x, y| match name {
                "add" => bld.add(x, y),
                "sub" => bld.sub(x, y),
                "mul" => bld.mul(x, y),
                "min" => bld.min_ty(Ty::B32, x, y),
                "max" => bld.max_ty(Ty::B32, x, y),
                "and" => bld.and_ty(Ty::B32, x, y),
                "or" => bld.or_ty(Ty::B32, x, y),
                "xor" => bld.xor_ty(Ty::B32, x, y),
                "div" => bld.div_ty(Ty::B32, x, y),
                "rem" => bld.rem_ty(Ty::B32, x, y),
                _ => unreachable!(),
            },
            &a,
            &b,
        );
        for lane in 0..32 {
            let x = a[lane] as u32 as i32;
            let y = b[lane] as u32 as i32;
            let want = reference(x, y) as i64 as u64;
            assert_eq!(got[lane], want, "{name} lane {lane}: {x} ? {y}");
        }
    }
}

#[test]
fn b64_arithmetic_matches_wrapping_rust() {
    let (a, b) = tricky_pairs();
    let got = eval_binary(Ty::B64, |bld, x, y| bld.add_ty(Ty::B64, x, y), &a, &b);
    for lane in 0..32 {
        assert_eq!(
            got[lane],
            (a[lane] as i64).wrapping_add(b[lane] as i64) as u64
        );
    }
    let got = eval_binary(Ty::B64, |bld, x, y| bld.mul_ty(Ty::B64, x, y), &a, &b);
    for lane in 0..32 {
        assert_eq!(
            got[lane],
            (a[lane] as i64).wrapping_mul(b[lane] as i64) as u64
        );
    }
}

#[test]
fn f32_arithmetic_matches_rust() {
    // load as raw bits; compare bit patterns of results
    let mut a = [0u64; 32];
    let mut b = [0u64; 32];
    let vals: [f32; 8] = [0.0, 1.0, -1.5, 3.25, -0.0, 100.5, 1e-20, 1e20];
    for i in 0..32 {
        a[i] = vals[i % 8].to_bits() as u64;
        b[i] = vals[(i + 3) % 8].to_bits() as u64;
    }
    let got = eval_binary(Ty::F32, |bld, x, y| bld.mad_ty(Ty::F32, x, y, x), &a, &b);
    for lane in 0..32 {
        let x = f32::from_bits(a[lane] as u32);
        let y = f32::from_bits(b[lane] as u32);
        let want = (x * y + x).to_bits() as u64;
        assert_eq!(got[lane], want, "lane {lane}");
    }
    let got = eval_binary(Ty::F32, |bld, x, y| bld.div_ty(Ty::F32, x, y), &a, &b);
    for lane in 0..32 {
        let x = f32::from_bits(a[lane] as u32);
        let y = f32::from_bits(b[lane] as u32);
        let want = x / y;
        let g = f32::from_bits(got[lane] as u32);
        assert!(
            (g == want) || (g.is_nan() && want.is_nan()),
            "lane {lane}: {g} != {want}"
        );
    }
}

#[test]
fn sfu_ops_match_rust_float_functions() {
    let mut a = [0u64; 32];
    for (i, slot) in a.iter_mut().enumerate() {
        *slot = ((i as f32) * 0.37 + 0.1).to_bits() as u64;
    }
    let b = a;
    for (op, reference) in [
        (SfuOp::Sqrt, f32::sqrt as fn(f32) -> f32),
        (SfuOp::Rcp, |x: f32| 1.0 / x),
        (SfuOp::Rsqrt, |x: f32| 1.0 / x.sqrt()),
        (SfuOp::Ex2, f32::exp2),
        (SfuOp::Lg2, f32::log2),
        (SfuOp::Sin, f32::sin),
        (SfuOp::Cos, f32::cos),
    ] {
        let got = eval_binary(Ty::F32, |bld, x, _| bld.sfu(op, Ty::F32, x), &a, &b);
        for lane in 0..32 {
            let x = f32::from_bits(a[lane] as u32);
            let want = reference(x).to_bits() as u64;
            assert_eq!(got[lane], want, "{op:?} lane {lane} x={x}");
        }
    }
}

#[test]
fn setp_and_selp_follow_signed_and_float_order() {
    let (a, b) = tricky_pairs();
    let got = eval_binary(
        Ty::B32,
        |bld, x, y| {
            let p = bld.setp(CmpOp::Lt, Ty::B32, x, y);
            bld.selp(Ty::B64, Operand::Imm(111), Operand::Imm(222), p)
        },
        &a,
        &b,
    );
    for lane in 0..32 {
        let x = a[lane] as u32 as i32;
        let y = b[lane] as u32 as i32;
        let want = if x < y { 111 } else { 222 };
        assert_eq!(got[lane], want, "lane {lane}");
    }
}

#[test]
fn shifts_mask_their_amounts() {
    let (a, _) = tricky_pairs();
    let b_amt = {
        let mut v = [0u64; 32];
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = (i as u64) * 3; // includes amounts > 31
        }
        v
    };
    let got = eval_binary(Ty::B32, |bld, x, y| bld.push_shl32(x, y), &a, &b_amt);
    for lane in 0..32 {
        let x = a[lane] as u32 as i32;
        let amt = (b_amt[lane] as u32) & 31;
        assert_eq!(got[lane], x.wrapping_shl(amt) as i64 as u64, "lane {lane}");
    }
}

trait ShlHelper {
    fn push_shl32(&mut self, a: r2d2_isa::Reg, b: r2d2_isa::Reg) -> r2d2_isa::Reg;
}

impl ShlHelper for KernelBuilder {
    fn push_shl32(&mut self, a: r2d2_isa::Reg, b: r2d2_isa::Reg) -> r2d2_isa::Reg {
        let d = self.fresh();
        self.push(r2d2_isa::Instr::new(
            r2d2_isa::Op::Shl,
            Ty::B32,
            Some(r2d2_isa::Dst::Reg(d)),
            vec![Operand::Reg(a), Operand::Reg(b)],
        ));
        d
    }
}
