//! Randomized test: the set-associative LRU cache must agree with a simple
//! reference model for arbitrary access traces (in-repo seeded PRNG).

use r2d2_sim::{Cache, CacheConfig};
use r2d2_sym::Rng;

/// Reference: per set, a vector of tags in LRU order (front = most recent).
struct RefCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    nsets: u64,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); cfg.sets() as usize],
            ways: cfg.ways as usize,
            nsets: cfg.sets(),
        }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = (line % self.nsets) as usize;
        let tag = line / self.nsets;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            let t = s.remove(pos);
            s.insert(0, t);
            true
        } else {
            s.insert(0, tag);
            s.truncate(self.ways);
            false
        }
    }
}

#[test]
fn lru_cache_matches_reference() {
    let mut r = Rng::new(0x10ca);
    for _ in 0..256 {
        let ways = r.gen_range(1u32..8);
        let sets_log = r.gen_range(0u32..5);
        let trace: Vec<u64> = (0..r.gen_range(1usize..400))
            .map(|_| r.gen_range(0u64..256))
            .collect();
        let line = 128u64;
        let sets = 1u64 << sets_log;
        let cfg = CacheConfig::new(sets * ways as u64 * line, line, ways);
        let mut dut = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        let mut hits = 0u64;
        for &l in &trace {
            let want = reference.access(l);
            let got = dut.access(l);
            assert_eq!(got, want, "line {l} (ways={ways} sets={sets})");
            if want {
                hits += 1;
            }
        }
        assert_eq!(dut.hits(), hits);
        assert_eq!(dut.misses(), trace.len() as u64 - hits);
    }
}

#[test]
fn working_set_within_capacity_always_hits_after_warmup() {
    let mut r = Rng::new(0xca9);
    for _ in 0..64 {
        let ways = r.gen_range(2u32..8);
        let sets_log = r.gen_range(1u32..4);
        let line = 128u64;
        let sets = 1u64 << sets_log;
        let cfg = CacheConfig::new(sets * ways as u64 * line, line, ways);
        let capacity_lines = sets * ways as u64;
        let mut c = Cache::new(cfg);
        // Touch exactly `capacity_lines` distinct lines twice.
        for l in 0..capacity_lines {
            c.access(l);
        }
        for l in 0..capacity_lines {
            assert!(c.access(l), "line {l} must hit within capacity");
        }
    }
}
