//! The R2D2 code analyzer (paper Sec. 3.1, Algorithm 1 lines 5-19).
//!
//! Scans the kernel's (near-SSA) instruction stream in program order and
//! computes, for every single-written general-purpose register, whether its
//! value is a linear combination of built-in indices — a [`CoefVec`]. The
//! transfer functions follow Fig. 6 exactly:
//!
//! | op                    | condition            | result                  |
//! |-----------------------|----------------------|-------------------------|
//! | `ld.param dst,[P]`    |                      | `{P,0,0,0,0,0,0}`       |
//! | `mov`/`cvt`           | src linear           | copy                    |
//! | `add`/`sub`           | both linear          | elementwise +/-         |
//! | `mul`                 | one side scalar      | scale                   |
//! | `shl`                 | shift is a constant  | scale by `2^n`          |
//! | `mad`                 | multiplier scalar    | scale + add             |
//!
//! Registers written more than once (loop iterators, divergent joins,
//! predicated writes) are *multi-write* (Sec. 3.1.2) and are conservatively
//! kept in the non-linear stream in this implementation; their *inputs* may
//! still be decoupled, which is where most of the savings live (the loop body
//! keeps adding a pre-computed linear register, matching the paper's
//! coefficient-register treatment of loop offsets).

use r2d2_isa::{Instr, Kernel, Op, Operand, Reg, Special};
use r2d2_sym::{CoefVec, IndexVar, Poly, Sym};
use std::collections::HashMap;

/// Per-register analysis result.
#[derive(Debug, Clone)]
pub struct RegInfo {
    /// The register's linear combination.
    pub vec: CoefVec,
    /// pc of the (single) instruction producing it.
    pub def_pc: usize,
}

/// Result of analyzing a kernel.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Linear single-write registers and their coefficient vectors.
    pub linear: HashMap<Reg, RegInfo>,
    /// Registers written more than once (or under a guard).
    pub multi_write: Vec<Reg>,
    /// For every pc: `true` when the instruction produces a linear register
    /// (a candidate for decoupling).
    pub producer: Vec<bool>,
}

impl Analysis {
    /// The coefficient vector of `r`, if linear.
    pub fn coef(&self, r: Reg) -> Option<&CoefVec> {
        self.linear.get(&r).map(|i| &i.vec)
    }

    /// Linear registers that are *used* by non-producer instructions — the
    /// candidates for the linear register table (Algorithm 1 lines 13-15).
    pub fn demanded(&self, kernel: &Kernel) -> Vec<Reg> {
        let mut out: Vec<Reg> = Vec::new();
        for (pc, instr) in kernel.instrs.iter().enumerate() {
            if self.producer[pc] {
                continue;
            }
            for r in instr.src_regs() {
                if self.linear.contains_key(&r) && !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out.sort_by_key(|r| r.0);
        out
    }
}

fn special_vec(s: Special) -> Option<CoefVec> {
    Some(match s {
        Special::Tid(0) => CoefVec::index(IndexVar::TidX),
        Special::Tid(1) => CoefVec::index(IndexVar::TidY),
        Special::Tid(2) => CoefVec::index(IndexVar::TidZ),
        Special::Ctaid(0) => CoefVec::index(IndexVar::CtaidX),
        Special::Ctaid(1) => CoefVec::index(IndexVar::CtaidY),
        Special::Ctaid(2) => CoefVec::index(IndexVar::CtaidZ),
        Special::Ntid(d) => CoefVec::scalar(Poly::sym(Sym::Ntid(d))),
        Special::Nctaid(d) => CoefVec::scalar(Poly::sym(Sym::Nctaid(d))),
        _ => return None, // laneid/smid are not linear in built-in indices
    })
}

/// Analyze a kernel (Algorithm 1, `R2D2_Analyzer`).
pub fn analyze(kernel: &Kernel) -> Analysis {
    // Pass 1: write counts; guarded writes count double (conditional value).
    // Registers read before their first write (use-before-def, representable
    // in hand-written assembly) are also excluded — rewriting such a read to
    // a pre-computed linear register would change the observed (uninitialized)
    // value.
    let mut writes: HashMap<Reg, u32> = HashMap::new();
    let mut written: std::collections::HashSet<Reg> = std::collections::HashSet::new();
    let mut use_before_def: std::collections::HashSet<Reg> = std::collections::HashSet::new();
    for i in &kernel.instrs {
        for r in i.src_regs() {
            if !written.contains(&r) {
                use_before_def.insert(r);
            }
        }
        if let Some(r) = i.dst_reg() {
            let c = writes.entry(r).or_insert(0);
            *c += if i.guard.is_some() { 2 } else { 1 };
            written.insert(r);
        }
    }
    let multi: Vec<Reg> = writes
        .iter()
        .filter(|(r, &c)| c > 1 || use_before_def.contains(r))
        .map(|(r, _)| *r)
        .collect();

    // Pass 2: program-order coefficient-vector propagation.
    let mut linear: HashMap<Reg, RegInfo> = HashMap::new();
    let mut producer = vec![false; kernel.instrs.len()];

    // Operand -> CoefVec lookup.
    let lookup = |linear: &HashMap<Reg, RegInfo>, o: &Operand| -> Option<CoefVec> {
        match o {
            Operand::Reg(r) => linear.get(r).map(|i| i.vec.clone()),
            Operand::Imm(v) => Some(CoefVec::imm(*v)),
            Operand::Special(s) => special_vec(*s),
            _ => None,
        }
    };

    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let Some(dst) = instr.dst_reg() else { continue };
        if multi.contains(&dst) || instr.guard.is_some() {
            continue;
        }
        let vec = propagate(instr, |o| lookup(&linear, o));
        if let Some(vec) = vec {
            linear.insert(dst, RegInfo { vec, def_pc: pc });
            producer[pc] = true;
        }
    }

    let mut multi_write = multi;
    multi_write.sort_by_key(|r| r.0);
    Analysis {
        linear,
        multi_write,
        producer,
    }
}

/// The Fig. 6 transfer function for one instruction, given a coefficient
/// lookup for its operands. `None` means "not linear".
fn propagate(instr: &Instr, lookup: impl Fn(&Operand) -> Option<CoefVec>) -> Option<CoefVec> {
    if !instr.op.is_linear_listed() {
        return None;
    }
    // Float-typed results are not linear combinations of indices: float
    // arithmetic does not distribute over the integer index space, and
    // `cvt.f32` re-encodes the value as IEEE bits. Only a float `mov`
    // (bit copy) preserves the tracked value.
    if instr.ty.is_float() && instr.op != Op::Mov {
        return None;
    }
    // Narrowing conversions truncate: a 64-bit linear combination is not the
    // same value after `cvt.b32` unless it happens to fit, which the static
    // analysis cannot guarantee. (Widening `cvt.b64` is exact and kept.)
    if instr.op == Op::Cvt && instr.ty == r2d2_isa::Ty::B32 {
        return None;
    }
    match instr.op {
        Op::LdParam => {
            let Operand::Imm(n) = instr.srcs[0] else {
                return None;
            };
            Some(CoefVec::scalar(Poly::param(n as u8)))
        }
        Op::Mov | Op::Cvt => lookup(&instr.srcs[0]),
        Op::Add => {
            let a = lookup(&instr.srcs[0])?;
            let b = lookup(&instr.srcs[1])?;
            Some(a.add(&b))
        }
        Op::Sub => {
            let a = lookup(&instr.srcs[0])?;
            let b = lookup(&instr.srcs[1])?;
            Some(a.sub(&b))
        }
        Op::Mul => {
            let a = lookup(&instr.srcs[0])?;
            let b = lookup(&instr.srcs[1])?;
            // Fig. 6 requires the second operand scalar; commutativity lets us
            // accept either side.
            if b.is_scalar() {
                Some(a.mul_scalar(b.constant()))
            } else if a.is_scalar() {
                Some(b.mul_scalar(a.constant()))
            } else {
                None
            }
        }
        Op::Shl => {
            let a = lookup(&instr.srcs[0])?;
            let b = lookup(&instr.srcs[1])?;
            if !b.is_scalar() {
                return None;
            }
            a.shl(b.constant())
        }
        Op::Mad => {
            let a = lookup(&instr.srcs[0])?;
            let b = lookup(&instr.srcs[1])?;
            let c = lookup(&instr.srcs[2])?;
            if b.is_scalar() {
                Some(a.mad(b.constant(), &c))
            } else if a.is_scalar() {
                Some(b.mad(a.constant(), &c))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Verify the analysis dynamically: every linear register's coefficient
/// vector, evaluated for a given thread, must match what the instruction
/// stream actually computes. Used heavily by tests; exported because the
/// bench harness asserts it on every workload once per run.
///
/// Returns the number of registers checked.
///
/// # Panics
///
/// Panics (with the offending register) when a mismatch is found.
pub fn check_against_execution(
    kernel: &Kernel,
    analysis: &Analysis,
    launch: &r2d2_sim::Launch,
    block_lin: u64,
    warp_in_block: u32,
) -> usize {
    use r2d2_sim::{GlobalMem, Outcome, WarpExec, WarpState};
    let cfg = r2d2_isa::Cfg::build(kernel);
    // Use a generously sized scratch memory so loads work.
    let mut gmem = GlobalMem::new();
    let _ = gmem.alloc(1 << 20);
    let mut smem = vec![0u8; kernel.shared_bytes as usize];
    let ctaid = launch.grid.unflatten(block_lin);
    let mut w = WarpState::new(
        kernel.num_regs(),
        kernel.num_preds().max(1),
        block_lin,
        ctaid,
        warp_in_block,
        launch.threads_per_block(),
        0,
    );
    let mut ex = WarpExec {
        kernel,
        cfg: &cfg,
        params: &launch.params,
        ntid: [launch.block.x, launch.block.y, launch.block.z],
        nctaid: [launch.grid.x, launch.grid.y, launch.grid.z],
        smid: 0,
        gmem: &mut gmem,
        smem: &mut smem,
        linear: None,
        scratch: None,
        watchdog: 1_000_000,
        defer_global_atomics: false,
    };
    let env = launch.env();
    let mut checked = 0;
    // Execute straight-line until first control transfer or memory op, since
    // scratch memory holds zeros, not workload data.
    while let Some((pc, _)) = w.sync_top() {
        let instr = &kernel.instrs[pc];
        if instr.op.is_mem() || instr.op.is_control() {
            break;
        }
        let info = ex.step(&mut w).unwrap();
        if info.outcome != Outcome::Normal {
            break;
        }
        if let Some(dst) = instr.dst_reg() {
            if let Some(ri) = analysis.linear.get(&dst) {
                if ri.def_pc == pc {
                    for lane in 0..32usize {
                        if info.exec_mask & (1 << lane) == 0 {
                            continue;
                        }
                        let slot = warp_in_block as usize * 32 + lane;
                        let tid = [
                            (slot as i64) % launch.block.x as i64,
                            (slot as i64 / launch.block.x as i64) % launch.block.y as i64,
                            slot as i64 / (launch.block.x as i64 * launch.block.y as i64),
                        ];
                        let cta = [ctaid[0] as i64, ctaid[1] as i64, ctaid[2] as i64];
                        let want = ri.vec.eval(&env, tid, cta) as u64;
                        let got = w.reg(dst.0, lane);
                        assert_eq!(
                            got, want,
                            "coefficient vector mismatch for %r{} at pc {pc} lane {lane}: \
                             vec = {}",
                            dst.0, ri.vec
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    checked
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::{CmpOp, KernelBuilder, Ty};
    use r2d2_sim::{Dim3, Launch};

    #[test]
    fn vecadd_addresses_are_linear() {
        let mut b = KernelBuilder::new("vecadd", 2);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, off);
        let v = b.ld_global(Ty::F32, addr, 0);
        let p1 = b.ld_param(1);
        let addr2 = b.add_wide(p1, off);
        b.st_global(Ty::F32, addr2, 0, v);
        let k = b.build();
        let a = analyze(&k);
        // addr = P0 + 4*ntid.x*ctaid.x + 4*tid.x
        let info = a.coef(addr).expect("addr must be linear");
        assert_eq!(*info.coef(IndexVar::TidX), Poly::constant(4));
        assert_eq!(
            *info.coef(IndexVar::CtaidX),
            Poly::sym(Sym::Ntid(0)).scale(4)
        );
        assert_eq!(*info.constant(), Poly::param(0));
        // demanded = the two addresses (used by ld/st)
        let d = a.demanded(&k);
        assert!(d.contains(&addr) && d.contains(&addr2));
        // The loaded value is not linear.
        assert!(a.coef(v).is_none());
    }

    #[test]
    fn fig7_backprop_trace() {
        // Mirror the Fig. 7 instruction sequence:
        //   %r1=ctaid.y; %r5=%r1<<4; %r2=tid.y; %r6=%r5+%r2; %r4=P1;
        //   %r7=%r4+1; %r8=tid.x+%r7 (via add); %r9=mad(%r6,%r7,%r8);
        //   %rd13=%r9*4
        let mut b = KernelBuilder::new("bp", 6);
        let r1 = b.ctaid_y();
        let r5 = b.shl_imm(r1, 4);
        let r2 = b.tid_y();
        let r6 = b.add(r5, r2);
        let r4 = b.ld_param32(1);
        let r7 = b.add(r4, Operand::Imm(1));
        let tx = b.tid_x();
        let r8 = b.add(tx, r7);
        let r9 = b.mad(r6, r7, r8);
        let rd13 = b.mul(r9, Operand::Imm(4));
        let wide = b.cvt_wide(rd13);
        let p5 = b.ld_param(5);
        let rd14 = b.add_wide(p5, wide);
        let f = b.ld_global(Ty::F32, rd14, 8);
        b.st_global(Ty::F32, rd14, 8, f);
        let k = b.build();
        let a = analyze(&k);
        let v = a.coef(rd14).expect("rd14 linear");
        // Paper Fig. 7: {P5 + 4*P1 + 4, 4, 4*(P1+1), 0, 0, 64*(P1+1), 0}
        let p1p1x4 = (Poly::param(1) + Poly::constant(1)).scale(4);
        assert_eq!(*v.coef(IndexVar::TidX), Poly::constant(4));
        assert_eq!(*v.coef(IndexVar::TidY), p1p1x4);
        assert_eq!(
            *v.coef(IndexVar::CtaidY),
            (Poly::param(1) + Poly::constant(1)).scale(64)
        );
        assert_eq!(*v.coef(IndexVar::CtaidX), Poly::zero());
        assert_eq!(
            *v.constant(),
            Poly::param(5) + Poly::param(1).scale(4) + Poly::constant(4)
        );
    }

    #[test]
    fn loop_iterator_is_multi_write() {
        let mut b = KernelBuilder::new("loop", 1);
        let i = b.imm32(0);
        let top = b.here_label();
        b.assign_add(Ty::B32, i, Operand::Imm(1));
        let p = b.setp(CmpOp::Lt, Ty::B32, i, Operand::Imm(10));
        b.bra_if(p, true, top);
        let k = b.build();
        let a = analyze(&k);
        assert!(a.multi_write.contains(&i));
        assert!(a.coef(i).is_none());
    }

    #[test]
    fn guarded_write_is_not_linear() {
        let mut b = KernelBuilder::new("guard", 0);
        let x = b.imm32(1);
        let p = b.setp(CmpOp::Eq, Ty::B32, x, Operand::Imm(1));
        let y = b.fresh();
        b.assign_mov_if(Ty::B32, y, Operand::Imm(5), p, true);
        let k = b.build();
        let a = analyze(&k);
        assert!(a.coef(y).is_none());
    }

    #[test]
    fn data_dependent_values_break_linearity() {
        let mut b = KernelBuilder::new("data", 1);
        let p0 = b.ld_param(0);
        let v = b.ld_global(Ty::B32, p0, 0);
        let w = b.add(v, Operand::Imm(1)); // linear op, non-linear operand
        let x = b.mul(w, Operand::Imm(2));
        let _ = x;
        let k = b.build();
        let a = analyze(&k);
        assert!(a.coef(v).is_none());
        assert!(a.coef(w).is_none());
        assert!(a.coef(x).is_none());
    }

    #[test]
    fn nonlinear_ops_break_linearity() {
        let mut b = KernelBuilder::new("ops", 0);
        let t = b.tid_x();
        let d = b.div_ty(Ty::B32, t, Operand::Imm(3));
        let m = b.mul(t, t); // tid * tid: quadratic
        let s = b.shr_imm(Ty::B32, t, 1);
        let k = b.build();
        let a = analyze(&k);
        assert!(a.coef(t).is_some());
        assert!(a.coef(d).is_none());
        assert!(a.coef(m).is_none());
        assert!(a.coef(s).is_none());
    }

    #[test]
    fn dynamic_check_agrees_with_analysis() {
        let mut b = KernelBuilder::new("dyn", 2);
        let ty_ = b.tid_y();
        let tx = b.tid_x();
        let by = b.ctaid_y();
        let h = b.ld_param32(1);
        let h1 = b.add(h, Operand::Imm(1));
        let row = b.shl_imm(by, 4);
        let rowty = b.add(row, ty_);
        let idx0 = b.mad(rowty, h1, tx);
        let idx = b.add(idx0, h1);
        let off = b.shl_imm_wide(idx, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, off);
        let v = b.ld_global(Ty::F32, addr, 0);
        b.st_global(Ty::F32, addr, 0, v);
        let k = b.build();
        let a = analyze(&k);
        let launch = Launch::new(k.clone(), Dim3::d2(1, 8), Dim3::d2(16, 4), vec![4096, 16]);
        let n = check_against_execution(&k, &a, &launch, 5, 1);
        assert!(n > 100, "checked {n} register lanes");
    }

    #[test]
    fn mad_accepts_scalar_in_either_multiplier_slot() {
        let mut b = KernelBuilder::new("mad2", 1);
        let t = b.tid_x();
        let c = b.ld_param32(0);
        let m1 = b.mad(t, c, Operand::Imm(1)); // t*c + 1
        let m2 = b.mad(c, t, Operand::Imm(2)); // c*t + 2 (scalar first)
        let k = b.build();
        let a = analyze(&k);
        let v1 = a.coef(m1).expect("m1 linear");
        let v2 = a.coef(m2).expect("m2 linear");
        assert_eq!(v1.coef(IndexVar::TidX), v2.coef(IndexVar::TidX));
        assert_eq!(*v1.constant(), Poly::constant(1));
        assert_eq!(*v2.constant(), Poly::constant(2));
    }

    #[test]
    fn sub_of_linear_combinations() {
        let mut b = KernelBuilder::new("sub", 0);
        let t = b.tid_x();
        let c = b.ctaid_x();
        let d = b.sub(t, c);
        let z = b.sub(d, d); // must become exactly zero
        let k = b.build();
        let a = analyze(&k);
        let vd = a.coef(d).unwrap();
        assert_eq!(*vd.coef(IndexVar::TidX), Poly::constant(1));
        assert_eq!(*vd.coef(IndexVar::CtaidX), Poly::constant(-1));
        let vz = a.coef(z).unwrap();
        assert!(vz.is_scalar());
        assert!(vz.constant().is_zero());
    }

    #[test]
    fn narrowing_cvt_terminates_linearity() {
        let mut b = KernelBuilder::new("narrow", 0);
        let t = b.tid_x();
        let wide = b.cvt_wide(t);
        let narrow = b.cvt(Ty::B32, wide);
        let k = b.build();
        let a = analyze(&k);
        assert!(a.coef(wide).is_some(), "widening keeps linearity");
        assert!(a.coef(narrow).is_none(), "narrowing must be conservative");
    }

    #[test]
    fn mul_of_two_index_vectors_is_not_linear() {
        let mut b = KernelBuilder::new("quad", 0);
        let t = b.tid_x();
        let c = b.ctaid_x();
        let q = b.mul(t, c); // tid*ctaid: bilinear, not linear
        let k = b.build();
        let a = analyze(&k);
        assert!(a.coef(q).is_none());
    }

    #[test]
    fn mul_by_symbolic_scalar_keeps_symbolic_coefficient() {
        let mut b = KernelBuilder::new("symmul", 2);
        let t = b.tid_x();
        let n = b.ld_param32(0);
        let m = b.ld_param32(1);
        let nm = b.mul(n, m); // P0*P1: still scalar
        let r = b.mul(t, nm);
        let k = b.build();
        let a = analyze(&k);
        let v = a.coef(r).expect("t * (P0*P1) is linear in t");
        assert_eq!(*v.coef(IndexVar::TidX), Poly::param(0) * Poly::param(1));
    }

    #[test]
    fn laneid_and_smid_are_not_linear() {
        let mut b = KernelBuilder::new("lane", 0);
        let l = b.special(r2d2_isa::Special::LaneId);
        let s = b.special(r2d2_isa::Special::SmId);
        let k = b.build();
        let a = analyze(&k);
        assert!(a.coef(l).is_none());
        assert!(a.coef(s).is_none());
    }

    #[test]
    fn demanded_excludes_purely_internal_chains() {
        // A linear value only consumed by other (removable) linear producers
        // is not demanded.
        let mut b = KernelBuilder::new("chain", 1);
        let t = b.tid_x();
        let a1 = b.add(t, Operand::Imm(1));
        let a2 = b.shl_imm(a1, 2);
        let w = b.cvt_wide(a2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, w);
        let v = b.ld_global(Ty::B32, addr, 0);
        b.st_global(Ty::B32, addr, 0, v);
        let k = b.build();
        let an = analyze(&k);
        let d = an.demanded(&k);
        assert!(d.contains(&addr));
        assert!(!d.contains(&a1), "a1 is only used by linear producers");
        assert!(!d.contains(&a2));
    }

    use r2d2_isa::Operand;
    use r2d2_sym::Sym;
}
