//! The R2D2 linear instruction generator (paper Sec. 3.2-3.3, Algorithm 1
//! lines 21-25).
//!
//! Takes the analyzer's coefficient vectors and produces the transformed
//! kernel: three decoupled linear instruction blocks prepended to a rewritten
//! non-linear stream.
//!
//! * **Coefficient block** — computes every launch-time scalar the other
//!   blocks need into coefficient registers (`%cr`), including the four
//!   *contiguous banks* (constant / ctaid.x / ctaid.y / ctaid.z coefficients,
//!   one slot per linear register) that the block-index block reads
//!   vector-wise (Sec. 3.2.3: "each thread of the warp computes the
//!   block-index part values of different coefficient vectors").
//! * **Thread-index block** — one `mad` per nonzero thread-index dimension
//!   per thread-index register (`%tr`), executed by every warp of the first
//!   block (Sec. 3.2.2).
//! * **Block-index block** — `mov.br` + up to three `mad.br` computing all
//!   block-index parts in one warp (Sec. 3.2.3).
//! * **Non-linear stream** — the original instructions minus the removed
//!   linear producers, with linear register reads rewritten to `%lr`
//!   (possibly plus a `%cr` byte offset, Sec. 3.1.4) and scalar linear
//!   registers rewritten to `%cr` or immediates.

use crate::analyzer::Analysis;
use r2d2_isa::{Dst, Instr, Kernel, MemOffset, MemRef, Op, Operand, Reg, Ty};
use r2d2_sim::{LinearMeta, MAX_LR};
use r2d2_sym::{CoefVec, IndexVar, Poly, Sym};
use std::collections::HashMap;

/// Knobs for ablation studies of the generator's design choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenOptions {
    /// Register-table entries available (paper Sec. 3.3: 16).
    pub max_lr: usize,
    /// Enable Sec. 3.1.4 group sharing (same-shape combinations share one
    /// `%lr` with a constant/`%cr` offset). Disabling forces exact matches.
    pub share_groups: bool,
    /// Map scalar linear combinations to coefficient registers. Disabling
    /// leaves scalar computations in the main stream.
    pub map_scalars: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_lr: MAX_LR,
            share_groups: true,
            map_scalars: true,
        }
    }
}

/// Result of generation.
#[derive(Debug, Clone)]
pub struct GenOutput {
    /// The transformed kernel (linear blocks + rewritten main stream).
    pub kernel: Kernel,
    /// Starting-PC table + register table + register-class counts.
    pub meta: LinearMeta,
    /// Original instructions removed from the main stream.
    pub removed_instrs: usize,
    /// Linear-register groups that did not fit the 16-entry register table.
    pub spilled_groups: usize,
    /// Linear scalar registers mapped to coefficient registers.
    pub scalar_crs: usize,
}

/// Coefficient-register allocator + coefficient-block emitter.
struct CrAlloc {
    next: u16,
    instrs: Vec<Instr>,
    sym_memo: HashMap<Sym, u16>,
    poly_memo: HashMap<Poly, u16>,
}

impl CrAlloc {
    fn new() -> Self {
        CrAlloc {
            next: 0,
            instrs: Vec::new(),
            sym_memo: HashMap::new(),
            poly_memo: HashMap::new(),
        }
    }

    fn alloc(&mut self) -> u16 {
        let id = self.next;
        self.next += 1;
        id
    }

    /// A coefficient register holding one raw launch-time symbol.
    fn sym_cr(&mut self, s: Sym) -> u16 {
        if let Some(&id) = self.sym_memo.get(&s) {
            return id;
        }
        let id = self.alloc();
        let instr = match s {
            Sym::Param(n) => Instr::new(
                Op::LdParam,
                Ty::B64,
                Some(Dst::Cr(id)),
                vec![Operand::Imm(n as i64)],
            ),
            Sym::Ntid(d) => Instr::new(
                Op::Mov,
                Ty::B64,
                Some(Dst::Cr(id)),
                vec![Operand::Special(r2d2_isa::Special::Ntid(d))],
            ),
            Sym::Nctaid(d) => Instr::new(
                Op::Mov,
                Ty::B64,
                Some(Dst::Cr(id)),
                vec![Operand::Special(r2d2_isa::Special::Nctaid(d))],
            ),
        };
        self.instrs.push(instr);
        self.sym_memo.insert(s, id);
        id
    }

    /// Emit instructions computing `p` into coefficient register `dst`.
    fn compile_into(&mut self, dst: u16, p: &Poly) {
        if let Some(c) = p.as_constant() {
            if c != 0 {
                self.instrs.push(Instr::new(
                    Op::Mov,
                    Ty::B64,
                    Some(Dst::Cr(dst)),
                    vec![Operand::Imm(c)],
                ));
            }
            return;
        }
        if let Some(&src) = self.poly_memo.get(p) {
            self.instrs.push(Instr::new(
                Op::Mov,
                Ty::B64,
                Some(Dst::Cr(dst)),
                vec![Operand::Cr(src)],
            ));
            return;
        }
        if let Some(s) = Self::as_single_sym(p) {
            let src = self.sym_cr(s);
            self.instrs.push(Instr::new(
                Op::Mov,
                Ty::B64,
                Some(Dst::Cr(dst)),
                vec![Operand::Cr(src)],
            ));
            return;
        }
        let terms: Vec<(Vec<Sym>, i64)> =
            p.iter().map(|(m, c)| (m.factors().to_vec(), c)).collect();
        let c0: i64 = terms
            .iter()
            .filter(|(f, _)| f.is_empty())
            .map(|(_, c)| *c)
            .sum();
        let mut emitted = false;
        for (factors, coef) in terms.into_iter().filter(|(f, _)| !f.is_empty()) {
            // Monomial product into `cur`.
            let mut cur = Operand::Cr(self.sym_cr(factors[0]));
            for f in &factors[1..] {
                let s = self.sym_cr(*f);
                let t = self.alloc();
                self.instrs.push(Instr::new(
                    Op::Mul,
                    Ty::B64,
                    Some(Dst::Cr(t)),
                    vec![cur, Operand::Cr(s)],
                ));
                cur = Operand::Cr(t);
            }
            let addend = if emitted {
                Operand::Cr(dst)
            } else {
                Operand::Imm(c0)
            };
            self.instrs.push(Instr::new(
                Op::Mad,
                Ty::B64,
                Some(Dst::Cr(dst)),
                vec![cur, Operand::Imm(coef), addend],
            ));
            emitted = true;
        }
        if !emitted && c0 != 0 {
            self.instrs.push(Instr::new(
                Op::Mov,
                Ty::B64,
                Some(Dst::Cr(dst)),
                vec![Operand::Imm(c0)],
            ));
        }
        self.poly_memo.insert(p.clone(), dst);
    }

    /// If `p` is exactly one symbol with coefficient 1, that symbol.
    fn as_single_sym(p: &Poly) -> Option<Sym> {
        let mut it = p.iter();
        let (m, c) = it.next()?;
        if it.next().is_some() || c != 1 || m.degree() != 1 {
            return None;
        }
        Some(m.factors()[0])
    }

    /// An operand carrying the value of `p`: an immediate when constant, the
    /// symbol's own register when `p` is a bare symbol, otherwise a
    /// (memoized) coefficient register.
    fn poly_operand(&mut self, p: &Poly) -> Operand {
        if let Some(c) = p.as_constant() {
            return Operand::Imm(c);
        }
        if let Some(&id) = self.poly_memo.get(p) {
            return Operand::Cr(id);
        }
        if let Some(s) = Self::as_single_sym(p) {
            let id = self.sym_cr(s);
            self.poly_memo.insert(p.clone(), id);
            return Operand::Cr(id);
        }
        let id = self.alloc();
        self.compile_into(id, p);
        Operand::Cr(id)
    }
}

#[derive(Debug, Clone)]
struct Member {
    reg: Reg,
    /// Constant-part difference from the group representative (Sec. 3.1.4).
    delta: Poly,
}

#[derive(Debug, Clone)]
struct Group {
    shape: [Poly; 6],
    rep_const: Poly,
    members: Vec<Member>,
    benefit: usize,
}

#[derive(Debug, Clone)]
enum Remap {
    /// Use `%lrK` directly.
    Lr(u16),
    /// Memory-base-only: `%lrK` plus a constant-part delta (folded into the
    /// address offset).
    LrDelta(u16, Poly),
    /// Scalar: substitute this operand (an immediate or `%cr`).
    Scalar(Operand),
}

/// How a demanded register is used by kept instructions.
#[derive(Debug, Default, Clone, Copy)]
struct UseKinds {
    mem_base: usize,
    other: usize,
}

/// Generate the transformed kernel (Algorithm 1, `R2D2_Generator`) with the
/// paper's default configuration.
pub fn generate(kernel: &Kernel, analysis: &Analysis) -> GenOutput {
    generate_with(kernel, analysis, &GenOptions::default())
}

/// Generate with explicit [`GenOptions`] (ablation studies).
///
/// # Panics
///
/// Panics if `opts.max_lr` exceeds the architectural register-table size
/// ([`MAX_LR`]).
pub fn generate_with(kernel: &Kernel, analysis: &Analysis, opts: &GenOptions) -> GenOutput {
    assert!(
        opts.max_lr <= MAX_LR,
        "register table holds at most {MAX_LR} entries"
    );
    // ---- classify demanded linear registers -------------------------------
    let mut uses: HashMap<Reg, UseKinds> = HashMap::new();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        if analysis.producer[pc] {
            continue;
        }
        for s in &instr.srcs {
            if let Operand::Reg(r) = s {
                if analysis.linear.contains_key(r) {
                    uses.entry(*r).or_default().other += 1;
                }
            }
        }
        if let Some(MemRef {
            base: Operand::Reg(r),
            ..
        }) = instr.mem
        {
            if analysis.linear.contains_key(&r) {
                uses.entry(r).or_default().mem_base += 1;
            }
        }
    }

    let trivial = |v: &CoefVec| -> bool {
        // A bare built-in index or a compile-time immediate: cheaper to keep
        // the original instruction than to spend a register-table entry.
        if v.is_immediate() {
            return true;
        }
        IndexVar::ALL.iter().any(|iv| *v == CoefVec::index(*iv))
    };

    let mut scalar_regs: Vec<(Reg, Poly, usize)> = Vec::new();
    let mut vector_regs: Vec<(Reg, CoefVec, UseKinds)> = Vec::new();
    let map_scalars = opts.map_scalars;
    let mut demanded: Vec<Reg> = uses.keys().copied().collect();
    demanded.sort_by_key(|r| r.0);
    for r in demanded {
        let v = &analysis.linear[&r].vec;
        let u = uses[&r];
        if v.is_scalar() {
            if !map_scalars {
                continue;
            }
            if !v.constant().is_constant() {
                scalar_regs.push((r, v.constant().clone(), u.mem_base + u.other));
            } else if v.constant().as_constant() == Some(0) || !trivial(v) {
                // immediate scalars are substituted directly (no CR)
                scalar_regs.push((r, v.constant().clone(), u.mem_base + u.other));
            } else {
                scalar_regs.push((r, v.constant().clone(), u.mem_base + u.other));
            }
        } else if !trivial(v) {
            vector_regs.push((r, v.clone(), u));
        }
    }

    // ---- group vectors (Sec. 3.1.4) ---------------------------------------
    let mut groups: Vec<Group> = Vec::new();
    for (r, v, u) in &vector_regs {
        let shape: [Poly; 6] = std::array::from_fn(|i| v.coef(IndexVar::ALL[i]).clone());
        let cnst = v.constant().clone();
        let benefit = u.mem_base + u.other;
        // Exact match (same shape and constant)?
        if let Some(g) = groups
            .iter_mut()
            .find(|g| g.shape == shape && g.rep_const == cnst)
        {
            g.members.push(Member {
                reg: *r,
                delta: Poly::zero(),
            });
            g.benefit += benefit;
            continue;
        }
        // Shape match with constant delta — only for memory-base-only uses,
        // where the delta folds into the address offset (Sec. 3.1.4).
        if opts.share_groups && u.other == 0 {
            if let Some(g) = groups.iter_mut().find(|g| g.shape == shape) {
                let delta = &cnst - &g.rep_const;
                g.members.push(Member { reg: *r, delta });
                g.benefit += benefit;
                continue;
            }
        }
        groups.push(Group {
            shape,
            rep_const: cnst,
            members: vec![Member {
                reg: *r,
                delta: Poly::zero(),
            }],
            benefit,
        });
    }
    groups.sort_by_key(|g| std::cmp::Reverse(g.benefit));
    let spilled_groups = groups.len().saturating_sub(opts.max_lr);
    groups.truncate(opts.max_lr);
    let n_lr = groups.len();

    // ---- register mapping --------------------------------------------------
    let mut cr = CrAlloc::new();
    let mut remap: HashMap<Reg, Remap> = HashMap::new();
    let mut scalar_crs = 0usize;
    for (r, p, _) in &scalar_regs {
        let op = cr.poly_operand(p);
        if matches!(op, Operand::Cr(_)) {
            scalar_crs += 1;
        }
        remap.insert(*r, Remap::Scalar(op));
    }
    for (k, g) in groups.iter().enumerate() {
        for m in &g.members {
            if m.delta.is_zero() {
                remap.insert(m.reg, Remap::Lr(k as u16));
            } else {
                remap.insert(m.reg, Remap::LrDelta(k as u16, m.delta.clone()));
            }
        }
    }

    // ---- removability fixpoint ---------------------------------------------
    // users[r] = pcs whose instruction reads r.
    let mut users: HashMap<Reg, Vec<usize>> = HashMap::new();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        for r in instr.src_regs() {
            users.entry(r).or_default().push(pc);
        }
    }
    let n = kernel.instrs.len();
    // A register used outside a memory-base position cannot be served by an
    // `%lr + offset` rewrite when its group mapping carries a delta; such
    // uses force the producer to stay (the read then uses the original GP
    // register).
    let non_base_use = |pc: usize, r: Reg| -> bool {
        kernel.instrs[pc]
            .srcs
            .iter()
            .any(|s| matches!(s, Operand::Reg(x) if *x == r))
    };
    let mut removable: Vec<bool> = (0..n).map(|pc| analysis.producer[pc]).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for pc in 0..n {
            if !removable[pc] {
                continue;
            }
            let dst = kernel.instrs[pc].dst_reg().unwrap();
            let delta_mapped = matches!(remap.get(&dst), Some(Remap::LrDelta(..)));
            if remap.contains_key(&dst) && !delta_mapped {
                continue; // every use is rewritten
            }
            let alive_use = users
                .get(&dst)
                .map(|us| {
                    us.iter()
                        .any(|&u| !removable[u] && (!delta_mapped || non_base_use(u, dst)))
                })
                .unwrap_or(false);
            if alive_use {
                removable[pc] = false;
                changed = true;
            }
        }
    }
    let removed_instrs = removable.iter().filter(|&&b| b).count();

    if n_lr == 0 && scalar_crs == 0 && removed_instrs == 0 {
        // Nothing decoupled: return the original untouched.
        return GenOutput {
            kernel: kernel.clone(),
            meta: LinearMeta {
                coef_start: 0,
                tidx_start: 0,
                bidx_start: 0,
                main_start: 0,
                n_cr: 0,
                n_tr: 0,
                n_lr: 0,
                lr_tr: [None; MAX_LR],
            },
            removed_instrs: 0,
            spilled_groups,
            scalar_crs: 0,
        };
    }

    // ---- thread-index registers --------------------------------------------
    // Unique nonzero thread parts among the selected groups.
    let mut tr_of_part: HashMap<[Poly; 3], u16> = HashMap::new();
    let mut tr_parts: Vec<[Poly; 3]> = Vec::new();
    let mut lr_tr = [None; MAX_LR];
    for (k, g) in groups.iter().enumerate() {
        let part = [g.shape[0].clone(), g.shape[1].clone(), g.shape[2].clone()];
        if part.iter().all(Poly::is_zero) {
            continue;
        }
        let id = *tr_of_part.entry(part.clone()).or_insert_with(|| {
            tr_parts.push(part.clone());
            (tr_parts.len() - 1) as u16
        });
        lr_tr[k] = Some(id);
    }
    let n_tr = tr_parts.len();

    // ---- coefficient banks for the block-index block -----------------------
    // Bank 0: constant parts; banks 1..=3: ctaid.x/y/z coefficients.
    // Allocated contiguously so lane i of a `.br` instruction reads slot i.
    let need_dim: [bool; 3] =
        std::array::from_fn(|d| groups.iter().any(|g| !g.shape[3 + d].is_zero()));
    let mut bank_base = [0u16; 4];
    if n_lr > 0 {
        bank_base[0] = cr.next;
        cr.next += n_lr as u16;
        for d in 0..3 {
            if need_dim[d] {
                bank_base[1 + d] = cr.next;
                cr.next += n_lr as u16;
            }
        }
        // Fill the banks (in the coefficient block).
        for (k, g) in groups.iter().enumerate() {
            let dst = bank_base[0] + k as u16;
            cr.compile_into(dst, &g.rep_const);
            for d in 0..3 {
                if need_dim[d] && !g.shape[3 + d].is_zero() {
                    let dst = bank_base[1 + d] + k as u16;
                    cr.compile_into(dst, &g.shape[3 + d]);
                }
            }
        }
    }

    // ---- thread-index coefficient operands ---------------------------------
    let tr_coef_ops: Vec<[Option<Operand>; 3]> = tr_parts
        .iter()
        .map(|part| {
            std::array::from_fn(|d| {
                if part[d].is_zero() {
                    None
                } else {
                    Some(cr.poly_operand(&part[d]))
                }
            })
        })
        .collect();

    // ---- delta offsets (may need CRs) ---------------------------------------
    // Collected during the main-stream rewrite below (they can fold original
    // immediate offsets in), so the rewrite borrows `cr` mutably.

    // ---- assemble: thread-index block ---------------------------------------
    let mut gp_next = kernel.num_regs() as u16;
    let mut fresh_gp = || {
        let r = Reg(gp_next);
        gp_next += 1;
        r
    };
    let mut tidx_instrs: Vec<Instr> = Vec::new();
    let mut tid_reg: [Option<Reg>; 3] = [None; 3];
    for part_ops in &tr_coef_ops {
        for (d, op) in part_ops.iter().enumerate() {
            if op.is_some() && tid_reg[d].is_none() {
                let r = fresh_gp();
                tidx_instrs.push(Instr::new(
                    Op::Mov,
                    Ty::B32,
                    Some(Dst::Reg(r)),
                    vec![Operand::Special(r2d2_isa::Special::Tid(d as u8))],
                ));
                tid_reg[d] = Some(r);
            }
        }
    }
    for (t, part_ops) in tr_coef_ops.iter().enumerate() {
        let mut first = true;
        for (d, op) in part_ops.iter().enumerate() {
            let Some(op) = op else { continue };
            let addend = if first {
                Operand::Imm(0)
            } else {
                Operand::Tr(t as u16)
            };
            tidx_instrs.push(Instr::new(
                Op::Mad,
                Ty::B64,
                Some(Dst::Tr(t as u16)),
                vec![Operand::Reg(tid_reg[d].unwrap()), *op, addend],
            ));
            first = false;
        }
    }

    // ---- assemble: block-index block ----------------------------------------
    let mut bidx_instrs: Vec<Instr> = Vec::new();
    if n_lr > 0 {
        bidx_instrs.push(Instr::new(
            Op::Mov,
            Ty::B64,
            Some(Dst::Br(0)),
            vec![Operand::Cr(bank_base[0])],
        ));
        for d in 0..3 {
            if need_dim[d] {
                let r = fresh_gp();
                bidx_instrs.push(Instr::new(
                    Op::Mov,
                    Ty::B32,
                    Some(Dst::Reg(r)),
                    vec![Operand::Special(r2d2_isa::Special::Ctaid(d as u8))],
                ));
                bidx_instrs.push(Instr::new(
                    Op::Mad,
                    Ty::B64,
                    Some(Dst::Br(0)),
                    vec![
                        Operand::Reg(r),
                        Operand::Cr(bank_base[1 + d]),
                        Operand::Br(0),
                    ],
                ));
            }
        }
    }

    // ---- rewrite the main stream --------------------------------------------
    let kept: Vec<usize> = (0..n).filter(|&pc| !removable[pc]).collect();
    let mut new_pc_of = vec![usize::MAX; n + 1];
    {
        // Map every old pc to the next kept instruction at or after it.
        let mut next_kept = kept.len();
        for pc in (0..n).rev() {
            if !removable[pc] {
                next_kept = kept.iter().position(|&k| k == pc).unwrap();
            }
            new_pc_of[pc] = next_kept;
        }
        new_pc_of[n] = kept.len();
    }

    let rewrite_operand = |o: &Operand| -> Operand {
        if let Operand::Reg(r) = o {
            match remap.get(r) {
                Some(Remap::Scalar(op)) => *op,
                Some(Remap::Lr(k)) => Operand::Lr(*k),
                Some(Remap::LrDelta(..)) => {
                    // Non-base uses of delta-grouped registers read the
                    // original register; the removability fixpoint keeps its
                    // producer alive for exactly this case.
                    *o
                }
                None => *o,
            }
        } else {
            *o
        }
    };

    let mut main_instrs: Vec<Instr> = Vec::with_capacity(kept.len());
    for &pc in &kept {
        let mut i = kernel.instrs[pc].clone();
        for s in i.srcs.iter_mut() {
            *s = rewrite_operand(s);
        }
        if let Some(mem) = i.mem.as_mut() {
            if let Operand::Reg(r) = mem.base {
                match remap.get(&r) {
                    Some(Remap::Scalar(op)) => mem.base = *op,
                    Some(Remap::Lr(k)) => mem.base = Operand::Lr(*k),
                    Some(Remap::LrDelta(k, delta)) => {
                        mem.base = Operand::Lr(*k);
                        let orig = match mem.offset {
                            MemOffset::Imm(v) => v,
                            _ => unreachable!("original kernels have imm offsets"),
                        };
                        // One coefficient register per distinct delta; the
                        // per-use immediate rides on the LSU adder (Sec. 4.3).
                        mem.offset = match cr.poly_operand(delta) {
                            Operand::Imm(c) => MemOffset::Imm(c + orig),
                            Operand::Cr(c) if orig == 0 => MemOffset::Cr(c),
                            Operand::Cr(c) => MemOffset::CrImm(c, orig),
                            _ => unreachable!(),
                        };
                    }
                    None => {}
                }
            }
        }
        if let Op::Bra(t) = i.op {
            i.op = Op::Bra(new_pc_of[t as usize] as u32);
        }
        main_instrs.push(i);
    }

    // ---- stitch together -----------------------------------------------------
    let coef_len = cr.instrs.len();
    let tidx_len = tidx_instrs.len();
    let bidx_len = bidx_instrs.len();
    let main_start = coef_len + tidx_len + bidx_len;
    let mut instrs = cr.instrs;
    instrs.extend(tidx_instrs);
    instrs.extend(bidx_instrs);
    // Fix branch targets for the prefix shift.
    for i in main_instrs.iter_mut() {
        if let Op::Bra(t) = i.op {
            i.op = Op::Bra(t + main_start as u32);
        }
    }
    instrs.extend(main_instrs);

    let meta = LinearMeta {
        coef_start: 0,
        tidx_start: coef_len,
        bidx_start: coef_len + tidx_len,
        main_start,
        n_cr: cr.next as usize,
        n_tr,
        n_lr,
        lr_tr,
    };
    let out = Kernel {
        name: kernel.name.clone(),
        num_params: kernel.num_params,
        instrs,
        shared_bytes: kernel.shared_bytes,
    };
    GenOutput {
        kernel: out,
        meta,
        removed_instrs,
        spilled_groups,
        scalar_crs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use r2d2_isa::KernelBuilder;

    fn vecadd() -> Kernel {
        let mut b = KernelBuilder::new("vecadd", 3);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let pa = b.ld_param(0);
        let pb = b.ld_param(1);
        let pc = b.ld_param(2);
        let aa = b.add_wide(pa, off);
        let ba = b.add_wide(pb, off);
        let ca = b.add_wide(pc, off);
        let va = b.ld_global(Ty::F32, aa, 0);
        let vb = b.ld_global(Ty::F32, ba, 0);
        let vc = b.add_ty(Ty::F32, va, vb);
        b.st_global(Ty::F32, ca, 0, vc);
        b.build()
    }

    #[test]
    fn vecadd_decouples_addresses() {
        let k = vecadd();
        let a = analyze(&k);
        let g = generate(&k, &a);
        assert!(g.meta.has_linear());
        assert!(g.removed_instrs >= 8, "removed {}", g.removed_instrs);
        // The three addresses share one thread part.
        assert_eq!(g.meta.n_tr, 1);
        assert!(
            g.meta.n_lr >= 1 && g.meta.n_lr <= 3,
            "n_lr = {}",
            g.meta.n_lr
        );
        assert!(g.kernel.validate().is_ok(), "{:?}", g.kernel.validate());
        // Main stream must contain the FP add and the loads/stores.
        let main = &g.kernel.instrs[g.meta.main_start..];
        assert!(main.iter().any(|i| i.op == Op::Add && i.ty == Ty::F32));
        assert!(main.iter().any(|i| matches!(i.op, Op::Ld(_))));
        assert!(main.iter().any(|i| matches!(i.op, Op::St(_))));
        // And no surviving index arithmetic on tid/ctaid.
        assert!(
            !main.iter().any(|i| i.op == Op::Mad && i.ty == Ty::B32),
            "index mad should be decoupled"
        );
    }

    #[test]
    fn grouped_addresses_share_lr_via_offset() {
        // a[i] and b[i] from the same base pointer: base and base+4096.
        let mut b = KernelBuilder::new("twofield", 1);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let p = b.ld_param(0);
        let a0 = b.add_wide(p, off);
        let v0 = b.ld_global(Ty::F32, a0, 0);
        let big = b.imm64(4096);
        let shifted = b.add_wide(p, big);
        let a1 = b.add_wide(shifted, off);
        let v1 = b.ld_global(Ty::F32, a1, 0);
        let s = b.add_ty(Ty::F32, v0, v1);
        b.st_global(Ty::F32, a0, 0, s);
        let k = b.build();
        let a = analyze(&k);
        let g = generate(&k, &a);
        // a0 and a1 have identical shapes, differing by constant 4096:
        // one LR group, folded offset.
        assert_eq!(g.meta.n_lr, 1, "expected shared group, got {}", g.meta.n_lr);
        let main = &g.kernel.instrs[g.meta.main_start..];
        assert!(main.iter().any(|i| matches!(
            i.mem,
            Some(MemRef {
                offset: MemOffset::Imm(4096),
                ..
            })
        )));
    }

    #[test]
    fn kernel_with_no_linearity_is_untouched() {
        let mut b = KernelBuilder::new("opaque", 1);
        let p = b.ld_param(0);
        let v = b.ld_global(Ty::B32, p, 0);
        let w = b.mul(v, v);
        b.st_global(Ty::B32, p, 0, w);
        let k = b.build();
        let a = analyze(&k);
        let g = generate(&k, &a);
        // p itself is a linear scalar used as a base: it WILL be mapped to a
        // CR — so "untouched" only applies when literally nothing is linear.
        // Here, ld.param is decoupled; verify structure is still valid.
        assert!(g.kernel.validate().is_ok());
    }

    #[test]
    fn branch_targets_survive_rewrite() {
        let mut b = KernelBuilder::new("looped", 2);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let p0 = b.ld_param(0);
        let addr = b.add_wide(p0, off);
        let count = b.ld_param32(1);
        let acc = b.imm32(0);
        let it = b.imm32(0);
        let top = b.here_label();
        b.assign_add(Ty::B32, acc, Operand::Imm(3));
        b.assign_add(Ty::B32, it, Operand::Imm(1));
        let pr = b.setp(r2d2_isa::CmpOp::Lt, Ty::B32, it, count);
        b.bra_if(pr, true, top);
        b.st_global(Ty::B32, addr, 0, acc);
        let k = b.build();
        let a = analyze(&k);
        let g = generate(&k, &a);
        assert!(g.kernel.validate().is_ok(), "{:?}", g.kernel.validate());
        // The backward branch must land on the loop body's first instruction
        // (the add into acc), which is inside the main stream.
        let bra = g
            .kernel
            .instrs
            .iter()
            .find(|i| matches!(i.op, Op::Bra(_)))
            .unwrap();
        if let Op::Bra(t) = bra.op {
            assert!((t as usize) >= g.meta.main_start);
            let target = &g.kernel.instrs[t as usize];
            assert_eq!(target.op, Op::Add);
        }
    }

    #[test]
    fn register_table_couples_lr_with_tr() {
        let k = vecadd();
        let a = analyze(&k);
        let g = generate(&k, &a);
        for k_ in 0..g.meta.n_lr {
            assert_eq!(g.meta.lr_tr[k_], Some(0), "every address shares tr0");
        }
    }

    use r2d2_isa::Operand;
}
