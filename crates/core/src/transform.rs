//! End-to-end kernel transformation and the register-pressure gate.

use crate::analyzer::analyze;
use crate::generator::{generate_with, GenOptions};
use r2d2_isa::{Cfg, Kernel};
use r2d2_sim::{blocks_per_sm, phys_regs_estimate, Dim3, GpuConfig, Launch, LinearMeta};

/// Summary of what the transformation did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Static instructions in the original kernel.
    pub original_static: usize,
    /// Static instructions in the transformed kernel (all four blocks).
    pub transformed_static: usize,
    /// Original instructions removed from the main stream.
    pub removed_instrs: usize,
    /// Linear-register groups beyond the 16-entry register table.
    pub spilled_groups: usize,
    /// Scalar linear registers mapped to coefficient registers.
    pub scalar_crs: usize,
    /// Coefficient registers used.
    pub n_cr: usize,
    /// Thread-index registers used.
    pub n_tr: usize,
    /// Linear registers used.
    pub n_lr: usize,
}

/// A transformed kernel plus its metadata (the "binary" the R2D2 host
/// launches: paper Sec. 3.3 / 4.4 — the original code rides along for the
/// register-pressure fallback, which here simply means keeping the original
/// [`Kernel`] around).
#[derive(Debug, Clone)]
pub struct R2d2Kernel {
    /// The transformed instruction stream.
    pub kernel: Kernel,
    /// Starting-PC table, register table, register-class counts.
    pub meta: LinearMeta,
    /// What happened during transformation.
    pub report: TransformReport,
}

/// Run the full R2D2 software pipeline: analyze (Sec. 3.1) then decouple
/// (Sec. 3.2-3.3).
///
/// Always succeeds; a kernel with no detectable linearity comes back
/// untouched with `meta.has_linear() == false`.
pub fn transform(kernel: &Kernel) -> R2d2Kernel {
    transform_with(kernel, &GenOptions::default())
}

/// [`transform`] with explicit generator options (ablation studies).
pub fn transform_with(kernel: &Kernel, opts: &GenOptions) -> R2d2Kernel {
    let analysis = analyze(kernel);
    let gen = generate_with(kernel, &analysis, opts);
    debug_assert!(gen.kernel.validate().is_ok(), "{:?}", gen.kernel.validate());
    R2d2Kernel {
        report: TransformReport {
            original_static: kernel.instrs.len(),
            transformed_static: gen.kernel.instrs.len(),
            removed_instrs: gen.removed_instrs,
            spilled_groups: gen.spilled_groups,
            scalar_crs: gen.scalar_crs,
            n_cr: gen.meta.n_cr,
            n_tr: gen.meta.n_tr,
            n_lr: gen.meta.n_lr,
        },
        kernel: gen.kernel,
        meta: gen.meta,
    }
}

/// Build the launch an R2D2 GPU would actually run: the transformed kernel,
/// unless the linear registers would reduce occupancy, in which case the
/// host launches the original instructions instead (paper Sec. 4.4).
///
/// Returns the launch and `true` when the transformed kernel was chosen.
pub fn make_launch(
    cfg: &GpuConfig,
    kernel: &Kernel,
    grid: Dim3,
    block: Dim3,
    params: Vec<u64>,
) -> (Launch, bool) {
    let r2 = transform(kernel);
    if !r2.meta.has_linear() {
        return (Launch::new(kernel.clone(), grid, block, params), false);
    }
    let base_launch = Launch::new(kernel.clone(), grid, block, params.clone());
    let base_regs = phys_regs_estimate(kernel, &Cfg::build(kernel));
    let base_occ = blocks_per_sm(cfg, &base_launch, base_regs);

    let mut r2_launch = Launch::new(r2.kernel.clone(), grid, block, params);
    r2_launch.meta = Some(r2.meta.clone());
    let r2_regs = phys_regs_estimate(&r2.kernel, &Cfg::build(&r2.kernel));
    let r2_occ = blocks_per_sm(cfg, &r2_launch, r2_regs);

    if r2_occ < base_occ {
        (base_launch, false)
    } else {
        (r2_launch, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::{KernelBuilder, Ty};
    use r2d2_sim::{functional, GlobalMem};

    fn saxpy() -> Kernel {
        let mut b = KernelBuilder::new("saxpy", 3);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let px = b.ld_param(0);
        let py = b.ld_param(1);
        let ax = b.add_wide(px, off);
        let ay = b.add_wide(py, off);
        let x = b.ld_global(Ty::F32, ax, 0);
        let y = b.ld_global(Ty::F32, ay, 0);
        let a = b.ld_param(2);
        let af = b.cvt(Ty::F32, a);
        let t = b.mad_ty(Ty::F32, af, x, y);
        b.st_global(Ty::F32, ay, 0, t);
        b.build()
    }

    #[test]
    fn transform_reports_shrinkage() {
        let k = saxpy();
        let r = transform(&k);
        assert!(r.meta.has_linear());
        assert!(r.report.removed_instrs > 5);
        assert!(r.report.n_lr >= 1);
    }

    /// The strongest correctness statement: transformed execution leaves
    /// device memory byte-identical to the original.
    #[test]
    fn functional_equivalence_saxpy() {
        let k = saxpy();
        let r = transform(&k);
        let grid = Dim3::d1(8);
        let block = Dim3::d1(128);
        let n = 8 * 128u64;

        let setup = |g: &mut GlobalMem| -> (u64, u64) {
            let x = g.alloc(n * 4);
            let y = g.alloc(n * 4);
            for i in 0..n {
                g.write_f32(x, i, i as f32 * 0.5);
                g.write_f32(y, i, 100.0 - i as f32);
            }
            (x, y)
        };

        let mut g1 = GlobalMem::new();
        let (x1, y1) = setup(&mut g1);
        let l1 = Launch::new(k.clone(), grid, block, vec![x1, y1, 3]);
        functional::run(&l1, &mut g1, 1_000_000, None).unwrap();

        let mut g2 = GlobalMem::new();
        let (x2, y2) = setup(&mut g2);
        let mut l2 = Launch::new(r.kernel.clone(), grid, block, vec![x2, y2, 3]);
        l2.meta = Some(r.meta.clone());
        let s2 = functional::run_r2d2(&l2, &mut g2, 1_000_000, None).unwrap();

        assert_eq!(
            g1.bytes(),
            g2.bytes(),
            "transformed kernel must be bit-identical"
        );
        assert!(s2.warp_by_phase[0] > 0, "coefficient instructions ran");
    }

    #[test]
    fn transformed_kernel_runs_fewer_dynamic_instructions() {
        let k = saxpy();
        let r = transform(&k);
        let grid = Dim3::d1(64);
        let block = Dim3::d1(256);
        let n = 64 * 256u64;

        let mut g1 = GlobalMem::new();
        let x1 = g1.alloc(n * 4);
        let y1 = g1.alloc(n * 4);
        let l1 = Launch::new(k, grid, block, vec![x1, y1, 2]);
        let s1 = functional::run(&l1, &mut g1, 10_000_000, None).unwrap();

        let mut g2 = GlobalMem::new();
        let x2 = g2.alloc(n * 4);
        let y2 = g2.alloc(n * 4);
        let mut l2 = Launch::new(r.kernel, grid, block, vec![x2, y2, 2]);
        l2.meta = Some(r.meta);
        let s2 = functional::run_r2d2(&l2, &mut g2, 10_000_000, None).unwrap();

        assert!(
            s2.thread_instrs < s1.thread_instrs * 3 / 4,
            "R2D2 should cut >25% of thread instructions here: {} vs {}",
            s2.thread_instrs,
            s1.thread_instrs
        );
    }

    #[test]
    fn make_launch_picks_transformed_when_it_fits() {
        let k = saxpy();
        let cfg = GpuConfig::default();
        let (launch, used) = make_launch(&cfg, &k, Dim3::d1(4), Dim3::d1(128), vec![0, 0, 1]);
        assert!(used);
        assert!(launch.meta.is_some());
    }
}
