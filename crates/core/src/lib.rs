#![warn(missing_docs)]
//! R2D2: Removing ReDunDancy utilizing linearity of address generation.
//!
//! This crate implements the paper's contribution (Ha, Oh, Ro — ISCA 2023):
//!
//! * [`analyzer`] — Algorithm 1 lines 5-19: scans a kernel in program order,
//!   propagates 7-element coefficient vectors through the Fig. 6 opcode list,
//!   handles multi-written registers (loops/divergence, Sec. 3.1.2), decides
//!   which linear combinations to decouple, and groups linear registers that
//!   share thread-index/block-index parts (Sec. 3.1.4).
//! * [`generator`] — Algorithm 1 lines 21-25: emits the decoupled linear
//!   instruction blocks (coefficients / thread-index parts / block-index
//!   parts), rewrites the non-linear stream to read `%lr`/`%cr` registers,
//!   and produces the 16-entry register table (Sec. 3.3).
//! * [`mod@transform`] — the end-to-end `Kernel -> R2d2Kernel` pipeline plus the
//!   Sec. 4.4 register-pressure fallback gate.
//! * [`machine`] — convenience runners that execute original and transformed
//!   kernels on the `r2d2-sim` substrate and return comparable statistics.
//!
//! # Example
//!
//! ```
//! use r2d2_isa::{KernelBuilder, Ty};
//! use r2d2_core::transform;
//!
//! // A textbook linear kernel: out[i] = 2 * in[i]
//! let mut b = KernelBuilder::new("scale", 2);
//! let i = b.global_tid_x();
//! let off = b.shl_imm_wide(i, 2);
//! let p_in = b.ld_param(0);
//! let p_out = b.ld_param(1);
//! let a_in = b.add_wide(p_in, off);
//! let a_out = b.add_wide(p_out, off);
//! let v = b.ld_global(Ty::F32, a_in, 0);
//! let v2 = b.add_ty(Ty::F32, v, v);
//! b.st_global(Ty::F32, a_out, 0, v2);
//! let kernel = b.build();
//!
//! let r2 = transform::transform(&kernel);
//! assert!(r2.meta.has_linear(), "address math must be decoupled");
//! assert!(r2.kernel.instrs.len() < kernel.instrs.len() + 16);
//! ```

pub mod analyzer;
pub mod generator;
pub mod machine;
pub mod transform;

pub use analyzer::{Analysis, RegInfo};
pub use generator::{GenOptions, GenOutput};
pub use machine::{run_baseline, run_with_filter, RunResult};
pub use transform::{transform, transform_with, R2d2Kernel, TransformReport};
