//! Convenience runners: execute a workload on a machine model and collect
//! comparable statistics + energy.

use crate::transform::make_launch;
use r2d2_energy::{EnergyBreakdown, EnergyModel};
use r2d2_isa::Kernel;
use r2d2_sim::{Dim3, GlobalMem, GpuConfig, IssueFilter, Launch, SimError, SimSession, Stats};

/// Statistics plus derived energy for one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Simulator counters.
    pub stats: Stats,
    /// Energy breakdown under the default Volta model.
    pub energy: EnergyBreakdown,
    /// `true` when the R2D2-transformed kernel was executed (always `false`
    /// for baseline/filter runs).
    pub used_r2d2: bool,
}

impl RunResult {
    fn new(stats: Stats, used_r2d2: bool) -> Self {
        let energy = EnergyModel::volta().breakdown(&stats.events);
        RunResult {
            stats,
            energy,
            used_r2d2,
        }
    }
}

/// Run on the baseline GPU (Table 1 + the stock scalar pipeline).
///
/// # Errors
///
/// Propagates any [`SimError`] from the timing model.
pub fn run_baseline(
    cfg: &GpuConfig,
    launch: &Launch,
    gmem: &mut GlobalMem,
) -> Result<RunResult, SimError> {
    let stats = SimSession::new(cfg).run(launch, gmem)?;
    Ok(RunResult::new(stats, false))
}

/// Run with an arbitrary machine-model issue filter (DAC, DARSIE, ...).
///
/// # Errors
///
/// Propagates any [`SimError`] from the timing model.
pub fn run_with_filter(
    cfg: &GpuConfig,
    launch: &Launch,
    gmem: &mut GlobalMem,
    filter: &mut dyn IssueFilter,
) -> Result<RunResult, SimError> {
    let stats = SimSession::new(cfg).filter(filter).run(launch, gmem)?;
    Ok(RunResult::new(stats, false))
}

/// Transform the kernel and run it as the R2D2 GPU would: the transformed
/// stream when it fits (paper Sec. 4.4), the original otherwise. Linear
/// instructions go through the phase-gated microarchitecture (Sec. 4.1).
///
/// # Errors
///
/// Propagates any [`SimError`] from the timing model.
pub fn run_r2d2(
    cfg: &GpuConfig,
    kernel: &Kernel,
    grid: Dim3,
    block: Dim3,
    params: Vec<u64>,
    gmem: &mut GlobalMem,
) -> Result<RunResult, SimError> {
    let (launch, used) = make_launch(cfg, kernel, grid, block, params);
    let stats = SimSession::new(cfg).run(&launch, gmem)?;
    Ok(RunResult::new(stats, used))
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_isa::{KernelBuilder, Ty};

    fn streaming_kernel() -> Kernel {
        // out[i] = a * in[i] + b with full linear address generation.
        let mut b = KernelBuilder::new("stream", 4);
        let i = b.global_tid_x();
        let off = b.shl_imm_wide(i, 2);
        let pin = b.ld_param(0);
        let pout = b.ld_param(1);
        let ain = b.add_wide(pin, off);
        let aout = b.add_wide(pout, off);
        let v = b.ld_global(Ty::F32, ain, 0);
        let a = b.ld_param(2);
        let af = b.cvt(Ty::F32, a);
        let c = b.ld_param(3);
        let cf = b.cvt(Ty::F32, c);
        let r = b.mad_ty(Ty::F32, af, v, cf);
        b.st_global(Ty::F32, aout, 0, r);
        b.build()
    }

    #[test]
    fn r2d2_cuts_instructions_and_energy_on_streaming_kernel() {
        // Memory-bound: the paper's SPM case — big instruction reduction,
        // modest cycle change (DRAM bandwidth dominates end-to-end time).
        let k = streaming_kernel();
        let cfg = GpuConfig::default().with_num_sms(8);
        let grid = Dim3::d1(128);
        let block = Dim3::d1(256);
        let n = 128 * 256u64;

        let mut g1 = GlobalMem::new();
        let i1 = g1.alloc(n * 4);
        let o1 = g1.alloc(n * 4);
        for i in 0..n {
            g1.write_f32(i1, i, i as f32);
        }
        let l1 = Launch::new(k.clone(), grid, block, vec![i1, o1, 3, 7]);
        let base = run_baseline(&cfg, &l1, &mut g1).unwrap();

        let mut g2 = GlobalMem::new();
        let i2 = g2.alloc(n * 4);
        let o2 = g2.alloc(n * 4);
        for i in 0..n {
            g2.write_f32(i2, i, i as f32);
        }
        let r2 = run_r2d2(&cfg, &k, grid, block, vec![i2, o2, 3, 7], &mut g2).unwrap();

        assert!(r2.used_r2d2);
        assert_eq!(g1.bytes(), g2.bytes(), "results must match");
        assert!(
            r2.stats.warp_instrs * 2 < base.stats.warp_instrs,
            "R2D2 {} vs baseline {} warp instructions",
            r2.stats.warp_instrs,
            base.stats.warp_instrs
        );
        assert!(r2.energy.total_pj() < base.energy.total_pj());
        // Memory-bound: cycles close to baseline, never catastrophically worse.
        assert!(r2.stats.cycles < base.stats.cycles * 11 / 10);
        // Linear instructions are a small fraction (paper Fig. 14: ~1%).
        assert!(r2.stats.linear_warp_share() < 0.25);
    }

    #[test]
    fn r2d2_speeds_up_address_generation_bound_kernel() {
        // Issue-bound: a long chain of linear index arithmetic per thread with
        // a single store — the regime where the paper's speedups come from.
        let mut b = KernelBuilder::new("addrgen", 2);
        let i = b.global_tid_x();
        let c = b.ld_param32(1);
        let mut v = b.mad(i, c, Operand::Imm(5));
        for step in 0..10 {
            let s = b.shl_imm(v, 1);
            v = b.add(s, Operand::Imm(step));
        }
        let off = b.shl_imm_wide(i, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        b.st_global(Ty::B32, addr, 0, v);
        let k = b.build();

        let cfg = GpuConfig::default().with_num_sms(8);
        let grid = Dim3::d1(256);
        let block = Dim3::d1(256);
        let n = 256 * 256u64;

        let mut g1 = GlobalMem::new();
        let o1 = g1.alloc(n * 4);
        let l1 = Launch::new(k.clone(), grid, block, vec![o1, 3]);
        let base = run_baseline(&cfg, &l1, &mut g1).unwrap();

        let mut g2 = GlobalMem::new();
        let o2 = g2.alloc(n * 4);
        let r2 = run_r2d2(&cfg, &k, grid, block, vec![o2, 3], &mut g2).unwrap();

        assert!(r2.used_r2d2);
        assert_eq!(g1.bytes(), g2.bytes(), "results must match");
        assert!(
            r2.stats.cycles * 12 < base.stats.cycles * 10,
            "expected >1.2x speedup: R2D2 {} vs baseline {} cycles",
            r2.stats.cycles,
            base.stats.cycles
        );
        assert!(r2.energy.total_pj() < base.energy.total_pj());
    }

    use r2d2_isa::Operand;
}
