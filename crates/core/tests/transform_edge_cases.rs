//! Edge cases of the R2D2 transformation: register-table overflow, symbolic
//! offset grouping, loop-carried pointers, guarded memory ops, 3-D launches.

use r2d2_core::transform::transform;
use r2d2_isa::{CmpOp, Kernel, KernelBuilder, Operand, Ty};
use r2d2_sim::{functional, Dim3, GlobalMem, Launch, MAX_LR};

fn check_equivalent(kernel: &Kernel, grid: Dim3, block: Dim3, params: Vec<u64>, bytes: u64) {
    let r2 = transform(kernel);
    assert!(r2.kernel.validate().is_ok(), "{:?}", r2.kernel.validate());
    let mut g1 = GlobalMem::new();
    let b1 = g1.alloc(bytes);
    let mut p1 = vec![b1];
    p1.extend(&params);
    let l1 = Launch::new(kernel.clone(), grid, block, p1.clone());
    functional::run(&l1, &mut g1, 50_000_000, None).unwrap();

    let mut g2 = GlobalMem::new();
    let b2 = g2.alloc(bytes);
    let mut p2 = vec![b2];
    p2.extend(&params);
    if r2.meta.has_linear() {
        let mut l2 = Launch::new(r2.kernel, grid, block, p2);
        l2.meta = Some(r2.meta);
        functional::run_r2d2(&l2, &mut g2, 50_000_000, None).unwrap();
    } else {
        let l2 = Launch::new(r2.kernel, grid, block, p2);
        functional::run(&l2, &mut g2, 50_000_000, None).unwrap();
    }
    assert_eq!(g1.bytes(), g2.bytes(), "divergence in {}", kernel.name);
}

#[test]
fn more_than_16_groups_spill_but_stay_correct() {
    // 20 distinct-shape addresses: only MAX_LR groups fit the register table.
    let mut b = KernelBuilder::new("spill", 1);
    let i = b.global_tid_x();
    let p = b.ld_param(0);
    for k in 0..20i64 {
        // each shape differs: idx_k = i * (k+1) + k
        let scaled = b.mul(i, Operand::Imm(k + 1));
        let idx = b.add(scaled, Operand::Imm(k));
        let off = b.shl_imm_wide(idx, 2);
        let addr = b.add_wide(p, off);
        let v = b.ld_global(Ty::B32, addr, 0);
        let w = b.xor_ty(Ty::B32, v, Operand::Imm(k)); // non-linear consumer
        b.st_global(Ty::B32, addr, 0, w);
    }
    let k = b.build();
    let r2 = transform(&k);
    assert_eq!(r2.meta.n_lr, MAX_LR);
    assert!(
        r2.report.spilled_groups >= 4,
        "spilled {}",
        r2.report.spilled_groups
    );
    // Buffer must cover max address: i_max=63, idx = 63*20+19 = 1279.
    check_equivalent(&k, Dim3::d1(2), Dim3::d1(32), vec![], 1280 * 4 + 256);
}

#[test]
fn symbolic_delta_becomes_cr_offset() {
    // Two addresses with identical shape whose constant parts differ by a
    // *parameter* (Sec. 3.1.4's %cr offset rewrite).
    let mut b = KernelBuilder::new("symdelta", 2);
    let i = b.global_tid_x();
    let p = b.ld_param(0);
    let off = b.shl_imm_wide(i, 2);
    let a0 = b.add_wide(p, off);
    let v0 = b.ld_global(Ty::B32, a0, 0);
    let d = b.ld_param(1); // symbolic byte distance
    let shifted = b.add_wide(p, d);
    let a1 = b.add_wide(shifted, off);
    let v1 = b.ld_global(Ty::B32, a1, 0);
    let s = b.add(v0, v1);
    b.st_global(Ty::B32, a0, 0, s);
    let k = b.build();
    let r2 = transform(&k);
    assert_eq!(r2.meta.n_lr, 1, "one shared group expected");
    let uses_cr_offset =
        r2.kernel.instrs.iter().any(
            |ins| matches!(ins.mem, Some(m) if matches!(m.offset, r2d2_isa::MemOffset::Cr(_))),
        );
    assert!(
        uses_cr_offset,
        "expected a [%lr+%cr] access:\n{}",
        r2.kernel
    );
    check_equivalent(&k, Dim3::d1(4), Dim3::d1(64), vec![1024], 4096 + 256);
}

#[test]
fn loop_carried_pointer_keeps_update_but_decouples_init() {
    // The SGM pattern: a pointer initialized from a linear combination and
    // bumped in a loop. The init chain must collapse to an %lr read.
    let mut b = KernelBuilder::new("looped", 2);
    let i = b.global_tid_x();
    let stride = b.ld_param32(1);
    let row = b.mul(i, stride);
    let off = b.shl_imm_wide(row, 2);
    let p = b.ld_param(0);
    let ptr = b.fresh();
    b.push(r2d2_isa::Instr::new(
        r2d2_isa::Op::Add,
        Ty::B64,
        Some(r2d2_isa::Dst::Reg(ptr)),
        vec![Operand::Reg(p), Operand::Reg(off)],
    ));
    let acc = b.imm32(0);
    let kreg = b.imm32(0);
    let top = b.here_label();
    let v = b.ld_global(Ty::B32, ptr, 0);
    b.assign_add(Ty::B32, acc, v);
    b.assign_add(Ty::B64, ptr, Operand::Imm(4));
    b.assign_add(Ty::B32, kreg, Operand::Imm(1));
    let pr = b.setp(CmpOp::Lt, Ty::B32, kreg, stride);
    b.bra_if(pr, true, top);
    let ooff = b.shl_imm_wide(i, 2);
    let pq = b.ld_param(0);
    let oaddr = b.add_wide(pq, ooff);
    b.st_global(Ty::B32, oaddr, 0, acc);
    let k = b.build();
    let r2 = transform(&k);
    assert!(r2.meta.has_linear());
    // The pointer's init (add ptr, <Lr/Cr>, <Lr>) must survive with
    // rewritten operands, and its upstream mul/shl/cvt chain must be gone.
    let main = &r2.kernel.instrs[r2.meta.main_start..];
    assert!(
        !main
            .iter()
            .any(|ins| ins.op == r2d2_isa::Op::Mul && ins.ty == Ty::B32),
        "index mul should be decoupled:\n{}",
        r2.kernel
    );
    check_equivalent(&k, Dim3::d1(2), Dim3::d1(64), vec![8], 128 * 8 * 4 + 1024);
}

#[test]
fn guarded_stores_through_lr_bases() {
    let mut b = KernelBuilder::new("guarded", 1);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let p = b.ld_param(0);
    let addr = b.add_wide(p, off);
    let odd = b.and_ty(Ty::B32, i, Operand::Imm(1));
    let pr = b.setp(CmpOp::Eq, Ty::B32, odd, Operand::Imm(1));
    b.st_global(Ty::B32, addr, 0, i);
    b.guard_last(pr, true);
    b.st_global(Ty::B32, addr, 4, i);
    b.guard_last(pr, false);
    let k = b.build();
    check_equivalent(&k, Dim3::d1(2), Dim3::d1(64), vec![], 4096);
}

#[test]
fn three_dimensional_launch_decouples_all_six_indices() {
    // Use all six built-in indices in one combination.
    let mut b = KernelBuilder::new("threed", 1);
    let tx = b.tid_x();
    let ty = b.tid_y();
    let tz = b.tid_z();
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let bz = b.ctaid_z();
    let a = b.mad(ty, Operand::Imm(8), tx);
    let a2 = b.mad(tz, Operand::Imm(32), a);
    let a3 = b.mad(bx, Operand::Imm(64), a2);
    let a4 = b.mad(by, Operand::Imm(128), a3);
    let idx = b.mad(bz, Operand::Imm(256), a4);
    let off = b.shl_imm_wide(idx, 2);
    let p = b.ld_param(0);
    let addr = b.add_wide(p, off);
    b.st_global(Ty::B32, addr, 0, idx);
    let k = b.build();
    let r2 = transform(&k);
    assert!(r2.meta.has_linear());
    // Two combinations: the raw index (stored value) and the scaled byte
    // address; each carries its own thread part.
    assert_eq!(r2.meta.n_lr, 2);
    assert_eq!(r2.meta.n_tr, 2);
    check_equivalent(
        &k,
        Dim3::d3(2, 2, 2),
        Dim3::d3(8, 2, 2),
        vec![],
        (256 * 2 + 128 * 2 + 64 * 2 + 32 * 2 + 8 * 2 + 8) * 4 + 4096,
    );
}

#[test]
fn shared_memory_kernels_transform_safely() {
    // tidx/bidx decoupling must not disturb shared-memory addressing.
    let mut b = KernelBuilder::new("sharedmem", 1);
    b.shared_bytes(64 * 4);
    let t = b.tid_x();
    let soff = b.shl_imm_wide(t, 2);
    let dbl = b.add(t, t);
    b.st_shared(Ty::B32, soff, 0, dbl);
    b.bar();
    let ntid = b.ntid_x();
    let nm1 = b.sub(ntid, Operand::Imm(1));
    let rev = b.sub(nm1, t);
    let roff = b.shl_imm_wide(rev, 2);
    let v = b.ld_shared(Ty::B32, roff, 0);
    let i = b.global_tid_x();
    let goff = b.shl_imm_wide(i, 2);
    let p = b.ld_param(0);
    let addr = b.add_wide(p, goff);
    b.st_global(Ty::B32, addr, 0, v);
    let k = b.build();
    check_equivalent(&k, Dim3::d1(3), Dim3::d1(64), vec![], 4096);
}

#[test]
fn atomics_with_linear_addresses() {
    let mut b = KernelBuilder::new("atomlin", 1);
    let i = b.global_tid_x();
    let bucket = b.and_ty(Ty::B32, i, Operand::Imm(7));
    let boff32 = b.shl_imm(bucket, 2);
    let boff = b.cvt_wide(boff32);
    let p = b.ld_param(0);
    let addr = b.add_wide(p, boff);
    let one = b.imm32(1);
    b.atom(r2d2_isa::AtomOp::Add, Ty::B32, addr, 0, one);
    let k = b.build();
    check_equivalent(&k, Dim3::d1(4), Dim3::d1(64), vec![], 1024);
}

#[test]
fn transformed_kernels_roundtrip_through_the_assembler() {
    // The decoupled streams (with %tr/%br/%cr dsts, %lr bases and %cr+imm
    // offsets) must survive Display -> parse bit-exactly.
    let w = r2d2_workloads::build("SAD", r2d2_workloads::Size::Small).unwrap();
    for l in &w.launches {
        let r2 = transform(&l.kernel);
        let text = r2.kernel.to_string();
        let parsed =
            r2d2_isa::parse_kernel(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        assert_eq!(r2.kernel, parsed, "round-trip mismatch:\n{text}");
    }
}

#[test]
fn scalar_only_linearity_produces_empty_tidx_and_bidx_blocks() {
    // Addresses are data-dependent (gather), so the only linearity is the
    // parameter loads: coef block only; tidx/bidx boundaries collapse.
    let mut b = KernelBuilder::new("gather", 1);
    let i = b.global_tid_x();
    let ioff = b.shl_imm_wide(i, 2);
    let p0 = b.ld_param(0);
    let ia = b.add_wide(p0, ioff);
    let idx = b.ld_global(Ty::B32, ia, 0); // data-dependent index
    let masked = b.and_ty(Ty::B32, idx, Operand::Imm(63));
    let goff32 = b.shl_imm(masked, 2);
    let goff = b.cvt_wide(goff32);
    let p1 = b.ld_param(0);
    let shifted = b.add_wide(p1, Operand::Imm(4096)); // second table, same buffer
    let ga = b.add_wide(shifted, goff);
    let v = b.ld_global(Ty::B32, ga, 0);
    b.st_global(Ty::B32, ia, 0, v);
    let k = b.build();
    let r2 = transform(&k);
    assert!(r2.meta.has_linear());
    // The i-based source address IS linear; the gather target is not. So we
    // get one LR group; but the gather base p1 is a scalar -> CR.
    assert!(r2.report.scalar_crs >= 1 || r2.meta.n_lr >= 1);
    check_equivalent(&k, Dim3::d1(2), Dim3::d1(64), vec![], 4096 + 4096);
}

#[test]
fn ablation_options_preserve_semantics() {
    use r2d2_core::{transform_with, GenOptions};
    let mut b = KernelBuilder::new("abl", 1);
    let i = b.global_tid_x();
    for k_ in 0..6i64 {
        let scaled = b.mul(i, Operand::Imm(k_ + 2));
        let off = b.shl_imm_wide(scaled, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        let v = b.ld_global(Ty::B32, addr, 0);
        let w = b.add(v, Operand::Imm(1));
        b.st_global(Ty::B32, addr, 0, w);
    }
    let k = b.build();
    for opts in [
        GenOptions::default(),
        GenOptions {
            max_lr: 2,
            ..Default::default()
        },
        GenOptions {
            share_groups: false,
            ..Default::default()
        },
        GenOptions {
            map_scalars: false,
            ..Default::default()
        },
        GenOptions {
            max_lr: 1,
            share_groups: false,
            map_scalars: false,
        },
    ] {
        let r2 = transform_with(&k, &opts);
        assert!(r2.kernel.validate().is_ok(), "{opts:?}");
        let mut g1 = GlobalMem::new();
        let b1 = g1.alloc(64 * 64 * 8 + 1024);
        let l1 = Launch::new(k.clone(), Dim3::d1(2), Dim3::d1(32), vec![b1]);
        functional::run(&l1, &mut g1, 10_000_000, None).unwrap();
        let mut g2 = GlobalMem::new();
        let b2 = g2.alloc(64 * 64 * 8 + 1024);
        if r2.meta.has_linear() {
            let mut l2 = Launch::new(r2.kernel, Dim3::d1(2), Dim3::d1(32), vec![b2]);
            l2.meta = Some(r2.meta);
            functional::run_r2d2(&l2, &mut g2, 10_000_000, None).unwrap();
        } else {
            let l2 = Launch::new(r2.kernel, Dim3::d1(2), Dim3::d1(32), vec![b2]);
            functional::run(&l2, &mut g2, 10_000_000, None).unwrap();
        }
        assert_eq!(g1.bytes(), g2.bytes(), "{opts:?}");
    }
}

#[test]
fn transform_is_idempotent_on_its_own_output() {
    // Transforming a transformed kernel must not corrupt it (the analyzer
    // sees %lr/%cr operands as non-linear and leaves the stream intact).
    let mut b = KernelBuilder::new("idem", 1);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 2);
    let p = b.ld_param(0);
    let addr = b.add_wide(p, off);
    b.st_global(Ty::B32, addr, 0, i);
    let k = b.build();
    let once = transform(&k);
    let twice = transform(&once.kernel);
    assert!(twice.kernel.validate().is_ok());
}

#[test]
fn use_before_def_registers_are_never_remapped() {
    // %r1 is read (uninitialized) before its single write — hand-written
    // assembly can do this; the analyzer must not decouple it.
    let src = r#"
.kernel ubd params=1 {
  mov.b32 %r0, %tid.x;
  add.b32 %r2, %r1, %r0;      // reads %r1 before its def
  mov.b32 %r1, %ctaid.x;      // the (single) def
  cvt.b64 %r3, %r2;
  shl.b64 %r4, %r3, 2;
  ld.param.b64 %r5, [P0];
  add.b64 %r6, %r5, %r4;
  st.global.b32 [%r6], %r2;
  exit;
}
"#;
    let k = r2d2_isa::parse_kernel(src).unwrap();
    check_equivalent(&k, Dim3::d1(2), Dim3::d1(32), vec![], 4096);
}

#[test]
fn delta_grouped_register_with_alu_use_by_kept_producer() {
    // a1 joins a0's group with a constant delta (its non-producer uses are
    // all memory bases), but a KEPT instruction (a spilled/unmapped linear
    // producer chain head: here a multi-write pointer init) also reads a1 as
    // a plain ALU source. The delta must not be dropped.
    let mut b = KernelBuilder::new("deltaalu", 1);
    let i = b.global_tid_x();
    let off = b.shl_imm_wide(i, 3);
    let p = b.ld_param(0);
    let a0 = b.add_wide(p, off);
    let v0 = b.ld_global(Ty::B32, a0, 0);
    let a1 = b.add_wide(a0, Operand::Imm(4096)); // same shape, +4096
    let v1 = b.ld_global(Ty::B32, a1, 0);
    // multi-write pointer initialized FROM a1 (ALU use by a kept instr)
    let ptr = b.fresh();
    b.assign_mov(Ty::B64, ptr, a1);
    b.assign_add(Ty::B64, ptr, Operand::Imm(8));
    let v2 = b.ld_global(Ty::B32, ptr, 0);
    let s1 = b.add(v0, v1);
    let s2 = b.add(s1, v2);
    b.st_global(Ty::B32, a0, 0, s2);
    let k = b.build();
    check_equivalent(&k, Dim3::d1(2), Dim3::d1(64), vec![], 4096 + 4096 + 1024);
}
