//! Randomized end-to-end test of the R2D2 software pipeline: for random
//! kernels built from random linear index expressions (plus loads, stores and
//! non-linear noise), the transformed kernel must (a) validate, (b) leave
//! device memory byte-identical to the original, and (c) match a direct Rust
//! evaluation of each expression. Cases come from the in-repo seeded PRNG.

use r2d2_core::transform::transform;
use r2d2_isa::{Kernel, KernelBuilder, Operand, Reg, Ty};
use r2d2_sim::{functional, Dim3, GlobalMem, Launch};
use r2d2_sym::Rng;

const CASES: usize = 64;

/// A random linear expression over built-in indices and parameters.
#[derive(Debug, Clone)]
enum Expr {
    Tid(u8),
    Ctaid(u8),
    Param(u8),
    Imm(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    MulImm(Box<Expr>, i32),
    Shl(Box<Expr>, u32),
    MadImm(Box<Expr>, i32, Box<Expr>),
}

impl Expr {
    fn gen(r: &mut Rng, depth: u32) -> Expr {
        if depth == 0 || r.below(3) == 0 {
            return match r.below(4) {
                0 => Expr::Tid(r.gen_range(0u8..3)),
                1 => Expr::Ctaid(r.gen_range(0u8..2)),
                2 => Expr::Param(r.gen_range(0u8..3)),
                _ => Expr::Imm(r.gen_range(-50i32..50)),
            };
        }
        match r.below(5) {
            0 => Expr::Add(
                Expr::gen(r, depth - 1).into(),
                Expr::gen(r, depth - 1).into(),
            ),
            1 => Expr::Sub(
                Expr::gen(r, depth - 1).into(),
                Expr::gen(r, depth - 1).into(),
            ),
            2 => Expr::MulImm(Expr::gen(r, depth - 1).into(), r.gen_range(-8i32..8)),
            3 => Expr::Shl(Expr::gen(r, depth - 1).into(), r.gen_range(0u32..5)),
            _ => Expr::MadImm(
                Expr::gen(r, depth - 1).into(),
                r.gen_range(-8i32..8),
                Expr::gen(r, depth - 1).into(),
            ),
        }
    }

    /// Emit instructions computing the expression (32-bit).
    fn emit(&self, b: &mut KernelBuilder) -> Reg {
        match self {
            Expr::Tid(0) => b.tid_x(),
            Expr::Tid(1) => b.tid_y(),
            Expr::Tid(_) => b.tid_z(),
            Expr::Ctaid(0) => b.ctaid_x(),
            Expr::Ctaid(_) => b.ctaid_y(),
            Expr::Param(n) => b.ld_param32(2 + *n as usize),
            Expr::Imm(v) => b.imm32(*v),
            Expr::Add(x, y) => {
                let rx = x.emit(b);
                let ry = y.emit(b);
                b.add(rx, ry)
            }
            Expr::Sub(x, y) => {
                let rx = x.emit(b);
                let ry = y.emit(b);
                b.sub(rx, ry)
            }
            Expr::MulImm(x, c) => {
                let rx = x.emit(b);
                b.mul(rx, Operand::Imm(*c as i64))
            }
            Expr::Shl(x, k) => {
                let rx = x.emit(b);
                b.shl_imm(rx, *k)
            }
            Expr::MadImm(x, c, y) => {
                let rx = x.emit(b);
                let ry = y.emit(b);
                b.mad(rx, Operand::Imm(*c as i64), ry)
            }
        }
    }

    /// Reference evaluation with wrapping 32-bit arithmetic.
    fn eval(&self, tid: [i32; 3], ctaid: [i32; 3], params: &[i32]) -> i32 {
        match self {
            Expr::Tid(d) => tid[*d as usize % 3],
            Expr::Ctaid(d) => ctaid[*d as usize % 3],
            Expr::Param(n) => params.get(*n as usize).copied().unwrap_or(0),
            Expr::Imm(v) => *v,
            Expr::Add(x, y) => x
                .eval(tid, ctaid, params)
                .wrapping_add(y.eval(tid, ctaid, params)),
            Expr::Sub(x, y) => x
                .eval(tid, ctaid, params)
                .wrapping_sub(y.eval(tid, ctaid, params)),
            Expr::MulImm(x, c) => x.eval(tid, ctaid, params).wrapping_mul(*c),
            Expr::Shl(x, k) => x.eval(tid, ctaid, params).wrapping_shl(*k),
            Expr::MadImm(x, c, y) => x
                .eval(tid, ctaid, params)
                .wrapping_mul(*c)
                .wrapping_add(y.eval(tid, ctaid, params)),
        }
    }
}

/// Build a kernel that stores each expression's value to its own output
/// column: `out[e * nthreads + gtid] = expr_e`, plus a non-linear consumer
/// (the value loaded back and squared) to exercise rewritten operands.
fn build_kernel(exprs: &[Expr]) -> Kernel {
    let mut b = KernelBuilder::new("prop", 2 + 3);
    let gtid = b.global_tid_x();
    for (e, expr) in exprs.iter().enumerate() {
        let v = expr.emit(&mut b);
        let nt = b.ntid_x();
        let nb = b.nctaid_x();
        let total = b.mul(nt, nb);
        let col = b.mad(total, Operand::Imm(e as i64), gtid);
        let off = b.shl_imm_wide(col, 2);
        let p = b.ld_param(0);
        let addr = b.add_wide(p, off);
        b.st_global(Ty::B32, addr, 0, v);
        // non-linear consumer through the second buffer
        let loaded = b.ld_global(Ty::B32, addr, 0);
        let sq = b.mul(loaded, loaded);
        let p1 = b.ld_param(1);
        let addr2 = b.add_wide(p1, off);
        b.st_global(Ty::B32, addr2, 0, sq);
    }
    b.build()
}

#[test]
fn transform_preserves_semantics() {
    let mut r = Rng::new(0x72a2f);
    for _ in 0..CASES {
        let exprs: Vec<Expr> = (0..r.gen_range(1usize..4))
            .map(|_| Expr::gen(&mut r, 4))
            .collect();
        let bx = r.gen_range(1u32..3);
        let by = r.gen_range(1u32..3);
        let ntx = *r.choose(&[8u32, 16, 32, 33]);
        let nty = r.gen_range(1u32..3);
        let params: Vec<i32> = (0..3).map(|_| r.gen_range(-100i32..100)).collect();

        let kernel = build_kernel(&exprs);
        assert!(kernel.validate().is_ok());
        let r2 = transform(&kernel);
        assert!(r2.kernel.validate().is_ok(), "{:?}", r2.kernel.validate());

        let grid = Dim3::d2(bx, by);
        let block = Dim3::d2(ntx, nty);
        let nthreads = grid.count() * block.count();
        let cols = exprs.len() as u64;

        let mk_params = |g: &mut GlobalMem| -> Vec<u64> {
            let out = g.alloc(nthreads.next_multiple_of(32) * cols * 4 + 4096);
            let out2 = g.alloc(nthreads.next_multiple_of(32) * cols * 4 + 4096);
            let mut ps = vec![out, out2];
            ps.extend(params.iter().map(|p| *p as i64 as u64));
            ps
        };

        let mut g1 = GlobalMem::new();
        let ps1 = mk_params(&mut g1);
        let l1 = Launch::new(kernel, grid, block, ps1.clone());
        functional::run(&l1, &mut g1, 10_000_000, None).unwrap();

        let mut g2 = GlobalMem::new();
        let ps2 = mk_params(&mut g2);
        if r2.meta.has_linear() {
            let mut l2 = Launch::new(r2.kernel, grid, block, ps2);
            l2.meta = Some(r2.meta);
            functional::run_r2d2(&l2, &mut g2, 10_000_000, None).unwrap();
        } else {
            let l2 = Launch::new(r2.kernel, grid, block, ps2);
            functional::run(&l2, &mut g2, 10_000_000, None).unwrap();
        }
        assert_eq!(g1.bytes(), g2.bytes(), "transformed kernel diverged");

        // Spot-check expression values against the Rust reference. The
        // kernel's gtid (ctaid.x*ntid.x + tid.x) collides across y lanes, so
        // only 1-D launches have a unique writer per slot.
        if by == 1 && nty == 1 {
            let total = grid.count() * block.count();
            for (e, expr) in exprs.iter().enumerate() {
                for sample in [0u64, total / 2, total - 1] {
                    let blk = sample / block.x as u64;
                    let t = sample % block.x as u64;
                    let tid = [t as i32, 0, 0];
                    let cta = [blk as i32, 0, 0];
                    let want = expr.eval(tid, cta, &params);
                    let got = g1.read_i32(ps1[0], e as u64 * total + sample);
                    assert_eq!(got, want, "expr {e} thread {sample}");
                }
            }
        }
    }
}
